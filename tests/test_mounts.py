"""Tests for multi-device mounts (the testbed's multiple disks)."""

import pytest

from repro.kernel import BlockDevice, Kernel, O_CREAT, O_RDWR, O_WRONLY
from repro.kernel.errno import Errno
from repro.sim import Environment


@pytest.fixture()
def setup():
    env = Environment()
    fast = BlockDevice(env, name="nvme0", bandwidth_bytes_per_sec=10**9,
                       base_latency_ns=10_000)
    kernel = Kernel(env, device=fast, ncpus=2)
    slow = BlockDevice(env, name="sata0", bandwidth_bytes_per_sec=10**8,
                       base_latency_ns=100_000)
    dev_no = kernel.add_mount("/slow", slow, cache_bytes=1024 * 1024)
    task = kernel.spawn_process("app").threads[0]
    return env, kernel, task, fast, slow, dev_no


def run(env, gen):
    return env.run(until=env.process(gen))


class TestDeviceAssignment:
    def test_files_get_the_mounts_device_number(self, setup):
        env, kernel, task, fast, slow, dev_no = setup
        root_file = kernel.vfs.create("/root_file")
        slow_file = kernel.vfs.create("/slow/slow_file")
        assert root_file.dev == kernel.vfs.dev
        assert slow_file.dev == dev_no

    def test_longest_prefix_wins(self, setup):
        env, kernel, task, fast, slow, dev_no = setup
        extra = BlockDevice(env, name="nvme1")
        nested = kernel.add_mount("/slow/fastcorner", extra)
        inode = kernel.vfs.create("/slow/fastcorner/f")
        assert inode.dev == nested

    def test_stat_reports_mount_device(self, setup):
        env, kernel, task, fast, slow, dev_no = setup

        def scenario():
            fd = yield from kernel.syscall(task, "open", path="/slow/f",
                                           flags=O_CREAT | O_WRONLY)
            st = {}
            yield from kernel.syscall(task, "fstat", fd=fd, statbuf=st)
            return st

        st = run(env, scenario())
        assert st["st_dev"] == dev_no


class TestIORouting:
    def test_io_hits_the_mounted_device(self, setup):
        env, kernel, task, fast, slow, dev_no = setup

        def scenario():
            fd = yield from kernel.syscall(task, "open", path="/slow/f",
                                           flags=O_CREAT | O_RDWR)
            yield from kernel.syscall(task, "write", fd=fd,
                                      data=b"z" * 100_000)
            yield from kernel.syscall(task, "fsync", fd=fd)
            yield from kernel.syscall(task, "close", fd=fd)

        before_fast = fast.stats.bytes_written
        run(env, scenario())
        assert slow.stats.bytes_written >= 100_000
        # The root device saw only the mountpoint's own metadata.
        assert fast.stats.bytes_written - before_fast <= 1024

    def test_slow_mount_is_actually_slower(self, setup):
        env, kernel, task, fast, slow, dev_no = setup

        def timed_write(path):
            start = env.now
            fd = yield from kernel.syscall(task, "open", path=path,
                                           flags=O_CREAT | O_RDWR)
            yield from kernel.syscall(task, "write", fd=fd,
                                      data=b"z" * 1_000_000)
            yield from kernel.syscall(task, "fsync", fd=fd)
            yield from kernel.syscall(task, "close", fd=fd)
            return env.now - start

        fast_ns = run(env, timed_write("/on_fast"))
        slow_ns = run(env, timed_write("/slow/on_slow"))
        assert slow_ns > 3 * fast_ns

    def test_separate_caches(self, setup):
        env, kernel, task, fast, slow, dev_no = setup

        def scenario():
            fd = yield from kernel.syscall(task, "open", path="/slow/f",
                                           flags=O_CREAT | O_RDWR)
            yield from kernel.syscall(task, "write", fd=fd, data=b"x" * 8192)

        run(env, scenario())
        # The dirty blocks live in the mount's cache, not the root's.
        assert kernel.cache.dirty_blocks() == 0
        mount_cache = kernel._io_backends[dev_no][1]
        assert mount_cache.dirty_blocks() == 2


class TestCrossDeviceSemantics:
    def test_rename_across_devices_is_exdev(self, setup):
        env, kernel, task, fast, slow, dev_no = setup

        def scenario():
            yield from kernel.syscall(task, "creat", path="/f")
            ret = yield from kernel.syscall(task, "rename", oldpath="/f",
                                            newpath="/slow/f")
            return ret

        assert run(env, scenario()) == -int(Errno.EXDEV)

    def test_rename_within_a_mount_works(self, setup):
        env, kernel, task, fast, slow, dev_no = setup

        def scenario():
            yield from kernel.syscall(task, "creat", path="/slow/a")
            return (yield from kernel.syscall(task, "rename",
                                              oldpath="/slow/a",
                                              newpath="/slow/b"))

        assert run(env, scenario()) == 0

    def test_hard_link_across_devices_rejected(self, setup):
        env, kernel, task, fast, slow, dev_no = setup
        kernel.vfs.create("/origin")
        from repro.kernel.errno import KernelError

        with pytest.raises(KernelError) as exc:
            kernel.vfs.link("/origin", "/slow/alias")
        assert exc.value.errno == Errno.EXDEV

    def test_file_tags_distinguish_devices(self, setup):
        """Same inode numbers on different devices -> different tags."""
        from repro.backend import DocumentStore
        from repro.tracer import DIOTracer

        env, kernel, task, fast, slow, dev_no = setup
        store = DocumentStore()
        tracer = DIOTracer(env, kernel, store)
        tracer.attach()

        def scenario():
            for path in ("/a", "/slow/a"):
                fd = yield from kernel.syscall(task, "open", path=path,
                                               flags=O_CREAT | O_WRONLY)
                yield from kernel.syscall(task, "write", fd=fd, data=b"x")
                yield from kernel.syscall(task, "close", fd=fd)
            yield from tracer.shutdown()

        run(env, scenario())
        hits = store.search("dio_trace", size=None)["hits"]["hits"]
        tags = {h["_source"].get("file_tag") for h in hits
                if h["_source"].get("file_tag")}
        devs = {tag.split()[0] for tag in tags}
        assert len(devs) == 2


class TestRocksDBWalDir:
    def test_wal_files_land_on_the_wal_mount(self, setup):
        from repro.apps.rocksdb import DBOptions, RocksDB

        env, kernel, task, fast, slow, dev_no = setup
        process = kernel.spawn_process("db")
        options = DBOptions(wal_dir="/slow", memtable_bytes=4096)
        db = RocksDB(kernel, process, options)

        def scenario():
            yield from db.open(process.threads[0])
            for i in range(50):
                yield from db.put(process.threads[0], f"k{i:04d}",
                                  b"v" * 100)
            db.close()

        run(env, scenario())
        wal_files = [name for name in kernel.vfs.listdir("/slow")
                     if name.startswith("LOG.wal")]
        assert wal_files
        assert kernel.vfs.resolve(f"/slow/{wal_files[0]}").dev == dev_no
