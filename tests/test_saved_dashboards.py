"""Tests for saved/predefined dashboard specifications."""

import json

import pytest

from repro.backend import DocumentStore
from repro.visualizer import (Dashboard, DashboardError,
                              PREDEFINED_DASHBOARDS, load_predefined)

MS = 1_000_000


@pytest.fixture()
def store():
    store = DocumentStore()
    store.bulk("dio_trace", [
        {"syscall": "openat", "proc_name": "app", "pid": 1, "tid": 1,
         "ret": 3, "time": 0, "session": "s",
         "args": {"path": "/f"}, "file_tag": "7 3 0"},
        {"syscall": "write", "proc_name": "app", "pid": 1, "tid": 1,
         "ret": 100, "time": 1 * MS, "offset": 0, "session": "s",
         "file_tag": "7 3 0", "file_path": "/f"},
        {"syscall": "read", "proc_name": "worker", "pid": 2, "tid": 2,
         "ret": 100, "time": 2 * MS, "offset": 0, "session": "s",
         "file_tag": "7 3 0", "file_path": "/f"},
    ])
    return store


class TestSpecValidation:
    def test_missing_fields(self):
        with pytest.raises(DashboardError):
            Dashboard.from_spec({"name": "x", "panels": []})
        with pytest.raises(DashboardError):
            Dashboard.from_spec({"name": "x", "title": "t", "panels": []})

    def test_unknown_panel_type(self):
        with pytest.raises(DashboardError):
            Dashboard.from_spec({"name": "x", "title": "t",
                                 "panels": [{"type": "piechart"}]})

    def test_heatmap_panel_needs_target(self):
        with pytest.raises(DashboardError):
            Dashboard.from_spec({"name": "x", "title": "t",
                                 "panels": [{"type": "offset_heatmap"}]})

    def test_bad_window(self):
        with pytest.raises(DashboardError):
            Dashboard.from_spec({"name": "x", "title": "t",
                                 "panels": [{"type": "thread_sparklines",
                                             "window_ms": -5}]})

    def test_diagnosis_panel_bad_max_findings(self):
        with pytest.raises(DashboardError):
            Dashboard.from_spec({"name": "x", "title": "t",
                                 "panels": [{"type": "diagnosis",
                                             "max_findings": -1}]})

    def test_invalid_json_string(self):
        with pytest.raises(DashboardError):
            Dashboard.from_spec("{nope")

    def test_json_roundtrip(self):
        dashboard = load_predefined("overview")
        clone = Dashboard.from_spec(dashboard.to_json())
        assert clone.to_spec() == dashboard.to_spec()
        json.loads(dashboard.to_json())  # valid JSON


class TestPredefined:
    def test_all_predefined_load(self):
        for name in PREDEFINED_DASHBOARDS:
            assert load_predefined(name).name == name

    def test_unknown_predefined(self):
        with pytest.raises(DashboardError):
            load_predefined("nope")


class TestRendering:
    def test_overview_renders_counts(self, store):
        text = load_predefined("overview").render(store, session="s")
        assert "DIO overview" in text
        assert "write" in text
        assert "worker" in text

    def test_file_access_renders_fig2_table(self, store):
        text = load_predefined("file-access").render(store, session="s")
        assert "file_tag" in text
        assert "7 3 0" in text

    def test_thread_activity_renders_sparklines(self, store):
        text = load_predefined("thread-activity").render(store, session="s")
        assert "app" in text
        assert "aggregated by thread name" in text

    def test_custom_dashboard_with_heatmap(self, store):
        dashboard = Dashboard.from_spec({
            "name": "mine",
            "title": "custom",
            "panels": [
                {"type": "offset_heatmap", "file_path": "/f",
                 "title": "offsets of /f"},
                {"type": "event_table", "procs": ["app"]},
            ],
        })
        text = dashboard.render(store, session="s")
        assert "offsets of /f" in text
        assert "custom" in text
        # The event table honours the proc filter.
        assert "worker" not in text.split("event_table")[-1]

    def test_diagnosis_dashboard_renders_report(self, store):
        text = load_predefined("diagnosis").render(store, session="s")
        assert "Automatic diagnosis" in text
        assert "diagnosis for session 's'" in text
        assert "behaviour:" in text

    def test_diagnosis_panel_truncates_findings(self, store):
        dashboard = Dashboard.from_spec({
            "name": "d", "title": "d",
            "panels": [{"type": "diagnosis", "max_findings": 0,
                        "window_events": 2}]})
        text = dashboard.render(store, session="s")
        assert "diagnosis for session 's'" in text

    def test_session_scoping(self, store):
        store.bulk("dio_trace", [
            {"syscall": "read", "proc_name": "other", "pid": 9, "tid": 9,
             "ret": 1, "time": 0, "session": "other-session"}])
        text = load_predefined("overview").render(store, session="s")
        assert "other" not in text
