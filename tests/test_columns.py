"""Unit tests for the columnar aggregation engine.

Covers the typed-column storage (dictionary codes, numeric kinds,
fidelity flags), the pushdown decision, kernel-vs-legacy equivalence on
hand-picked tricky shapes, the aggregation result cache, and the
``size=0`` no-materialisation guarantee.  The broad randomised
equivalence sweep lives in ``tests/test_property_aggregations.py``.
"""

import json

import pytest

from repro.backend import DocumentStore, naive_aggregate, run_aggregations
from repro.backend.columns import Column, ColumnSet
from repro.backend.store import StoreError


@pytest.fixture()
def store():
    return DocumentStore()


def canon(payload):
    return json.dumps(payload, sort_keys=True)


# ---------------------------------------------------------------------------
# Column storage


class TestColumn:
    def test_dictionary_codes_round_trip(self):
        col = Column("f")
        for value in ("a", "b", "a", None, "c", "b"):
            col.append(value)
        assert [col.table[c] if c >= 0 else None for c in col.codes] == \
            ["a", "b", "a", None, "c", "b"]
        assert len(col.table) == 3

    def test_value_equal_types_get_distinct_codes(self):
        col = Column("f")
        col.append(1)
        col.append(1.0)
        col.append(True)
        assert len(col.table) == 3
        assert col.collisions  # a raw-value dict would merge these

    def test_unhashable_values_flagged(self):
        col = Column("f")
        col.append(["a", "b"])
        assert col.unencodable == 1
        col.clear(0)
        assert col.unencodable == 0

    def test_numeric_kind_promotions(self):
        col = Column("f")
        col.append(1)
        assert col.num_kind == "q"
        col.append(2.5)                     # int column sees a float
        assert col.num_kind == "obj"
        assert col.gather_numeric(range(2)) == [1, 2.5]

    def test_int_beyond_int64_promotes(self):
        col = Column("f")
        col.append(3)
        col.append(1 << 70)
        assert col.num_kind == "obj"
        assert col.gather_numeric(range(2)) == [3, 1 << 70]

    def test_float_column_stays_typed(self):
        col = Column("f")
        col.append(1.5)
        col.append(-2.25)
        assert col.num_kind == "d"
        assert col.gather_numeric(range(2)) == [1.5, -2.25]

    def test_bools_are_not_numeric(self):
        col = Column("f")
        col.append(True)
        assert col.num_kind is None
        assert col.gather_numeric(range(1)) == []

    def test_simple_flag(self):
        col = Column("f")
        col.append("x")
        col.append(3)
        col.append(False)
        assert col.simple
        col.append(1.5)
        assert not col.simple

    def test_sorted_flag_tracks_row_order(self):
        col = Column("t")
        for value in (10, 20, 20, 35):
            col.append(value)
        assert col.num_sorted
        col.append(5)
        assert not col.num_sorted

    def test_rewrite_below_frontier_drops_sorted_flag(self):
        col = Column("t")
        col.append(10)
        col.append(20)
        col.set(0, 15)
        assert not col.num_sorted

    def test_nan_drops_sorted_flag(self):
        col = Column("t")
        col.append(1.0)
        col.append(float("nan"))
        assert not col.num_sorted

    def test_tombstone_clears_row(self):
        col = Column("f")
        col.append("a")
        col.append(7)
        col.clear(1)
        assert col.codes[1] == -1
        assert col.gather_numeric([0, 1]) == []


class TestColumnSet:
    def test_lazy_build_then_incremental(self):
        docs = {"1": {"f": "a"}, "2": {"f": "b"}}
        cols = ColumnSet()
        for doc_id, source in docs.items():
            cols.note_put(doc_id, source)
        col = cols.ensure_column("f", docs)
        assert [col.table[c] for c in col.codes] == ["a", "b"]
        cols.note_put("3", {"f": "a"})
        assert len(col.codes) == 3

    def test_delete_and_overwrite(self):
        cols = ColumnSet()
        cols.note_put("1", {"f": "a"})
        cols.note_put("2", {"f": "b"})
        cols.ensure_column("f", {"1": {"f": "a"}, "2": {"f": "b"}})
        cols.note_delete("1")
        assert list(cols.all_rows()) == [1]
        cols.note_put("2", {"f": "c"})
        col = cols.ensure_column("f", {})
        assert col.table[col.codes[1]] == "c"

    def test_refresh_respects_field_filter(self):
        cols = ColumnSet()
        cols.note_put("1", {"f": "a", "g": 1})
        docs = {"1": {"f": "a", "g": 1}}
        f_col = cols.ensure_column("f", docs)
        g_col = cols.ensure_column("g", docs)
        source = {"f": "changed", "g": 2}
        cols.note_refresh("1", source, fields=("g",))
        assert f_col.table[f_col.codes[0]] == "a"      # untouched
        assert g_col.gather_numeric([0]) == [2]

    def test_dotted_field_prefix_refresh(self):
        cols = ColumnSet()
        cols.note_put("1", {"args": {"fd": 3}})
        col = cols.ensure_column("args.fd", {"1": {"args": {"fd": 3}}})
        cols.note_refresh("1", {"args": {"fd": 9}}, fields=("args",))
        assert col.gather_numeric([0]) == [9]


# ---------------------------------------------------------------------------
# Pushdown decision


class TestSupports:
    def docs(self, sources):
        cols = ColumnSet()
        docs = {}
        for i, source in enumerate(sources):
            doc_id = str(i)
            docs[doc_id] = source
            cols.note_put(doc_id, source)
        return cols, docs

    def test_simple_terms_supported(self):
        cols, docs = self.docs([{"f": "a"}, {"f": "b"}])
        assert cols.supports({"t": {"terms": {"field": "f"}}}, docs)

    def test_malformed_shapes_refused(self):
        cols, docs = self.docs([{"f": "a"}])
        for aggs in (None, {}, {"t": "nope"}, {"t": {}},
                     {"t": {"terms": {"field": "f"}, "histogram": {}}},
                     {"t": {"mystery": {"field": "f"}}},
                     {"t": {"terms": {"field": ""}}},
                     {"t": {"terms": {}}}):
            assert not cols.supports(aggs, docs)

    def test_terms_with_collisions_refused(self):
        cols, docs = self.docs([{"f": 1}, {"f": 1.0}])
        assert not cols.supports({"t": {"terms": {"field": "f"}}}, docs)

    def test_terms_with_unencodable_refused(self):
        cols, docs = self.docs([{"f": ["x"]}])
        assert not cols.supports({"t": {"terms": {"field": "f"}}}, docs)

    def test_histogram_needs_positive_numeric_interval(self):
        cols, docs = self.docs([{"n": 5}])
        for interval in (0, -3, "10", True, None):
            assert not cols.supports(
                {"h": {"histogram": {"field": "n", "interval": interval}}},
                docs)
        assert cols.supports(
            {"h": {"histogram": {"field": "n", "interval": 2}}}, docs)

    def test_histogram_over_mixed_column_refused(self):
        cols, docs = self.docs([{"n": 5}, {"n": 2.5}])
        assert not cols.supports(
            {"h": {"histogram": {"field": "n", "interval": 2}}}, docs)

    def test_cardinality_needs_repr_safe_values(self):
        cols, docs = self.docs([{"f": 1.5}])
        assert not cols.supports(
            {"c": {"cardinality": {"field": "f"}}}, docs)
        cols2, docs2 = self.docs([{"f": "a"}, {"f": 2}])
        assert cols2.supports({"c": {"cardinality": {"field": "f"}}}, docs2)

    def test_metric_cannot_nest(self):
        cols, docs = self.docs([{"n": 1}])
        assert not cols.supports(
            {"m": {"sum": {"field": "n"},
                   "aggs": {"x": {"sum": {"field": "n"}}}}}, docs)

    def test_nested_decision_recurses(self):
        cols, docs = self.docs([{"f": "a", "n": ["bad"]}])
        assert not cols.supports(
            {"t": {"terms": {"field": "f"},
                   "aggs": {"u": {"terms": {"field": "n"}}}}}, docs)


# ---------------------------------------------------------------------------
# Kernels vs legacy on hand-picked shapes


class TestKernelEquivalence:
    CASES = [
        # negative values: floor-division bucket keys
        ([{"n": -7}, {"n": -1}, {"n": 0}, {"n": 3}, {"n": 9}],
         {"h": {"histogram": {"field": "n", "interval": 4}}}),
        # terms tie-breaking: equal counts order by str(key)
        ([{"f": "b"}, {"f": "a"}, {"f": "c"}, {"f": "a"},
          {"f": "c"}, {"f": "b"}],
         {"t": {"terms": {"field": "f", "size": 2}}}),
        # missing and null values skipped everywhere
        ([{"f": "a", "n": 1}, {"f": None}, {}, {"f": "a"}, {"n": 2}],
         {"t": {"terms": {"field": "f"},
                "aggs": {"s": {"stats": {"field": "n"}}}}}),
        # int terms keys, cardinality and percentiles leaves
        ([{"tid": t % 3, "lat": t * 7 % 13} for t in range(40)],
         {"t": {"terms": {"field": "tid"},
                "aggs": {"card": {"cardinality": {"field": "lat"}},
                         "pct": {"percentiles": {"field": "lat",
                                                 "percents": [50, 99]}}}}}),
        # date_histogram over unsorted times (scalar kernel path)
        ([{"time": t, "p": f"p{t % 2}"} for t in (5, 1, 9, 3, 7, 2)],
         {"h": {"date_histogram": {"field": "time", "fixed_interval": 3},
                "aggs": {"by": {"terms": {"field": "p"}}}}}),
        # empty metric results
        ([{"f": "a"}],
         {"s": {"sum": {"field": "zzz"}}, "a": {"avg": {"field": "zzz"}},
          "p": {"percentiles": {"field": "zzz"}},
          "st": {"stats": {"field": "zzz"}}}),
    ]

    @pytest.mark.parametrize("docs,aggs", CASES)
    def test_pushdown_matches_legacy(self, store, docs, aggs):
        store.bulk("ev", [dict(d) for d in docs])
        response = store.search("ev", size=0, aggs=aggs)
        expected = run_aggregations(aggs, [dict(d) for d in docs])
        assert canon(response["aggregations"]) == canon(expected)
        stats = store.agg_stats()
        assert stats["pushdowns"] == 1 and stats["fallbacks"] == 0

    def test_sorted_bisect_path_matches_scalar(self, store):
        # monotone times take the bisect bucketiser ...
        docs = [{"time": t * t, "p": f"p{t % 3}"} for t in range(50)]
        store.bulk("ev", docs)
        aggs = {"h": {"date_histogram": {"field": "time",
                                         "fixed_interval": 100},
                      "aggs": {"by": {"terms": {"field": "p"}}}}}
        response = store.search("ev", size=0, aggs=aggs)
        assert store._index("ev").columns._columns["time"].num_sorted
        expected = naive_aggregate(store._index("ev"), None, aggs)
        assert canon(response["aggregations"]) == canon(expected)

    def test_filtered_query_pushdown(self, store):
        docs = [{"time": t, "p": f"p{t % 4}", "n": t % 5}
                for t in range(60)]
        store.bulk("ev", docs)
        query = {"range": {"time": {"gte": 10, "lt": 45}}}
        aggs = {"t": {"terms": {"field": "p"},
                      "aggs": {"s": {"sum": {"field": "n"}}}}}
        response = store.search("ev", query=query, size=0, aggs=aggs)
        expected = naive_aggregate(store._index("ev"), query, aggs)
        assert canon(response["aggregations"]) == canon(expected)
        assert store.agg_stats()["pushdowns"] == 1

    def test_unsupported_shape_falls_back_identically(self, store):
        store.bulk("ev", [{"f": 1}, {"f": 1.0}, {"f": True}, {"f": 1}])
        aggs = {"t": {"terms": {"field": "f"}}}
        response = store.search("ev", size=0, aggs=aggs)
        expected = run_aggregations(
            aggs, [{"f": 1}, {"f": 1.0}, {"f": True}, {"f": 1}])
        assert canon(response["aggregations"]) == canon(expected)
        stats = store.agg_stats()
        assert stats["fallbacks"] == 1 and stats["pushdowns"] == 0

    def test_pushdown_after_update_and_delete(self, store):
        for i in range(10):
            store.index_doc("ev", {"p": "a", "n": i}, doc_id=f"d{i}")
        aggs = {"t": {"terms": {"field": "p"},
                      "aggs": {"s": {"sum": {"field": "n"}}}}}
        store.search("ev", size=0, aggs=aggs)     # builds columns
        store.delete_by_query("ev", {"term": {"n": 3}})
        store.index_doc("ev", {"p": "b", "n": 100}, doc_id="d5")
        response = store.search("ev", size=0, aggs=aggs)
        expected = naive_aggregate(store._index("ev"), None, aggs)
        assert canon(response["aggregations"]) == canon(expected)


# ---------------------------------------------------------------------------
# Aggregation result cache


class TestAggCache:
    AGGS = {"t": {"terms": {"field": "p"}}}

    def test_repeat_refresh_hits_cache(self, store):
        store.bulk("ev", [{"p": "a"}, {"p": "b"}])
        first = store.search("ev", size=0, aggs=self.AGGS)
        second = store.search("ev", size=0, aggs=self.AGGS)
        assert canon(first) == canon(second)
        stats = store.agg_stats()
        assert stats["cache_hits"] == 1 and stats["cache_misses"] == 1
        assert stats["pushdowns"] == 1    # kernels ran once

    def test_mutation_invalidates(self, store):
        store.bulk("ev", [{"p": "a"}])
        store.search("ev", size=0, aggs=self.AGGS)
        store.index_doc("ev", {"p": "b"})
        response = store.search("ev", size=0, aggs=self.AGGS)
        keys = [b["key"]
                for b in response["aggregations"]["t"]["buckets"]]
        assert keys == ["a", "b"]
        assert store.agg_stats()["cache_hits"] == 0

    def test_delete_invalidates(self, store):
        store.bulk("ev", [{"p": "a"}, {"p": "b"}])
        store.search("ev", size=0, aggs=self.AGGS)
        store.delete_by_query("ev", {"term": {"p": "a"}})
        response = store.search("ev", size=0, aggs=self.AGGS)
        keys = [b["key"]
                for b in response["aggregations"]["t"]["buckets"]]
        assert keys == ["b"]

    def test_cached_response_is_isolated(self, store):
        store.bulk("ev", [{"p": "a"}])
        first = store.search("ev", size=0, aggs=self.AGGS)
        first["aggregations"]["t"]["buckets"][0]["key"] = "tampered"
        second = store.search("ev", size=0, aggs=self.AGGS)
        assert second["aggregations"]["t"]["buckets"][0]["key"] == "a"

    def test_non_json_aggs_key_via_repr(self, store):
        # ``default=repr`` keys cover spec dicts holding arbitrary
        # objects: identical objects hit, distinct objects cannot
        # collide (their reprs carry identity).
        store.bulk("ev", [{"p": "a"}])
        aggs = {"t": {"terms": {"field": "p", "size": 10,
                                "_marker": object()}}}
        first = store.search("ev", size=0, aggs=aggs)
        second = store.search("ev", size=0, aggs=aggs)
        assert canon(first) == canon(second)
        assert store.agg_stats()["cache_hits"] == 1

    def test_unserialisable_key_skips_cache(self, store):
        store.bulk("ev", [{"p": "a"}])
        aggs = {"t": {"terms": {"field": "p", "size": 10,
                                "_marker": {("tu", "ple"): 1}}}}
        store.search("ev", size=0, aggs=aggs)
        store.search("ev", size=0, aggs=aggs)
        stats = store.agg_stats()
        assert stats["cache_hits"] == 0 and stats["cache_misses"] == 0

    def test_legacy_agg_mode_skips_columns_and_cache(self):
        legacy = DocumentStore(agg_mode="legacy")
        legacy.bulk("ev", [{"p": "a"}])
        legacy.search("ev", size=0, aggs=self.AGGS)
        legacy.search("ev", size=0, aggs=self.AGGS)
        stats = legacy.agg_stats()
        assert stats["pushdowns"] == 0 and stats["fallbacks"] == 2
        assert stats["cache_misses"] == 0
        assert not legacy._index("ev").columns._columns

    def test_agg_mode_validated(self):
        with pytest.raises(StoreError):
            DocumentStore(agg_mode="mystery")


# ---------------------------------------------------------------------------
# size=0 never materialises hits


class TestNoMaterialization:
    AGGS = {"t": {"terms": {"field": "p"},
                  "aggs": {"s": {"sum": {"field": "n"}}}}}

    def _spy_scan(self, store, index):
        calls = []
        target = store._index(index)
        original = target.scan
        target.scan = lambda *a, **k: calls.append(1) or original(*a, **k)
        return calls

    def test_agg_only_search_never_scans(self, store):
        store.bulk("ev", [{"p": "a", "n": 1}, {"p": "b", "n": 2}])
        calls = self._spy_scan(store, "ev")
        response = store.search("ev", size=0, aggs=self.AGGS)
        assert response["hits"]["hits"] == []
        assert response["hits"]["total"]["value"] == 2
        assert not calls                  # no hit tuples, no _source list
        assert store.agg_stats()["pushdowns"] == 1

    def test_count_only_size0_never_scans(self, store):
        store.bulk("ev", [{"p": "a"}, {"p": "b"}])
        calls = self._spy_scan(store, "ev")
        response = store.search("ev", size=0,
                                query={"term": {"p": "a"}})
        assert response["hits"]["total"]["value"] == 1
        assert not calls

    def test_cached_repeat_never_scans(self, store):
        store.bulk("ev", [{"p": "a", "n": 1}])
        store.search("ev", size=0, aggs=self.AGGS)
        calls = self._spy_scan(store, "ev")
        store.search("ev", size=0, aggs=self.AGGS)
        assert not calls

    def test_fallback_still_scans_and_counts(self, store):
        store.bulk("ev", [{"p": 1}, {"p": 1.0}])
        calls = self._spy_scan(store, "ev")
        store.search("ev", size=0, aggs={"t": {"terms": {"field": "p"}}})
        assert calls                      # legacy path needs sources

    def test_size0_with_sort_keeps_legacy_validation(self, store):
        store.bulk("ev", [{"p": "a"}])
        with pytest.raises(StoreError):
            store.search("ev", size=0, sort=[42],
                         aggs={"t": {"terms": {"field": "p"}}})
