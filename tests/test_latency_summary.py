"""Tests for the latency distribution summary."""

import pytest

from repro.analysis.latency import latency_summary


def ops(latencies, op="read"):
    return [(i, latency, op, 1) for i, latency in enumerate(latencies)]


class TestLatencySummary:
    def test_basic_statistics(self):
        summary = latency_summary(ops(range(1, 101)))
        assert summary["count"] == 100
        assert summary["mean_ns"] == pytest.approx(50.5)
        assert summary["p50_ns"] == pytest.approx(50.5)
        assert summary["max_ns"] == 100
        assert summary["p99_ns"] <= summary["p999_ns"] <= summary["max_ns"]

    def test_op_filter(self):
        records = ops([10, 20], "read") + ops([1000], "update")
        assert latency_summary(records, op="read")["count"] == 2
        assert latency_summary(records, op="update")["max_ns"] == 1000

    def test_empty(self):
        assert latency_summary([]) == {"count": 0}
        assert latency_summary(ops([1]), op="missing") == {"count": 0}

    def test_percentiles_ordered(self):
        summary = latency_summary(ops([1, 1, 1, 1, 1, 1, 1, 1, 1, 10_000]))
        assert (summary["p50_ns"] <= summary["p90_ns"]
                <= summary["p99_ns"] <= summary["max_ns"])
