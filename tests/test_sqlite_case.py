"""Tests for the MiniSQLite application and its DIO case study."""

import pytest

from repro.analysis.detectors import (FailedSyscallDetector,
                                      ShortLivedFileDetector, run_detectors)
from repro.apps.sqlitedb import (JOURNAL_DELETE, JOURNAL_WAL, MiniSQLite,
                                 PAGE_SIZE)
from repro.experiments.sqlite_case import run_both_modes, run_sqlite_case
from repro.kernel import Kernel
from repro.sim import Environment


def make_db(mode, **kwargs):
    env = Environment()
    kernel = Kernel(env, ncpus=2)
    task = kernel.spawn_process("sqlite-app").threads[0]
    db = MiniSQLite(kernel, "/test.db", journal_mode=mode, **kwargs)
    return env, kernel, task, db


def run(env, gen):
    return env.run(until=env.process(gen))


class TestDeleteJournalMode:
    def test_journal_created_and_deleted_per_transaction(self):
        env, kernel, task, db = make_db(JOURNAL_DELETE)

        def scenario():
            yield from db.open(task)
            for i in range(5):
                yield from db.write_transaction(task, [i, i + 1])
                # Journal must be gone after each commit.
                assert kernel.vfs.lookup("/test.db-journal") is None
            yield from db.close(task)

        run(env, scenario())
        assert db.stats.journals_created == 5
        assert db.stats.journals_deleted == 5
        assert db.stats.transactions == 5

    def test_two_fsyncs_per_transaction(self):
        env, kernel, task, db = make_db(JOURNAL_DELETE)

        def scenario():
            yield from db.open(task)
            for i in range(4):
                yield from db.write_transaction(task, [i])
            yield from db.close(task)

        run(env, scenario())
        assert db.stats.fsyncs == 8

    def test_pages_written_to_db_file(self):
        env, kernel, task, db = make_db(JOURNAL_DELETE)

        def scenario():
            yield from db.open(task)
            yield from db.write_transaction(task, [0, 2])
            data = yield from db.read_page(task, 2)
            assert data == b"\x42" * PAGE_SIZE
            yield from db.close(task)

        run(env, scenario())
        assert kernel.vfs.resolve("/test.db").size >= 3 * PAGE_SIZE

    def test_empty_transaction_is_noop(self):
        env, kernel, task, db = make_db(JOURNAL_DELETE)

        def scenario():
            yield from db.open(task)
            yield from db.write_transaction(task, [])
            yield from db.close(task)

        run(env, scenario())
        assert db.stats.transactions == 0
        assert db.stats.fsyncs == 0


class TestWALMode:
    def test_one_fsync_per_transaction_until_checkpoint(self):
        env, kernel, task, db = make_db(JOURNAL_WAL,
                                        wal_checkpoint_pages=1000)

        def scenario():
            yield from db.open(task)
            for i in range(4):
                yield from db.write_transaction(task, [i])

        run(env, scenario())
        assert db.stats.fsyncs == 4
        assert db.stats.journals_created == 0

    def test_checkpoint_truncates_wal(self):
        env, kernel, task, db = make_db(JOURNAL_WAL, wal_checkpoint_pages=4)

        def scenario():
            yield from db.open(task)
            for i in range(6):
                yield from db.write_transaction(task, [i])
            yield from db.close(task)

        run(env, scenario())
        assert db.stats.checkpoints >= 1
        assert kernel.vfs.resolve("/test.db-wal").size == 0

    def test_close_checkpoints_pending_frames(self):
        env, kernel, task, db = make_db(JOURNAL_WAL,
                                        wal_checkpoint_pages=1000)

        def scenario():
            yield from db.open(task)
            yield from db.write_transaction(task, [1, 2, 3])
            yield from db.close(task)

        run(env, scenario())
        assert db.stats.checkpoints == 1

    def test_checkpoint_in_delete_mode_rejected(self):
        env, kernel, task, db = make_db(JOURNAL_DELETE)

        def scenario():
            yield from db.open(task)
            with pytest.raises(RuntimeError):
                yield from db.checkpoint(task)

        run(env, scenario())

    def test_unknown_mode_rejected(self):
        env = Environment()
        kernel = Kernel(env)
        with pytest.raises(ValueError):
            MiniSQLite(kernel, "/x.db", journal_mode="truncate")


@pytest.fixture(scope="module")
def case_study():
    return run_both_modes(transactions=60)


class TestCaseStudy:
    def test_wal_commits_faster(self, case_study):
        delete = case_study[JOURNAL_DELETE]
        wal = case_study[JOURNAL_WAL]
        assert wal.mean_commit_ns < delete.mean_commit_ns * 0.7

    def test_detectors_flag_journal_churn_in_delete_mode(self, case_study):
        delete = case_study[JOURNAL_DELETE]
        findings = ShortLivedFileDetector(min_bytes=PAGE_SIZE,
                                          min_files=1).run(
            delete.store, "dio_trace", delete.session)
        assert findings, "expected short-lived journal churn finding"

    def test_wal_mode_clean_of_churn(self, case_study):
        wal = case_study[JOURNAL_WAL]
        findings = ShortLivedFileDetector(min_bytes=PAGE_SIZE,
                                          min_files=1).run(
            wal.store, "dio_trace", wal.session)
        assert findings == []

    def test_trace_shows_journal_lifecycle(self, case_study):
        delete = case_study[JOURNAL_DELETE]
        unlinks = delete.store.count("dio_trace", {"bool": {"must": [
            {"term": {"syscall": "unlink"}},
            {"term": {"session": delete.session}},
        ]}})
        assert unlinks == 60

    def test_fsync_count_visible_in_trace(self, case_study):
        delete = case_study[JOURNAL_DELETE]
        wal = case_study[JOURNAL_WAL]

        def fsyncs(case):
            return case.store.count("dio_trace", {"bool": {"must": [
                {"term": {"syscall": "fsync"}},
                {"term": {"session": case.session}},
            ]}})

        assert fsyncs(delete) > fsyncs(wal) * 1.5

    def test_no_critical_findings_either_mode(self, case_study):
        for case in case_study.values():
            findings = run_detectors(case.store, session=case.session)
            assert all(f.severity != "critical" for f in findings)
