"""Unit tests for the telemetry subsystem (registry, spans, exporters)."""

import json
import pathlib

import pytest

from repro.sim import Environment
from repro.telemetry import (DEFAULT_BUCKETS, Histogram, MetricsRegistry,
                             Telemetry, TelemetryError, parse_prometheus,
                             registry_as_dict, to_json, to_prometheus)

GOLDEN = pathlib.Path(__file__).parent / "data" / "telemetry_golden.prom"


def sample_registry() -> MetricsRegistry:
    """A registry with one metric of each kind and fixed values."""
    registry = MetricsRegistry()
    events = registry.counter("dio_test_events_total", "Events seen.",
                              labelnames=("stage",))
    events.labels(stage="ring").inc(3)
    events.labels(stage="shipper").inc(2)
    registry.gauge("dio_test_queue_depth", "Queue depth.").set(7)
    latency = registry.histogram("dio_test_latency_ns", "Latency.",
                                 buckets=(0, 10, 100, 1000))
    for value in (0, 5, 50, 500, 5000):
        latency.observe(value)
    return registry


class TestCounters:
    def test_unlabeled_counter_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counters_only_go_up(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(TelemetryError):
            counter.inc(-1)

    def test_callback_backed_counter_reads_live(self):
        registry = MetricsRegistry()
        box = {"n": 0}
        counter = registry.counter("c_total")
        counter.set_function(lambda: box["n"])
        box["n"] = 42
        assert counter.value == 42
        with pytest.raises(TelemetryError):
            counter.inc()

    def test_labels_create_independent_children(self):
        registry = MetricsRegistry()
        family = registry.counter("c_total", labelnames=("stage", "cpu"))
        family.labels(stage="ring", cpu="0").inc(2)
        family.labels("ring", "1").inc(5)
        assert family.labels(stage="ring", cpu="0").value == 2
        assert family.labels(stage="ring", cpu="1").value == 5

    def test_wrong_label_names_rejected(self):
        family = MetricsRegistry().counter("c_total", labelnames=("stage",))
        with pytest.raises(TelemetryError):
            family.labels(nope="x")
        with pytest.raises(TelemetryError):
            family.labels("a", "b")

    def test_unlabeled_access_on_labeled_family_rejected(self):
        family = MetricsRegistry().counter("c_total", labelnames=("stage",))
        with pytest.raises(TelemetryError):
            family.inc()

    def test_reregistration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "help", labelnames=("a",))
        second = registry.counter("c_total", "help", labelnames=("a",))
        assert first is second

    def test_conflicting_reregistration_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(TelemetryError):
            registry.gauge("m")
        with pytest.raises(TelemetryError):
            registry.counter("m", labelnames=("x",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(TelemetryError):
            registry.counter("0bad")
        with pytest.raises(TelemetryError):
            registry.counter("ok_total", labelnames=("bad-label",))


class TestGauges:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12

    def test_registry_value_reads_scalar(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(3)
        assert registry.value("g") == 3
        assert registry.value("missing", default=-1) == -1


class TestHistograms:
    def test_bucket_boundaries_are_inclusive_upper_bounds(self):
        h = Histogram(buckets=(0, 10, 100))
        for value in (0, 10, 11, 100, 101):
            h.observe(value)
        # le=0: {0}; le=10: {10}; le=100: {11, 100}; +Inf: {101}
        assert h.bucket_counts() == [1, 1, 2, 1]
        assert h.cumulative_counts() == [1, 2, 4, 5]
        assert h.count == 5
        assert h.sum == 222

    def test_quantile_interpolates_within_bucket(self):
        h = Histogram(buckets=(0, 100))
        for _ in range(10):
            h.observe(50)
        # All mass in (0, 100]; rank q*10 interpolates linearly.
        assert h.quantile(0.5) == pytest.approx(50.0)
        assert h.quantile(1.0) == pytest.approx(100.0)

    def test_quantile_of_zeros_is_exact(self):
        h = Histogram()
        for _ in range(5):
            h.observe(0)
        assert h.quantile(0.99) == 0.0

    def test_quantile_overflow_clamps_to_last_bound(self):
        h = Histogram(buckets=(0, 10))
        h.observe(1_000_000)
        assert h.quantile(0.5) == 10.0

    def test_quantile_without_observations_is_none(self):
        assert Histogram().quantile(0.5) is None

    def test_rejects_bad_input(self):
        with pytest.raises(TelemetryError):
            Histogram(buckets=())
        with pytest.raises(TelemetryError):
            Histogram(buckets=(10, 5))
        with pytest.raises(TelemetryError):
            Histogram().observe(-1)
        with pytest.raises(TelemetryError):
            Histogram().quantile(1.5)

    def test_default_buckets_span_ns_to_seconds(self):
        assert DEFAULT_BUCKETS[0] == 0
        assert DEFAULT_BUCKETS[-1] == 10_000_000_000


class TestSpans:
    def test_span_durations_use_the_simulated_clock(self):
        env = Environment()
        telemetry = Telemetry(clock=lambda: env.now)

        def proc():
            with telemetry.span("outer"):
                yield env.timeout(100)
                with telemetry.span("inner"):
                    yield env.timeout(50)
                yield env.timeout(25)

        env.run(until=env.process(proc()))
        inner, outer = telemetry.spans.finished
        assert inner.name == "inner" and outer.name == "outer"
        assert inner.duration_ns == 50
        assert outer.duration_ns == 175

    def test_nesting_records_parent_and_depth(self):
        env = Environment()
        telemetry = Telemetry(clock=lambda: env.now)
        with telemetry.span("a"):
            with telemetry.span("b"):
                with telemetry.span("c"):
                    pass
        by_name = {s.name: s for s in telemetry.spans.finished}
        assert by_name["a"].parent is None and by_name["a"].depth == 0
        assert by_name["b"].parent == "a" and by_name["b"].depth == 1
        assert by_name["c"].parent == "b" and by_name["c"].depth == 2

    def test_spans_feed_the_duration_histogram(self):
        env = Environment()
        telemetry = Telemetry(clock=lambda: env.now)

        def proc():
            for _ in range(4):
                with telemetry.span("stage"):
                    yield env.timeout(2_000)

        env.run(until=env.process(proc()))
        # 2 us lands in the (1 us, 10 us] bucket; the estimate stays
        # within the owning bucket's bounds.
        assert 1_000 < telemetry.spans.quantile("stage", 0.5) <= 10_000
        family = telemetry.registry.get("dio_span_duration_ns")
        assert family.labels(span="stage").count == 4

    def test_disabled_telemetry_records_nothing(self):
        telemetry = Telemetry(enabled=False)
        with telemetry.span("stage"):
            pass
        assert telemetry.spans.finished == []
        assert telemetry.registry.get("dio_span_duration_ns") is None

    def test_finished_spans_are_bounded(self):
        from repro.telemetry import SpanTracer

        tracer = SpanTracer(clock=lambda: 0, max_finished=2)
        for _ in range(5):
            with tracer.span("s"):
                pass
        assert len(tracer.finished) == 2
        assert tracer.dropped == 3

    def test_span_exits_cleanly_on_exception(self):
        telemetry = Telemetry()
        with pytest.raises(RuntimeError):
            with telemetry.span("failing"):
                raise RuntimeError("boom")
        assert telemetry.spans.finished[0].name == "failing"
        assert telemetry.spans._stack == []


class TestExporters:
    def test_prometheus_matches_golden_file(self):
        rendered = to_prometheus(sample_registry())
        assert rendered == GOLDEN.read_text()

    def test_prometheus_and_json_roundtrip_same_state(self):
        registry = sample_registry()
        parsed = parse_prometheus(to_prometheus(registry))
        data = json.loads(to_json(registry))
        for metric in data["metrics"]:
            name = metric["name"]
            for sample in metric["samples"]:
                labels = tuple(sorted(sample["labels"].items()))
                if metric["type"] == "histogram":
                    assert parsed[name + "_count"][labels] == sample["count"]
                    assert parsed[name + "_sum"][labels] == sample["sum"]
                    for bucket in sample["buckets"]:
                        le = ("+Inf" if bucket["le"] == "+Inf"
                              else str(bucket["le"]))
                        key = tuple(sorted([*sample["labels"].items(),
                                            ("le", le)]))
                        assert (parsed[name + "_bucket"][key]
                                == bucket["count"])
                else:
                    assert parsed[name][labels] == sample["value"]

    def test_json_is_deterministic(self):
        assert to_json(sample_registry()) == to_json(sample_registry())

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labelnames=("path",)).labels(
            path='/a"b\\c\n').inc()
        text = to_prometheus(registry)
        parsed = parse_prometheus(text)
        assert parsed["c_total"][(("path", '/a"b\\c\n'),)] == 1

    def test_empty_registry_renders_empty(self):
        assert to_prometheus(MetricsRegistry()) == ""
        assert registry_as_dict(MetricsRegistry()) == {"metrics": []}

    def test_callback_gauges_render_live_values(self):
        registry = MetricsRegistry()
        box = {"n": 1}
        registry.gauge("g").set_function(lambda: box["n"])
        assert "g 1" in to_prometheus(registry)
        box["n"] = 9
        assert "g 9" in to_prometheus(registry)
