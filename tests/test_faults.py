"""Unit tests for the deterministic fault-injection layer."""

import pytest

from repro.backend import DocumentStore
from repro.faults import (DEFAULT_TIMEOUT_NS, FAULT_KINDS, FaultError,
                          FaultPlan, FaultWindow, FaultyStore, InjectedFault)
from repro.telemetry import MetricsRegistry


class TestFaultWindow:
    def test_basic_window(self):
        window = FaultWindow(100, 200)
        assert window.kind == "error"
        assert window.duration_ns == 100
        assert window.active_at(100)
        assert window.active_at(199)
        assert not window.active_at(200)
        assert not window.active_at(99)

    def test_validation(self):
        with pytest.raises(FaultError):
            FaultWindow(100, 100)
        with pytest.raises(FaultError):
            FaultWindow(-1, 100)
        with pytest.raises(FaultError):
            FaultWindow(0, 100, kind="meteor-strike")
        with pytest.raises(FaultError):
            FaultWindow(0, 100, kind="slowdown", slowdown_factor=1.0)
        with pytest.raises(FaultError):
            FaultWindow(0, 100, kind="timeout", timeout_ns=-1)

    def test_as_dict_includes_kind_params(self):
        assert "timeout_ns" in FaultWindow(0, 1, "timeout").as_dict()
        assert "slowdown_factor" in FaultWindow(0, 1, "slowdown").as_dict()
        assert "timeout_ns" not in FaultWindow(0, 1, "error").as_dict()


class TestFaultPlan:
    def test_overlap_rejected(self):
        with pytest.raises(FaultError):
            FaultPlan([FaultWindow(0, 100), FaultWindow(50, 150)])

    def test_windows_sorted(self):
        plan = FaultPlan([FaultWindow(200, 300), FaultWindow(0, 100)])
        assert [w.start_ns for w in plan.windows] == [0, 200]

    def test_fault_at(self):
        plan = FaultPlan.scripted([(100, 200), (300, 400, "timeout")])
        assert plan.fault_at(50) is None
        assert plan.fault_at(150).kind == "error"
        assert plan.fault_at(250) is None
        assert plan.fault_at(350).kind == "timeout"
        assert plan.fault_at(400) is None

    def test_next_change_after(self):
        plan = FaultPlan.scripted([(100, 200)])
        assert plan.next_change_after(0) == 100
        assert plan.next_change_after(150) == 200
        assert plan.next_change_after(500) is None

    def test_outages_constructor(self):
        plan = FaultPlan.outages([100, 500], duration_ns=50, kind="timeout")
        assert len(plan) == 2
        assert plan.total_outage_ns == 100
        assert all(w.kind == "timeout" for w in plan.windows)

    def test_seeded_is_deterministic(self):
        a = FaultPlan.seeded(7, horizon_ns=10**9)
        b = FaultPlan.seeded(7, horizon_ns=10**9)
        assert a.as_dict() == b.as_dict()
        assert len(a) == 3

    def test_seeded_different_seeds_differ(self):
        a = FaultPlan.seeded(1, horizon_ns=10**9)
        b = FaultPlan.seeded(2, horizon_ns=10**9)
        assert a.as_dict() != b.as_dict()

    def test_seeded_windows_never_overlap(self):
        for seed in range(25):
            plan = FaultPlan.seeded(seed, horizon_ns=10**9, outages=5)
            for earlier, later in zip(plan.windows, plan.windows[1:]):
                assert earlier.end_ns <= later.start_ns

    def test_empty_plan(self):
        plan = FaultPlan()
        assert len(plan) == 0
        assert plan.fault_at(0) is None
        assert plan.last_end_ns == 0
        assert plan.total_outage_ns == 0


class TestFaultyStore:
    def _store(self, plan, now):
        inner = DocumentStore()
        return inner, FaultyStore(inner, plan, clock=lambda: now[0])

    def test_clean_passthrough(self):
        now = [0]
        inner, faulty = self._store(FaultPlan.scripted([(100, 200)]), now)
        assert faulty.bulk("idx", [{"a": 1}]) == 1
        assert inner.count("idx") == 1
        assert faulty.faults_injected == 0

    def test_error_window_fails_before_mutation(self):
        now = [150]
        inner, faulty = self._store(FaultPlan.scripted([(100, 200)]), now)
        with pytest.raises(InjectedFault) as excinfo:
            faulty.bulk("idx", [{"a": 1}])
        assert excinfo.value.kind == "error"
        assert excinfo.value.cost_ns == 0
        assert inner.documents_indexed == 0  # fails before mutation
        assert faulty.injected["error"] == 1

    def test_timeout_window_carries_cost(self):
        now = [150]
        _, faulty = self._store(
            FaultPlan.scripted([(100, 200, "timeout")]), now)
        with pytest.raises(InjectedFault) as excinfo:
            faulty.bulk("idx", [{"a": 1}])
        assert excinfo.value.cost_ns == DEFAULT_TIMEOUT_NS
        assert isinstance(excinfo.value, ConnectionError)

    def test_slowdown_succeeds_with_penalty(self):
        now = [150]
        plan = FaultPlan([FaultWindow(100, 200, "slowdown",
                                      slowdown_factor=4.0)])
        inner, faulty = self._store(plan, now)
        assert faulty.bulk("idx", [{"a": 1}], nominal_ns=1000) == 1
        assert inner.count("idx") == 1
        assert faulty.consume_penalty_ns() == 3000
        assert faulty.consume_penalty_ns() == 0  # claimed once
        assert faulty.penalty_ns_total == 3000

    def test_index_doc_intercepted(self):
        now = [150]
        inner, faulty = self._store(FaultPlan.scripted([(100, 200)]), now)
        with pytest.raises(InjectedFault):
            faulty.index_doc("idx", {"a": 1})
        now[0] = 300
        faulty.index_doc("idx", {"a": 1})
        assert inner.count("idx") == 1

    def test_unprotected_methods_delegate(self):
        now = [150]
        inner, faulty = self._store(FaultPlan.scripted([(100, 200)]), now)
        doc_id = inner.index_doc("idx", {"a": 1})
        # Reads are never faulted; update_docs is outside the default
        # protect set.
        assert faulty.count("idx") == 1
        hits = faulty.search("idx")["hits"]["hits"]
        assert len(hits) == 1
        assert faulty.update_docs("idx", [doc_id], {"b": 2}) == 1

    def test_protect_requires_real_methods(self):
        with pytest.raises(FaultError):
            FaultyStore(DocumentStore(), FaultPlan(), clock=lambda: 0,
                        protect=("no_such_method",))

    def test_telemetry_counters(self):
        now = [150]
        _, faulty = self._store(FaultPlan.scripted([(100, 200)]), now)
        registry = MetricsRegistry()
        faulty.bind_telemetry(registry)
        with pytest.raises(InjectedFault):
            faulty.bulk("idx", [{}])
        assert registry.value("dio_faults_injected_total",
                              {"kind": "error"}) == 1
        assert registry.value("dio_faults_window_active") == 1
        now[0] = 500
        assert registry.value("dio_faults_window_active") == 0
        assert set(FAULT_KINDS) == set(faulty.injected)
