"""Property-based tests: simulation engine and ring buffer invariants."""

from hypothesis import given, settings, strategies as st

from repro.ebpf import PerCPURingBuffer
from repro.sim import Environment, Store


class TestEngineProperties:
    @given(delays=st.lists(st.integers(min_value=0, max_value=10_000),
                           min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_processes_complete_in_delay_order(self, delays):
        env = Environment()
        completions = []

        def proc(index, delay):
            yield env.timeout(delay)
            completions.append((env.now, index))

        for index, delay in enumerate(delays):
            env.process(proc(index, delay))
        env.run()

        times = [t for t, _ in completions]
        assert times == sorted(times)
        # Ties resolve in creation order (determinism).
        expected = sorted(range(len(delays)), key=lambda i: (delays[i], i))
        assert [i for _, i in completions] == expected

    @given(delays=st.lists(st.integers(min_value=0, max_value=1000),
                           min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_clock_ends_at_max_delay(self, delays):
        env = Environment()
        for delay in delays:
            env.process(iter_timeout(env, delay))
        env.run()
        assert env.now == max(delays)

    @given(st.data())
    @settings(max_examples=50, deadline=None)
    def test_store_is_fifo_under_any_interleaving(self, data):
        env = Environment()
        store = Store(env)
        n = data.draw(st.integers(min_value=1, max_value=20))
        put_delays = data.draw(st.lists(
            st.integers(min_value=0, max_value=100), min_size=n, max_size=n))
        received = []

        def producer(item, delay):
            yield env.timeout(delay)
            yield store.put(item)

        def consumer():
            for _ in range(n):
                item = yield store.get()
                received.append(item)

        # Items are produced at arbitrary times but numbered by
        # production order; FIFO must deliver in that order.
        schedule = sorted(enumerate(put_delays), key=lambda pair: pair[1])
        for order, (_, delay) in enumerate(schedule):
            env.process(producer(order, delay))
        env.process(consumer())
        env.run()
        assert received == sorted(received)


def iter_timeout(env, delay):
    yield env.timeout(delay)


class TestRingBufferProperties:
    @given(st.data())
    @settings(max_examples=100, deadline=None)
    def test_accounting_invariants(self, data):
        ncpus = data.draw(st.integers(min_value=1, max_value=4))
        capacity = data.draw(st.integers(min_value=64, max_value=2048))
        rb = PerCPURingBuffer(ncpus, capacity)
        offers = data.draw(st.lists(
            st.tuples(st.integers(min_value=0, max_value=ncpus - 1),
                      st.integers(min_value=1, max_value=512)),
            max_size=60))
        accepted = 0
        for cpu, size in offers:
            if rb.produce(cpu, (cpu, size), size):
                accepted += 1
        # Conservation: offered = produced + dropped.
        assert rb.stats.produced == accepted
        assert rb.stats.produced + rb.stats.dropped == len(offers)
        # Capacity never exceeded on any CPU.
        for cpu in range(ncpus):
            assert rb.fill_bytes(cpu) <= capacity
        # Everything accepted is eventually consumable, FIFO per CPU.
        drained = rb.consume_all()
        assert len(drained) == accepted
        assert rb.pending_records() == 0

    @given(sizes=st.lists(st.integers(min_value=1, max_value=100),
                          min_size=1, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_fifo_and_old_records_never_lost(self, sizes):
        """Overflow drops the NEW record; accepted ones stay in order."""
        rb = PerCPURingBuffer(1, 256)
        accepted_ids = []
        for i, size in enumerate(sizes):
            if rb.produce(0, i, size):
                accepted_ids.append(i)
        assert rb.consume(0) == accepted_ids
        assert accepted_ids == sorted(accepted_ids)
