"""Tests for trace replay against a fresh kernel."""

import pytest

from repro.backend import DocumentStore
from repro.kernel import Kernel, O_CREAT, O_RDWR, SEEK_SET
from repro.sim import Environment
from repro.tracer import DIOTracer, TracerConfig
from repro.tracer.replay import TraceReplayer


def capture_session(workload_factory, session="capture"):
    """Trace a workload; returns (store, kernel) after completion."""
    env = Environment()
    kernel = Kernel(env, ncpus=2)
    store = DocumentStore()
    tracer = DIOTracer(env, kernel, store,
                       TracerConfig(session_name=session))
    task = kernel.spawn_process("origapp").threads[0]
    tracer.attach()

    def main():
        yield from workload_factory(kernel, task)
        yield from tracer.shutdown()

    env.run(until=env.process(main()))
    return store, kernel


def rich_workload(kernel, task):
    fd = yield from kernel.syscall(task, "open", path="/data.bin",
                                   flags=O_CREAT | O_RDWR)
    yield from kernel.syscall(task, "write", fd=fd, data=b"a" * 1000)
    yield from kernel.syscall(task, "pwrite64", fd=fd, data=b"b" * 500,
                              offset=2000)
    yield from kernel.syscall(task, "lseek", fd=fd, offset=0,
                              whence=SEEK_SET)
    buf = bytearray(800)
    yield from kernel.syscall(task, "read", fd=fd, buf=buf)
    st = {}
    yield from kernel.syscall(task, "fstat", fd=fd, statbuf=st)
    yield from kernel.syscall(task, "fsync", fd=fd)
    yield from kernel.syscall(task, "close", fd=fd)
    yield from kernel.syscall(task, "mkdir", path="/dir")
    yield from kernel.syscall(task, "rename", oldpath="/data.bin",
                              newpath="/dir/data.bin")
    yield from kernel.syscall(task, "stat", path="/dir/data.bin",
                              statbuf={})


def replay_session(store, session="capture", timed=False):
    env = Environment()
    kernel = Kernel(env, ncpus=2)
    replayer = TraceReplayer.from_session(store, kernel, session,
                                          timed=timed)
    report = env.run(until=env.process(replayer.run()))
    return kernel, report


class TestReplayFidelity:
    def test_all_events_replayed_with_matching_returns(self):
        store, _ = capture_session(rich_workload)
        kernel, report = replay_session(store)
        assert report.skipped == 0
        assert report.issued == 11
        assert report.fidelity == 1.0

    def test_filesystem_state_reconstructed(self):
        store, original_kernel = capture_session(rich_workload)
        kernel, _ = replay_session(store)
        replayed = kernel.vfs.resolve("/dir/data.bin")
        original = original_kernel.vfs.resolve("/dir/data.bin")
        assert replayed.size == original.size

    def test_disk_traffic_reproduced(self):
        store, original_kernel = capture_session(rich_workload)
        kernel, _ = replay_session(store)
        original_written = original_kernel.device.stats.bytes_written
        replayed_written = kernel.device.stats.bytes_written
        assert replayed_written == pytest.approx(original_written, rel=0.2)

    def test_fd_translation_tolerates_different_numbers(self):
        """Occupy low fds in the replay kernel: recorded fd 3 must map."""
        store, _ = capture_session(rich_workload)
        env = Environment()
        kernel = Kernel(env, ncpus=2)
        squatter = kernel.spawn_process("squatter").threads[0]

        def main():
            for i in range(5):
                yield from kernel.syscall(squatter, "open",
                                          path=f"/squat{i}",
                                          flags=O_CREAT | O_RDWR)
            replayer = TraceReplayer.from_session(store, kernel, "capture")
            report = yield from replayer.run()
            return report

        report = env.run(until=env.process(main()))
        assert report.fidelity == 1.0


class TestReplaySemantics:
    def test_threads_and_processes_recreated(self):
        def multi_thread(kernel, task):
            other = kernel.spawn_thread(task.process, comm="worker")
            yield from kernel.syscall(task, "creat", path="/a")
            yield from kernel.syscall(other, "creat", path="/b")

        store, _ = capture_session(multi_thread)
        kernel, report = replay_session(store)
        assert report.issued == 2
        comms = {t.comm for t in kernel.processes.tasks.values()}
        assert {"origapp", "worker"} <= comms

    def test_unknown_fd_events_skipped(self):
        """Events on fds opened before tracing started are skipped."""
        env = Environment()
        kernel = Kernel(env, ncpus=2)
        store = DocumentStore()
        tracer = DIOTracer(env, kernel, store,
                           TracerConfig(session_name="late"))
        task = kernel.spawn_process("app").threads[0]

        def main():
            fd = yield from kernel.syscall(task, "open", path="/pre",
                                           flags=O_CREAT | O_RDWR)
            tracer.attach()
            yield from kernel.syscall(task, "write", fd=fd, data=b"x")
            yield from kernel.syscall(task, "creat", path="/post")
            yield from tracer.shutdown()

        env.run(until=env.process(main()))
        _, report = replay_session(store, session="late")
        assert report.skipped == 1      # the write on the unknown fd
        assert report.issued == 1       # the creat

    def test_timed_replay_preserves_gaps(self):
        def gapped(kernel, task):
            yield from kernel.syscall(task, "creat", path="/a")
            yield kernel.env.timeout(500_000_000)
            yield from kernel.syscall(task, "creat", path="/b")

        store, _ = capture_session(gapped)
        _, fast_report = replay_session(store)
        _, timed_report = replay_session(store, timed=True)
        assert timed_report.duration_ns >= 500_000_000
        assert fast_report.duration_ns < 500_000_000

    def test_missing_session_rejected(self):
        store = DocumentStore()
        store.ensure_index("dio_trace")
        env = Environment()
        kernel = Kernel(env)
        with pytest.raises(ValueError):
            TraceReplayer.from_session(store, kernel, "ghost")


class TestReplayDeterminism:
    def test_replay_twice_identical(self):
        store, _ = capture_session(rich_workload)
        kernel_a, report_a = replay_session(store)
        kernel_b, report_b = replay_session(store)
        assert report_a.issued == report_b.issued
        assert report_a.fidelity == report_b.fidelity
        assert (kernel_a.device.stats.bytes_written
                == kernel_b.device.stats.bytes_written)
