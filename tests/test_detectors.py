"""Tests for the automated misbehaviour detector library."""

import pytest

from repro.analysis.detectors import (ContentionDetector, FailedSyscallDetector,
                                      FdLeakDetector, Finding,
                                      RandomAccessDetector,
                                      ShortLivedFileDetector,
                                      SmallIODetector, StaleOffsetDetector,
                                      run_detectors)
from repro.apps.fluentbit import FLUENTBIT_BUGGY, FLUENTBIT_FIXED
from repro.backend import DocumentStore
from repro.experiments import run_fluentbit_case

MS = 1_000_000


@pytest.fixture()
def store():
    return DocumentStore()


class TestStaleOffsetDetector:
    def test_fires_on_buggy_fluentbit(self):
        case = run_fluentbit_case(FLUENTBIT_BUGGY)
        findings = StaleOffsetDetector().run(case.store, "dio_trace")
        assert len(findings) == 1
        assert findings[0].severity == "critical"
        assert "offset 26" in findings[0].title

    def test_silent_on_fixed_fluentbit(self):
        case = run_fluentbit_case(FLUENTBIT_FIXED)
        assert StaleOffsetDetector().run(case.store, "dio_trace") == []


class TestFailedSyscallDetector:
    def test_clusters_by_syscall_and_errno(self, store):
        store.bulk("t", [{"syscall": "open", "ret": -2, "time": i,
                          "proc_name": "a", "pid": 1, "tid": 1}
                         for i in range(5)]
                   + [{"syscall": "write", "ret": -9, "time": 9,
                       "proc_name": "a", "pid": 1, "tid": 1}])
        findings = FailedSyscallDetector(min_failures=3).run(store, "t")
        assert len(findings) == 1
        assert "open failed with ENOENT 5 times" in findings[0].title

    def test_threshold_filters_noise(self, store):
        store.bulk("t", [{"syscall": "open", "ret": -2, "time": 1,
                          "proc_name": "a", "pid": 1, "tid": 1}])
        assert FailedSyscallDetector(min_failures=3).run(store, "t") == []


class TestFdLeakDetector:
    def test_detects_unbalanced_opens(self, store):
        docs = [{"syscall": "openat", "ret": 3 + i, "time": i,
                 "proc_name": "leaky", "pid": 9, "tid": 9,
                 "args": {"path": f"/f{i}"}} for i in range(6)]
        docs.append({"syscall": "close", "ret": 0, "time": 99,
                     "proc_name": "leaky", "pid": 9, "tid": 9,
                     "args": {"fd": 3}})
        store.bulk("t", docs)
        findings = FdLeakDetector(min_unclosed=4).run(store, "t")
        assert len(findings) == 1
        assert "5 descriptors left open" in findings[0].title

    def test_balanced_process_clean(self, store):
        docs = []
        for i in range(6):
            docs.append({"syscall": "open", "ret": 3, "time": 2 * i,
                         "proc_name": "ok", "pid": 1, "tid": 1,
                         "args": {"path": "/f"}})
            docs.append({"syscall": "close", "ret": 0, "time": 2 * i + 1,
                         "proc_name": "ok", "pid": 1, "tid": 1,
                         "args": {"fd": 3}})
        store.bulk("t", docs)
        assert FdLeakDetector(min_unclosed=4).run(store, "t") == []

    def test_failed_opens_not_counted(self, store):
        store.bulk("t", [{"syscall": "open", "ret": -2, "time": i,
                          "proc_name": "x", "pid": 1, "tid": 1,
                          "args": {"path": "/nope"}} for i in range(10)])
        assert FdLeakDetector(min_unclosed=4).run(store, "t") == []


class TestPatternDetectors:
    def seed_small_random(self, store, n=30):
        docs = [{"syscall": "openat", "ret": 3, "time": 0,
                 "proc_name": "p", "pid": 1, "tid": 1,
                 "file_tag": "7 5 0", "args": {"path": "/db"}}]
        for i in range(n):
            docs.append({"syscall": "pread64", "ret": 100,
                         "time": 1 + i, "proc_name": "p", "pid": 1,
                         "tid": 1, "file_tag": "7 5 0",
                         "offset": (i * 7919) % 100_000,
                         "file_path": "/db"})
        store.bulk("t", docs)

    def test_small_io_detector(self, store):
        self.seed_small_random(store)
        findings = SmallIODetector(min_requests=16).run(store, "t")
        assert len(findings) == 1
        assert "consider batching" in findings[0].title

    def test_random_access_detector(self, store):
        self.seed_small_random(store)
        findings = RandomAccessDetector(min_reads=16).run(store, "t")
        assert len(findings) == 1
        assert "sequential" in findings[0].title


class TestShortLivedFileDetector:
    def test_detects_write_churn(self, store):
        docs = []
        for i in range(4):
            path = f"/tmp/spill{i}"
            docs.append({"syscall": "openat", "ret": 3, "time": 10 * i,
                         "proc_name": "p", "pid": 1, "tid": 1,
                         "file_tag": f"7 {i + 3} 0", "args": {"path": path}})
            docs.append({"syscall": "write", "ret": 100_000,
                         "time": 10 * i + 1, "proc_name": "p", "pid": 1,
                         "tid": 1, "file_tag": f"7 {i + 3} 0",
                         "offset": 0, "file_path": path})
            docs.append({"syscall": "unlink", "ret": 0, "time": 10 * i + 2,
                         "proc_name": "p", "pid": 1, "tid": 1,
                         "args": {"path": path}})
        store.bulk("t", docs)
        findings = ShortLivedFileDetector(min_bytes=50_000,
                                          min_files=3).run(store, "t")
        assert len(findings) == 1
        assert "4 files" in findings[0].title

    def test_quiet_without_unlinks(self, store):
        store.bulk("t", [{"syscall": "write", "ret": 100_000, "time": 1,
                          "proc_name": "p", "pid": 1, "tid": 1,
                          "file_tag": "7 3 0", "offset": 0,
                          "file_path": "/keep"}])
        assert ShortLivedFileDetector().run(store, "t") == []


class TestContentionDetectorWrapper:
    def test_fires_on_contended_trace(self, store):
        docs = []
        for i in range(40):
            docs.append({"syscall": "read", "proc_name": "db_bench",
                         "tid": 100 + (i % 8), "pid": 1,
                         "time": i * 200_000, "ret": 512})
        for t in range(5):
            for i in range(10):
                docs.append({"syscall": "pread64",
                             "proc_name": f"rocksdb:low{t}", "pid": 1,
                             "tid": 200 + t, "time": 10 * MS + i * 500_000,
                             "ret": 262144})
        for i in range(4):
            docs.append({"syscall": "read", "proc_name": "db_bench",
                         "tid": 100 + i, "pid": 1, "time": 10 * MS + i * MS,
                         "ret": 512})
        store.bulk("t", docs)
        findings = ContentionDetector(window_ns=10 * MS).run(store, "t")
        assert len(findings) == 1
        assert "client syscall rate drops" in findings[0].title


class TestRunDetectors:
    def test_battery_on_buggy_fluentbit(self):
        case = run_fluentbit_case(FLUENTBIT_BUGGY)
        findings = run_detectors(case.store, "dio_trace")
        assert findings
        # Critical findings come first.
        assert findings[0].severity == "critical"
        assert findings[0].detector == "stale-offset-resume"

    def test_finding_str(self):
        finding = Finding("d", "warning", "title", {})
        assert str(finding) == "[warning] d: title"
