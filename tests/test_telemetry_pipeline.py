"""Integration tests: telemetry wired through the whole pipeline."""

import json

import pytest

from repro.backend import DocumentStore
from repro.experiments import run_fluentbit_case
from repro.kernel import Kernel, O_CREAT, O_RDWR
from repro.sim import Environment
from repro.telemetry import (STAGES, parse_prometheus, registry_as_dict,
                             to_prometheus)
from repro.tracer import DIOTracer, TracerConfig


@pytest.fixture(scope="module")
def case():
    return run_fluentbit_case("1.4.0")


@pytest.fixture(scope="module")
def telemetry(case):
    return case.tracer.telemetry


def run_small_trace(config=None):
    """A tiny end-to-end traced workload; returns the tracer."""
    env = Environment()
    kernel = Kernel(env, ncpus=2)
    store = DocumentStore()
    tracer = DIOTracer(env, kernel, store, config)
    task = kernel.spawn_process("app").threads[0]
    tracer.attach()

    def main():
        fd = yield from kernel.syscall(task, "open", path="/f",
                                       flags=O_CREAT | O_RDWR)
        for _ in range(20):
            yield from kernel.syscall(task, "write", fd=fd, data=b"x" * 64)
        yield from kernel.syscall(task, "close", fd=fd)
        yield from tracer.shutdown()

    env.run(until=env.process(main()))
    return tracer


class TestHealthReport:
    def test_all_stages_present_in_flow_order(self, telemetry):
        report = telemetry.health_report()
        assert tuple(stage.name for stage in report.stages) == STAGES

    def test_counters_are_consistent_across_stages(self, telemetry, case):
        report = telemetry.health_report()
        ring = report.stage("ring_buffer").counters
        shipper = report.stage("shipper").counters
        store = report.stage("store").counters
        assert ring["produced"] == case.tracer.stats.produced
        assert ring["consumed"] == ring["produced"]   # fully drained
        assert shipper["shipped"] == ring["consumed"]
        assert store["docs_indexed"] == shipper["shipped"]
        assert report.stage("sim").counters["events"] > 0

    def test_stage_latency_quantiles_present(self, telemetry):
        report = telemetry.health_report()
        for stage in ("consumer", "shipper"):
            latency = report.stage(stage).latency_ns
            assert latency is not None
            assert set(latency) == {"p50", "p95", "p99"}
            assert 0 < latency["p50"] <= latency["p95"] <= latency["p99"]

    def test_derived_gauges_match_facade(self, telemetry, case):
        derived = telemetry.health_report().derived
        assert derived["drop_ratio"] == case.tracer.stats.drop_ratio
        assert derived["consumer_lag"] == case.tracer.stats.consumer_lag
        assert derived["retry_rate"] == case.tracer.stats.retry_rate

    def test_derived_gauges_exported(self, telemetry):
        parsed = parse_prometheus(telemetry.to_prometheus())
        for name in ("dio_health_drop_ratio",
                     "dio_health_consumer_lag_records",
                     "dio_health_retry_rate",
                     "dio_health_unresolved_ratio"):
            assert name in parsed

    def test_report_as_dict_is_json_serializable(self, telemetry):
        data = telemetry.health_report().as_dict()
        assert json.loads(json.dumps(data)) == data


class TestExporterRoundTrip:
    def test_prometheus_and_json_expose_the_same_state(self, telemetry):
        parsed = parse_prometheus(telemetry.to_prometheus())
        data = registry_as_dict(telemetry.registry)
        for metric in data["metrics"]:
            for sample in metric["samples"]:
                labels = tuple(sorted(sample["labels"].items()))
                if metric["type"] == "histogram":
                    assert (parsed[metric["name"] + "_count"][labels]
                            == sample["count"])
                else:
                    assert parsed[metric["name"]][labels] == sample["value"]


class TestDeterminism:
    def test_repeated_runs_produce_identical_telemetry(self):
        first = run_fluentbit_case("1.4.0", session_name="det")
        second = run_fluentbit_case("1.4.0", session_name="det")
        t1, t2 = first.tracer.telemetry, second.tracer.telemetry
        assert to_prometheus(t1.registry) == to_prometheus(t2.registry)
        assert t1.to_json() == t2.to_json()
        assert (t1.health_report().as_dict()
                == t2.health_report().as_dict())


class TestTracerStatsFacade:
    def test_facade_reads_registry_values(self):
        tracer = run_small_trace()
        registry = tracer.telemetry.registry
        assert tracer.stats.shipped == registry.value(
            "dio_shipper_events_total") == 22
        assert tracer.stats.batches == registry.value(
            "dio_consumer_batches_total")
        assert tracer.stats.ship_retries == registry.value(
            "dio_shipper_retries_total")

    def test_disabled_telemetry_keeps_counters_live(self):
        tracer = run_small_trace(TracerConfig(telemetry_enabled=False))
        assert tracer.telemetry.spans.finished == []
        assert tracer.stats.shipped == 22
        assert tracer.stats.batches > 0
        # Optional bindings were skipped: no ring metrics registered.
        assert tracer.telemetry.registry.get(
            "dio_ring_produced_total") is None
        # The health report still works, reading absent stages as zero.
        report = tracer.telemetry.health_report()
        assert report.stage("ring_buffer").counters["produced"] == 0
        assert report.stage("shipper").counters["shipped"] == 22

    def test_pipeline_spans_recorded(self):
        tracer = run_small_trace()
        names = {span.name for span in tracer.telemetry.spans.finished}
        assert {"consumer.batch", "consumer.parse", "shipper.bulk",
                "correlator.correlate"} <= names
        parse = tracer.telemetry.spans.spans_named("consumer.parse")[0]
        assert parse.parent == "consumer.batch"
        assert parse.depth == 1
        # The store records its spans straight into the shared
        # histogram (it does not own the span tracer).
        family = tracer.telemetry.registry.get("dio_span_duration_ns")
        assert family.labels(span="store.bulk").count > 0

    def test_filter_accept_reject_counters(self):
        config = TracerConfig(pids=frozenset({999_999}))
        tracer = run_small_trace(config)
        registry = tracer.telemetry.registry
        assert registry.value("dio_filter_rejected_total") == 22
        assert registry.value("dio_filter_accepted_total") == 0
        assert tracer.stats.filtered_out == 22
