"""Hypothesis differential suite: sharded router vs the plain store.

The property under test is the router's whole contract: for *any*
document stream — mixed routing-key types, absent shard keys, unicode
tags, duplicate ids — a ``ShardedDocumentStore`` with *any* shard
count and shard key must be observably byte-identical to a single
``DocumentStore`` fed the same calls: same documents in the same
global order, same ids, same query answers, same aggregation
responses, and the same behaviour under mutations, deletes, and a
mid-stream ``rebalance``.  ``create_store(shard_count=1)`` *is* the
plain store, so shard count 1 is the anchored end of the axis.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.backend import DocumentStore
from repro.backend.router import SHARD_KEYS, ShardedDocumentStore, create_store

SESSION = "shard-diff"

INDEXED = ("syscall", "proc_name", "pid", "tid", "file_tag", "session",
           "time")

SHARD_COUNTS = (1, 2, 3)

# --- document strategies ----------------------------------------------------

syscalls = st.sampled_from(["read", "write", "open", "close", "fsync"])

#: Routing-key values deliberately cross type boundaries: 3, 3.0 and
#: True must land on the same shard (the store treats them as equal
#: terms, so the router must too).
pids = st.one_of(st.integers(min_value=1, max_value=5),
                 st.sampled_from([3.0, True]))

file_tags = st.one_of(st.none(),
                      st.sampled_from(["/a", "/b", "/c/д", "/dev/null"]))

docs = st.builds(
    dict,
    syscall=syscalls,
    pid=pids,
    tid=st.integers(min_value=1, max_value=4),
    proc_name=st.sampled_from(["app", "worker", "журнал"]),
    time=st.integers(min_value=0, max_value=10 ** 10),
    duration_ns=st.integers(min_value=0, max_value=10 ** 6),
    ret=st.integers(min_value=-40, max_value=100),
    file_tag=file_tags,
    session=st.just(SESSION),
)


def drop_absent(doc):
    """Docs without a file_tag lack the key entirely — the router must
    route those through its absent-key bucket, not crash."""
    if doc["file_tag"] is None:
        del doc["file_tag"]
    return doc


batches = st.lists(docs.map(drop_absent), max_size=25)

shard_counts = st.sampled_from(SHARD_COUNTS)
shard_keys = st.sampled_from(SHARD_KEYS)


def build_pair(batch_list, shard_count, shard_key):
    """A plain store and a sharded store fed identical bulk streams."""
    single = DocumentStore()
    sharded = create_store(shard_count=shard_count, shard_key=shard_key,
                           time_window_ns=1_000)
    for store in (single, sharded):
        store.ensure_index("idx", indexed_fields=INDEXED)
        for batch in batch_list:
            store.bulk("idx", [dict(d) for d in batch])
    return single, sharded


def assert_observably_identical(single, sharded, queries=(None,)):
    for query in queries:
        assert single.count("idx", query) == sharded.count("idx", query), query
        lhs = list(single.scan("idx", query))
        rhs = list(sharded.scan("idx", query))
        assert (json.dumps(lhs, sort_keys=False, default=str)
                == json.dumps(rhs, sort_keys=False, default=str)), query


class TestShardedEquivalence:
    @given(batch_list=st.lists(batches, max_size=3),
           shard_count=shard_counts, shard_key=shard_keys)
    @settings(max_examples=50, deadline=None)
    def test_scan_is_byte_identical(self, batch_list, shard_count,
                                    shard_key):
        single, sharded = build_pair(batch_list, shard_count, shard_key)
        assert_observably_identical(single, sharded)

    @given(batch=batches, shard_count=shard_counts, shard_key=shard_keys,
           data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_queries_sorts_and_aggs_agree(self, batch, shard_count,
                                          shard_key, data):
        single, sharded = build_pair([batch], shard_count, shard_key)
        syscall = data.draw(syscalls)
        pid = data.draw(pids)
        lo = data.draw(st.integers(min_value=0, max_value=10 ** 10))
        queries = [
            None,
            {"term": {"syscall": syscall}},
            {"term": {"pid": pid}},            # routed on the pid key
            {"range": {"time": {"gte": lo}}},
            {"bool": {"must": [{"term": {"session": SESSION}}],
                      "must_not": [{"term": {"syscall": syscall}}]}},
        ]
        assert_observably_identical(single, sharded, queries)
        aggs = {
            "per_syscall": {"terms": {"field": "syscall", "size": 10}},
            "latency": {"stats": {"field": "duration_ns"}},
            "p95": {"percentiles": {"field": "duration_ns",
                                    "percents": [50, 95]}},
        }
        sorts = [None, ["time"],
                 [{"time": {"order": "desc"}}, {"pid": {"order": "asc"}}]]
        for query in queries:
            for sort in sorts:
                lhs = single.search("idx", query, sort=sort, size=7,
                                    aggs=aggs)
                rhs = sharded.search("idx", query, sort=sort, size=7,
                                     aggs=aggs)
                assert (json.dumps(lhs, sort_keys=True, default=str)
                        == json.dumps(rhs, sort_keys=True, default=str)), (
                            query, sort)

    @given(batch=batches, shard_count=shard_counts, shard_key=shard_keys,
           data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_mutations_and_deletes_agree(self, batch, shard_count,
                                         shard_key, data):
        single, sharded = build_pair([batch], shard_count, shard_key)
        syscall = data.draw(syscalls)
        extra = {"syscall": "late", "session": SESSION, "time": 1,
                 "pid": 1, "tid": 1, "proc_name": "tail",
                 "duration_ns": 5, "ret": 0}
        for store in (single, sharded):
            store.index_doc("idx", dict(extra), doc_id="tail-1")
            # Dict patch, then a callable patch that rewrites the very
            # field the router routes on — this clears exact routing.
            store.update_by_query("idx", {"term": {"syscall": syscall}},
                                  {"file_path": "/resolved"})
            store.update_by_query("idx", {"term": {"tid": 2}},
                                  lambda doc: {"pid": doc.get("pid", 0)})
            # update_docs with one id that exists and one that doesn't.
            store.update_docs("idx", ["tail-1", "never-there"],
                              {"flagged": True})
            store.delete_by_query("idx", {"term": {"tid": 4}})
        assert_observably_identical(single, sharded)
        assert single.get_doc("idx", "tail-1") == sharded.get_doc(
            "idx", "tail-1")

    @given(batch_list=st.lists(batches, min_size=2, max_size=3),
           shard_count=shard_counts, shard_key=shard_keys,
           new_count=shard_counts)
    @settings(max_examples=40, deadline=None)
    def test_midstream_rebalance_preserves_equivalence(
            self, batch_list, shard_count, shard_key, new_count):
        single = DocumentStore()
        sharded = create_store(shard_count=shard_count, shard_key=shard_key,
                               time_window_ns=1_000)
        for store in (single, sharded):
            store.ensure_index("idx", indexed_fields=INDEXED)
            store.bulk("idx", [dict(d) for d in batch_list[0]])
        # Rebalance between two ingest waves; the plain store has no
        # notion of shards, so the router must absorb it invisibly.
        if isinstance(sharded, ShardedDocumentStore):
            sharded.rebalance(new_count)
            assert sharded.shard_count == new_count
        for store in (single, sharded):
            for batch in batch_list[1:]:
                store.bulk("idx", [dict(d) for d in batch])
        assert_observably_identical(single, sharded)
        aggs = {"per_pid": {"terms": {"field": "pid", "size": 10}},
                "lat": {"stats": {"field": "duration_ns"}}}
        lhs = single.search("idx", size=0, aggs=aggs)["aggregations"]
        rhs = sharded.search("idx", size=0, aggs=aggs)["aggregations"]
        assert json.dumps(lhs, sort_keys=True) == json.dumps(
            rhs, sort_keys=True)


class TestFactoryAnchor:
    def test_shard_count_one_is_literally_the_plain_store(self):
        store = create_store(shard_count=1)
        assert type(store) is DocumentStore

    def test_config_section_round_trips(self):
        from repro.tracer.config import TracerConfig
        cfg = TracerConfig(shard_count=3, shard_key="file_tag",
                           shard_time_window_ns=500)
        store = create_store(cfg)
        assert isinstance(store, ShardedDocumentStore)
        assert store.shard_count == 3
        assert store.shard_key == "file_tag"
        assert store.time_window_ns == 500

    @pytest.mark.parametrize("kwargs", [
        {"shard_count": 0}, {"shard_count": -2}, {"shard_count": 2.5},
    ])
    def test_bad_shard_count_rejected(self, kwargs):
        from repro.backend.store import StoreError
        with pytest.raises(StoreError):
            create_store(**kwargs)

    def test_shard_keys_stay_in_sync_with_config(self):
        from repro.tracer import config as cfg
        assert tuple(cfg.SHARD_KEYS) == tuple(SHARD_KEYS)
