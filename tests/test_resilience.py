"""Tests for the shipping-path resilience machinery.

Covers the three state machines (backoff, breaker, adaptive batcher),
the spill WAL, the consumer's backpressure policies, and the
end-to-end resilience experiment harness.
"""

import pytest

from repro.backend import DocumentStore
from repro.experiments.resilience import ResilienceScale, run_resilience_case
from repro.kernel import Kernel
from repro.sim import Environment
from repro.tracer import (AdaptiveBatcher, CircuitBreaker, DIOTracer,
                          DecorrelatedJitterBackoff, SpillWAL, TracerConfig)
from tests.test_failure_injection import FlakyStore, writer_workload

MS = 1_000_000


class TestDecorrelatedJitterBackoff:
    def test_delays_bounded_and_escalating(self):
        backoff = DecorrelatedJitterBackoff(base_ns=1000, cap_ns=50_000,
                                            seed=1)
        delays = [backoff.next_delay_ns() for _ in range(20)]
        assert all(1000 <= d <= 50_000 for d in delays)
        assert backoff.waits == 20
        assert backoff.waited_ns_total == sum(delays)
        # Escalation reaches the cap region eventually.
        assert max(delays) > 1000

    def test_seeded_determinism(self):
        a = DecorrelatedJitterBackoff(1000, 50_000, seed=9)
        b = DecorrelatedJitterBackoff(1000, 50_000, seed=9)
        assert [a.next_delay_ns() for _ in range(10)] == \
               [b.next_delay_ns() for _ in range(10)]

    def test_reset_returns_to_base(self):
        backoff = DecorrelatedJitterBackoff(1000, 1_000_000, seed=3)
        for _ in range(10):
            backoff.next_delay_ns()
        backoff.reset()
        # After reset the next delay is drawn from U(base, 3*base).
        assert backoff.next_delay_ns() <= 3000

    def test_validation(self):
        with pytest.raises(ValueError):
            DecorrelatedJitterBackoff(0, 100)
        with pytest.raises(ValueError):
            DecorrelatedJitterBackoff(100, 50)


class TestCircuitBreaker:
    def test_trips_after_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, recovery_ns=100)
        for t in (10, 20):
            breaker.record_failure(t)
            assert breaker.state == "closed"
        breaker.record_failure(30)
        assert breaker.state == "open"
        assert breaker.opened_total == 1
        assert not breaker.allows(50)

    def test_half_open_probe_then_close(self):
        breaker = CircuitBreaker(failure_threshold=1, recovery_ns=100)
        breaker.record_failure(0)
        assert breaker.state == "open"
        assert breaker.allows(100)  # recovery elapsed: admit one probe
        assert breaker.state == "half-open"
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.closed_total == 1

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker(failure_threshold=5, recovery_ns=100)
        for t in range(5):
            breaker.record_failure(t)
        assert breaker.allows(200)
        breaker.record_failure(200)  # failed probe trips immediately
        assert breaker.state == "open"
        assert breaker.retry_at_ns() == 300

    def test_success_clears_failure_run(self):
        breaker = CircuitBreaker(failure_threshold=2, recovery_ns=100)
        breaker.record_failure(0)
        breaker.record_success()
        breaker.record_failure(10)
        assert breaker.state == "closed"

    def test_state_codes(self):
        breaker = CircuitBreaker(failure_threshold=1, recovery_ns=100)
        assert breaker.state_code == 0
        breaker.record_failure(0)
        assert breaker.state_code == 2
        breaker.allows(100)
        assert breaker.state_code == 1


class TestAdaptiveBatcher:
    def test_halves_and_doubles_within_bounds(self):
        batcher = AdaptiveBatcher(min_size=16, max_size=256)
        assert batcher.size == 256
        batcher.on_failure()
        assert batcher.size == 128
        for _ in range(10):
            batcher.on_failure()
        assert batcher.size == 16
        batcher.on_success()
        assert batcher.size == 32
        for _ in range(10):
            batcher.on_success()
        assert batcher.size == 256
        assert batcher.shrinks == 4  # 256->128->64->32->16
        assert batcher.grows == 4

    def test_min_clamped_to_max(self):
        batcher = AdaptiveBatcher(min_size=100, max_size=10)
        assert batcher.min_size == 10


class TestSpillWAL:
    def test_fifo_replay_order(self):
        wal = SpillWAL()
        wal.append([{"n": 1}], now_ns=10)
        wal.append([{"n": 2}, {"n": 3}], now_ns=20)
        assert wal.pending_batches == 2
        assert wal.pending_records == 3
        head = wal.peek()
        assert head.seq == 0 and head.docs[0]["n"] == 1
        assert wal.pop().seq == 0
        assert wal.pop().seq == 1
        assert wal.pending_records == 0
        assert wal.replayed_records_total == 3
        assert wal.spilled_records_total == 3


class TestBackpressurePolicies:
    def _run(self, policy):
        env = Environment()
        kernel = Kernel(env, ncpus=2)
        store = FlakyStore(failures=10_000)  # backend dead throughout
        config = TracerConfig(ship_max_retries=1,
                              ship_retry_backoff_ns=1000,
                              max_inflight_events=8,
                              backpressure_policy=policy,
                              breaker_recovery_ns=10_000_000,
                              spill_replay_failure_budget=1)
        tracer = DIOTracer(env, kernel, store, config)
        task = kernel.spawn_process("app").threads[0]
        tracer.attach()

        def main():
            yield from writer_workload(kernel, task, writes=40)
            yield from tracer.shutdown()

        env.run(until=env.process(main()))
        return tracer

    def test_block_policy_never_sheds(self):
        tracer = self._run("block")
        stats = tracer.stats
        registry = tracer.telemetry.registry
        assert registry.value("dio_consumer_shed_total") == 0
        # Nothing lost: every accepted record is shipped, staged,
        # spilled, or still in the ring.
        accounted = (stats.shipped + stats.staged_records +
                     stats.spill_pending + tracer.ring.pending_records())
        assert accounted == stats.produced

    def test_drop_policy_sheds_over_limit(self):
        tracer = self._run("drop")
        registry = tracer.telemetry.registry
        shed = registry.value("dio_consumer_shed_total")
        assert shed > 0
        stats = tracer.stats
        accounted = (stats.shipped + stats.staged_records +
                     stats.spill_pending + tracer.ring.pending_records())
        assert accounted + shed == stats.produced


class TestRetryRateRegression:
    def test_retry_rate_is_per_attempt_not_per_batch(self):
        """Regression: retry_rate used to divide retries by *batches*,
        overstating retry pressure whenever a batch needed more than
        one attempt (it could exceed 1.0).  It must be retries per
        attempted bulk request, in [0, 1]."""
        env = Environment()
        kernel = Kernel(env, ncpus=2)
        store = FlakyStore(failures=3)
        tracer = DIOTracer(env, kernel, store,
                           TracerConfig(session_name="retry-rate"))
        task = kernel.spawn_process("app").threads[0]
        tracer.attach()

        def main():
            yield from writer_workload(kernel, task)
            yield from tracer.shutdown()

        env.run(until=env.process(main()))
        stats = tracer.stats
        assert stats.ship_retries == 3
        assert stats.bulk_attempts == stats.batches + 3
        assert stats.retry_rate == 3 / stats.bulk_attempts
        assert 0.0 <= stats.retry_rate <= 1.0
        # The health report agrees with TracerStats.
        health = tracer.telemetry.health_report().as_dict()
        assert health["derived"]["retry_rate"] == pytest.approx(
            stats.retry_rate)

    def test_retry_rate_zero_without_attempts(self):
        env = Environment()
        kernel = Kernel(env, ncpus=1)
        tracer = DIOTracer(env, kernel, DocumentStore(), TracerConfig())
        assert tracer.stats.retry_rate == 0.0


class TestResilienceExperiment:
    @pytest.fixture(scope="class")
    def case(self):
        return run_resilience_case(_smoke_scale())

    def test_envelopes_hold(self, case):
        report = case.verify()
        assert report["lost"] == 0
        assert report["spill"]["records"] > 0
        assert report["spill"]["replayed"] == report["spill"]["records"]
        assert report["breaker"]["opened"] >= 1
        assert report["breaker"]["closed"] >= 1

    def test_every_fault_kind_fired(self, case):
        report = case.report()
        assert all(report["faults_injected"][kind] > 0
                   for kind in ("error", "timeout", "slowdown"))

    def test_application_isolated_from_outage(self, case):
        assert case.baseline_app_done_ns == case.app_done_ns
        assert case.drain_lag_ns > 0  # the pipeline, not the app, paid

    def test_deterministic_across_runs(self, case):
        again = run_resilience_case(_smoke_scale(), compare_baseline=False)
        a = case.report()
        b = again.report()
        for key in ("baseline_app_done_ns", "baseline_drain_lag_ns"):
            a["envelope"].pop(key)
            b["envelope"].pop(key)
        assert a == b

    def test_short_duration_plan_never_overlaps(self):
        scale = ResilienceScale(duration_ns=100 * MS)
        plan = scale.fault_plan()
        assert len(plan) == 3
        for earlier, later in zip(plan.windows, plan.windows[1:]):
            assert earlier.end_ns <= later.start_ns

    def test_degenerate_duration_yields_empty_plan(self):
        # Too short to fit distinct windows: an empty plan, not a
        # FaultError from three outages all starting at t=0.
        plan = ResilienceScale(duration_ns=3).fault_plan()
        assert len(plan) == 0


def _smoke_scale() -> ResilienceScale:
    """Reduced-size scenario for tests and the CI smoke job.

    The outage must comfortably outlast ``ship_max_retries`` worth of
    backoff plus one breaker recovery window (60 ms), or no batch ever
    exhausts its retries into the spill WAL.
    """
    return ResilienceScale(duration_ns=600 * MS, client_threads=2,
                           key_count=4_000, outage_ns=100 * MS)
