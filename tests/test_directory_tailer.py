"""Tests for directory (glob-mode) tailing and LSM tombstones."""

import pytest

from repro.apps.fluentbit import (FLUENTBIT_BUGGY, FLUENTBIT_FIXED,
                                  DirectoryTailer)
from repro.apps.rocksdb import DBOptions, RocksDB, TOMBSTONE
from repro.apps.rocksdb.db_bench import key_name
from repro.kernel import Kernel, O_APPEND, O_CREAT, O_WRONLY
from repro.sim import Environment

SECOND = 1_000_000_000


def write_file(kernel, task, path, payload):
    fd = yield from kernel.syscall(task, "open", path=path,
                                   flags=O_CREAT | O_WRONLY | O_APPEND)
    yield from kernel.syscall(task, "write", fd=fd, data=payload)
    yield from kernel.syscall(task, "close", fd=fd)


class TestDirectoryTailer:
    def make(self, version=FLUENTBIT_FIXED):
        env = Environment()
        kernel = Kernel(env, ncpus=2)
        kernel.vfs.mkdir("/logs")
        app = kernel.spawn_process("app").threads[0]
        tailer = DirectoryTailer(kernel, "/logs", version=version,
                                 poll_interval_ns=1 * SECOND)
        return env, kernel, app, tailer

    def test_tails_every_matching_file(self):
        env, kernel, app, tailer = self.make()
        tailer.start()

        def main():
            yield from write_file(kernel, app, "/logs/a.log", b"alpha\n")
            yield from write_file(kernel, app, "/logs/b.log", b"beta!\n")
            yield from write_file(kernel, app, "/logs/skip.txt", b"nope\n")
            yield env.timeout(4 * SECOND)
            tailer.stop()

        env.run(until=env.process(main()))
        assert tailer.delivered_for("/logs/a.log") == 6
        assert tailer.delivered_for("/logs/b.log") == 6
        assert "/logs/skip.txt" not in tailer.tails
        assert tailer.delivered_bytes == 12

    def test_files_created_later_are_picked_up(self):
        env, kernel, app, tailer = self.make()
        tailer.start()

        def main():
            yield from write_file(kernel, app, "/logs/early.log", b"111\n")
            yield env.timeout(3 * SECOND)
            yield from write_file(kernel, app, "/logs/late.log", b"2222\n")
            yield env.timeout(4 * SECOND)
            tailer.stop()

        env.run(until=env.process(main()))
        assert tailer.delivered_for("/logs/early.log") == 4
        assert tailer.delivered_for("/logs/late.log") == 5

    def test_tails_share_one_process(self):
        env, kernel, app, tailer = self.make()
        tailer.start()

        def main():
            yield from write_file(kernel, app, "/logs/a.log", b"x\n")
            yield from write_file(kernel, app, "/logs/b.log", b"y\n")
            yield env.timeout(3 * SECOND)
            tailer.stop()

        env.run(until=env.process(main()))
        pids = {tail.process.pid for tail in tailer.tails.values()}
        assert pids == {tailer.process.pid}

    def test_buggy_version_loses_data_per_file(self):
        env, kernel, app, tailer = self.make(version=FLUENTBIT_BUGGY)
        tailer.start()

        def main():
            yield from write_file(kernel, app, "/logs/a.log",
                                  b"0123456789" * 2)  # 20 bytes
            yield env.timeout(3 * SECOND)
            yield from kernel.syscall(app, "unlink", path="/logs/a.log")
            yield env.timeout(1 * SECOND)
            yield from write_file(kernel, app, "/logs/a.log", b"12345")
            yield env.timeout(4 * SECOND)
            tailer.stop()

        env.run(until=env.process(main()))
        # Inode recycled, stale offset 20 applied: the 5 bytes are lost.
        assert tailer.delivered_for("/logs/a.log") == 20

    def test_fixed_version_complete_per_file(self):
        env, kernel, app, tailer = self.make(version=FLUENTBIT_FIXED)
        tailer.start()

        def main():
            yield from write_file(kernel, app, "/logs/a.log",
                                  b"0123456789" * 2)
            yield env.timeout(3 * SECOND)
            yield from kernel.syscall(app, "unlink", path="/logs/a.log")
            yield env.timeout(1 * SECOND)
            yield from write_file(kernel, app, "/logs/a.log", b"12345")
            yield env.timeout(4 * SECOND)
            tailer.stop()

        env.run(until=env.process(main()))
        assert tailer.delivered_for("/logs/a.log") == 25

    def test_missing_directory_is_quiet(self):
        env = Environment()
        kernel = Kernel(env)
        tailer = DirectoryTailer(kernel, "/nonexistent",
                                 poll_interval_ns=SECOND)
        tailer.start()

        def main():
            yield env.timeout(3 * SECOND)
            tailer.stop()

        env.run(until=env.process(main()))
        assert tailer.tails == {}

    def test_double_start_rejected(self):
        env, kernel, app, tailer = self.make()
        tailer.start()
        with pytest.raises(RuntimeError):
            tailer.start()


class TestTombstones:
    def make_db(self, **overrides):
        env = Environment()
        kernel = Kernel(env)
        process = kernel.spawn_process("db")
        db = RocksDB(kernel, process, DBOptions(**overrides))
        return env, kernel, process.threads[0], db

    def test_delete_hides_key(self):
        env, kernel, task, db = self.make_db()

        def scenario():
            yield from db.open(task)
            yield from db.put(task, "k", b"v")
            yield from db.delete(task, "k")
            got = yield from db.get(task, "k")
            assert got is None
            db.close()

        env.run(until=env.process(scenario()))

    def test_delete_shadows_flushed_value(self):
        env, kernel, task, db = self.make_db(memtable_bytes=1024)

        def scenario():
            yield from db.open(task)
            for i in range(30):
                yield from db.put(task, key_name(i), b"v" * 64)
            yield env.timeout(SECOND)   # value now in an SSTable
            yield from db.delete(task, key_name(5))
            got = yield from db.get(task, key_name(5))
            assert got is None
            got = yield from db.get(task, key_name(6))
            assert got == b"v" * 64
            db.close()

        env.run(until=env.process(scenario()))

    def test_tombstone_survives_flush(self):
        env, kernel, task, db = self.make_db(memtable_bytes=512)

        def scenario():
            yield from db.open(task)
            yield from db.put(task, "target", b"old")
            yield from db.delete(task, "target")
            # Push both through flushes with filler traffic.
            for i in range(40):
                yield from db.put(task, key_name(i), b"f" * 64)
            yield env.timeout(SECOND)
            got = yield from db.get(task, "target")
            assert got is None
            db.close()

        env.run(until=env.process(scenario()))

    def test_tombstone_dropped_at_bottom_level(self):
        env, kernel, task, db = self.make_db(memtable_bytes=512,
                                             l0_compaction_trigger=2,
                                             max_level=2,
                                             sstable_bytes=2048)

        def scenario():
            yield from db.open(task)
            yield from db.put(task, "doomed", b"x")
            yield from db.delete(task, "doomed")
            for i in range(120):
                yield from db.put(task, key_name(i), b"f" * 64)
            yield env.timeout(3 * SECOND)
            db.close()

        env.run(until=env.process(scenario()))
        bottom = db.levels[db.options.max_level]
        for table in bottom:
            for key, _, value in table.entries():
                assert value is not TOMBSTONE, key

    def test_reinsert_after_delete(self):
        env, kernel, task, db = self.make_db()

        def scenario():
            yield from db.open(task)
            yield from db.put(task, "k", b"v1")
            yield from db.delete(task, "k")
            yield from db.put(task, "k", b"v2")
            got = yield from db.get(task, "k")
            assert got == b"v2"
            db.close()

        env.run(until=env.process(scenario()))
