"""Tests for the per-process I/O panel and the LSM stats report."""

import pytest

from repro.apps.rocksdb import DBOptions, RocksDB
from repro.apps.rocksdb.db_bench import key_name
from repro.backend import DocumentStore
from repro.kernel import Kernel
from repro.sim import Environment
from repro.visualizer import DIODashboards, load_predefined


@pytest.fixture()
def traced_store():
    store = DocumentStore()
    store.bulk("dio_trace", [
        {"syscall": "read", "proc_name": "reader", "pid": 1, "tid": 1,
         "ret": 4096, "time": 1, "session": "s"},
        {"syscall": "read", "proc_name": "reader", "pid": 1, "tid": 1,
         "ret": 4096, "time": 2, "session": "s"},
        {"syscall": "write", "proc_name": "writer", "pid": 2, "tid": 2,
         "ret": 100_000, "time": 3, "session": "s"},
        {"syscall": "write", "proc_name": "writer", "pid": 2, "tid": 2,
         "ret": -9, "time": 4, "session": "s"},     # failed: not counted
        {"syscall": "fsync", "proc_name": "writer", "pid": 2, "tid": 2,
         "ret": 0, "time": 5, "session": "s"},      # not a data syscall
    ])
    return store


class TestProcessIOPanel:
    def test_rows_aggregate_bytes_and_counts(self, traced_store):
        dash = DIODashboards(traced_store, session="s")
        rows = {r["proc_name"]: r for r in dash.process_io_rows()}
        assert rows["reader"]["read_syscalls"] == 2
        assert rows["reader"]["read_bytes"] == 8192
        assert rows["reader"]["write_bytes"] == 0
        assert rows["writer"]["write_syscalls"] == 1
        assert rows["writer"]["write_bytes"] == 100_000

    def test_sorted_by_total_bytes(self, traced_store):
        dash = DIODashboards(traced_store, session="s")
        names = [r["proc_name"] for r in dash.process_io_rows()]
        assert names == ["writer", "reader"]

    def test_rendered_table(self, traced_store):
        dash = DIODashboards(traced_store, session="s")
        text = dash.process_io_table()
        assert "bytes written" in text
        assert "100,000" in text

    def test_overview_dashboard_includes_panel(self, traced_store):
        text = load_predefined("overview").render(traced_store, session="s")
        assert "I/O per process" in text

    def test_process_io_panel_in_custom_spec(self, traced_store):
        from repro.visualizer import Dashboard

        dashboard = Dashboard.from_spec({
            "name": "io", "title": "io", "panels": [{"type": "process_io"}]})
        assert "reader" in dashboard.render(traced_store, session="s")


class TestLSMStatsReport:
    def test_report_contains_levels_and_counters(self):
        env = Environment()
        kernel = Kernel(env)
        process = kernel.spawn_process("db")
        db = RocksDB(kernel, process, DBOptions(memtable_bytes=2048,
                                                l0_compaction_trigger=2))
        task = process.threads[0]

        def scenario():
            yield from db.open(task)
            for i in range(80):
                yield from db.put(task, key_name(i), b"v" * 64)
            yield env.timeout(1_000_000_000)
            db.close()

        env.run(until=env.process(scenario()))
        report = db.stats_report()
        assert "L0" in report and "L6" in report
        assert "flushes:" in report
        assert f"puts: {db.stats.puts:,}" in report
        assert "write stalls:" in report
