"""Unit tests: per-field secondary indexes and the query planner."""

import math

import pytest

from repro.backend import DocumentStore, FieldIndex, QueryPlan
from repro.backend.store import Index, StoreError


class TestFieldIndex:
    def test_postings_and_presence(self):
        fi = FieldIndex("f")
        fi.update("1", "a")
        fi.update("2", "a")
        fi.update("3", None)
        assert fi.term_ids(["a"]) == {"1", "2"}
        assert fi.present == {"1", "2"}

    def test_delta_update_moves_postings(self):
        fi = FieldIndex("f")
        fi.update("1", "old")
        fi.update("1", "new")
        assert fi.term_ids(["old"]) == set()
        assert fi.term_ids(["new"]) == {"1"}

    def test_non_indexable_value_still_present(self):
        fi = FieldIndex("f")
        fi.update("1", {"nested": True})
        assert fi.present == {"1"}
        assert fi.term_ids([("nested",)]) == set()

    def test_remove_clears_everything(self):
        fi = FieldIndex("f")
        fi.update("1", 5)
        fi.remove("1")
        assert fi.present == set()
        assert fi.term_ids([5]) == set()
        assert fi.range_ids({"gte": 0}) == set()

    def test_range_numeric(self):
        fi = FieldIndex("f")
        for doc_id, value in enumerate([10, 20, 30, 40]):
            fi.update(str(doc_id), value)
        assert fi.range_ids({"gte": 20, "lt": 40}) == {"1", "2"}
        assert fi.range_ids({"gt": 20, "lte": 40}) == {"2", "3"}
        assert fi.range_ids({"gt": 100}) == set()

    def test_range_reflects_updates(self):
        fi = FieldIndex("f")
        fi.update("1", 10)
        assert fi.range_ids({"gte": 0}) == {"1"}
        fi.update("1", 99)
        assert fi.range_ids({"lt": 50}) == set()
        assert fi.range_ids({"gte": 50}) == {"1"}

    def test_range_string_partition(self):
        fi = FieldIndex("f")
        fi.update("s", "beta")
        fi.update("n", 7)
        assert fi.range_ids({"gte": "alpha"}) == {"s"}
        assert fi.range_ids({"gte": 0}) == {"n"}
        # Mixed bound types can never compare true against anything.
        assert fi.range_ids({"gte": 0, "lt": "zz"}) == set()

    def test_range_nan_bound_matches_nothing(self):
        fi = FieldIndex("f")
        fi.update("1", 1.5)
        assert fi.range_ids({"gte": math.nan}) == set()

    def test_nan_value_never_indexed(self):
        fi = FieldIndex("f")
        fi.update("1", math.nan)
        assert fi.range_ids({"gte": -math.inf}) == set()
        assert fi.present == {"1"}

    def test_unplannable_bound_returns_none(self):
        fi = FieldIndex("f")
        fi.update("1", (1, 2))
        assert fi.range_ids({"gte": [0]}) is None

    def test_prefix(self):
        fi = FieldIndex("f")
        fi.update("a", "/tmp/app.log")
        fi.update("b", "/tmp/db/wal")
        fi.update("c", "/var/log/x")
        fi.update("n", 3)
        assert fi.prefix_ids("/tmp/") == {"a", "b"}
        assert fi.prefix_ids("/var") == {"c"}
        assert fi.prefix_ids("") == {"a", "b", "c"}
        assert fi.prefix_ids(3) is None


@pytest.fixture()
def store():
    return DocumentStore()


def _plan(store, index, query):
    return store._index(index).plan(query)


class TestPlanModes:
    def seed(self, store):
        store.bulk("idx", [
            {"syscall": "read", "time": 10, "path": "/tmp/a"},
            {"syscall": "write", "time": 20, "path": "/tmp/b"},
            {"syscall": "read", "time": 30, "path": "/var/x"},
            {"syscall": "close", "time": 40},
        ])

    def test_term_is_exact(self, store):
        self.seed(store)
        plan = _plan(store, "idx", {"term": {"syscall": "read"}})
        assert plan.exact and plan.mode == "exact"
        assert plan.ids == {"1", "3"}

    def test_match_all_is_exact_universe(self, store):
        self.seed(store)
        plan = _plan(store, "idx", {"match_all": {}})
        assert plan.exact and plan.ids is None

    def test_range_is_exact(self, store):
        self.seed(store)
        plan = _plan(store, "idx", {"range": {"time": {"gte": 15, "lte": 30}}})
        assert plan.exact
        assert plan.ids == {"2", "3"}

    def test_prefix_is_exact(self, store):
        self.seed(store)
        plan = _plan(store, "idx", {"prefix": {"path": "/tmp/"}})
        assert plan.exact
        assert plan.ids == {"1", "2"}

    def test_exists_is_exact(self, store):
        self.seed(store)
        plan = _plan(store, "idx", {"exists": {"field": "path"}})
        assert plan.exact
        assert plan.ids == {"1", "2", "3"}

    def test_bool_must_intersects(self, store):
        self.seed(store)
        plan = _plan(store, "idx", {"bool": {"must": [
            {"term": {"syscall": "read"}},
            {"range": {"time": {"gte": 20}}},
        ]}})
        assert plan.exact
        assert plan.ids == {"3"}

    def test_must_not_prunes_but_rechecks(self, store):
        self.seed(store)
        plan = _plan(store, "idx", {"bool": {
            "must": [{"term": {"syscall": "read"}}],
            "must_not": [{"range": {"time": {"gte": 25}}}],
        }})
        assert not plan.exact and plan.mode == "pruned"
        assert plan.ids == {"1", "3"}

    def test_should_union_is_exact(self, store):
        self.seed(store)
        plan = _plan(store, "idx", {"bool": {"should": [
            {"term": {"syscall": "write"}},
            {"term": {"syscall": "close"}},
        ]}})
        assert plan.exact
        assert plan.ids == {"2", "4"}

    def test_minimum_should_match_two_rechecks(self, store):
        self.seed(store)
        plan = _plan(store, "idx", {"bool": {
            "should": [{"term": {"syscall": "read"}},
                       {"range": {"time": {"lt": 25}}}],
            "minimum_should_match": 2,
        }})
        assert not plan.exact
        assert plan.ids == {"1", "2", "3"}

    def test_wildcard_falls_back_to_fullscan(self, store):
        self.seed(store)
        plan = _plan(store, "idx", {"wildcard": {"path": "/tmp/*"}})
        assert plan.mode == "fullscan"
        assert plan.ids is None

    def test_term_none_falls_back(self, store):
        self.seed(store)
        # ``None`` matches docs missing the field; postings can't see those.
        plan = _plan(store, "idx", {"term": {"path": None}})
        assert plan.mode == "fullscan"

    def test_nested_bool_is_exact(self, store):
        self.seed(store)
        plan = _plan(store, "idx", {"bool": {"must": [
            {"bool": {"should": [{"term": {"syscall": "read"}},
                                 {"term": {"syscall": "write"}}]}},
            {"exists": {"field": "path"}},
        ]}})
        assert plan.exact
        assert plan.ids == {"1", "2", "3"}

    def test_plan_repr_modes(self):
        assert "exact" in repr(QueryPlan({"1"}, True))
        assert "fullscan" in repr(QueryPlan(None, False))


class TestStorePlanTelemetry:
    def test_plan_counts_accumulate(self, store):
        store.bulk("idx", [{"k": i, "t": i * 10} for i in range(20)])
        store.search("idx", query={"term": {"k": 3}})
        store.search("idx", query={"range": {"t": {"gte": 100}}})
        store.search("idx", query={"wildcard": {"k": "x*"}})
        store.search("idx", query={"bool": {
            "must": [{"term": {"k": 5}}],
            "must_not": [{"term": {"t": 50}}]}})
        assert store.plan_counts["exact"] == 2
        assert store.plan_counts["fullscan"] == 1
        assert store.plan_counts["pruned"] == 1
        assert 0.0 < store.pruning_ratio() < 1.0

    def test_plan_metrics_exported(self, store):
        from repro.telemetry import MetricsRegistry

        registry = MetricsRegistry()
        store.bind_telemetry(registry)
        store.bulk("idx", [{"k": i} for i in range(10)])
        store.search("idx", query={"term": {"k": 1}})
        assert registry.value("dio_store_plan_exact_total") == 1
        assert registry.value("dio_store_plan_pruning_ratio") == pytest.approx(0.9)

    def test_legacy_mode_never_exact(self):
        store = DocumentStore(plan_mode="legacy")
        store.bulk("idx", [{"k": i} for i in range(5)])
        store.search("idx", query={"term": {"k": 2}})
        store.search("idx", query={"range": {"k": {"gte": 3}}})
        assert store.plan_counts["exact"] == 0
        assert store.plan_counts["pruned"] == 1
        assert store.plan_counts["fullscan"] == 1

    def test_unknown_plan_mode_rejected(self):
        with pytest.raises(StoreError):
            DocumentStore(plan_mode="psychic")
        with pytest.raises(StoreError):
            Index("idx", plan_mode="psychic")


class TestScanSemantics:
    def test_pruned_scan_preserves_insertion_order(self, store):
        store.bulk("idx", [{"k": "x", "i": i} for i in range(50)])
        pairs = store.scan("idx", {"term": {"k": "x"}})
        assert [source["i"] for _, source in pairs] == list(range(50))

    def test_exact_plan_results_survive_in_place_updates(self, store):
        # The pre-planner store left stale postings behind on in-place
        # re-puts and relied on predicate re-checks to hide them; exact
        # plans skip the predicate, so the indexes must be truly clean.
        store.index_doc("idx", {"state": "old"}, doc_id="1")
        store.search("idx", query={"term": {"state": "old"}})
        store.update_by_query("idx", {"term": {"state": "old"}},
                              {"state": "new"})
        assert store.count("idx", {"term": {"state": "old"}}) == 0
        assert store.count("idx", {"term": {"state": "new"}}) == 1
        assert store.count("idx", {"exists": {"field": "state"}}) == 1

    def test_stream_matches_scan(self, store):
        store.bulk("idx", [{"k": i % 3} for i in range(30)])
        query = {"term": {"k": 1}}
        assert sorted(store.stream("idx", query)) == sorted(
            store.scan("idx", query))

    def test_update_docs_refreshes_named_fields(self, store):
        store.bulk("idx", [{"k": 1}, {"k": 2}])
        assert store.update_docs("idx", ["1", "missing"], {"tag": "hot"}) == 1
        assert store.count("idx", {"term": {"tag": "hot"}}) == 1

    def test_deletes_keep_planner_consistent(self, store):
        store.bulk("idx", [{"t": i} for i in range(10)])
        store.delete_by_query("idx", {"range": {"t": {"lt": 5}}})
        assert store.count("idx", {"range": {"t": {"gte": 0}}}) == 5
        assert store.count("idx", {"exists": {"field": "t"}}) == 5
