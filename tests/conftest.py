"""Test-suite configuration.

Two Hypothesis profiles:

- ``repro`` (default) — derandomized, so the suite is fully
  reproducible run to run: the same property the simulator itself
  guarantees (see ``tests/test_determinism.py``).
- ``nightly`` — randomized with a larger example budget, for the
  scheduled CI job that hunts new counterexamples.  Select it with
  ``HYPOTHESIS_PROFILE=nightly``; any failure it finds prints the
  failing example, which the derandomized profile then replays via
  Hypothesis's example database.

See docs/TESTING.md.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "nightly",
    derandomize=False,
    max_examples=500,
    suppress_health_check=[HealthCheck.too_slow],
    print_blob=True,
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro"))
