"""Test-suite configuration.

Hypothesis runs derandomized so the suite is fully reproducible — the
same property the simulator itself guarantees (see
``tests/test_determinism.py``).
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
