"""Tests for /proc-style I/O accounting and spike blame analysis."""

import pytest

from repro.analysis.blame import blame_spikes, render_blame
from repro.backend import DocumentStore
from repro.kernel import Kernel, O_CREAT, O_RDWR
from repro.sim import Environment

MS = 1_000_000


class TestIOAccounting:
    def test_counters_track_reads_and_writes(self):
        env = Environment()
        kernel = Kernel(env)
        process = kernel.spawn_process("app")
        task = process.threads[0]

        def scenario():
            fd = yield from kernel.syscall(task, "open", path="/f",
                                           flags=O_CREAT | O_RDWR)
            yield from kernel.syscall(task, "write", fd=fd, data=b"x" * 100)
            yield from kernel.syscall(task, "pwrite64", fd=fd,
                                      data=b"y" * 50, offset=200)
            buf = bytearray(80)
            yield from kernel.syscall(task, "pread64", fd=fd, buf=buf,
                                      offset=0)
            yield from kernel.syscall(task, "close", fd=fd)

        env.run(until=env.process(scenario()))
        io = process.io.as_dict()
        assert io == {"rchar": 80, "wchar": 150, "syscr": 1, "syscw": 2}

    def test_failed_syscalls_counted_without_bytes(self):
        env = Environment()
        kernel = Kernel(env)
        process = kernel.spawn_process("app")
        task = process.threads[0]

        def scenario():
            # write to a bad fd: counted as an attempt, no bytes.
            yield from kernel.syscall(task, "write", fd=99, data=b"x")

        env.run(until=env.process(scenario()))
        assert process.io.syscw == 1
        assert process.io.wchar == 0

    def test_threads_share_process_accounting(self):
        env = Environment()
        kernel = Kernel(env)
        process = kernel.spawn_process("app")
        t1 = process.threads[0]
        t2 = kernel.spawn_thread(process, comm="worker")

        def scenario():
            fd = yield from kernel.syscall(t1, "open", path="/f",
                                           flags=O_CREAT | O_RDWR)
            yield from kernel.syscall(t1, "write", fd=fd, data=b"a" * 10)
            yield from kernel.syscall(t2, "write", fd=fd, data=b"b" * 20)

        env.run(until=env.process(scenario()))
        assert process.io.wchar == 30
        assert process.io.syscw == 2


def seed_spiky_run(store):
    """Benchmark records + trace: calm window then a contended one."""
    operations = []
    # Window 0: fast ops.
    for i in range(50):
        operations.append((i * 100_000, 50_000, "read", 100))
    # Window 1 (10-20ms): slow ops.
    for i in range(20):
        operations.append((10 * MS + i * 400_000, 2_000_000, "read", 100))
    docs = []
    for i in range(50):
        docs.append({"syscall": "read", "proc_name": "db_bench", "tid": 100,
                     "pid": 1, "time": i * 100_000, "ret": 512})
    # In the spike window: compactions move lots of bytes.
    for t in range(3):
        for i in range(8):
            docs.append({"syscall": "pread64",
                         "proc_name": f"rocksdb:low{t}", "pid": 1,
                         "tid": 200 + t, "time": 10 * MS + i * 800_000,
                         "ret": 262_144})
    docs.append({"syscall": "write", "proc_name": "rocksdb:high0",
                 "pid": 1, "tid": 300, "time": 11 * MS, "ret": 4096})
    for i in range(5):
        docs.append({"syscall": "read", "proc_name": "db_bench", "tid": 100,
                     "pid": 1, "time": 10 * MS + i * MS, "ret": 512})
    store.bulk("dio_trace", docs)
    return operations


class TestBlameSpikes:
    def test_spike_window_identified_and_attributed(self):
        store = DocumentStore()
        operations = seed_spiky_run(store)
        reports = blame_spikes(store, operations, window_ns=10 * MS)
        assert len(reports) == 1
        report = reports[0]
        assert report.window_start_ns == 10 * MS
        # Compaction threads top the ranking (most bytes moved).
        assert report.top_culprits(3) == [
            "rocksdb:low0", "rocksdb:low1", "rocksdb:low2"]
        assert report.client_syscalls == 5

    def test_background_ranked_by_bytes(self):
        store = DocumentStore()
        operations = seed_spiky_run(store)
        report = blame_spikes(store, operations, window_ns=10 * MS)[0]
        moved = [activity.bytes_moved for activity in report.background]
        assert moved == sorted(moved, reverse=True)
        assert report.background[-1].proc_name == "rocksdb:high0"

    def test_no_spikes_no_reports(self):
        store = DocumentStore()
        store.ensure_index("dio_trace")
        operations = [(i * 100_000, 50_000, "read", 1) for i in range(100)]
        assert blame_spikes(store, operations, window_ns=10 * MS) == []
        assert render_blame([]) == "no latency spikes detected"

    def test_render_contains_culprits(self):
        store = DocumentStore()
        operations = seed_spiky_run(store)
        reports = blame_spikes(store, operations, window_ns=10 * MS)
        text = render_blame(reports)
        assert "rocksdb:low0" in text
        assert "spike @" in text

    def test_end_to_end_on_real_run(self):
        """On the actual RocksDB case, spikes blame rocksdb threads."""
        from repro.experiments import run_rocksdb_case
        from repro.experiments.rocksdb_case import RocksDBScale

        case = run_rocksdb_case(RocksDBScale(duration_ns=1000 * MS))
        reports = blame_spikes(case.store, case.bench.records(),
                               window_ns=100 * MS, session=case.session,
                               spike_factor=2.0)
        assert reports, "expected at least one spike"
        culprits = {name for report in reports
                    for name in report.top_culprits(3)}
        assert any(name.startswith("rocksdb:") for name in culprits)
