"""End-to-end determinism: identical runs produce identical results.

Every experiment in this repository must be exactly reproducible given
the same seeds — the property EXPERIMENTS.md relies on when recording
single-run numbers.
"""

import pytest

from repro.apps.fluentbit import FLUENTBIT_BUGGY
from repro.experiments import run_fluentbit_case, run_rocksdb_case
from repro.experiments.rocksdb_case import RocksDBScale

MS = 1_000_000


class TestFluentBitDeterminism:
    def test_identical_event_streams(self):
        def fingerprint():
            case = run_fluentbit_case(FLUENTBIT_BUGGY)
            return [(r["time"], r["proc_name"], r["syscall"], r["ret"],
                     r.get("offset"), r.get("file_tag"))
                    for r in case.figure2_rows()]

        assert fingerprint() == fingerprint()


class TestRocksDBDeterminism:
    def test_identical_bench_results(self):
        scale = RocksDBScale(duration_ns=150 * MS, key_count=5_000,
                             client_threads=4)

        def run():
            case = run_rocksdb_case(scale, trace=False)
            return (case.bench.op_count,
                    case.bench.operations[:100],
                    case.db.stats.flushes,
                    case.db.stats.compactions,
                    case.kernel.device.stats.bytes_written)

        first = run()
        second = run()
        assert first == second

    def test_different_seed_differs(self):
        def op_count(seed):
            scale = RocksDBScale(duration_ns=100 * MS, key_count=5_000,
                                 client_threads=4, seed=seed)
            return run_rocksdb_case(scale, trace=False).bench.op_count

        # Not a strict requirement, but a sanity check that the seed
        # actually feeds the workload generator.
        assert op_count(1) != op_count(2)
