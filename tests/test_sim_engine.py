"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Environment, Event, Interrupt
from repro.sim.engine import SimulationError


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0


def test_timeout_advances_clock():
    env = Environment()
    done = []

    def proc():
        yield env.timeout(100)
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [100]


def test_timeouts_fire_in_order():
    env = Environment()
    order = []

    def proc(delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    env.process(proc(300, "c"))
    env.process(proc(100, "a"))
    env.process(proc(200, "b"))
    env.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_creation_order():
    env = Environment()
    order = []

    def proc(tag):
        yield env.timeout(50)
        order.append(tag)

    for tag in ("x", "y", "z"):
        env.process(proc(tag))
    env.run()
    assert order == ["x", "y", "z"]


def test_run_until_timestamp_stops_clock():
    env = Environment()

    def proc():
        while True:
            yield env.timeout(10)

    env.process(proc())
    env.run(until=95)
    assert env.now == 95


def test_run_until_event_returns_value():
    env = Environment()

    def proc():
        yield env.timeout(5)
        return "result"

    p = env.process(proc())
    assert env.run(until=p) == "result"


def test_process_exception_propagates_through_run():
    env = Environment()

    def proc():
        yield env.timeout(1)
        raise ValueError("boom")

    p = env.process(proc())
    with pytest.raises(ValueError, match="boom"):
        env.run(until=p)


def test_event_succeed_wakes_waiter_with_value():
    env = Environment()
    trigger = env.event()
    seen = []

    def waiter():
        value = yield trigger
        seen.append(value)

    def firer():
        yield env.timeout(42)
        trigger.succeed("payload")

    env.process(waiter())
    env.process(firer())
    env.run()
    assert seen == ["payload"]


def test_event_fail_raises_in_waiter():
    env = Environment()
    trigger = env.event()
    caught = []

    def waiter():
        try:
            yield trigger
        except RuntimeError as exc:
            caught.append(str(exc))

    def firer():
        yield env.timeout(1)
        trigger.fail(RuntimeError("bad"))

    env.process(waiter())
    env.process(firer())
    env.run()
    assert caught == ["bad"]


def test_double_trigger_rejected():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_waiting_on_processed_event_resumes_immediately():
    env = Environment()
    trigger = env.event()
    trigger.succeed("early")
    seen = []

    def late_waiter():
        yield env.timeout(10)
        value = yield trigger
        seen.append((env.now, value))

    env.process(late_waiter())
    env.run()
    assert seen == [(10, "early")]


def test_process_waits_on_another_process():
    env = Environment()
    log = []

    def child():
        yield env.timeout(30)
        return "child-done"

    def parent():
        result = yield env.process(child())
        log.append((env.now, result))

    env.process(parent())
    env.run()
    assert log == [(30, "child-done")]


def test_interrupt_raises_in_process():
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(1_000_000)
        except Interrupt as exc:
            log.append((env.now, exc.cause))

    def killer(victim):
        yield env.timeout(5)
        victim.interrupt("stop")

    victim = env.process(sleeper())
    env.process(killer(victim))
    env.run()
    assert log == [(5, "stop")]


def test_interrupt_escaping_generator_finishes_process():
    env = Environment()

    def sleeper():
        yield env.timeout(1_000_000)

    victim = env.process(sleeper())

    def killer():
        yield env.timeout(3)
        victim.interrupt("shutdown")

    env.process(killer())
    env.run()
    assert victim.triggered
    assert victim.value == "shutdown"


def test_interrupt_before_first_run_is_clean():
    """Interrupting a process that never started must not leave a
    stale bootstrap event that resumes the dead process later."""
    env = Environment()
    log = []

    def never_runs():
        log.append("ran")
        yield env.timeout(1)

    def killer():
        victim = env.process(never_runs())
        victim.interrupt("early")       # same instant, before bootstrap
        yield env.timeout(10)
        return victim

    victim = env.run(until=env.process(killer()))
    assert victim.triggered
    assert victim.value == "early"
    assert log == []                    # body never executed


def test_interrupt_finished_process_is_error():
    env = Environment()

    def quick():
        yield env.timeout(1)

    p = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_any_of_fires_on_first():
    env = Environment()
    log = []

    def proc():
        t1 = env.timeout(10, "fast")
        t2 = env.timeout(20, "slow")
        result = yield env.any_of([t1, t2])
        log.append((env.now, result.of(t1)))

    env.process(proc())
    env.run()
    assert log == [(10, "fast")]


def test_all_of_waits_for_all():
    env = Environment()
    log = []

    def proc():
        t1 = env.timeout(10, "a")
        t2 = env.timeout(20, "b")
        result = yield env.all_of([t1, t2])
        log.append((env.now, len(result)))

    env.process(proc())
    env.run()
    assert log == [(20, 2)]


def test_yield_non_event_is_error():
    env = Environment()

    def bad():
        yield 42

    p = env.process(bad())
    with pytest.raises(SimulationError):
        env.run(until=p)


def test_run_all_guards_against_runaway():
    env = Environment()

    def forever():
        while True:
            yield env.timeout(1)

    env.process(forever())
    with pytest.raises(SimulationError):
        env.run_all(max_events=100)


def test_peek_returns_next_timestamp():
    env = Environment()
    env.process(iter_timeout(env, 7))
    # bootstrap event at t=0
    assert env.peek() == 0


def iter_timeout(env, delay):
    yield env.timeout(delay)
