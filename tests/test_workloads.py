"""Tests for the synthetic workload generator library."""

import numpy as np
import pytest

from repro.backend import DocumentStore
from repro.kernel import Kernel
from repro.sim import Environment
from repro.tracer import DIOTracer, TracerConfig
from repro.workloads import (bursty_writer, metadata_storm, mixed_rw,
                             random_reader, sequential_reader,
                             sequential_writer, small_appender)


@pytest.fixture()
def setup():
    env = Environment()
    kernel = Kernel(env, ncpus=2)
    task = kernel.spawn_process("wl").threads[0]
    return env, kernel, task


def run(env, gen):
    return env.run(until=env.process(gen))


class TestSequential:
    def test_writer_produces_exact_size(self, setup):
        env, kernel, task = setup
        written = run(env, sequential_writer(kernel, task, "/f",
                                             total_bytes=200_000,
                                             chunk_bytes=64 * 1024))
        assert written == 200_000
        assert kernel.vfs.resolve("/f").size == 200_000

    def test_reader_consumes_whole_file(self, setup):
        env, kernel, task = setup

        def scenario():
            yield from sequential_writer(kernel, task, "/f", 100_000)
            total = yield from sequential_reader(kernel, task, "/f",
                                                 chunk_bytes=8192)
            return total

        assert run(env, scenario()) == 100_000

    def test_periodic_fsync(self, setup):
        env, kernel, task = setup
        run(env, sequential_writer(kernel, task, "/f", 64 * 1024 * 4,
                                   chunk_bytes=64 * 1024, fsync_every=2))
        assert kernel.syscall_counts["fsync"] == 3  # 2 periodic + final

    def test_invalid_sizes(self, setup):
        env, kernel, task = setup
        with pytest.raises(ValueError):
            run(env, sequential_writer(kernel, task, "/f", -1))


class TestRandomAndMixed:
    def test_random_reader_counts(self, setup):
        env, kernel, task = setup
        rng = np.random.default_rng(3)

        def scenario():
            yield from sequential_writer(kernel, task, "/f", 256 * 1024)
            return (yield from random_reader(kernel, task, "/f", rng,
                                             requests=50))

        total = run(env, scenario())
        assert total == 50 * 4096
        assert kernel.syscall_counts["pread64"] == 50

    def test_mixed_rw_ratio(self, setup):
        env, kernel, task = setup
        rng = np.random.default_rng(5)

        def scenario():
            return (yield from mixed_rw(kernel, task, "/f", rng,
                                        operations=200,
                                        read_fraction=0.25))

        reads, writes = run(env, scenario())
        assert reads + writes == 200
        assert reads < writes

    def test_mixed_rw_validation(self, setup):
        env, kernel, task = setup
        rng = np.random.default_rng(5)
        with pytest.raises(ValueError):
            run(env, mixed_rw(kernel, task, "/f", rng, 10,
                              read_fraction=1.5))


class TestSpecialPatterns:
    def test_small_appender_grows_file(self, setup):
        env, kernel, task = setup
        total = run(env, small_appender(kernel, task, "/log", appends=100,
                                        record_bytes=80))
        assert total == 8000
        assert kernel.vfs.resolve("/log").size == 8000

    def test_metadata_storm_leaves_no_files(self, setup):
        env, kernel, task = setup
        run(env, metadata_storm(kernel, task, "/churn", files=20))
        assert kernel.vfs.listdir("/churn") == []
        assert kernel.syscall_counts["stat"] == 80
        assert kernel.syscall_counts["rename"] == 20

    def test_bursty_writer_gaps(self, setup):
        env, kernel, task = setup
        run(env, bursty_writer(kernel, task, "/b", bursts=3,
                               writes_per_burst=10, gap_ns=50_000_000))
        assert env.now >= 2 * 50_000_000
        assert kernel.syscall_counts["write"] == 30


class TestWorkloadsUnderTracing:
    def test_generators_compose_with_the_tracer(self, setup):
        env, kernel, task = setup
        store = DocumentStore()
        tracer = DIOTracer(env, kernel, store,
                           TracerConfig(session_name="wl"))
        tracer.attach()
        rng = np.random.default_rng(1)

        def scenario():
            yield from sequential_writer(kernel, task, "/data", 64 * 1024)
            yield from random_reader(kernel, task, "/data", rng, 20)
            yield from metadata_storm(kernel, task, "/meta", files=5)
            yield from tracer.shutdown()

        run(env, scenario())
        assert tracer.stats.shipped == sum(kernel.syscall_counts.values())
        # Pattern classification works on the generated traffic.
        from repro.analysis import classify_file_accesses

        patterns = {p.file_path: p
                    for p in classify_file_accesses(store, "dio_trace")}
        assert patterns["/data"].reads >= 20
