"""docs/METRICS.md is generated — fail when it drifts from the code."""

import pathlib

from repro.telemetry.reference import (build_reference_registry,
                                       metrics_reference_markdown)

DOCS = pathlib.Path(__file__).resolve().parents[1] / "docs" / "METRICS.md"


class TestMetricsReference:
    def test_committed_document_matches_registry(self):
        """Adding, removing, or re-describing a metric must come with
        a regenerated docs/METRICS.md (see the file header)."""
        expected = metrics_reference_markdown(build_reference_registry())
        assert DOCS.read_text(encoding="utf-8") == expected

    def test_reference_registry_covers_core_subsystems(self):
        registry = build_reference_registry()
        names = {family.name for family in registry.collect()}
        for required in (
            "dio_filter_accepted_total",
            "dio_ring_produced_total",
            "dio_consumer_bulk_attempts_total",
            "dio_shipper_events_total",
            "dio_breaker_state",
            "dio_spill_pending_records",
            "dio_faults_injected_total",
            "dio_store_documents_indexed_total",
            "dio_correlator_tags_resolved_total",
            "dio_health_retry_rate",
        ):
            assert required in names, f"{required} missing from reference run"

    def test_every_metric_has_help_text(self):
        for family in build_reference_registry().collect():
            assert family.help.strip(), f"{family.name} has no help text"

    def test_generation_is_deterministic(self):
        assert (metrics_reference_markdown(build_reference_registry())
                == metrics_reference_markdown(build_reference_registry()))
