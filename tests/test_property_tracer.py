"""Property-based tests for tracer completeness and fidelity.

For arbitrary workloads composed from the generator library, an
unfiltered DIO tracer with ample buffering must ship exactly one
complete event per syscall issued — no loss, no duplication, no
field corruption.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backend import DocumentStore
from repro.kernel import Kernel
from repro.sim import Environment
from repro.tracer import DIOTracer, TracerConfig
from repro.workloads import (metadata_storm, mixed_rw, random_reader,
                             sequential_reader, sequential_writer,
                             small_appender)

workload_plans = st.lists(
    st.tuples(
        st.sampled_from(["seq_write", "seq_read", "random_read",
                         "append", "metadata", "mixed"]),
        st.integers(min_value=1, max_value=12),
    ),
    min_size=1, max_size=5)


def build_workload(kernel, task, plan, rng):
    prepared = set()

    def body():
        for index, (kind, scale) in enumerate(plan):
            path = f"/wl{index}"
            if kind == "seq_write":
                yield from sequential_writer(kernel, task, path,
                                             total_bytes=scale * 8192)
            elif kind == "seq_read":
                yield from sequential_writer(kernel, task, path,
                                             total_bytes=scale * 4096)
                yield from sequential_reader(kernel, task, path)
            elif kind == "random_read":
                yield from sequential_writer(kernel, task, path,
                                             total_bytes=64 * 1024)
                yield from random_reader(kernel, task, path, rng,
                                         requests=scale)
            elif kind == "append":
                yield from small_appender(kernel, task, path,
                                          appends=scale)
            elif kind == "metadata":
                yield from metadata_storm(kernel, task, f"/dir{index}",
                                          files=scale)
            elif kind == "mixed":
                yield from mixed_rw(kernel, task, path, rng,
                                    operations=scale * 3)

    return body()


class TestTracerCompleteness:
    @given(plan=workload_plans, seed=st.integers(min_value=0, max_value=99))
    @settings(max_examples=25, deadline=None)
    def test_one_complete_event_per_syscall(self, plan, seed):
        env = Environment()
        kernel = Kernel(env, ncpus=2)
        store = DocumentStore()
        tracer = DIOTracer(env, kernel, store,
                           TracerConfig(session_name="prop"))
        task = kernel.spawn_process("wl").threads[0]
        rng = np.random.default_rng(seed)
        tracer.attach()

        def main():
            yield from build_workload(kernel, task, plan, rng)
            yield from tracer.shutdown()

        env.run(until=env.process(main()))

        issued = sum(kernel.syscall_counts.values())
        assert tracer.stats.shipped == issued
        assert store.count("dio_trace") == issued
        # Per-syscall counts match the kernel's ground truth.
        response = store.search("dio_trace", size=0, aggs={
            "s": {"terms": {"field": "syscall", "size": 50}}})
        traced = {b["key"]: b["doc_count"]
                  for b in response["aggregations"]["s"]["buckets"]}
        assert traced == {k: v for k, v in kernel.syscall_counts.items()
                          if v}

    @given(plan=workload_plans)
    @settings(max_examples=15, deadline=None)
    def test_events_well_formed_and_time_ordered_per_thread(self, plan):
        env = Environment()
        kernel = Kernel(env, ncpus=2)
        store = DocumentStore()
        tracer = DIOTracer(env, kernel, store,
                           TracerConfig(session_name="prop"))
        task = kernel.spawn_process("wl").threads[0]
        rng = np.random.default_rng(7)
        tracer.attach()

        def main():
            yield from build_workload(kernel, task, plan, rng)
            yield from tracer.shutdown()

        env.run(until=env.process(main()))
        hits = store.search("dio_trace", sort=["time"],
                            size=None)["hits"]["hits"]
        previous_exit = 0
        for hit in hits:
            source = hit["_source"]
            assert source["time"] <= source["time_exit"]
            assert source["tid"] == task.tid
            # One thread: syscalls never overlap.
            assert source["time"] >= previous_exit
            previous_exit = source["time_exit"]
