"""Differential classic-vs-io_uring battery (Hypothesis).

The same seeded log workload ported to classic syscalls and to
io_uring submission must have **identical logical I/O effects** —
file bytes, pagecache dirty state, byte accounting — while differing
exactly in the documented blind spot: per-op syscalls collapse into
doorbells, and only the ring-aware tracer mode recovers the per-op
events.  The ring-aware capture must also round-trip byte-identically
through persistence, queries, and aggregations.
"""

import hashlib

from hypothesis import given, settings, strategies as st

from repro.apps.uringlog import UringLogApp
from repro.backend import DocumentStore
from repro.backend.persistence import export_session, import_session
from repro.kernel import Kernel
from repro.sim import Environment
from repro.tracer import DIOTracer, TracerConfig

workload_shapes = st.tuples(
    st.integers(min_value=1, max_value=6),     # batches
    st.integers(min_value=1, max_value=6),     # batch_size
    st.sampled_from((32, 256, 1000)),          # record_size
    st.integers(min_value=1, max_value=4),     # fsync_every
    st.booleans(),                             # use_registered
)


def _run(mode, shape, ring_mode=None):
    """One app run; returns (kernel, app, store or None)."""
    batches, batch_size, record_size, fsync_every, use_registered = shape
    env = Environment()
    kernel = Kernel(env)
    app = UringLogApp(kernel, mode=mode, batches=batches,
                      batch_size=batch_size, record_size=record_size,
                      fsync_every=fsync_every,
                      use_registered=use_registered)
    store = None
    tracer = None
    if ring_mode is not None:
        store = DocumentStore()
        tracer = DIOTracer(env, kernel, store,
                           TracerConfig(session_name="uring-diff",
                                        ring_mode=ring_mode))
        tracer.attach()

    def main():
        yield env.process(app.run())
        if tracer is not None:
            yield from tracer.shutdown()

    env.run(until=env.process(main()))
    return kernel, app, store


def _state(kernel, app):
    """The logical-effect fingerprint both ports must agree on."""
    inode = kernel.vfs.resolve(app.path)
    data = bytes(inode.data)
    return {
        "sha256": hashlib.sha256(data).hexdigest(),
        "size": len(data),
        "dirty_blocks": kernel._cache_for(inode).dirty_blocks(inode.ino),
        "wchar": app.process.io.wchar,
        "rchar": app.process.io.rchar,
        "records": app.records_confirmed,
        "fsyncs": app.fsyncs_confirmed,
    }


class TestPortEquivalence:
    @given(shape=workload_shapes)
    @settings(max_examples=25, deadline=None)
    def test_identical_logical_effects(self, shape):
        ck, capp, _ = _run("classic", shape)
        uk, uapp, _ = _run("uring", shape)
        assert _state(ck, capp) == _state(uk, uapp)
        assert not capp.errors and not uapp.errors

    @given(shape=workload_shapes)
    @settings(max_examples=15, deadline=None)
    def test_blind_spot_is_exactly_the_per_op_surface(self, shape):
        """Store-visible counts match modulo the documented blind spot.

        The classic port's per-op syscalls (pwrite64/fsync) appear in
        the ring port only as ``uring_*`` events — and only under the
        ring-aware tracer; the doorbell syscalls are all that remain
        visible to a classic tracer.
        """
        batches, batch_size, _, fsync_every, use_registered = shape
        _, capp, cstore = _run("classic", shape, ring_mode="classic")
        _, uapp, ustore = _run("uring", shape, ring_mode="ring-aware")

        def counts(store):
            response = store.search("dio_trace", size=0, aggs={
                "s": {"terms": {"field": "syscall", "size": 50}}})
            return {b["key"]: b["doc_count"]
                    for b in response["aggregations"]["s"]["buckets"]}

        classic = counts(cstore)
        ring = counts(ustore)
        # Per-op I/O translates one-to-one into uring_* events.
        assert ring.get("uring_write", 0) == classic.get("pwrite64", 0)
        assert ring.get("uring_fsync", 0) == classic.get("fsync", 0)
        # The ring port's classic-visible surface is the control plane.
        assert ring.get("io_uring_enter", 0) == batches
        assert ring.get("io_uring_setup", 0) == 1
        assert "pwrite64" not in ring and "fsync" not in ring
        # Both ports open and close the same log file.
        assert ring.get("openat") == classic.get("openat") == 1

    @given(shape=workload_shapes)
    @settings(max_examples=10, deadline=None)
    def test_classic_tracer_on_ring_port_sees_no_per_op_events(
            self, shape):
        _, app, store = _run("uring", shape, ring_mode="classic")
        hits = store.search("dio_trace", size=None)["hits"]["hits"]
        names = {hit["_source"]["syscall"] for hit in hits}
        assert not any(name.startswith("uring_") for name in names)
        assert "io_uring_enter" in names
        # The blind spot: the app confirmed every record, yet not one
        # write is visible as an event.
        assert app.records_confirmed == app.total_records


class TestRingAwareRoundTrip:
    @given(shape=workload_shapes)
    @settings(max_examples=10, deadline=None)
    def test_capture_roundtrips_through_persistence(self, shape,
                                                    tmp_path_factory):
        _, app, store = _run("uring", shape, ring_mode="ring-aware")
        docs = sorted(
            (source for _, source in store.scan("dio_trace",
                                                {"match_all": {}})),
            key=lambda s: (s["tid"], s["time"], s["syscall"]))
        tmp = tmp_path_factory.mktemp("uring-rt")
        path = tmp / "capture.jsonl"
        exported = export_session(store, "uring-diff", path,
                                  index="dio_trace")
        assert exported == len(docs)

        fresh = DocumentStore()
        import_session(fresh, path, index="dio_trace",
                       rename_to="uring-diff")
        redocs = sorted(
            (source for _, source in fresh.scan("dio_trace",
                                                {"match_all": {}})),
            key=lambda s: (s["tid"], s["time"], s["syscall"]))
        assert redocs == docs

        # Queries and aggregations agree before and after the trip.
        query = {"term": {"syscall": "uring_write"}}
        assert (fresh.count("dio_trace", query)
                == store.count("dio_trace", query)
                == app.records_confirmed)
        aggs = {"s": {"terms": {"field": "syscall", "size": 50}}}
        assert (fresh.search("dio_trace", size=0, aggs=aggs)
                ["aggregations"]
                == store.search("dio_trace", size=0, aggs=aggs)
                ["aggregations"])
