"""Property-based equivalence: planner-accelerated scans vs naive scans.

The planner's contract is behavioural invisibility — for any query the
DSL accepts, a planner-backed scan must return exactly the documents a
naive compile-and-filter pass returns, in the same (insertion) order.
These tests generate random documents and random query trees and hold
the planner (and the legacy heuristic) to that oracle.
"""

from hypothesis import given, settings, strategies as st

from repro.backend import DocumentStore
from repro.backend.naive import naive_scan

# --- document strategies ----------------------------------------------------

_PATHS = ["/tmp/a", "/tmp/b", "/tmp/db/wal", "/var/log/x", "/va", ""]
_SYSCALLS = ["read", "write", "openat", "close"]

documents = st.fixed_dictionaries(
    {},
    optional={
        "syscall": st.sampled_from(_SYSCALLS),
        "ret": st.integers(min_value=-40, max_value=40),
        "time": st.integers(min_value=0, max_value=500),
        "path": st.sampled_from(_PATHS),
        "flag": st.booleans(),
        "odd": st.one_of(st.none(), st.booleans(),
                         st.integers(min_value=0, max_value=3),
                         st.sampled_from(["read", "/tmp/a"])),
    },
)

# --- query-tree strategies --------------------------------------------------

_FIELDS = ["syscall", "ret", "time", "path", "flag", "odd", "missing"]
_VALUES = st.one_of(
    st.sampled_from(_SYSCALLS + _PATHS),
    st.integers(min_value=-45, max_value=45),
    st.booleans(),
)
_BOUNDS = st.one_of(st.integers(min_value=-45, max_value=510),
                    st.sampled_from(_PATHS))

term_queries = st.builds(lambda f, v: {"term": {f: v}},
                         st.sampled_from(_FIELDS), _VALUES)
terms_queries = st.builds(lambda f, vs: {"terms": {f: vs}},
                          st.sampled_from(_FIELDS),
                          st.lists(_VALUES, max_size=3))
range_queries = st.builds(
    lambda f, ops: {"range": {f: ops}},
    st.sampled_from(_FIELDS),
    st.dictionaries(st.sampled_from(["gte", "gt", "lte", "lt"]), _BOUNDS,
                    min_size=1, max_size=2))
prefix_queries = st.builds(lambda f, p: {"prefix": {f: p}},
                           st.sampled_from(_FIELDS),
                           st.sampled_from(["/tmp", "/tmp/", "/va", "", "r"]))
exists_queries = st.builds(lambda f: {"exists": {"field": f}},
                           st.sampled_from(_FIELDS))
wildcard_queries = st.builds(lambda f, p: {"wildcard": {f: p}},
                             st.sampled_from(_FIELDS),
                             st.sampled_from(["/tmp/*", "*a*", "read"]))
leaf_queries = st.one_of(term_queries, terms_queries, range_queries,
                         prefix_queries, exists_queries, wildcard_queries,
                         st.just({"match_all": {}}))


def _bool_of(children):
    sections = st.lists(children, max_size=3)
    return st.builds(
        lambda must, should, must_not, filter_, msm: {"bool": {
            key: value for key, value in [
                ("must", must), ("should", should),
                ("must_not", must_not), ("filter", filter_),
                ("minimum_should_match", msm)]
            if value not in ([], None)}},
        sections, sections, sections, sections,
        st.one_of(st.none(), st.integers(min_value=0, max_value=3)))


queries = st.recursive(leaf_queries, _bool_of, max_leaves=8)


def _loaded(docs, plan_mode):
    store = DocumentStore(plan_mode=plan_mode)
    store.ensure_index("events", indexed_fields=("syscall", "time", "path"))
    store.bulk("events", [dict(doc) for doc in docs])
    return store


class TestPlannerEquivalence:
    @given(docs=st.lists(documents, max_size=30), query=queries)
    @settings(max_examples=250, deadline=None)
    def test_planner_scan_matches_naive_scan(self, docs, query):
        store = _loaded(docs, "planner")
        oracle = naive_scan(store._index("events"), query)
        assert store.scan("events", query) == oracle
        assert store.count("events", query) == len(oracle)
        assert sorted(store.stream("events", query)) == sorted(oracle)

    @given(docs=st.lists(documents, max_size=30), query=queries)
    @settings(max_examples=100, deadline=None)
    def test_legacy_scan_matches_naive_scan(self, docs, query):
        store = _loaded(docs, "legacy")
        oracle = naive_scan(store._index("events"), query)
        assert store.scan("events", query) == oracle

    @given(docs=st.lists(documents, max_size=25), query=queries,
           data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_equivalence_survives_updates_and_deletes(self, docs, query, data):
        store = _loaded(docs, "planner")
        index = store._index("events")
        if docs:
            victim = str(data.draw(st.integers(1, len(docs))))
            store.update_docs("events", [victim],
                              {"time": data.draw(st.integers(0, 500)),
                               "path": data.draw(st.sampled_from(_PATHS))})
            if data.draw(st.booleans()):
                index.delete(victim)
        assert store.scan("events", query) == naive_scan(index, query)
