"""The benchmark baseline loader must fail loudly, never silently.

``benchmarks/_baseline.py`` guards the ``BENCH_*.json`` trajectory
files: a malformed baseline must abort the job with a clear message
instead of silently restarting the perf history (the regression this
suite pins down).  The module lives outside the installed package, so
it is loaded by path here.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_MODULE_PATH = (Path(__file__).resolve().parent.parent
                / "benchmarks" / "_baseline.py")


@pytest.fixture(scope="module")
def baseline():
    spec = importlib.util.spec_from_file_location("_baseline",
                                                  _MODULE_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_missing_baseline_starts_fresh(baseline, tmp_path):
    assert baseline.load_trajectory(tmp_path / "BENCH_x.json") == []


def test_malformed_json_fails_loudly(baseline, tmp_path):
    path = tmp_path / "BENCH_x.json"
    path.write_text('[{"run": 1}', encoding="utf-8")  # truncated
    with pytest.raises(baseline.BaselineError) as excinfo:
        baseline.load_trajectory(path)
    message = str(excinfo.value)
    assert "BENCH_x.json" in message
    assert "refusing to overwrite" in message


def test_non_list_baseline_fails_loudly(baseline, tmp_path):
    path = tmp_path / "BENCH_x.json"
    path.write_text('{"run": 1}', encoding="utf-8")
    with pytest.raises(baseline.BaselineError) as excinfo:
        baseline.load_trajectory(path)
    assert "JSON list" in str(excinfo.value)


def test_append_preserves_history(baseline, tmp_path):
    path = tmp_path / "BENCH_x.json"
    baseline.append_trajectory(path, {"run": 1})
    baseline.append_trajectory(path, {"run": 2})
    assert json.loads(path.read_text()) == [{"run": 1}, {"run": 2}]


def test_append_refuses_to_clobber_corrupt_baseline(baseline, tmp_path):
    path = tmp_path / "BENCH_x.json"
    path.write_text("not json", encoding="utf-8")
    with pytest.raises(baseline.BaselineError):
        baseline.append_trajectory(path, {"run": 1})
    # The corrupt file is left untouched for forensics.
    assert path.read_text() == "not json"


def test_render_handles_multi_entry_trajectories(baseline, tmp_path):
    path = tmp_path / "BENCH_x.json"
    baseline.append_trajectory(path, {"benchmark": "b", "events": 100,
                                      "speedup": 1.5})
    baseline.append_trajectory(path, {"benchmark": "b", "events": 1000000,
                                      "speedup": 2.25})
    table = baseline.render_trajectory(path)
    lines = table.splitlines()
    assert lines[0].split() == ["run", "benchmark", "events", "speedup"]
    assert len(lines) == 4                       # header + rule + 2 rows
    assert lines[2].split() == ["1", "b", "100", "1.5"]
    assert lines[3].split() == ["2", "b", "1000000", "2.25"]


def test_render_takes_the_union_of_entry_keys(baseline):
    # Benchmarks evolve across PRs: later entries may add columns (the
    # sharding curve) that earlier entries lack, and vice versa.
    table = baseline.render_trajectory([
        {"events": 10, "old_only": 1},
        {"events": 20, "curve": [{"shards": 4, "speedup": 2.1}]},
    ])
    lines = table.splitlines()
    assert lines[0].split() == ["run", "events", "old_only", "curve"]
    assert '[{"shards":4,"speedup":2.1}]' in lines[3]
    assert lines[2].split() == ["1", "10", "1"]  # absent cell stays blank


def test_render_of_missing_or_empty_trajectory(baseline, tmp_path):
    assert baseline.render_trajectory(
        tmp_path / "BENCH_x.json") == "(empty trajectory)"
    assert baseline.render_trajectory([]) == "(empty trajectory)"


def test_render_rejects_non_object_entries(baseline, tmp_path):
    path = tmp_path / "BENCH_x.json"
    path.write_text('[{"run": 1}, 7]', encoding="utf-8")
    with pytest.raises(baseline.BaselineError) as excinfo:
        baseline.render_trajectory(path)
    assert "entry #1" in str(excinfo.value)


def test_repo_baselines_render(baseline):
    # Every checked-in BENCH_*.json must render, whatever its length —
    # appending the 1M-event sharding runs must not break this.
    root = _MODULE_PATH.parent.parent
    for path in sorted(root.glob("BENCH_*.json")):
        table = baseline.render_trajectory(path)
        assert table.splitlines()[0].startswith("run"), path.name


def test_bench_files_use_the_shared_loader():
    bench_dir = _MODULE_PATH.parent
    for name in ("test_query_engine.py", "test_aggregations.py",
                 "test_resilience_pipeline.py"):
        text = (bench_dir / name).read_text(encoding="utf-8")
        assert "from _baseline import append_trajectory" in text, name
