"""The benchmark baseline loader must fail loudly, never silently.

``benchmarks/_baseline.py`` guards the ``BENCH_*.json`` trajectory
files: a malformed baseline must abort the job with a clear message
instead of silently restarting the perf history (the regression this
suite pins down).  The module lives outside the installed package, so
it is loaded by path here.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_MODULE_PATH = (Path(__file__).resolve().parent.parent
                / "benchmarks" / "_baseline.py")


@pytest.fixture(scope="module")
def baseline():
    spec = importlib.util.spec_from_file_location("_baseline",
                                                  _MODULE_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_missing_baseline_starts_fresh(baseline, tmp_path):
    assert baseline.load_trajectory(tmp_path / "BENCH_x.json") == []


def test_malformed_json_fails_loudly(baseline, tmp_path):
    path = tmp_path / "BENCH_x.json"
    path.write_text('[{"run": 1}', encoding="utf-8")  # truncated
    with pytest.raises(baseline.BaselineError) as excinfo:
        baseline.load_trajectory(path)
    message = str(excinfo.value)
    assert "BENCH_x.json" in message
    assert "refusing to overwrite" in message


def test_non_list_baseline_fails_loudly(baseline, tmp_path):
    path = tmp_path / "BENCH_x.json"
    path.write_text('{"run": 1}', encoding="utf-8")
    with pytest.raises(baseline.BaselineError) as excinfo:
        baseline.load_trajectory(path)
    assert "JSON list" in str(excinfo.value)


def test_append_preserves_history(baseline, tmp_path):
    path = tmp_path / "BENCH_x.json"
    baseline.append_trajectory(path, {"run": 1})
    baseline.append_trajectory(path, {"run": 2})
    assert json.loads(path.read_text()) == [{"run": 1}, {"run": 2}]


def test_append_refuses_to_clobber_corrupt_baseline(baseline, tmp_path):
    path = tmp_path / "BENCH_x.json"
    path.write_text("not json", encoding="utf-8")
    with pytest.raises(baseline.BaselineError):
        baseline.append_trajectory(path, {"run": 1})
    # The corrupt file is left untouched for forensics.
    assert path.read_text() == "not json"


def test_bench_files_use_the_shared_loader():
    bench_dir = _MODULE_PATH.parent
    for name in ("test_query_engine.py", "test_aggregations.py",
                 "test_resilience_pipeline.py"):
        text = (bench_dir / name).read_text(encoding="utf-8")
        assert "from _baseline import append_trajectory" in text, name
