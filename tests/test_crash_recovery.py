"""Crash-recovery behaviour of the persistence layers.

Unit-level counterparts to the DST harness's torn-file checks: the
spill WAL (:mod:`repro.tracer.spill`) and the session files
(:mod:`repro.backend.persistence`) must survive truncation at
arbitrary byte boundaries, duplicate replay, and corrupt headers —
keeping every complete record and dropping only the torn tail.
"""

import json

import pytest

from repro.backend import DocumentStore
from repro.backend.persistence import (SessionError, export_session,
                                       import_session, recover_session)
from repro.dst import Scenario, generate
from repro.dst.runner import execute_pipeline
from repro.tracer.spill import WAL_FORMAT, SpillWAL

# ----------------------------------------------------------------------
# Spill WAL durability


def _wal_with_segments() -> SpillWAL:
    wal = SpillWAL()
    wal.append([{"syscall": "write", "tid": 1, "time": 10}], now_ns=100)
    wal.append([{"syscall": "read", "tid": 2, "time": 20},
                {"syscall": "close", "tid": 2, "time": 30}],
               now_ns=200, reason="breaker-open")
    return wal


def test_spill_wal_round_trips():
    wal = _wal_with_segments()
    recovered, report = SpillWAL.recover(wal.to_bytes())
    assert report["header_ok"]
    assert report["segments_recovered"] == 2
    assert report["records_recovered"] == 3
    assert report["torn_lines_dropped"] == 0
    assert [s.docs for s in recovered._segments] == \
        [s.docs for s in wal._segments]
    assert [s.reason for s in recovered._segments] == \
        ["retries-exhausted", "breaker-open"]
    # Sequence numbering continues where the old WAL left off.
    assert recovered._next_seq == wal._next_seq


@pytest.mark.parametrize("cut_back", range(1, 40))
def test_spill_wal_survives_any_truncation(cut_back):
    blob = _wal_with_segments().to_bytes()
    if cut_back >= len(blob):
        pytest.skip("cut longer than file")
    recovered, report = SpillWAL.recover(blob[:-cut_back])
    # Recovery never raises and never invents segments.
    assert report["segments_recovered"] <= 2
    assert recovered.pending_batches == report["segments_recovered"]
    for segment in recovered._segments:
        assert segment.docs  # no empty/garbled segment survives


def test_spill_wal_mid_record_truncation_drops_only_tail():
    blob = _wal_with_segments().to_bytes()
    lines = blob.decode("utf-8").rstrip("\n").split("\n")
    # Cut into the middle of the second segment's line.
    keep = "\n".join(lines[:2]) + "\n" + lines[2][: len(lines[2]) // 2]
    recovered, report = SpillWAL.recover(keep.encode("utf-8"))
    assert report["segments_recovered"] == 1
    assert report["torn_lines_dropped"] == 1
    assert recovered._segments[0].docs[0]["syscall"] == "write"


def test_spill_wal_duplicate_replay_applies_once():
    blob = _wal_with_segments().to_bytes()
    lines = blob.decode("utf-8").rstrip("\n").split("\n")
    # A crashed appender may rewrite the last segment on restart.
    doubled = "\n".join(lines + [lines[-1]]) + "\n"
    recovered, report = SpillWAL.recover(doubled.encode("utf-8"))
    assert report["segments_recovered"] == 2
    assert report["duplicates_dropped"] == 1
    assert recovered.pending_records == 3


def test_spill_wal_recovers_empty_file():
    recovered, report = SpillWAL.recover(b"")
    assert not report["header_ok"]
    assert recovered.pending_batches == 0
    # The recovered WAL is usable.
    recovered.append([{"x": 1}], now_ns=0)
    assert recovered.pending_records == 1


def test_spill_wal_rejects_corrupt_header():
    wal = _wal_with_segments()
    blob = wal.to_bytes()
    # Flip the header's format marker: nothing after it is trusted.
    bad = blob.replace(WAL_FORMAT.encode(), b"not-a-spill-wal", 1)
    recovered, report = SpillWAL.recover(bad)
    assert not report["header_ok"]
    assert recovered.pending_batches == 0


def test_spill_wal_header_only_garbage():
    recovered, report = SpillWAL.recover(b"\x00\xff garbage \x7f")
    assert not report["header_ok"]
    assert recovered.pending_batches == 0


# ----------------------------------------------------------------------
# Session file recovery


def _store_with_session(n: int = 6) -> DocumentStore:
    store = DocumentStore()
    store.ensure_index("dio_trace",
                       indexed_fields=("syscall", "session", "time"))
    docs = [{"syscall": "write", "tid": 7, "time": 100 + i,
             "ret": 64, "pid": 7, "proc_name": "w",
             "session": "cap"} for i in range(n)]
    store.bulk("dio_trace", docs)
    return store


def test_import_session_rejects_corrupt_data_line(tmp_path):
    path = tmp_path / "s.jsonl"
    export_session(_store_with_session(), "cap", path)
    blob = path.read_text(encoding="utf-8")
    lines = blob.rstrip("\n").split("\n")
    lines[3] = lines[3][: len(lines[3]) // 2]  # tear one line mid-record
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    fresh = DocumentStore()
    with pytest.raises(SessionError) as excinfo:
        import_session(fresh, path)
    # The strict importer names the corrupt line instead of leaking a
    # raw JSONDecodeError.
    assert "corrupt data line 4" in str(excinfo.value)


def test_import_session_rejects_non_object_line(tmp_path):
    path = tmp_path / "s.jsonl"
    export_session(_store_with_session(), "cap", path)
    blob = path.read_text(encoding="utf-8")
    lines = blob.rstrip("\n").split("\n")
    lines[2] = "[1, 2, 3]"
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    with pytest.raises(SessionError):
        import_session(DocumentStore(), path)


def test_recover_session_tolerates_mid_record_truncation(tmp_path):
    path = tmp_path / "s.jsonl"
    export_session(_store_with_session(6), "cap", path)
    blob = path.read_bytes()
    torn = tmp_path / "torn.jsonl"
    torn.write_bytes(blob[: len(blob) - len(blob) // 4])
    store = DocumentStore()
    report = recover_session(store, torn)
    assert report["header_ok"]
    assert 0 < report["imported"] < 6
    assert report["count_mismatch"]  # header promised 6
    assert store.count("dio_trace") == report["imported"]


def test_recover_session_drops_duplicates_within_file(tmp_path):
    path = tmp_path / "s.jsonl"
    export_session(_store_with_session(4), "cap", path)
    lines = path.read_text(encoding="utf-8").rstrip("\n").split("\n")
    doubled = "\n".join([lines[0]] + lines[1:] + lines[1:]) + "\n"
    dup = tmp_path / "dup.jsonl"
    dup.write_text(doubled, encoding="utf-8")
    store = DocumentStore()
    report = recover_session(store, dup)
    assert report["imported"] == 4
    assert report["dropped_duplicates"] == 4
    assert store.count("dio_trace") == 4


def test_recover_session_corrupt_header_imports_nothing(tmp_path):
    path = tmp_path / "s.jsonl"
    export_session(_store_with_session(3), "cap", path)
    blob = path.read_text(encoding="utf-8")
    bad = tmp_path / "bad.jsonl"
    bad.write_text("not json at all\n" + blob.split("\n", 1)[1],
                   encoding="utf-8")
    store = DocumentStore()
    report = recover_session(store, bad)
    assert not report["header_ok"]
    assert report["imported"] == 0
    # Nothing was imported, so the index was never even created.
    assert "dio_trace" not in store.index_names()


def test_recover_session_empty_file(tmp_path):
    empty = tmp_path / "empty.jsonl"
    empty.write_bytes(b"")
    report = recover_session(DocumentStore(), empty)
    assert not report["header_ok"]
    assert report["imported"] == 0


def test_recover_session_rename(tmp_path):
    path = tmp_path / "s.jsonl"
    export_session(_store_with_session(3), "cap", path)
    store = DocumentStore()
    report = recover_session(store, path, rename_to="relabelled")
    assert report["imported"] == 3
    assert store.count("dio_trace",
                       {"term": {"session": "relabelled"}}) == 3


# ----------------------------------------------------------------------
# Consumer kill/restart (driven through the DST runner)


def _crashing_consumer_scenario() -> Scenario:
    from repro.kernel.syscalls import O_CREAT, O_WRONLY

    ops = [{"sc": "open", "p": 0, "fl": O_CREAT | O_WRONLY}]
    ops += [{"sc": "write", "f": 0, "n": 64, "d": 150_000}
            for _ in range(20)]
    ops += [{"sc": "close", "f": 0, "d": 150_000}]
    return Scenario(seed=990002, ncpus=1, batch_size=4,
                    consumer_crashes=[1_000_000],
                    consumer_restart_delay_ns=500_000,
                    processes=[{"name": "w", "traced": True,
                                "ops": ops}])


def test_consumer_kill_and_restart_accounts_for_losses():
    run = execute_pipeline(_crashing_consumer_scenario())
    stats = run.tracer.stats
    produced = run.tracer.ring.stats.produced
    # Whatever was staged at kill time is counted, never silently gone.
    assert stats.shipped + stats.crash_lost == produced
    assert len(run.docs) == stats.shipped
    # The restarted consumer shipped the post-crash events.
    assert stats.shipped > 0


def test_consumer_kill_is_idempotent():
    from repro.backend import DocumentStore as Store
    from repro.kernel.syscalls import Kernel
    from repro.sim import Environment
    from repro.tracer import DIOTracer, TracerConfig

    env = Environment()
    kernel = Kernel(env, ncpus=1)
    tracer = DIOTracer(env, kernel, Store(), TracerConfig())
    tracer.attach()

    def main():
        yield env.timeout(1_000)
        tracer.kill_consumer()
        assert tracer.kill_consumer() == 0  # second kill is a no-op
        tracer.restart_consumer()
        with pytest.raises(RuntimeError):
            tracer.restart_consumer()  # double restart refused
        yield from tracer.shutdown()

    env.run(until=env.process(main()))


def test_dst_seed_with_consumer_and_store_crashes_is_clean():
    # Seed 18 schedules both crash kinds; the full harness (including
    # exactly-once and recovery invariants) must hold.
    scenario = generate(18)
    assert scenario.consumer_crashes and scenario.store_crashes
    run = execute_pipeline(scenario)
    assert run.crashing is not None
    assert run.crashing.rebuilds_consistent


def test_store_wal_contains_exactly_stored_docs():
    scenario = generate(18)
    run = execute_pipeline(scenario)
    journal_docs = sum(
        len(json.loads(line)["docs"]) for line in run.crashing._journal)
    # Every accepted bulk is journaled before being acknowledged.
    assert journal_docs == len(run.docs)
