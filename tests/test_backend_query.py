"""Unit tests for the query DSL."""

import pytest

from repro.backend.query import (QueryError, compile_query, get_field,
                                 term_candidates)

DOC = {
    "syscall": "write",
    "ret": 26,
    "proc_name": "fluent-bit",
    "args": {"path": "/tmp/app.log", "fd": 3},
    "time": 1000,
}


def matches(query, doc=DOC):
    return compile_query(query)(doc)


class TestGetField:
    def test_flat_field(self):
        assert get_field(DOC, "syscall") == "write"

    def test_dotted_field(self):
        assert get_field(DOC, "args.path") == "/tmp/app.log"

    def test_missing_field_is_none(self):
        assert get_field(DOC, "nope") is None
        assert get_field(DOC, "args.nope") is None
        assert get_field(DOC, "syscall.sub") is None

    def test_literal_dotted_key_preferred(self):
        doc = {"a.b": 1, "a": {"b": 2}}
        assert get_field(doc, "a.b") == 1


class TestClauses:
    def test_match_all(self):
        assert matches({"match_all": {}})
        assert matches(None)
        assert matches({})

    def test_term(self):
        assert matches({"term": {"syscall": "write"}})
        assert not matches({"term": {"syscall": "read"}})
        assert matches({"term": {"args.fd": 3}})

    def test_term_with_value_wrapper(self):
        assert matches({"term": {"syscall": {"value": "write"}}})

    def test_terms(self):
        assert matches({"terms": {"syscall": ["read", "write"]}})
        assert not matches({"terms": {"syscall": ["open", "close"]}})

    def test_range(self):
        assert matches({"range": {"ret": {"gte": 26}}})
        assert matches({"range": {"ret": {"gt": 25, "lt": 27}}})
        assert not matches({"range": {"ret": {"lt": 26}}})
        assert not matches({"range": {"missing": {"gte": 0}}})

    def test_range_type_mismatch_is_false(self):
        assert not matches({"range": {"syscall": {"gte": 5}}})

    def test_exists(self):
        assert matches({"exists": {"field": "args.path"}})
        assert not matches({"exists": {"field": "file_path"}})

    def test_wildcard(self):
        assert matches({"wildcard": {"proc_name": "fluent*"}})
        assert matches({"wildcard": {"args.path": "/tmp/*.log"}})
        assert not matches({"wildcard": {"proc_name": "rocksdb*"}})

    def test_prefix(self):
        assert matches({"prefix": {"args.path": "/tmp/"}})
        assert not matches({"prefix": {"args.path": "/var/"}})


class TestBool:
    def test_must_all_required(self):
        query = {"bool": {"must": [
            {"term": {"syscall": "write"}},
            {"range": {"ret": {"gt": 0}}},
        ]}}
        assert matches(query)
        query["bool"]["must"].append({"term": {"proc_name": "app"}})
        assert not matches(query)

    def test_filter_behaves_like_must(self):
        assert matches({"bool": {"filter": [{"term": {"ret": 26}}]}})

    def test_must_not(self):
        assert matches({"bool": {"must_not": [{"term": {"syscall": "read"}}]}})
        assert not matches({"bool": {"must_not": [{"term": {"syscall": "write"}}]}})

    def test_pure_should_requires_one_match(self):
        assert matches({"bool": {"should": [
            {"term": {"syscall": "read"}},
            {"term": {"syscall": "write"}},
        ]}})
        assert not matches({"bool": {"should": [
            {"term": {"syscall": "read"}},
            {"term": {"syscall": "open"}},
        ]}})

    def test_minimum_should_match(self):
        query = {"bool": {
            "should": [
                {"term": {"syscall": "write"}},
                {"term": {"ret": 26}},
                {"term": {"proc_name": "nope"}},
            ],
            "minimum_should_match": 2,
        }}
        assert matches(query)
        query["bool"]["minimum_should_match"] = 3
        assert not matches(query)

    def test_single_clause_as_dict(self):
        assert matches({"bool": {"must": {"term": {"syscall": "write"}}}})

    def test_nested_bool(self):
        query = {"bool": {"must": [
            {"bool": {"should": [
                {"term": {"proc_name": "fluent-bit"}},
                {"term": {"proc_name": "app"}},
            ]}},
            {"term": {"syscall": "write"}},
        ]}}
        assert matches(query)


class TestErrors:
    def test_unknown_kind(self):
        with pytest.raises(QueryError):
            compile_query({"fuzzy": {"f": "v"}})

    def test_multi_key_query(self):
        with pytest.raises(QueryError):
            compile_query({"term": {"a": 1}, "exists": {"field": "b"}})

    def test_bad_terms_values(self):
        with pytest.raises(QueryError):
            compile_query({"terms": {"f": "not-a-list"}})

    def test_bad_range_operator(self):
        with pytest.raises(QueryError):
            compile_query({"range": {"f": {"above": 3}}})

    def test_unknown_bool_section(self):
        with pytest.raises(QueryError):
            compile_query({"bool": {"must_never": []}})


class TestTermCandidates:
    def test_term_extraction(self):
        assert term_candidates({"term": {"syscall": "read"}}) == [
            ("syscall", ["read"])]

    def test_terms_extraction(self):
        assert term_candidates({"terms": {"syscall": ["a", "b"]}}) == [
            ("syscall", ["a", "b"])]

    def test_bool_must_extraction(self):
        query = {"bool": {"must": [
            {"term": {"session": "s1"}},
            {"range": {"time": {"gte": 0}}},
        ]}}
        assert term_candidates(query) == [("session", ["s1"])]

    def test_no_candidates_for_range(self):
        assert term_candidates({"range": {"t": {"gte": 0}}}) is None

    def test_should_not_usable_for_pruning(self):
        assert term_candidates({"bool": {"should": [
            {"term": {"a": 1}}]}}) is None
