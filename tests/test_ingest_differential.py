"""Hypothesis differential suite: vectorized vs legacy ingest.

The property under test is the vectorized path's whole contract: for
*any* batch of ring records — mixed argument types, missing enrichment
fields, cross-type-equal values, unicode, huge ints — shipping through
``RecordBatch.decode`` + ``bulk_columnar`` must leave the store in a
state byte-identical to per-event ``Event.to_doc`` + ``bulk``:
same documents (values, key order, JSON bytes), same index structures,
same query answers, same aggregation responses, and the same behaviour
under subsequent mutations.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.backend import DocumentStore
from repro.tracer import RecordBatch
from repro.tracer.events import Event

SESSION = "diff-test"

INDEXED = ("syscall", "proc_name", "pid", "tid", "file_tag", "session",
           "time")

# --- ring-record strategies -------------------------------------------------

syscalls = st.sampled_from(["read", "write", "open", "close", "fsync",
                            "lseek", "stat", "writev"])
comms = st.sampled_from(["app", "worker", "ingest-0", "журнал", "db"])

#: Raw argument values covering every _sanitize_args branch: scalars,
#: buffers, buffer vectors, dropped out-params, and None.  Floats are
#: bounded and finite so JSON comparison is exact.
arg_values = st.one_of(
    st.integers(min_value=-2 ** 70, max_value=2 ** 70),
    st.booleans(),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    st.text(max_size=12),
    st.binary(max_size=32),
    st.builds(bytearray, st.binary(max_size=16)),
    st.lists(st.one_of(st.binary(max_size=8), st.integers()), max_size=4),
    st.dictionaries(st.text(max_size=4), st.integers(), max_size=3),
    st.none(),
)

records = st.builds(
    dict,
    syscall=syscalls,
    args=st.dictionaries(
        st.sampled_from(["fd", "path", "flags", "data", "statbuf", "x"]),
        arg_values, max_size=4),
    ret=st.one_of(st.integers(min_value=-40, max_value=2 ** 40),
                  st.booleans(),
                  st.integers(min_value=2 ** 65, max_value=2 ** 66)),
    pid=st.integers(min_value=1, max_value=5),
    tid=st.integers(min_value=1, max_value=9),
    comm=comms,
    enter_ns=st.integers(min_value=0, max_value=10 ** 7),
    exit_ns=st.integers(min_value=0, max_value=10 ** 7),
    file_type=st.one_of(st.none(),
                        st.sampled_from(["regular", "fifo", "socket"])),
    offset=st.one_of(st.none(), st.integers(min_value=0,
                                            max_value=2 ** 40)),
    file_tag=st.one_of(st.none(), st.sampled_from(["/a", "/b", "/c/д"])),
)


def drop_absent(record):
    """Optional enrichment keys are *absent* on real ring records,
    not present-and-None."""
    for key in ("file_type", "offset", "file_tag"):
        if record[key] is None:
            del record[key]
    return record


batches = st.lists(records.map(drop_absent), max_size=30)


def legacy_store(batch_list):
    store = DocumentStore()
    store.ensure_index("idx", indexed_fields=INDEXED)
    for batch in batch_list:
        store.bulk("idx", [Event(
            syscall=r["syscall"], args=r["args"], ret=r["ret"],
            pid=r["pid"], tid=r["tid"], proc_name=r["comm"],
            time=r["enter_ns"], time_exit=r["exit_ns"],
            file_type=r.get("file_type"), offset=r.get("offset"),
            file_tag=r.get("file_tag"), session=SESSION,
        ).to_doc() for r in batch])
    return store


def vectorized_store(batch_list):
    store = DocumentStore()
    store.ensure_index("idx", indexed_fields=INDEXED)
    for batch in batch_list:
        store.bulk_columnar("idx",
                            RecordBatch.decode(batch, session=SESSION))
    return store


def assert_stores_identical(legacy, vec):
    lhs = legacy._indices["idx"]
    rhs = vec._indices["idx"]
    rhs._flush_all_lanes()   # staged lane state must replay to parity
    # Documents: ids, insertion order, key order, exact JSON bytes.
    lhs_docs = list(legacy.scan("idx", {"match_all": {}}))
    rhs_docs = list(vec.scan("idx", {"match_all": {}}))
    assert (json.dumps(lhs_docs, sort_keys=False, default=str)
            == json.dumps(rhs_docs, sort_keys=False, default=str))
    # Index structures.
    assert lhs._rank == rhs._rank
    assert lhs._next_id == rhs._next_id
    assert set(lhs._fields) == set(rhs._fields)
    for field, index in lhs._fields.items():
        other = rhs._fields[field]
        assert index.postings == other.postings, field
        assert index.present == other.present, field


class TestDifferentialIngest:
    @given(batch_list=st.lists(batches, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_store_state_is_byte_identical(self, batch_list):
        assert_stores_identical(legacy_store(batch_list),
                                vectorized_store(batch_list))

    @given(batch_list=st.lists(batches, max_size=3), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_queries_and_aggs_agree(self, batch_list, data):
        legacy = legacy_store(batch_list)
        vec = vectorized_store(batch_list)
        syscall = data.draw(syscalls)
        lo = data.draw(st.integers(min_value=0, max_value=10 ** 7))
        queries = [
            None,
            {"term": {"syscall": syscall}},
            {"range": {"time": {"gte": lo}}},
            {"bool": {"must": [{"term": {"session": SESSION}}],
                      "must_not": [{"term": {"syscall": syscall}}]}},
        ]
        for query in queries:
            assert (legacy.count("idx", query)
                    == vec.count("idx", query)), query
            assert (list(legacy.scan("idx", query))
                    == list(vec.scan("idx", query))), query
        aggs = {
            "per_syscall": {"terms": {"field": "syscall", "size": 20}},
            "latency": {"stats": {"field": "duration_ns"}},
            "p95": {"percentiles": {"field": "duration_ns",
                                    "percents": [50, 95]}},
        }
        lhs = legacy.search("idx", size=0, aggs=aggs)["aggregations"]
        rhs = vec.search("idx", size=0, aggs=aggs)["aggregations"]
        assert json.dumps(lhs, sort_keys=True) == json.dumps(
            rhs, sort_keys=True)

    @given(batch=batches, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_mutations_after_ingest_agree(self, batch, data):
        legacy = legacy_store([batch])
        vec = vectorized_store([batch])
        syscall = data.draw(syscalls)
        # Interleave a put, an update-by-query, and a delete-by-query
        # after the bulk: the hydration barriers must leave both stores
        # observably identical, not just query-identical.
        extra = {"syscall": "late", "session": SESSION, "time": 1,
                 "pid": 1, "tid": 1, "proc_name": "tail",
                 "args": {}, "ret": 0, "time_exit": 2, "duration_ns": 1}
        for store in (legacy, vec):
            store.index_doc("idx", dict(extra), doc_id="tail-1")
            store.update_by_query("idx", {"term": {"syscall": syscall}},
                                  {"file_path": "/resolved"})
            store.delete_by_query("idx", {"term": {"tid": 9}})
        assert_stores_identical(legacy, vec)

    @given(batch=batches)
    @settings(max_examples=40, deadline=None)
    def test_batch_iterates_as_legacy_documents(self, batch):
        decoded = RecordBatch.decode(batch, session=SESSION)
        expected = [Event(
            syscall=r["syscall"], args=r["args"], ret=r["ret"],
            pid=r["pid"], tid=r["tid"], proc_name=r["comm"],
            time=r["enter_ns"], time_exit=r["exit_ns"],
            file_type=r.get("file_type"), offset=r.get("offset"),
            file_tag=r.get("file_tag"), session=SESSION,
        ).to_doc() for r in batch]
        assert list(decoded) == expected
        assert [list(doc) for doc in decoded] == [
            list(doc) for doc in expected]
