"""Tests for latency, contention, and pattern analysis."""

import pytest

from repro.analysis import (classify_file_accesses, detect_contention,
                            find_stale_offset_resumes, percentile_series,
                            small_io_files, spikes,
                            syscall_counts_by_thread)
from repro.analysis.latency import throughput_series
from repro.backend import DocumentStore

MS = 1_000_000


def ops(*tuples):
    """(start_ms, latency_us, op) shorthand -> ns records."""
    return [(start * MS, lat * 1000, op, 1) for start, lat, op in tuples]


class TestPercentileSeries:
    def test_windows_and_values(self):
        records = ops((0, 100, "read"), (1, 200, "read"),
                      (12, 1000, "read"), (13, 3000, "read"))
        series = percentile_series(records, window_ns=10 * MS, percent=50)
        assert len(series) == 2
        assert series[0].window_start_ns == 0
        assert series[0].value_ns == pytest.approx(150_000)
        assert series[1].value_ns == pytest.approx(2_000_000)
        assert series[1].op_count == 2

    def test_op_filter(self):
        records = ops((0, 100, "read"), (0, 9000, "update"))
        series = percentile_series(records, 10 * MS, 99, op="read")
        assert series[0].op_count == 1
        assert series[0].value_ns == pytest.approx(100_000)

    def test_empty(self):
        assert percentile_series([], 10 * MS) == []

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            percentile_series([], 0)
        with pytest.raises(ValueError):
            percentile_series([], 10, percent=0)

    def test_spikes_threshold(self):
        records = ops((0, 100, "read"), (10, 5000, "read"))
        series = percentile_series(records, 10 * MS)
        assert len(spikes(series, threshold_ns=1_000_000)) == 1

    def test_throughput_series(self):
        records = ops((0, 1, "read"), (1, 1, "read"), (12, 1, "read"))
        points = throughput_series(records, 10 * MS)
        assert points[0] == (0, pytest.approx(200.0))
        assert points[1] == (10 * MS, pytest.approx(100.0))


def seed_rocksdb_trace(store, index="trace"):
    """Two windows: calm (1 compaction thread), contended (5 threads)."""
    docs = []
    # Window 0 (0-10ms): busy clients, one compaction thread.
    for i in range(40):
        docs.append({"syscall": "read", "proc_name": "db_bench",
                     "tid": 100 + (i % 8), "time": i * 200_000, "ret": 512})
    docs.append({"syscall": "pread64", "proc_name": "rocksdb:low0",
                 "tid": 200, "time": 1 * MS, "ret": 4096})
    # Window 1 (10-20ms): 5 compaction threads, few client syscalls.
    for t in range(5):
        for i in range(10):
            docs.append({"syscall": "pread64",
                         "proc_name": f"rocksdb:low{t}",
                         "tid": 200 + t, "time": 10 * MS + i * 500_000,
                         "ret": 262144})
    for i in range(4):
        docs.append({"syscall": "read", "proc_name": "db_bench",
                     "tid": 100 + i, "time": 10 * MS + i * MS, "ret": 512})
    store.bulk(index, docs)


class TestContention:
    def test_counts_by_thread(self):
        store = DocumentStore()
        seed_rocksdb_trace(store)
        data = syscall_counts_by_thread(store, "trace", window_ns=10 * MS)
        assert data[0]["db_bench"] == 40
        assert data[10 * MS]["db_bench"] == 4
        assert data[10 * MS]["rocksdb:low0"] == 10

    def test_detect_contention_flags_right_window(self):
        store = DocumentStore()
        seed_rocksdb_trace(store)
        report = detect_contention(store, "trace", window_ns=10 * MS,
                                   min_compaction_threads=5)
        assert report.contended_windows == [10 * MS]
        assert report.calm_windows == [0]
        assert report.client_rate_calm == 40
        assert report.client_rate_contended == 4
        assert report.client_slowdown == pytest.approx(10.0)

    def test_no_contention_when_threshold_high(self):
        store = DocumentStore()
        seed_rocksdb_trace(store)
        report = detect_contention(store, "trace", window_ns=10 * MS,
                                   min_compaction_threads=6)
        assert report.contended_windows == []


def seed_pattern_trace(store, index="trace"):
    docs = [
        # Sequential file: three reads, each resuming where the last ended.
        {"syscall": "openat", "proc_name": "seq", "tid": 1, "ret": 3,
         "time": 0, "file_tag": "7 1 0", "args": {"path": "/seq"}},
        {"syscall": "read", "proc_name": "seq", "tid": 1, "ret": 4096,
         "time": 1, "file_tag": "7 1 0", "offset": 0},
        {"syscall": "read", "proc_name": "seq", "tid": 1, "ret": 4096,
         "time": 2, "file_tag": "7 1 0", "offset": 4096},
        {"syscall": "read", "proc_name": "seq", "tid": 1, "ret": 4096,
         "time": 3, "file_tag": "7 1 0", "offset": 8192},
        # Random-access file with tiny requests.
        {"syscall": "pread64", "proc_name": "rand", "tid": 2, "ret": 64,
         "time": 4, "file_tag": "7 2 0", "offset": 9000},
        {"syscall": "pread64", "proc_name": "rand", "tid": 2, "ret": 64,
         "time": 5, "file_tag": "7 2 0", "offset": 100},
        {"syscall": "pread64", "proc_name": "rand", "tid": 2, "ret": 64,
         "time": 6, "file_tag": "7 2 0", "offset": 70000},
    ] + [
        {"syscall": "pread64", "proc_name": "rand", "tid": 2, "ret": 64,
         "time": 7 + i, "file_tag": "7 2 0", "offset": 1000 * i}
        for i in range(6)
    ] + [
        # Fluent Bit signature: first read of a fresh tag at offset 26 -> 0.
        {"syscall": "openat", "proc_name": "fluent-bit", "tid": 3, "ret": 23,
         "time": 100, "file_tag": "7 12 99", "args": {"path": "/app.log"}},
        {"syscall": "read", "proc_name": "fluent-bit", "tid": 3, "ret": 0,
         "time": 101, "file_tag": "7 12 99", "offset": 26},
    ]
    store.bulk(index, docs)


class TestPatterns:
    def test_classify_sequential_vs_random(self):
        store = DocumentStore()
        seed_pattern_trace(store)
        patterns = {p.file_tag: p for p in classify_file_accesses(store, "trace")}
        assert patterns["7 1 0"].sequential_fraction == 1.0
        assert patterns["7 2 0"].sequential_fraction < 0.5
        assert patterns["7 1 0"].reads == 3

    def test_small_io_detection(self):
        store = DocumentStore()
        seed_pattern_trace(store)
        flagged = small_io_files(store, "trace", threshold_bytes=4096,
                                 min_requests=8)
        assert [p.file_tag for p in flagged] == ["7 2 0"]

    def test_stale_offset_resume_detection(self):
        store = DocumentStore()
        seed_pattern_trace(store)
        findings = find_stale_offset_resumes(store, "trace")
        assert len(findings) == 1
        finding = findings[0]
        assert finding.file_tag == "7 12 99"
        assert finding.offset == 26
        assert finding.proc_name == "fluent-bit"

    def test_healthy_resume_not_flagged(self):
        store = DocumentStore()
        store.bulk("trace", [
            # Resuming at 26 but actually finding data: legitimate tail.
            {"syscall": "read", "proc_name": "ok", "tid": 1, "ret": 10,
             "time": 1, "file_tag": "7 5 0", "offset": 26},
            {"syscall": "read", "proc_name": "ok", "tid": 1, "ret": 0,
             "time": 2, "file_tag": "7 5 0", "offset": 36},
        ])
        assert find_stale_offset_resumes(store, "trace") == []
