"""Failure-injection tests: crashes, flaky backends, stale state."""

import pytest

from repro.backend import DocumentStore
from repro.kernel import Kernel, O_CREAT, O_WRONLY
from repro.sim import Environment
from repro.tracer import DIOTracer, TracerConfig


class FlakyStore(DocumentStore):
    """A backend that fails the first N bulk requests.

    Both bulk entry points count against the same budget, so the
    injection is ingest-mode agnostic (the vectorized consumer ships
    via ``bulk_columnar``, the legacy oracle via ``bulk``).
    """

    def __init__(self, failures: int):
        super().__init__()
        self.failures_left = failures
        self.failed_requests = 0

    def _fail_next(self) -> bool:
        if self.failures_left > 0:
            self.failures_left -= 1
            self.failed_requests += 1
            return True
        return False

    def bulk(self, index, sources):
        if self._fail_next():
            raise ConnectionError("backend unavailable")
        return super().bulk(index, sources)

    def bulk_columnar(self, index, batch):
        if self._fail_next():
            raise ConnectionError("backend unavailable")
        return super().bulk_columnar(index, batch)


def writer_workload(kernel, task, writes=50):
    fd = yield from kernel.syscall(task, "open", path="/f",
                                   flags=O_CREAT | O_WRONLY)
    for _ in range(writes):
        yield from kernel.syscall(task, "write", fd=fd, data=b"x" * 32)
    yield from kernel.syscall(task, "close", fd=fd)


class TestFlakyBackend:
    def test_transient_failures_retried_without_event_loss(self):
        env = Environment()
        kernel = Kernel(env, ncpus=2)
        store = FlakyStore(failures=3)
        tracer = DIOTracer(env, kernel, store,
                           TracerConfig(session_name="flaky"))
        task = kernel.spawn_process("app").threads[0]
        tracer.attach()

        def main():
            yield from writer_workload(kernel, task)
            yield from tracer.shutdown()

        env.run(until=env.process(main()))
        assert store.failed_requests == 3
        assert tracer.stats.ship_retries == 3
        assert tracer.stats.shipped == 52
        assert store.count("dio_trace") == 52

    def test_persistent_failure_eventually_fatal_without_spill(self):
        """With the dead-letter WAL disabled, exhausted retries keep
        the pre-resilience contract: the failure propagates."""
        env = Environment()
        kernel = Kernel(env, ncpus=2)
        store = FlakyStore(failures=10_000)
        config = TracerConfig(ship_max_retries=3,
                              ship_retry_backoff_ns=1000,
                              spill_enabled=False)
        tracer = DIOTracer(env, kernel, store, config)
        task = kernel.spawn_process("app").threads[0]
        tracer.attach()

        def main():
            yield from writer_workload(kernel, task, writes=5)
            yield from tracer.shutdown()

        with pytest.raises(ConnectionError):
            env.run(until=env.process(main()))

    def test_persistent_failure_spills_instead_of_losing(self):
        """With spilling on (the default), a permanently dead backend
        never crashes the consumer or loses accepted records: every
        batch that exhausts its retries lands in the dead-letter WAL,
        and shutdown gives up replaying after a bounded failure
        budget, leaving the records counted in the WAL."""
        env = Environment()
        kernel = Kernel(env, ncpus=2)
        store = FlakyStore(failures=10_000)
        config = TracerConfig(ship_max_retries=3,
                              ship_retry_backoff_ns=1000,
                              breaker_recovery_ns=100_000,
                              spill_replay_failure_budget=4)
        tracer = DIOTracer(env, kernel, store, config)
        task = kernel.spawn_process("app").threads[0]
        tracer.attach()

        def main():
            yield from writer_workload(kernel, task, writes=5)
            yield from tracer.shutdown()

        env.run(until=env.process(main()))   # must not raise
        stats = tracer.stats
        assert stats.shipped == 0
        assert stats.spill_pending == stats.produced == 7
        assert stats.spilled_records == 7
        assert stats.replayed_records == 0
        assert tracer.ring.pending_records() == 0
        assert stats.staged_records == 0
        # The breaker tripped and is still open against the dead
        # backend; retry pressure is visible per *attempt*.
        assert stats.breaker_state == "open"
        assert stats.bulk_attempts == stats.ship_retries > 0
        assert stats.retry_rate == 1.0

    def test_breaker_trips_and_recovers_with_replay(self):
        """A longer outage trips the breaker OPEN; once the backend
        recovers, spilled batches are replayed — zero loss, zero
        duplicates."""
        env = Environment()
        kernel = Kernel(env, ncpus=2)
        store = FlakyStore(failures=12)
        config = TracerConfig(session_name="breaker",
                              ship_max_retries=2,
                              ship_retry_backoff_ns=1000,
                              backoff_cap_ns=100_000,
                              breaker_failure_threshold=4,
                              breaker_recovery_ns=50_000,
                              spill_replay_failure_budget=100)
        tracer = DIOTracer(env, kernel, store, config)
        task = kernel.spawn_process("app").threads[0]
        tracer.attach()

        def main():
            yield from writer_workload(kernel, task)
            yield from tracer.shutdown()

        env.run(until=env.process(main()))
        registry = tracer.telemetry.registry
        assert registry.value("dio_breaker_opened_total") >= 1
        assert registry.value("dio_breaker_closed_total") >= 1
        assert tracer.stats.breaker_state == "closed"
        assert tracer.stats.spilled_records > 0
        assert tracer.stats.replayed_records == tracer.stats.spilled_records
        assert tracer.stats.spill_pending == 0
        # Zero loss, zero duplicates.
        assert store.count("dio_trace") == tracer.stats.produced == 52

    def test_application_unaffected_by_backend_outage(self):
        """The async pipeline: app completion time must not depend on
        backend hiccups (they happen off the critical path)."""

        def run_with(failures):
            env = Environment()
            kernel = Kernel(env, ncpus=2)
            store = FlakyStore(failures=failures)
            tracer = DIOTracer(env, kernel, store,
                               TracerConfig(ship_retry_backoff_ns=1_000_000))
            task = kernel.spawn_process("app").threads[0]
            tracer.attach()
            app_done = {}

            def main():
                yield from writer_workload(kernel, task)
                app_done["at"] = env.now
                yield from tracer.shutdown()

            env.run(until=env.process(main()))
            return app_done["at"]

        assert run_with(0) == run_with(3)


class TestCrashingApplication:
    def test_tracer_survives_app_interrupted_mid_run(self):
        env = Environment()
        kernel = Kernel(env, ncpus=2)
        store = DocumentStore()
        tracer = DIOTracer(env, kernel, store)
        task = kernel.spawn_process("victim").threads[0]
        tracer.attach()

        app = env.process(writer_workload(kernel, task, writes=10_000))

        def killer():
            yield env.timeout(50_000)  # mid-run
            app.interrupt("killed")
            yield from tracer.shutdown()

        env.run(until=env.process(killer()))
        # Whatever was traced before the crash is fully shipped.
        assert tracer.stats.shipped == tracer.stats.produced
        assert store.count("dio_trace") == tracer.stats.shipped
        assert tracer.ring.pending_records() == 0

    def test_stale_inflight_entry_does_not_corrupt_future_events(self):
        """An interrupted syscall leaves a stale entry-timestamp in the
        pairing map; the next syscall of that TID must still pair to a
        sane (enter <= exit) event."""
        env = Environment()
        kernel = Kernel(env, ncpus=1)
        store = DocumentStore()
        tracer = DIOTracer(env, kernel, store)
        process = kernel.spawn_process("app")
        task = process.threads[0]
        tracer.attach()
        # Forge a stale in-flight timestamp, as if an earlier syscall
        # never reached its exit tracepoint.
        tracer._inflight.update(task.tid, 12345)

        def main():
            yield env.timeout(1_000_000)
            yield from kernel.syscall(task, "creat", path="/f")
            yield from tracer.shutdown()

        env.run(until=env.process(main()))
        doc = store.search("dio_trace")["hits"]["hits"][0]["_source"]
        assert doc["time"] <= doc["time_exit"]


class TestBackendStateAbuse:
    def test_double_shutdown_is_idempotent(self):
        env = Environment()
        kernel = Kernel(env, ncpus=1)
        store = DocumentStore()
        tracer = DIOTracer(env, kernel, store)
        task = kernel.spawn_process("app").threads[0]
        tracer.attach()

        def main():
            yield from kernel.syscall(task, "creat", path="/f")
            yield from tracer.shutdown()
            yield from tracer.shutdown()

        env.run(until=env.process(main()))
        assert store.count("dio_trace") == 1

    def test_stop_before_any_event(self):
        env = Environment()
        kernel = Kernel(env, ncpus=1)
        store = DocumentStore()
        tracer = DIOTracer(env, kernel, store)
        tracer.attach()

        def main():
            yield from tracer.shutdown()

        env.run(until=env.process(main()))
        assert tracer.stats.shipped == 0
