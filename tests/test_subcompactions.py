"""Tests for L0->L1 subcompactions (RocksDB's max_subcompactions)."""

import pytest

from repro.apps.rocksdb import DBOptions, RocksDB, SSTable
from repro.apps.rocksdb.db_bench import key_name
from repro.kernel import Kernel
from repro.sim import Environment

SECOND = 1_000_000_000


def make_db(**overrides):
    env = Environment()
    kernel = Kernel(env, ncpus=4)
    process = kernel.spawn_process("db_bench")
    db = RocksDB(kernel, process, DBOptions(**overrides))
    return env, kernel, process, db


def run(env, gen):
    return env.run(until=env.process(gen))


def churn(env, kernel, db, task, rounds=240, keys=120):
    yield from db.open(task)
    # Seed L1 with several files so L0->L1 has something to split over.
    items = [(key_name(i), b"B" * 64) for i in range(keys * 4)]
    yield from db.bulk_load(task, items, level=1)
    for i in range(rounds):
        yield from db.put(task, key_name((i * 7) % (keys * 4)),
                          f"v{i}".encode())
    yield env.timeout(3 * SECOND)
    db.close()


class TestSSTableRanges:
    def make_table(self):
        entries = [(key_name(i), i, b"x" * 100) for i in range(100)]
        return SSTable("/t.sst", 0, 1, entries)

    def test_entries_in_range(self):
        table = self.make_table()
        subset = table.entries_in_range(key_name(10), key_name(20))
        assert [e[0] for e in subset] == [key_name(i) for i in range(10, 20)]

    def test_unbounded_ranges(self):
        table = self.make_table()
        assert len(table.entries_in_range(None, None)) == 100
        assert len(table.entries_in_range(None, key_name(5))) == 5
        assert len(table.entries_in_range(key_name(95), None)) == 5

    def test_range_bytes_partition_sums_to_file(self):
        table = self.make_table()
        mid = key_name(50)
        assert (table.range_bytes(None, mid) + table.range_bytes(mid, None)
                == table.file_size)

    def test_empty_range(self):
        table = self.make_table()
        assert table.range_bytes(key_name(10), key_name(10)) == 0
        assert table.entries_in_range(key_name(10), key_name(10)) == []

    def test_read_range_charges_io(self):
        env = Environment()
        kernel = Kernel(env)
        task = kernel.spawn_process("db").threads[0]
        table = self.make_table()

        def scenario():
            yield from table.write_to_disk(kernel, task, 32768)
            # Evict the freshly written blocks so the read hits the disk.
            kernel.cache.drop_inode(kernel.vfs.resolve("/t.sst").ino)
            before = kernel.device.stats.bytes_read
            entries = yield from table.read_range(
                kernel, task, key_name(0), key_name(50), 65536)
            assert len(entries) == 50
            return kernel.device.stats.bytes_read - before

        read_bytes = run(env, scenario())
        assert 0 < read_bytes < table.file_size * 1.5


class TestSubcompactionExecution:
    def test_data_preserved_with_subcompactions(self):
        env, kernel, process, db = make_db(
            memtable_bytes=2048, l0_compaction_trigger=2,
            max_subcompactions=4, sstable_bytes=8192)
        task = process.threads[0]

        def scenario():
            yield from churn(env, kernel, db, task)

        run(env, scenario())
        assert db.stats.compactions >= 1
        assert any(a.get("subcompaction") for a in db.stats.activity)

    def test_latest_values_survive(self):
        env, kernel, process, db = make_db(
            memtable_bytes=2048, l0_compaction_trigger=2,
            max_subcompactions=4, sstable_bytes=8192)
        task = process.threads[0]
        wrote = {}

        def scenario():
            yield from db.open(task)
            items = [(key_name(i), b"B" * 64) for i in range(400)]
            yield from db.bulk_load(task, items, level=1)
            for i in range(240):
                key = key_name((i * 7) % 400)
                value = f"v{i}".encode()
                yield from db.put(task, key, value)
                wrote[key] = value
            yield env.timeout(3 * SECOND)
            for key in (key_name(0), key_name(7), key_name(399 * 7 % 400)):
                got = yield from db.get(task, key)
                expected = wrote.get(key, b"B" * 64)
                assert got == expected, key
            db.close()

        run(env, scenario())

    def test_multiple_threads_participate(self):
        env, kernel, process, db = make_db(
            memtable_bytes=2048, l0_compaction_trigger=2,
            max_subcompactions=7, sstable_bytes=8192)
        task = process.threads[0]

        def scenario():
            yield from churn(env, kernel, db, task, rounds=400, keys=200)

        run(env, scenario())
        sub_threads = {a["thread"] for a in db.stats.activity
                       if a.get("subcompaction")}
        assert len(sub_threads) >= 2, sub_threads

    def test_single_thread_pool_does_not_deadlock(self):
        env, kernel, process, db = make_db(
            memtable_bytes=2048, l0_compaction_trigger=2,
            max_subcompactions=4, compaction_threads=1,
            sstable_bytes=8192)
        task = process.threads[0]

        def scenario():
            yield from churn(env, kernel, db, task)

        run(env, scenario())
        assert db.stats.compactions >= 1

    def test_outputs_non_overlapping_in_l1(self):
        env, kernel, process, db = make_db(
            memtable_bytes=2048, l0_compaction_trigger=2,
            max_subcompactions=4, sstable_bytes=8192)
        task = process.threads[0]

        def scenario():
            yield from churn(env, kernel, db, task)

        run(env, scenario())
        tables = db.levels[1]
        for left, right in zip(tables, tables[1:]):
            assert left.largest < right.smallest

    def test_disabled_by_default(self):
        assert DBOptions().max_subcompactions == 1
