"""Edge-case tests for the kernel's io_uring model.

The corners a differential classic-vs-ring run can't reach: CQ
overflow with a full completion queue, zero-to-submit doorbells,
double registration, and mid-chain aborts of linked SQEs.
"""

import pytest

from repro.kernel import (IORING_ENTER_GETEVENTS, IORING_REGISTER_BUFFERS,
                          IORING_REGISTER_FILES, IOSQE_FIXED_FILE,
                          IOSQE_IO_LINK, Kernel, O_CREAT, O_RDONLY,
                          O_WRONLY, SQE)
from repro.kernel.errno import Errno
from repro.kernel.syscalls import (IORING_UNREGISTER_BUFFERS,
                                   IORING_UNREGISTER_FILES)
from repro.sim import Environment


@pytest.fixture()
def setup():
    env = Environment()
    kernel = Kernel(env)
    process = kernel.spawn_process("uringapp")
    return env, kernel, process.threads[0]


def run(env, gen):
    """Drive an orchestration generator to completion on the clock."""
    return env.run(until=env.process(gen))


def _open_and_ring(kernel, task, entries=8, cq_entries=None,
                   flags=O_CREAT | O_WRONLY):
    """Generator: open /f and set up a ring; returns (fd, ring_fd)."""
    fd = yield from kernel.syscall(task, "open", path="/f", flags=flags)
    assert fd >= 0
    kwargs = {"entries": entries}
    if cq_entries is not None:
        kwargs["cq_entries"] = cq_entries
    ring_fd = yield from kernel.syscall(task, "io_uring_setup", **kwargs)
    assert ring_fd >= 0
    return fd, ring_fd


class TestSetup:
    def test_rejects_bad_entries(self, setup):
        env, kernel, task = setup

        def go():
            ret = yield from kernel.syscall(task, "io_uring_setup",
                                            entries=0)
            assert ret == -int(Errno.EINVAL)
            ret = yield from kernel.syscall(task, "io_uring_setup",
                                            entries=1 << 20)
            assert ret == -int(Errno.EINVAL)
            # CQ smaller than the SQ is invalid too.
            ret = yield from kernel.syscall(task, "io_uring_setup",
                                            entries=8, cq_entries=4)
            assert ret == -int(Errno.EINVAL)

        run(env, go())
        assert kernel.uring_stats["setups"] == 0

    def test_ring_fd_is_anonymous_and_closes_clean(self, setup):
        env, kernel, task = setup

        def go():
            ring_fd = yield from kernel.syscall(task, "io_uring_setup",
                                                entries=8)
            assert kernel.uring_for_fd(task, ring_fd) is not None
            ret = yield from kernel.syscall(task, "close", fd=ring_fd)
            assert ret == 0
            assert kernel.uring_for_fd(task, ring_fd) is None

        run(env, go())

    def test_enter_on_non_ring_fd(self, setup):
        env, kernel, task = setup

        def go():
            fd = yield from kernel.syscall(task, "open", path="/f",
                                           flags=O_CREAT | O_WRONLY)
            ret = yield from kernel.syscall(task, "io_uring_enter",
                                            fd=fd, to_submit=1)
            assert ret == -int(Errno.EBADF)

        run(env, go())


class TestCompletionQueueOverflow:
    def test_full_cq_counts_overflow_but_observers_see_all(self, setup):
        env, kernel, task = setup
        observed = []
        kernel.add_uring_observer(
            lambda ctx, sqe, cqe, ring: observed.append(cqe.res))

        def go():
            fd, ring_fd = yield from _open_and_ring(kernel, task,
                                                    entries=4,
                                                    cq_entries=4)
            ring = kernel.uring_for_fd(task, ring_fd)
            # First batch fills the CQ to capacity...
            for i in range(4):
                assert ring.prepare(SQE.write(fd, b"a" * 16, 16 * i,
                                              user_data=i))
            ret = yield from kernel.syscall(
                task, "io_uring_enter", fd=ring_fd, to_submit=4,
                min_complete=4, flags=IORING_ENTER_GETEVENTS)
            assert ret == 4
            # ...and the second batch completes into a full CQ.
            for i in range(4, 8):
                assert ring.prepare(SQE.write(fd, b"a" * 16, 16 * i,
                                              user_data=i))
            ret = yield from kernel.syscall(
                task, "io_uring_enter", fd=ring_fd, to_submit=4,
                min_complete=8, flags=IORING_ENTER_GETEVENTS)
            assert ret == 4
            return ring

        ring = run(env, go())
        # The app lost the second batch: 4 CQEs overflowed, only the
        # first 4 are reapable.
        assert ring.cq_overflow == 4
        assert kernel.uring_stats["cq_overflows"] == 4
        assert [cqe.user_data for cqe in ring.reap()] == [0, 1, 2, 3]
        assert ring.reap() == []
        # A kernel-side observer saw every completion regardless.
        assert observed == [16] * 8
        # Nothing is stuck: all 8 dispatched and completed.
        assert ring.inflight == 0
        assert ring.completed == 8

    def test_getevents_does_not_deadlock_on_overflow(self, setup):
        """min_complete above CQ capacity must end when inflight hits 0."""
        env, kernel, task = setup

        def go():
            fd, ring_fd = yield from _open_and_ring(kernel, task,
                                                    entries=4,
                                                    cq_entries=4)
            ring = kernel.uring_for_fd(task, ring_fd)
            for batch in range(2):
                for i in range(4):
                    assert ring.prepare(SQE.write(fd, b"b" * 8,
                                                  8 * (4 * batch + i)))
                yield from kernel.syscall(
                    task, "io_uring_enter", fd=ring_fd, to_submit=4,
                    min_complete=0, flags=0)
            # Waits for 8 completions that can never all be reapable.
            yield from kernel.syscall(
                task, "io_uring_enter", fd=ring_fd, to_submit=0,
                min_complete=8, flags=IORING_ENTER_GETEVENTS)
            return ring

        ring = run(env, go())
        assert ring.inflight == 0
        assert ring.completed == 8


class TestEnterEdges:
    def test_zero_to_submit_is_a_noop(self, setup):
        env, kernel, task = setup

        def go():
            _, ring_fd = yield from _open_and_ring(kernel, task)
            ret = yield from kernel.syscall(task, "io_uring_enter",
                                            fd=ring_fd, to_submit=0)
            assert ret == 0
            # GETEVENTS with nothing inflight returns immediately too.
            ret = yield from kernel.syscall(
                task, "io_uring_enter", fd=ring_fd, to_submit=0,
                min_complete=4, flags=IORING_ENTER_GETEVENTS)
            assert ret == 0

        run(env, go())
        assert kernel.uring_stats["sqes_submitted"] == 0

    def test_submit_caps_at_prepared_sqes(self, setup):
        env, kernel, task = setup

        def go():
            fd, ring_fd = yield from _open_and_ring(kernel, task)
            ring = kernel.uring_for_fd(task, ring_fd)
            ring.prepare(SQE.write(fd, b"x", 0))
            ret = yield from kernel.syscall(
                task, "io_uring_enter", fd=ring_fd, to_submit=5,
                min_complete=1, flags=IORING_ENTER_GETEVENTS)
            assert ret == 1

        run(env, go())


class TestRegistration:
    def test_buffer_reregistration_and_unregister(self, setup):
        env, kernel, task = setup

        def go():
            _, ring_fd = yield from _open_and_ring(kernel, task)
            ret = yield from kernel.syscall(
                task, "io_uring_register", fd=ring_fd,
                opcode=IORING_REGISTER_BUFFERS, arg=[4096, 4096],
                nr_args=2)
            assert ret == 0
            # Registering on top of live buffers is EBUSY...
            ret = yield from kernel.syscall(
                task, "io_uring_register", fd=ring_fd,
                opcode=IORING_REGISTER_BUFFERS, arg=[4096], nr_args=1)
            assert ret == -int(Errno.EBUSY)
            ret = yield from kernel.syscall(
                task, "io_uring_register", fd=ring_fd,
                opcode=IORING_UNREGISTER_BUFFERS)
            assert ret == 0
            # ...and unregistering twice is ENXIO.
            ret = yield from kernel.syscall(
                task, "io_uring_register", fd=ring_fd,
                opcode=IORING_UNREGISTER_BUFFERS)
            assert ret == -int(Errno.ENXIO)

        run(env, go())

    def test_file_table_pins_descriptions(self, setup):
        """Fixed-file SQEs keep working after the plain fd closes."""
        env, kernel, task = setup

        def go():
            fd, ring_fd = yield from _open_and_ring(kernel, task)
            ring = kernel.uring_for_fd(task, ring_fd)
            ret = yield from kernel.syscall(
                task, "io_uring_register", fd=ring_fd,
                opcode=IORING_REGISTER_FILES, arg=[fd], nr_args=1)
            assert ret == 0
            yield from kernel.syscall(task, "close", fd=fd)
            ring.prepare(SQE.write(0, b"pinned", 0,
                                   flags=IOSQE_FIXED_FILE))
            yield from kernel.syscall(
                task, "io_uring_enter", fd=ring_fd, to_submit=1,
                min_complete=1, flags=IORING_ENTER_GETEVENTS)
            return ring.reap()

        cqes = run(env, go())
        assert [cqe.res for cqe in cqes] == [6]
        assert bytes(kernel.vfs.resolve("/f").data) == b"pinned"

    def test_unregister_files_never_registered(self, setup):
        env, kernel, task = setup

        def go():
            _, ring_fd = yield from _open_and_ring(kernel, task)
            ret = yield from kernel.syscall(
                task, "io_uring_register", fd=ring_fd,
                opcode=IORING_UNREGISTER_FILES)
            assert ret == -int(Errno.ENXIO)
            # Unknown opcode is EINVAL.
            ret = yield from kernel.syscall(
                task, "io_uring_register", fd=ring_fd, opcode=99)
            assert ret == -int(Errno.EINVAL)

        run(env, go())

    def test_fixed_file_without_table_fails(self, setup):
        env, kernel, task = setup

        def go():
            _, ring_fd = yield from _open_and_ring(kernel, task)
            ring = kernel.uring_for_fd(task, ring_fd)
            ring.prepare(SQE.write(0, b"x", 0, flags=IOSQE_FIXED_FILE))
            yield from kernel.syscall(
                task, "io_uring_enter", fd=ring_fd, to_submit=1,
                min_complete=1, flags=IORING_ENTER_GETEVENTS)
            return ring.reap()

        cqes = run(env, go())
        assert [cqe.res for cqe in cqes] == [-int(Errno.EBADF)]

    def test_stale_buf_index_fails_einval(self, setup):
        env, kernel, task = setup

        def go():
            fd, ring_fd = yield from _open_and_ring(kernel, task)
            ring = kernel.uring_for_fd(task, ring_fd)
            ring.prepare(SQE.write(fd, b"x", 0, buf_index=3))
            yield from kernel.syscall(
                task, "io_uring_enter", fd=ring_fd, to_submit=1,
                min_complete=1, flags=IORING_ENTER_GETEVENTS)
            return ring.reap()

        cqes = run(env, go())
        assert [cqe.res for cqe in cqes] == [-int(Errno.EINVAL)]


class TestLinkedChains:
    def test_mid_chain_error_cancels_the_rest(self, setup):
        env, kernel, task = setup

        def go():
            # Read-only fd: the chain's second write must fail EBADF.
            fd, ring_fd = yield from _open_and_ring(
                kernel, task, flags=O_CREAT | O_RDONLY)
            ring = kernel.uring_for_fd(task, ring_fd)
            ring.prepare(SQE.read(fd, 8, 0, flags=IOSQE_IO_LINK,
                                  user_data=1))
            ring.prepare(SQE.write(fd, b"nope", 0, flags=IOSQE_IO_LINK,
                                   user_data=2))
            ring.prepare(SQE.write(fd, b"nope", 8, flags=IOSQE_IO_LINK,
                                   user_data=3))
            ring.prepare(SQE.fsync(fd, user_data=4))
            yield from kernel.syscall(
                task, "io_uring_enter", fd=ring_fd, to_submit=4,
                min_complete=4, flags=IORING_ENTER_GETEVENTS)
            return ring.reap()

        cqes = run(env, go())
        by_user = {cqe.user_data: cqe.res for cqe in cqes}
        assert by_user[1] == 0                        # empty file read
        assert by_user[2] == -int(Errno.EBADF)        # the real error
        assert by_user[3] == -int(Errno.ECANCELED)    # chain aborted
        assert by_user[4] == -int(Errno.ECANCELED)
        assert kernel.uring_stats["chain_cancellations"] == 2

    def test_independent_chains_are_not_cancelled(self, setup):
        env, kernel, task = setup

        def go():
            fd, ring_fd = yield from _open_and_ring(
                kernel, task, flags=O_CREAT | O_RDONLY)
            ring = kernel.uring_for_fd(task, ring_fd)
            # A failing unlinked SQE, then an independent healthy one.
            ring.prepare(SQE.write(fd, b"nope", 0, user_data=1))
            ring.prepare(SQE.read(fd, 4, 0, user_data=2))
            yield from kernel.syscall(
                task, "io_uring_enter", fd=ring_fd, to_submit=2,
                min_complete=2, flags=IORING_ENTER_GETEVENTS)
            return ring.reap()

        cqes = run(env, go())
        by_user = {cqe.user_data: cqe.res for cqe in cqes}
        assert by_user[1] == -int(Errno.EBADF)
        assert by_user[2] == 0
        assert kernel.uring_stats["chain_cancellations"] == 0
