"""Tests for Directly-Follows-Graph mining (analysis/dfg.py)."""

import pytest

from repro.analysis.compare import session_fingerprint
from repro.analysis.dfg import (DirectlyFollowsGraph, compare_session_dfgs,
                                file_class, merged_dfg, mine_dfgs,
                                mine_phases, segment_phases)
from repro.apps.fluentbit import FLUENTBIT_BUGGY, FLUENTBIT_FIXED
from repro.backend import DocumentStore
from repro.experiments import run_fluentbit_case

MS = 1_000_000


def event(syscall, time, proc="p", tid=1, ret=0, path=None, session="s"):
    doc = {"syscall": syscall, "time": time, "proc_name": proc,
           "pid": 1, "tid": tid, "ret": ret, "session": session}
    if path is not None:
        doc["file_path"] = path
    return doc


class TestFileClass:
    def test_known_suffixes(self):
        assert file_class("/a/app.log") == "log"
        assert file_class("/db/000001.sst") == "sst"
        assert file_class("/db/000001.ldb") == "sst"
        assert file_class("/db/LOG.wal.0002") == "wal"
        assert file_class("/x/data.db") == "db"
        assert file_class("/x/out.jsonl") == "log"
        assert file_class("/x/t.tmp") == "tmp"

    def test_fallbacks(self):
        assert file_class(None) == "none"
        assert file_class("/etc/passwd") == "other"


class TestDirectlyFollowsGraph:
    def test_edges_and_counts(self):
        graph = DirectlyFollowsGraph("g")
        for source in [event("open", 10), event("read", 20),
                       event("read", 30), event("close", 40)]:
            graph.observe(source)
        assert graph.events == 4
        assert graph.node_counts == {"open": 1, "read": 2, "close": 1}
        assert graph.edges[("^", "open")].count == 1
        assert graph.edges[("read", "read")].count == 1
        assert graph.edges[("read", "read")].gap_mean_ns == 10

    def test_fileclass_nodes(self):
        graph = DirectlyFollowsGraph("g", node_mode="syscall_fileclass")
        graph.observe(event("write", 1, path="/a.log"))
        graph.observe(event("write", 2, path="/b.sst"))
        assert set(graph.node_counts) == {"write/log", "write/sst"}

    def test_rejects_unknown_node_mode(self):
        with pytest.raises(ValueError):
            DirectlyFollowsGraph("g", node_mode="nope")

    def test_distance_bounds(self):
        a = DirectlyFollowsGraph("a")
        b = DirectlyFollowsGraph("b")
        for source in [event("open", 1), event("read", 2)]:
            a.observe(source)
            b.observe(source)
        assert a.distance(b) == pytest.approx(0.0)
        c = DirectlyFollowsGraph("c")
        c.observe(event("unlink", 1))
        c.observe(event("mkdir", 2))
        assert a.distance(c) == pytest.approx(1.0)

    def test_fingerprint_deterministic(self):
        a = DirectlyFollowsGraph("a")
        for source in [event("open", 1), event("read", 2),
                       event("close", 3)]:
            a.observe(source)
        assert a.fingerprint() == a.fingerprint()
        assert a.fingerprint()["edges"] == {
            "^->open": 1, "open->read": 1, "read->close": 1}


class TestMining:
    @pytest.fixture()
    def store(self):
        store = DocumentStore()
        docs = []
        for i in range(10):
            docs.append(event("read", 10 * i, proc="a", tid=1))
            docs.append(event("write", 10 * i + 5, proc="b", tid=2))
        store.bulk("t", docs)
        return store

    def test_mine_per_process(self, store):
        graphs = mine_dfgs(store, "t", session="s")
        assert sorted(graphs) == ["a", "b"]
        assert graphs["a"].events == 10
        assert graphs["a"].node_counts == {"read": 10}

    def test_mine_per_thread(self, store):
        graphs = mine_dfgs(store, "t", session="s", per_thread=True)
        assert sorted(graphs) == ["a/1", "b/2"]

    def test_node_totals_agree_with_session_fingerprint(self):
        # compare.session_fingerprint is the count-level oracle: the
        # merged DFG's node totals must agree with its by_syscall aggs.
        case = run_fluentbit_case(FLUENTBIT_BUGGY)
        session = case.tracer.config.session_name
        graph = merged_dfg(case.store, "dio_trace", session)
        oracle = session_fingerprint(case.store, session)
        assert graph.node_counts == oracle["by_syscall"]
        assert graph.events == oracle["events"]

    def test_merged_dfg_does_not_invent_cross_thread_edges(self, store):
        # Threads strictly alternate read(a)/write(b); a naive global
        # chain would see read->write transitions, the per-thread merge
        # must not.
        graph = merged_dfg(store, "t", "s")
        assert ("read", "write") not in graph.edges
        assert graph.edges[("read", "read")].count == 9
        assert graph.events == 20


class TestPhases:
    def test_single_phase_when_stable(self):
        events = [event("read", i * 10) for i in range(100)]
        phases = segment_phases(events, window_events=20)
        assert len(phases) == 1
        assert phases[0].events == 100

    def test_detects_phase_change(self):
        events = [event("read", i * 10) for i in range(60)]
        events += [event("write", 600 + i * 10, path="/w.log")
                   for i in range(60)]
        phases = segment_phases(events, window_events=20,
                                drift_threshold=0.4)
        assert len(phases) == 2
        assert phases[0].dfg.node_counts == {"read": 60}
        assert phases[1].dfg.node_counts == {"write": 60}
        assert phases[1].drift > 0.4

    def test_mine_phases_from_store(self):
        store = DocumentStore()
        store.bulk("t", [event("read", i) for i in range(10)])
        phases = mine_phases(store, "t", session="s", window_events=4)
        assert len(phases) == 1
        assert phases[0].events == 10

    def test_rejects_tiny_window(self):
        with pytest.raises(ValueError):
            segment_phases([], window_events=1)


class TestCompareSessionDFGs:
    def test_buggy_vs_fixed_fluentbit_diverge(self):
        store = DocumentStore()
        for version in (FLUENTBIT_BUGGY, FLUENTBIT_FIXED):
            case = run_fluentbit_case(version)
            for _, source in case.store.scan("dio_trace", {"match_all": {}}):
                store.bulk("dio_trace", [source])
        comparison = compare_session_dfgs(
            store, f"fluentbit-{FLUENTBIT_BUGGY}",
            f"fluentbit-{FLUENTBIT_FIXED}")
        assert comparison.distance > 0
        edges = dict(comparison.diverging_edges)
        # The buggy version's stale lseek shows up as diverging edges.
        assert any("lseek" in edge for edge in edges)

    def test_identical_sessions_distance_zero(self):
        store = DocumentStore()
        for session in ("x", "y"):
            store.bulk("t", [event("read", i, session=session)
                             for i in range(5)])
        comparison = compare_session_dfgs(store, "x", "y", index="t")
        assert comparison.distance == pytest.approx(0.0)
        assert comparison.diverging_edges == []
