"""docs/STORAGE.md is executable: parse a real segment from the spec.

These tests read the offset tables out of the markdown document and
use *only what the document says* — offsets, sizes, ``struct`` format
strings, and magic values — to decode a segment file and a WAL that
the implementation wrote.  If the code changes the byte layout without
updating the spec (or vice versa), the parse here diverges and fails.
"""

import json
import pathlib
import re
import struct
import zlib

import pytest

from repro.backend.segments import SegmentStorage

DOC = pathlib.Path(__file__).resolve().parents[1] / "docs" / "STORAGE.md"


def _section(heading: str) -> str:
    """The markdown body between ``heading`` and the next heading."""
    text = DOC.read_text(encoding="utf-8")
    pattern = rf"^#+ {re.escape(heading)}\n(.*?)(?=^#+ |\Z)"
    match = re.search(pattern, text, re.MULTILINE | re.DOTALL)
    assert match, f"STORAGE.md lost its '{heading}' section"
    return match.group(1)


def _offset_table(heading: str) -> list[dict]:
    """Rows of the first ``offset|size|type|field|value`` table."""
    rows = []
    for line in _section(heading).splitlines():
        cells = [c.strip() for c in line.strip().strip("|").split("|")]
        if len(cells) != 5 or cells[0] in ("offset", ":---", "---"):
            continue
        if not re.fullmatch(r"-?\d+", cells[0]):
            continue
        rows.append({
            "offset": int(cells[0]),
            "size": None if not cells[1].isdigit() else int(cells[1]),
            "type": cells[2].strip("`"),
            "field": cells[3],
            "value": cells[4],
        })
    assert rows, f"no offset table under '{heading}'"
    return rows


def _unpack(rows: list[dict], blob: bytes, base: int = 0) -> dict:
    """Decode fixed-size fields exactly as the table describes them."""
    out = {}
    for row in rows:
        if row["size"] is None:
            continue                      # variable-length tail
        start = base + row["offset"]
        fmt = row["type"]
        (out[row["field"]],) = struct.unpack_from(fmt, blob, start)
        assert struct.calcsize(fmt) == row["size"], \
            f"{row['field']}: table size disagrees with its struct type"
    return out


def _literal(rows: list[dict], field: str) -> str:
    """The backticked literal in a row's value column."""
    for row in rows:
        if row["field"] == field:
            match = re.search(r"`([^`]+)`", row["value"])
            assert match, f"{field} row has no literal value"
            return match.group(1)
    raise AssertionError(f"no row for field {field}")


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    root = tmp_path_factory.mktemp("spec") / "store"
    engine = SegmentStorage(root, flush_events=4)
    engine.import_docs(
        [{"time": i * 5, "syscall": "write", "ret": i, "path": f"/f{i % 2}"}
         for i in range(4)],
        session="spec-session")
    engine.append([{"time": 100, "syscall": "close", "ret": 0}],
                  session="spec-session")   # leaves one WAL record
    engine.close()
    return root


class TestSegmentFromSpec:
    def test_header_decodes_per_table(self, store_dir):
        rows = _offset_table("Segment header")
        blob = next(store_dir.glob("*.dseg")).read_bytes()
        header = _unpack(rows, blob)
        assert header["magic"] == _literal(rows, "magic").encode("ascii")
        assert header["version"] == int(_literal(rows, "version"))
        assert header["rows"] == 4

    def test_trailer_and_footer_checksum_per_table(self, store_dir):
        rows = _offset_table("Segment trailer")
        blob = next(store_dir.glob("*.dseg")).read_bytes()
        # Spec: offsets in this table are from the end of the file.
        trailer = _unpack(rows, blob, base=len(blob))
        assert trailer["magic"] == _literal(rows, "magic").encode("ascii")
        footer = blob[trailer["footer_offset"]:
                      trailer["footer_offset"] + trailer["footer_len"]]
        assert zlib.crc32(footer) == trailer["footer_crc32"]
        assert (trailer["footer_offset"] + trailer["footer_len"]
                + sum(r["size"] for r in rows)) == len(blob)

    def test_whole_segment_parses_from_the_prose(self, store_dir):
        """Walk footer -> blocks using only the spec's structures."""
        head_rows = _offset_table("Block head")
        blob = next(store_dir.glob("*.dseg")).read_bytes()
        trailer = _unpack(_offset_table("Segment trailer"), blob,
                          base=len(blob))
        n_rows = _unpack(_offset_table("Segment header"), blob)["rows"]
        footer = blob[trailer["footer_offset"]:
                      trailer["footer_offset"] + trailer["footer_len"]]

        # Footer walk, shapes straight from the spec's footer section.
        (n_fields,) = struct.unpack_from("<I", footer, 0)
        pos = 4
        decoded = {}
        for _ in range(n_fields):
            (name_len,) = struct.unpack_from("<H", footer, pos)
            pos += 2
            name = footer[pos:pos + name_len].decode("utf-8")
            pos += name_len
            block_off, block_len, block_crc = struct.unpack_from(
                "<QQI", footer, pos)
            pos += 20
            zone_tag = footer[pos]
            pos += 1
            if zone_tag:
                for _bound in range(2):
                    (blen,) = struct.unpack_from("<I", footer, pos)
                    pos += 4 + blen
            block = blob[block_off:block_off + block_len]
            assert zlib.crc32(block) == block_crc

            head = _unpack(head_rows, block)
            payload = block[sum(r["size"] for r in head_rows):]
            if head["flags"] & 1:
                payload = zlib.decompress(payload)
            assert len(payload) == head["raw_len"]
            if head["kind"] in (2, 3):
                present = list(payload[:n_rows])
                fmt = "q" if head["kind"] == 2 else "d"
                lane = struct.unpack(f"<{n_rows}{fmt}", payload[n_rows:])
                decoded[name] = [v if p else None
                                 for p, v in zip(present, lane)]
            else:
                assert head["kind"] == 1
                (n_table,) = struct.unpack_from("<I", payload, 0)
                tpos = 4
                table = []
                for _ in range(n_table):
                    tag = payload[tpos]
                    (vlen,) = struct.unpack_from("<I", payload, tpos + 1)
                    raw = payload[tpos + 5:tpos + 5 + vlen]
                    table.append(_decode_tag(tag, raw))
                    tpos += 5 + vlen
                codes = struct.unpack(f"<{n_rows}i", payload[tpos:])
                decoded[name] = [table[c] if c >= 0 else None
                                 for c in codes]

        # The spec-driven parse reproduces the documents the engine
        # itself reads back.
        assert decoded["time"] == [0, 5, 10, 15]
        assert decoded["ret"] == [0, 1, 2, 3]
        assert decoded["syscall"] == ["write"] * 4
        assert decoded["path"] == ["/f0", "/f1", "/f0", "/f1"]

        # Footer tail: session + seq + created, as specified.
        (session_len,) = struct.unpack_from("<H", footer, pos)
        pos += 2
        assert footer[pos:pos + session_len] == b"spec-session"


def _decode_tag(tag: int, raw: bytes):
    """Value decoding exactly as the spec's value-tags table reads."""
    assert tag in {r["tag"] for r in _value_tag_rows()}
    if tag == 0:
        return None
    if tag == 1:
        return raw.decode("utf-8")
    if tag == 2:
        return int(raw.decode("ascii"))
    if tag == 3:
        return struct.unpack("<d", raw)[0]
    if tag == 4:
        return raw != b"\x00"
    if tag == 5:
        return json.loads(raw.decode("utf-8"))
    raise AssertionError(f"tag {tag} is not in the spec")


def _value_tag_rows() -> list[dict]:
    rows = []
    for line in _section("Value tags").splitlines():
        cells = [c.strip() for c in line.strip().strip("|").split("|")]
        if len(cells) == 3 and cells[0].isdigit():
            rows.append({"tag": int(cells[0]), "field": cells[1],
                         "value": cells[2]})
    assert [r["tag"] for r in rows] == [0, 1, 2, 3, 4, 5]
    return rows


class TestWALFromSpec:
    def test_wal_parses_per_tables(self, store_dir):
        header_rows = _offset_table("WAL header")
        record_rows = _offset_table("WAL record")
        blob = (store_dir / "wal.bin").read_bytes()
        magic = _literal(header_rows, "magic").encode("ascii")
        assert blob[:len(magic)] == magic

        pos = len(magic)
        records = []
        fixed = sum(r["size"] for r in record_rows if r["size"])
        while pos + fixed <= len(blob):
            frame = _unpack(record_rows, blob, base=pos)
            payload = blob[pos + fixed:pos + fixed + frame["length"]]
            assert zlib.crc32(payload) == frame["crc32"]
            session, docs, rec_id = json.loads(payload.decode("utf-8"))
            records.append((session, docs, rec_id))
            pos += fixed + frame["length"]
        assert records == [("spec-session",
                            [{"time": 100, "syscall": "close", "ret": 0}],
                            1)]

    def test_manifest_matches_spec_shape(self, store_dir):
        manifest = json.loads(
            (store_dir / "MANIFEST.json").read_text(encoding="utf-8"))
        assert manifest["format"] == "dio-segments-v1"
        assert isinstance(manifest["next_seq"], int)
        # wal_sealed: highest WAL record id covered by sealed segments
        # (0 here: the only flushes came via import_docs, no WAL hop).
        assert manifest["wal_sealed"] == 0
        for name in manifest["segments"]:
            assert re.fullmatch(r"seg-\d{6}\.dseg", name)
            assert (store_dir / name).exists()
