"""Property-based tests: VFS semantics and LSM-store correctness."""

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import (RuleBasedStateMachine, invariant, rule)

from repro.apps.rocksdb import DBOptions, RocksDB
from repro.kernel import Kernel, O_CREAT, O_RDWR
from repro.kernel.errno import KernelError
from repro.kernel.vfs import VirtualFileSystem
from repro.sim import Environment

names = st.sampled_from([f"f{i}" for i in range(8)])


class VFSModel(RuleBasedStateMachine):
    """The VFS against a dict model under create/unlink/rename."""

    def __init__(self):
        super().__init__()
        self.vfs = VirtualFileSystem()
        self.model: dict[str, object] = {}

    @rule(name=names)
    def create(self, name):
        path = f"/{name}"
        if name in self.model:
            # Non-exclusive create returns the existing inode.
            inode = self.vfs.create(path)
            assert inode is self.model[name]
        else:
            self.model[name] = self.vfs.create(path)

    @rule(name=names)
    def unlink(self, name):
        path = f"/{name}"
        if name in self.model:
            self.vfs.unlink(path)
            del self.model[name]
        else:
            try:
                self.vfs.unlink(path)
                raise AssertionError("unlink of missing file succeeded")
            except KernelError:
                pass

    @rule(old=names, new=names)
    def rename(self, old, new):
        if old not in self.model:
            return
        inode = self.model[old]
        self.vfs.rename(f"/{old}", f"/{new}")
        del self.model[old]
        self.model[new] = inode

    @invariant()
    def lookups_match_model(self):
        for name in [f"f{i}" for i in range(8)]:
            found = self.vfs.lookup(f"/{name}")
            if name in self.model:
                assert found is self.model[name]
            else:
                assert found is None

    @invariant()
    def live_inode_numbers_unique(self):
        inos = [inode.ino for inode in self.model.values()]
        assert len(inos) == len(set(inos))


TestVFSModel = VFSModel.TestCase
TestVFSModel.settings = settings(max_examples=40, stateful_step_count=30,
                                 deadline=None)


class TestFileDataProperties:
    @given(chunks=st.lists(
        st.tuples(st.integers(min_value=0, max_value=2_000),
                  st.binary(min_size=1, max_size=200)),
        min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_write_read_matches_bytearray_model(self, chunks):
        """pwrite/pread through the syscall layer == a bytearray."""
        env = Environment()
        kernel = Kernel(env)
        task = kernel.spawn_process("app").threads[0]
        model = bytearray()

        def scenario():
            fd = yield from kernel.syscall(task, "open", path="/f",
                                           flags=O_CREAT | O_RDWR)
            for offset, payload in chunks:
                yield from kernel.syscall(task, "pwrite64", fd=fd,
                                          data=payload, offset=offset)
                if offset > len(model):
                    model.extend(b"\x00" * (offset - len(model)))
                model[offset:offset + len(payload)] = payload
            buf = bytearray(len(model) + 64)
            n = yield from kernel.syscall(task, "pread64", fd=fd, buf=buf,
                                          offset=0)
            assert n == len(model)
            assert bytes(buf[:n]) == bytes(model)

        env.run(until=env.process(scenario()))


class TestLSMProperties:
    @given(ops=st.lists(
        st.tuples(st.sampled_from(["put", "get"]),
                  st.integers(min_value=0, max_value=30),
                  st.integers(min_value=0, max_value=255)),
        min_size=1, max_size=80))
    @settings(max_examples=25, deadline=None)
    def test_db_matches_dict_model_across_flushes(self, ops):
        """RocksDB == dict, even while flushing and compacting."""
        env = Environment()
        kernel = Kernel(env)
        process = kernel.spawn_process("db")
        db = RocksDB(kernel, process, DBOptions(
            memtable_bytes=256, l0_compaction_trigger=2,
            sstable_bytes=512, compaction_threads=2))
        task = process.threads[0]
        model: dict[str, bytes] = {}

        def scenario():
            yield from db.open(task)
            for kind, key_index, value_byte in ops:
                key = f"key{key_index:04d}"
                if kind == "put":
                    value = bytes([value_byte]) * 8
                    yield from db.put(task, key, value)
                    model[key] = value
                else:
                    got = yield from db.get(task, key)
                    assert got == model.get(key), key
            # Drain background work, then verify every key again.
            yield env.timeout(2_000_000_000)
            for key, value in model.items():
                got = yield from db.get(task, key)
                assert got == value, key
            db.close()

        env.run(until=env.process(scenario()))
