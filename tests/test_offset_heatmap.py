"""Tests for the heatmap renderer and the offset access-map dashboard."""

import pytest

from repro.backend import DocumentStore
from repro.visualizer import DIODashboards, render_heatmap


class TestRenderHeatmap:
    def test_empty(self):
        assert render_heatmap([]) == "(no data)"
        assert render_heatmap([[]]) == "(no data)"

    def test_intensity_scaling(self):
        text = render_heatmap([[0, 4, 8]])
        row = text.splitlines()[0]
        cells = row.split("|")[1]
        assert cells[0] == " "
        assert cells[2] == "█"

    def test_row_labels_and_title(self):
        text = render_heatmap([[1], [2]], row_labels=["hi", "lo"],
                              title="map")
        lines = text.splitlines()
        assert lines[0] == "map"
        assert lines[1].startswith("hi")
        assert lines[2].startswith("lo")


def seed_offset_events(store, pattern):
    """pattern: list of (time, offset, ret) for pread64 on /f."""
    docs = [{"syscall": "openat", "proc_name": "p", "pid": 1, "tid": 1,
             "ret": 3, "time": 0, "file_tag": "7 3 0",
             "args": {"path": "/f"}, "file_path": "/f"}]
    for time, offset, ret in pattern:
        docs.append({"syscall": "pread64", "proc_name": "p", "pid": 1,
                     "tid": 1, "ret": ret, "time": time, "offset": offset,
                     "file_tag": "7 3 0", "file_path": "/f"})
    store.bulk("dio_trace", docs)


class TestOffsetDashboard:
    def test_offset_events_sorted_and_filtered(self):
        store = DocumentStore()
        seed_offset_events(store, [(30, 200, 10), (10, 0, 10), (20, 100, 10)])
        dash = DIODashboards(store)
        events = dash.offset_events(file_path="/f")
        assert [e["time"] for e in events] == [10, 20, 30]
        assert dash.offset_events(file_path="/other") == []

    def test_sequential_pattern_renders_diagonal(self):
        store = DocumentStore()
        seed_offset_events(store, [(i * 10, i * 1000, 1000)
                                   for i in range(20)])
        dash = DIODashboards(store)
        text = dash.offset_heatmap(file_path="/f", time_buckets=20,
                                   offset_buckets=10)
        lines = [line for line in text.splitlines()[1:]]
        # The topmost band (highest offsets) must light up LATE in time,
        # the bottom band EARLY — a diagonal.
        def first_mark(line):
            cells = line.split("|")[1]
            for index, char in enumerate(cells):
                if char != " ":
                    return index
            return None

        marked = [m for m in (first_mark(line) for line in lines)
                  if m is not None]
        # Top rows (high offsets) light up later than bottom rows.
        assert len(marked) >= 3
        assert marked[0] > marked[-1]
        assert marked == sorted(marked, reverse=True)

    def test_heatmap_no_data(self):
        store = DocumentStore()
        store.ensure_index("dio_trace")
        dash = DIODashboards(store)
        assert dash.offset_heatmap(file_path="/nope") == "(no data)"

    def test_filter_by_tag(self):
        store = DocumentStore()
        seed_offset_events(store, [(10, 0, 10)])
        dash = DIODashboards(store)
        assert dash.offset_events(file_tag="7 3 0")
        assert dash.offset_events(file_tag="7 9 9") == []
