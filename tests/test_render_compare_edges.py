"""Edge cases for the renderers and the session comparator.

The DST dashboards render whatever a scenario produced — including
nothing at all, a single bucket, or unicode paths — so the renderers
and :mod:`repro.analysis.compare` must behave on degenerate inputs,
not just on the happy paths the figure tests exercise.
"""

from repro.analysis.compare import (compare_sessions, session_fingerprint)
from repro.backend import DocumentStore
from repro.visualizer.render import (render_heatmap, render_histogram,
                                     render_sparkline_grid, render_table,
                                     render_timeseries, sparkline, to_csv)

UNICODE_PATH = "/data/журнал-日誌.log"


# ----------------------------------------------------------------------
# Renderers

def test_histogram_empty():
    assert render_histogram([]) == "(no data)"


def test_histogram_single_bucket():
    out = render_histogram([(UNICODE_PATH, 3)])
    assert UNICODE_PATH in out
    assert "###" not in out.split(UNICODE_PATH)[0]
    assert "#" in out


def test_histogram_all_zero_counts():
    out = render_histogram([("a", 0), ("b", 0)])
    # No division-by-zero; zero rows render without bars.
    assert "#" not in out


def test_table_empty_rows():
    out = render_table(("col", "другой"), [])
    lines = out.split("\n")
    assert len(lines) == 2  # header + rule, no data rows
    assert "другой" in lines[0]


def test_table_row_wider_than_headers():
    out = render_table(("a",), [("x", "overflow")])
    assert "x" in out


def test_sparkline_empty_and_flat():
    assert sparkline([]) == ""
    flat = sparkline([0, 0, 0])
    assert len(flat) == 3


def test_sparkline_grid_empty_windows():
    assert render_sparkline_grid([], {"t": {0: 1.0}}) == "(no data)"


def test_sparkline_grid_single_window():
    out = render_sparkline_grid([0], {"поток": {0: 5.0}})
    assert "поток" in out
    assert "(5)" in out


def test_timeseries_empty_and_single_point():
    assert render_timeseries([]) == "(no data)"
    out = render_timeseries([(100, 1.0)])
    assert "t: 100 .. 100" in out


def test_timeseries_all_zero():
    out = render_timeseries([(0, 0.0), (1, 0.0)])
    assert "max=" in out


def test_heatmap_empty():
    assert render_heatmap([]) == "(no data)"
    assert render_heatmap([[]]) == "(no data)"


def test_heatmap_single_cell_unicode_label():
    out = render_heatmap([[1.0]], row_labels=[UNICODE_PATH])
    assert UNICODE_PATH in out


def test_to_csv_unicode_round_trip():
    out = to_csv(("path", "n"), [(UNICODE_PATH, 1)])
    assert UNICODE_PATH in out


# ----------------------------------------------------------------------
# Session comparison

def _store_with(events_by_session: dict) -> DocumentStore:
    store = DocumentStore()
    store.ensure_index("dio_trace",
                       indexed_fields=("syscall", "session", "time",
                                       "proc_name"))
    for session, events in events_by_session.items():
        docs = [dict(event, session=session) for event in events]
        if docs:
            store.bulk("dio_trace", docs)
    return store


def _event(i, syscall="write", ret=64, proc="w", **extra):
    return dict({"syscall": syscall, "ret": ret, "proc_name": proc,
                 "pid": 1, "tid": 1, "time": 1000 + i * 10}, **extra)


def test_fingerprint_of_empty_session():
    store = _store_with({"real": [_event(0)]})
    fp = session_fingerprint(store, "ghost")
    assert fp["events"] == 0
    assert fp["by_syscall"] == {}
    assert fp["failed_syscalls"] == 0


def test_compare_empty_vs_empty_is_identical():
    store = _store_with({"real": [_event(0)]})
    comparison = compare_sessions(store, "ghost-a", "ghost-b")
    assert comparison.behaviorally_identical
    assert comparison.common_prefix == 0
    assert comparison.syscall_deltas == {}


def test_compare_empty_vs_nonempty_diverges_at_zero():
    store = _store_with({"real": [_event(0)]})
    comparison = compare_sessions(store, "ghost", "real")
    assert not comparison.behaviorally_identical
    assert comparison.divergence.position == 0
    assert comparison.divergence.event_a is None
    assert "(sequence ended)" in comparison.divergence.describe()


def test_compare_single_event_sessions():
    store = _store_with({
        "a": [_event(0, ret=64)],
        "b": [_event(0, ret=-5)],
    })
    comparison = compare_sessions(store, "a", "b")
    assert not comparison.behaviorally_identical
    assert comparison.common_prefix == 0
    assert comparison.syscall_deltas == {}  # same mix, different rets


def test_compare_unicode_paths_in_divergence():
    store = _store_with({
        "a": [_event(0, syscall="open",
                     args={"path": UNICODE_PATH}, offset=None)],
        "b": [_event(0, syscall="unlink",
                     args={"path": UNICODE_PATH}, offset=None)],
    })
    comparison = compare_sessions(store, "a", "b")
    assert not comparison.behaviorally_identical
    # describe() renders cleanly with unicode args present.
    assert "open" in comparison.divergence.describe()


def test_compare_renamed_processes_still_align():
    store = _store_with({
        "a": [_event(i, proc="fluent-bit") for i in range(3)],
        "b": [_event(i, proc="flb-pipeline") for i in range(3)],
    })
    comparison = compare_sessions(store, "a", "b")
    assert comparison.behaviorally_identical
