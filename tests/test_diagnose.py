"""Tests for the unified diagnosis surface and ``dio diagnose``."""

import json

import pytest

from repro.analysis.diagnose import (CONFIDENCE, DiagnosisReport,
                                     RankedFinding, _merge, diagnose_session,
                                     diagnose_store, follow_session)
from repro.analysis.detectors import Finding
from repro.analysis.streaming import DiagnosisTap
from repro.apps.fluentbit import FLUENTBIT_BUGGY, FLUENTBIT_FIXED
from repro.cli import main
from repro.experiments import run_fluentbit_case, run_rocksdb_case
from repro.experiments.rocksdb_case import RocksDBScale


@pytest.fixture(scope="module")
def buggy_case():
    return run_fluentbit_case(FLUENTBIT_BUGGY)


@pytest.fixture(scope="module")
def rocksdb_case():
    return run_rocksdb_case(RocksDBScale(duration_ns=400_000_000))


class TestMerge:
    def test_corroborated_detector_becomes_both(self):
        batch = [Finding("stale-offset", "critical", "batch view", {})]
        streaming = [(10, Finding("stale-offset", "critical",
                                  "stream view", {}))]
        merged = _merge(batch, streaming)
        assert len(merged) == 1
        assert merged[0].source == "both"
        assert merged[0].confidence == CONFIDENCE["both"]
        assert merged[0].finding.title == "batch view"

    def test_streaming_only_keeps_emit_ns(self):
        merged = _merge([], [(42, Finding("fd-leak", "warning", "t", {}))])
        assert merged[0].source == "streaming"
        assert merged[0].emit_ns == 42

    def test_ranked_by_severity_then_confidence(self):
        batch = [Finding("a", "warning", "w", {})]
        streaming = [(1, Finding("b", "critical", "c", {})),
                     (2, Finding("c", "info", "i", {}))]
        merged = _merge(batch, streaming)
        severities = [r.finding.severity for r in merged]
        assert severities == ["critical", "warning", "info"]


class TestDiagnoseSession:
    def test_fluentbit_buggy_surfaces_data_loss(self, buggy_case):
        session = buggy_case.tracer.config.session_name
        report = diagnose_session(buggy_case.store, session)
        assert report.has_critical
        stale = [r for r in report.findings
                 if "stale" in r.finding.detector]
        assert stale
        # Replay corroborates the batch finding: both batteries saw it.
        assert stale[0].source == "both"
        assert stale[0].confidence == CONFIDENCE["both"]
        assert stale[0].finding.evidence["event_ids"]

    def test_fluentbit_fixed_is_clean_of_criticals(self):
        case = run_fluentbit_case(FLUENTBIT_FIXED)
        report = diagnose_session(case.store,
                                  case.tracer.config.session_name)
        assert not report.has_critical

    def test_rocksdb_contention_with_latency_records(self, rocksdb_case):
        report = diagnose_session(rocksdb_case.store, rocksdb_case.session,
                                  latency_records=rocksdb_case.bench.records())
        contention = [r for r in report.findings
                      if r.finding.detector == "io-contention"]
        assert contention
        assert contention[0].source == "both"

    def test_live_tap_agrees_with_replay(self, buggy_case):
        tap = DiagnosisTap()
        case = run_fluentbit_case(FLUENTBIT_BUGGY, tap=tap)
        session = case.tracer.config.session_name
        live = diagnose_session(case.store, session, tap=tap)
        replay = diagnose_session(case.store, session)
        assert live.detectors_fired == replay.detectors_fired
        assert live.severities == replay.severities

    def test_report_has_dfg_and_phases(self, buggy_case):
        session = buggy_case.tracer.config.session_name
        report = diagnose_session(buggy_case.store, session)
        assert report.events > 0
        assert report.dfg.node_counts
        assert report.phases
        assert sum(p.events for p in report.phases) == report.events

    def test_to_json_is_deterministic(self, buggy_case):
        session = buggy_case.tracer.config.session_name
        one = diagnose_session(buggy_case.store, session).to_json()
        two = diagnose_session(buggy_case.store, session).to_json()
        assert one == two
        payload = json.loads(one)
        assert payload["session"] == session
        assert payload["severities"].get("critical", 0) >= 1

    def test_render_mentions_sources_and_evidence(self, buggy_case):
        session = buggy_case.tracer.config.session_name
        text = diagnose_session(buggy_case.store, session).render()
        assert f"=== diagnosis for session {session!r} ===" in text
        assert "source: both" in text
        assert "evidence:" in text
        assert "behaviour:" in text
        assert "phase 1:" in text

    def test_diagnose_store_one_report_per_session(self, buggy_case):
        session = buggy_case.tracer.config.session_name
        reports = diagnose_store(buggy_case.store, [session])
        assert len(reports) == 1
        assert isinstance(reports[0], DiagnosisReport)


class TestFollowSession:
    def test_emits_incrementally_in_stream_order(self, buggy_case):
        session = buggy_case.tracer.config.session_name
        seen = []
        follow_session(buggy_case.store, "dio_trace", session,
                       emit=lambda ns, f: seen.append((ns, f)))
        assert seen
        assert [ns for ns, _ in seen] == sorted(ns for ns, _ in seen)
        assert any(f.detector == "stale-offset-resume" for _, f in seen)


class TestRankedFinding:
    def test_as_dict_includes_provenance(self):
        ranked = RankedFinding(Finding("d", "warning", "t", {"k": 1}),
                               "streaming", emit_ns=7)
        payload = ranked.as_dict()
        assert payload["source"] == "streaming"
        assert payload["confidence"] == CONFIDENCE["streaming"]
        assert payload["emit_ns"] == 7

    def test_rejects_unknown_source(self):
        with pytest.raises(KeyError):
            RankedFinding(Finding("d", "info", "t", {}), "psychic")


class TestDiagnoseCLI:
    @pytest.fixture(scope="class")
    def traces(self, tmp_path_factory):
        base = tmp_path_factory.mktemp("diag-traces")
        buggy = base / "buggy.jsonl"
        assert main(["fluentbit", "--version", "1.4.0",
                     "--export", str(buggy)]) == 0
        return buggy

    def test_no_arguments_is_an_error(self, capsys):
        assert main(["diagnose"]) == 2
        assert "provide trace files or --scenario" in capsys.readouterr().err

    def test_diagnose_trace_file(self, traces, capsys):
        assert main(["diagnose", str(traces)]) == 0
        out = capsys.readouterr().out
        assert "diagnosis for session 'fluentbit-1.4.0'" in out
        assert "stale-offset" in out
        assert "source: both" in out

    def test_json_output(self, traces, capsys):
        assert main(["diagnose", str(traces), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["session"] == "fluentbit-1.4.0"
        assert "stale-offset-resume" in payload["detectors_fired"]
        kinds = {f["detector"] for f in payload["findings"]}
        assert "stale-offset-resume" in kinds

    def test_session_filter_unknown_session(self, traces, capsys):
        assert main(["diagnose", str(traces), "--session", "nope"]) == 2
        assert "not found" in capsys.readouterr().err

    def test_follow_prints_incremental_findings(self, traces, capsys):
        assert main(["diagnose", str(traces), "--follow"]) == 0
        out = capsys.readouterr().out
        assert "--- streaming findings for session" in out
        assert "ms]" in out

    def test_scenario_fluentbit_live(self, capsys):
        assert main(["diagnose", "--scenario", "fluentbit"]) == 0
        out = capsys.readouterr().out
        assert "stale-offset" in out
        assert "source: both" in out

    def test_scenario_rocksdb_live(self, capsys):
        assert main(["diagnose", "--scenario", "rocksdb",
                     "--duration", "0.4"]) == 0
        out = capsys.readouterr().out
        assert "io-contention" in out


class TestAnalyzeCompareJSON:
    @pytest.fixture(scope="class")
    def traces(self, tmp_path_factory):
        base = tmp_path_factory.mktemp("json-traces")
        buggy = base / "buggy.jsonl"
        fixed = base / "fixed.jsonl"
        assert main(["fluentbit", "--version", "1.4.0",
                     "--export", str(buggy)]) == 0
        assert main(["fluentbit", "--version", "2.0.5",
                     "--export", str(fixed)]) == 0
        return buggy, fixed

    def test_analyze_json(self, traces, capsys):
        assert main(["analyze", str(traces[0]), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["session"] == "fluentbit-1.4.0"
        severities = {f["severity"] for f in payload[0]["findings"]}
        assert "critical" in severities

    def test_analyze_json_exit_zero_when_clean(self, traces, capsys):
        assert main(["analyze", str(traces[1]), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert all(f["severity"] != "critical"
                   for f in payload[0]["findings"])

    def test_compare_json(self, traces, capsys):
        assert main(["compare", str(traces[0]), str(traces[1]),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["session_a"] == "fluentbit-1.4.0"
        assert payload["session_b"] == "fluentbit-2.0.5"
        assert payload["behaviorally_identical"] is False
        assert payload["divergence"]["position"] >= 0
        assert payload["dfg"]["distance"] > 0
