"""Integration tests for the end-to-end experiment harnesses.

These use reduced scales so the suite stays fast; the full-scale runs
live in ``benchmarks/``.
"""

import pytest

from repro.apps.fluentbit import FLUENTBIT_BUGGY, FLUENTBIT_FIXED
from repro.experiments import (run_fluentbit_case, run_overhead_comparison,
                               run_rocksdb_case)
from repro.experiments.rocksdb_case import RocksDBScale

SECOND = 1_000_000_000
MS = 1_000_000


@pytest.fixture(scope="module")
def buggy_case():
    return run_fluentbit_case(FLUENTBIT_BUGGY)


@pytest.fixture(scope="module")
def fixed_case():
    return run_fluentbit_case(FLUENTBIT_FIXED)


class TestFluentBitCase:
    def test_buggy_loses_second_write(self, buggy_case):
        assert buggy_case.lost_bytes == 16
        assert buggy_case.delivered_bytes == 26

    def test_fixed_loses_nothing(self, fixed_case):
        assert fixed_case.lost_bytes == 0
        assert fixed_case.delivered_bytes == 42

    def test_fig2a_sequence(self, buggy_case):
        """The event sequence of Fig. 2a, step by step."""
        rows = buggy_case.figure2_rows()
        flb = [r for r in rows if r["proc_name"] == "fluent-bit"]
        app = [r for r in rows if r["proc_name"] == "app"]
        # Step 1: app creates, writes 26 bytes at offset 0, closes.
        assert [r["syscall"] for r in app[:3]] == ["openat", "write", "close"]
        assert app[1]["ret"] == 26 and app[1]["offset"] == 0
        # Step 2: fluent-bit reads the full 26 bytes from offset 0.
        assert flb[0]["syscall"] == "openat"
        assert (flb[1]["syscall"], flb[1]["ret"], flb[1]["offset"]) == ("read", 26, 0)
        # Step 3: app unlinks; fluent-bit closes its descriptor.
        assert app[3]["syscall"] == "unlink"
        # Step 4: app recreates the file and writes 16 bytes.
        assert app[5]["syscall"] == "write" and app[5]["ret"] == 16
        # Step 5: fluent-bit seeks to the stale offset 26 and reads 0.
        lseeks = [r for r in flb if r["syscall"] == "lseek"]
        assert lseeks and lseeks[0]["ret"] == 26
        last_reads = [r for r in flb if r["syscall"] == "read"][-1:]
        assert last_reads[0]["ret"] == 0 and last_reads[0]["offset"] == 26

    def test_fig2b_sequence(self, fixed_case):
        """Fig. 2b: the fixed version reads the new file from offset 0."""
        rows = fixed_case.figure2_rows()
        flb = [r for r in rows if r["proc_name"] == "flb-pipeline"]
        # No stale lseek; the second file's first read is at offset 0
        # and returns the 16 new bytes.
        assert all(r["syscall"] != "lseek" for r in flb)
        reads_16 = [r for r in flb
                    if r["syscall"] == "read" and r["ret"] == 16]
        assert reads_16 and reads_16[0]["offset"] == 0

    def test_file_tags_distinguish_inode_reuse(self, buggy_case):
        rows = buggy_case.figure2_rows()
        tags = {r["file_tag"] for r in rows if r.get("file_tag")}
        assert len(tags) == 2
        devs_inos = {tuple(tag.split()[:2]) for tag in tags}
        assert len(devs_inos) == 1  # same device and inode number

    def test_versions_differ_only_at_step5(self, buggy_case, fixed_case):
        """Paper: 'the two versions present similar behavior (1-4)'."""
        def prefix(case):
            return [(r["proc_name"].replace("flb-pipeline", "fluent-bit"),
                     r["syscall"], r["ret"])
                    for r in case.figure2_rows()][:11]

        assert prefix(buggy_case) == prefix(fixed_case)

    def test_correlation_resolved_all_paths(self, buggy_case):
        report = buggy_case.tracer.correlation_report
        assert report is not None
        assert report.unresolved_ratio == 0.0


@pytest.fixture(scope="module")
def small_rocksdb_case():
    scale = RocksDBScale(duration_ns=400 * MS, key_count=10_000,
                         client_threads=4, memtable_bytes=256 * 1024)
    return run_rocksdb_case(scale)


class TestRocksDBCase:
    def test_bench_produced_operations(self, small_rocksdb_case):
        assert small_rocksdb_case.bench.op_count > 1000

    def test_trace_contains_all_thread_kinds(self, small_rocksdb_case):
        data = small_rocksdb_case.dashboards.syscalls_over_time(50 * MS)
        threads = {name for counts in data.values() for name in counts}
        assert "db_bench" in threads
        assert "rocksdb:high0" in threads
        assert any(name.startswith("rocksdb:low") for name in threads)

    def test_trace_scope_is_data_syscalls(self, small_rocksdb_case):
        response = small_rocksdb_case.store.search(
            "dio_trace", size=0,
            aggs={"s": {"terms": {"field": "syscall", "size": 50}}})
        seen = {b["key"] for b in response["aggregations"]["s"]["buckets"]}
        allowed = {"open", "openat", "creat", "read", "pread64", "readv",
                   "write", "pwrite64", "writev", "close"}
        assert seen <= allowed

    def test_background_threads_did_io(self, small_rocksdb_case):
        assert small_rocksdb_case.db.stats.flushes > 0
        assert small_rocksdb_case.db.stats.compactions > 0

    def test_no_background_crashes(self, small_rocksdb_case):
        small_rocksdb_case.db.check_health()


class TestOverheadComparison:
    @pytest.fixture(scope="class")
    def result(self):
        scale = RocksDBScale(key_count=5_000, client_threads=4)
        return run_overhead_comparison(scale=scale, ops_per_thread=300)

    def test_ordering_matches_table2(self, result):
        """vanilla < sysdig < DIO < strace."""
        assert result.overhead("sysdig") > 1.0
        assert result.overhead("dio") > result.overhead("sysdig")
        assert result.overhead("strace") > result.overhead("dio")

    def test_same_operation_budget(self, result):
        counts = {run.ops for run in result.runs.values()}
        assert len(counts) == 1

    def test_rows_render(self, result):
        rows = result.table2_rows()
        assert len(rows) == 4
        assert rows[0][0] == "vanilla"
        assert rows[0][2] == "1.00x"
