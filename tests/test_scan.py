"""Tests for LSM range scans and the db_bench latency report."""

import pytest

from repro.apps.rocksdb import DBBench, DBOptions, RocksDB
from repro.apps.rocksdb.db_bench import key_name
from repro.kernel import Kernel
from repro.sim import Environment

SECOND = 1_000_000_000


def make_db(**overrides):
    env = Environment()
    kernel = Kernel(env)
    process = kernel.spawn_process("db")
    db = RocksDB(kernel, process, DBOptions(**overrides))
    return env, kernel, process.threads[0], db


def run(env, gen):
    return env.run(until=env.process(gen))


class TestScan:
    def test_scan_returns_sorted_live_range(self):
        env, kernel, task, db = make_db()

        def scenario():
            yield from db.open(task)
            for i in range(20):
                yield from db.put(task, key_name(i), f"v{i}".encode())
            result = yield from db.scan(task, key_name(5), limit=4)
            db.close()
            return result

        result = run(env, scenario())
        assert [k for k, _ in result] == [key_name(i) for i in (5, 6, 7, 8)]
        assert result[0][1] == b"v5"

    def test_scan_merges_memtable_and_sstables(self):
        env, kernel, task, db = make_db(memtable_bytes=1024)

        def scenario():
            yield from db.open(task)
            for i in range(40):
                yield from db.put(task, key_name(i), b"old" + bytes([i]))
            yield env.timeout(SECOND)          # flushed to SSTables
            yield from db.put(task, key_name(10), b"NEW")
            result = yield from db.scan(task, key_name(9), limit=3)
            db.close()
            return result

        result = run(env, scenario())
        assert dict(result)[key_name(10)] == b"NEW"
        assert len(result) == 3

    def test_scan_skips_tombstones(self):
        env, kernel, task, db = make_db()

        def scenario():
            yield from db.open(task)
            for i in range(10):
                yield from db.put(task, key_name(i), b"v")
            yield from db.delete(task, key_name(3))
            result = yield from db.scan(task, key_name(2), limit=3)
            db.close()
            return result

        result = run(env, scenario())
        assert [k for k, _ in result] == [key_name(2), key_name(4),
                                          key_name(5)]

    def test_scan_past_end(self):
        env, kernel, task, db = make_db()

        def scenario():
            yield from db.open(task)
            yield from db.put(task, key_name(1), b"v")
            result = yield from db.scan(task, key_name(500), limit=5)
            db.close()
            return result

        assert run(env, scenario()) == []

    def test_scan_charges_io_on_flushed_data(self):
        env, kernel, task, db = make_db(memtable_bytes=1024)

        def scenario():
            yield from db.open(task)
            for i in range(60):
                yield from db.put(task, key_name(i), b"x" * 64)
            yield env.timeout(SECOND)
            # Drop the page cache so the scan must hit the device.
            for level in db.levels:
                for table in level:
                    ino = kernel.vfs.lookup(table.path)
                    if ino is not None:
                        kernel.cache.drop_inode(ino.ino)
            before = kernel.device.stats.bytes_read
            yield from db.scan(task, key_name(0), limit=50)
            db.close()
            return kernel.device.stats.bytes_read - before

        assert run(env, scenario()) > 0

    def test_invalid_limit(self):
        env, kernel, task, db = make_db()

        def scenario():
            yield from db.open(task)
            with pytest.raises(ValueError):
                yield from db.scan(task, key_name(0), limit=0)
            db.close()

        run(env, scenario())


class TestBenchReport:
    def test_report_lists_each_op_kind(self):
        env = Environment()
        kernel = Kernel(env)
        process = kernel.spawn_process("db_bench")
        db = RocksDB(kernel, process, DBOptions())
        bench = DBBench(kernel, db, client_threads=2, key_count=200,
                        value_size=64, seed=9)

        def scenario():
            yield from db.open(bench.client_tasks[0])
            yield from bench.load()
            handle = bench.run_ops(50)
            result = yield from handle.wait()
            db.close()
            return result

        result = env.run(until=env.process(scenario()))
        text = result.report()
        assert "ops/s" in text
        assert "read" in text and "update" in text
        assert "p99" in text
