"""Tests for the streaming detectors and the consumer-path tap."""

import pytest

from repro.analysis.streaming import (MAX_TRACKED_TAGS, DiagnosisTap,
                                      StreamingContentionDetector,
                                      StreamingDFGMiner,
                                      StreamingFdLeakDetector,
                                      StreamingSpikeAttributor,
                                      StreamingStaleOffsetDetector,
                                      StreamingWriteAmplificationDetector,
                                      default_streaming_detectors)
from repro.apps.fluentbit import FLUENTBIT_BUGGY, FLUENTBIT_FIXED
from repro.experiments import run_fluentbit_case

MS = 1_000_000


def doc(syscall, time, proc="p", pid=1, tid=1, ret=0, tag=None,
        offset=None, path=None):
    out = {"syscall": syscall, "time": time, "proc_name": proc,
           "pid": pid, "tid": tid, "ret": ret}
    if tag is not None:
        out["file_tag"] = tag
    if offset is not None:
        out["offset"] = offset
    if path is not None:
        out["file_path"] = path
    return out


class TestStreamingStaleOffset:
    def test_confirms_after_empty_reads(self):
        detector = StreamingStaleOffsetDetector(confirm_after=3)
        detector.observe(doc("read", 10, proc="fb", tag="7 9 1",
                             offset=26, ret=0, path="/app.log"), "e1")
        for i in range(3):
            detector.observe(doc("read", 20 + i, proc="fb", tag="7 9 1",
                                 offset=26, ret=0), f"e{2 + i}")
        assert len(detector.emitted) == 1
        _, finding = detector.emitted[0]
        assert finding.severity == "critical"
        assert "stale offset 26" in finding.title
        assert "e1" in finding.evidence["event_ids"]

    def test_data_arriving_clears_suspicion(self):
        detector = StreamingStaleOffsetDetector(confirm_after=3)
        detector.observe(doc("read", 10, tag="t", offset=26, ret=0))
        detector.observe(doc("read", 20, tag="t", offset=26, ret=99))
        detector.finalize()
        assert detector.emitted == []

    def test_finalize_emits_unconfirmed_suspicions(self):
        detector = StreamingStaleOffsetDetector(confirm_after=99)
        detector.observe(doc("read", 10, tag="t", offset=26, ret=0))
        detector.finalize()
        assert len(detector.emitted) == 1

    def test_offset_zero_first_read_is_fine(self):
        detector = StreamingStaleOffsetDetector()
        detector.observe(doc("read", 10, tag="t", offset=0, ret=0))
        detector.finalize()
        assert detector.emitted == []

    def test_tag_table_is_bounded(self):
        detector = StreamingStaleOffsetDetector()
        for i in range(MAX_TRACKED_TAGS + 50):
            detector.observe(doc("read", i, tag=f"tag{i}", offset=0,
                                 ret=1))
        assert len(detector._tags) <= MAX_TRACKED_TAGS


class TestStreamingFdLeak:
    def test_watermark_fires_once(self):
        detector = StreamingFdLeakDetector(min_unclosed=4)
        for i in range(6):
            detector.observe(doc("openat", i, pid=9, ret=3 + i), f"e{i}")
        assert len(detector.emitted) == 1
        _, finding = detector.emitted[0]
        assert "watermark reached 4" in finding.title

    def test_balanced_process_silent(self):
        detector = StreamingFdLeakDetector(min_unclosed=4)
        for i in range(8):
            detector.observe(doc("open", 2 * i, pid=1, ret=3))
            detector.observe(doc("close", 2 * i + 1, pid=1, ret=0))
        assert detector.emitted == []

    def test_failed_opens_ignored(self):
        detector = StreamingFdLeakDetector(min_unclosed=2)
        for i in range(10):
            detector.observe(doc("open", i, pid=1, ret=-2))
        assert detector.emitted == []


class TestStreamingWriteAmplification:
    def test_detects_amplification(self):
        detector = StreamingWriteAmplificationDetector(
            client_comm="db_bench", min_client_bytes=1000)
        for i in range(10):
            detector.observe(doc("write", i, proc="db_bench", ret=200))
        for i in range(40):
            detector.observe(doc("write", 100 + i,
                                 proc="rocksdb:low0", ret=1000))
        detector.finalize()
        assert len(detector.emitted) == 1
        _, finding = detector.emitted[0]
        assert "write" in finding.title
        assert finding.details["amplification"] == pytest.approx(21.0)
        assert finding.details["top_writers"][0][0] == "rocksdb:low0"

    def test_no_client_writes_no_finding(self):
        detector = StreamingWriteAmplificationDetector()
        detector.observe(doc("write", 1, proc="rocksdb:low0", ret=4096))
        detector.finalize()
        assert detector.emitted == []

    def test_finalize_is_one_shot(self):
        detector = StreamingWriteAmplificationDetector(min_client_bytes=1)
        detector.observe(doc("write", 1, proc="db_bench", ret=10))
        detector.observe(doc("write", 2, proc="bg", ret=1000))
        detector.finalize()
        detector.finalize()
        assert len(detector.emitted) == 1


def contended_stream(detector, windows=3, calm=3, window_ns=10 * MS):
    """Alternating calm / contended windows into a windowed detector.

    Events are delivered in event-time order — the watermark semantics
    of the windowed detectors assume an in-order feed, and that is what
    the consumer path provides.
    """
    feed = []
    t = 0
    for w in range(calm):
        base = w * 2 * window_ns
        for i in range(20):
            feed.append((doc("read", base + i * 100_000,
                             proc="db_bench", tid=100 + i % 8,
                             ret=512), None))
        t = base
    for w in range(windows):
        base = (2 * w + 1) * window_ns
        for thread in range(6):
            for i in range(5):
                feed.append((doc(
                    "pread64", base + thread * 100_000 + i,
                    proc=f"rocksdb:low{thread}", tid=200 + thread,
                    ret=262_144), f"bg{w}-{thread}-{i}"))
        for i in range(4):
            feed.append((doc("read", base + 5 * MS + i,
                             proc="db_bench", tid=100 + i, ret=512),
                         None))
        t = base
    # Push the watermark far enough that every window closes.
    feed.append((doc("read", t + 10 * window_ns, proc="db_bench",
                     tid=100, ret=512), None))
    for source, event_id in sorted(feed, key=lambda item: item[0]["time"]):
        detector.observe(source, event_id)
    detector.finalize()


class TestStreamingContention:
    def test_emits_window_and_summary_findings(self):
        detector = StreamingContentionDetector(window_ns=10 * MS,
                                               min_windows=2)
        contended_stream(detector)
        severities = [f.severity for _, f in detector.emitted]
        assert "warning" in severities          # the summary
        assert "info" in severities             # incremental windows
        summary = [f for _, f in detector.emitted
                   if f.severity == "warning"][0]
        assert "client syscall rate drops" in summary.title
        assert summary.details["contended_windows"] >= 2
        window_finding = [f for _, f in detector.emitted
                          if f.severity == "info"][0]
        assert "rocksdb:low" in window_finding.title
        assert window_finding.evidence["event_ids"]

    def test_quiet_without_background_bursts(self):
        detector = StreamingContentionDetector(window_ns=10 * MS)
        for i in range(200):
            detector.observe(doc("read", i * 500_000, proc="db_bench",
                                 tid=100 + i % 8, ret=512))
        detector.finalize()
        assert detector.emitted == []

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            StreamingContentionDetector(window_ns=0)


class TestStreamingSpikeAttributor:
    def test_attributes_spike_to_background_io(self):
        detector = StreamingSpikeAttributor(window_ns=10 * MS,
                                            spike_factor=2.5)
        # Six calm windows establish the baseline, then a spiky window
        # with heavy concurrent background I/O.
        for w in range(6):
            base = w * 10 * MS
            for i in range(10):
                detector.observe_latency(base + i * MS, 1 * MS)
        spike_base = 6 * 10 * MS
        for i in range(20):
            detector.observe(doc("pread64", spike_base + i,
                                 proc="rocksdb:low0", tid=200,
                                 ret=262_144), f"c{i}")
        for i in range(10):
            detector.observe_latency(spike_base + i * MS, 10 * MS)
        detector.observe_latency(spike_base + 50 * 10 * MS, 1 * MS)
        detector.finalize()
        assert detector.spikes_found == 1
        _, finding = detector.emitted[0]
        assert "p99 spike" in finding.title
        assert "rocksdb:low0" in finding.title
        assert finding.details["culprits"] == ["rocksdb:low0"]

    def test_spike_without_background_activity_is_silent(self):
        detector = StreamingSpikeAttributor(window_ns=10 * MS)
        for w in range(6):
            for i in range(10):
                detector.observe_latency(w * 10 * MS + i * MS, 1 * MS)
        for i in range(10):
            detector.observe_latency(60 * MS + i * MS, 50 * MS)
        detector.finalize()
        assert detector.emitted == []


class TestStreamingDFGMiner:
    def test_counts_match_batch_graph(self):
        miner = StreamingDFGMiner()
        for i in range(50):
            miner.observe(doc("read", i * 10, tid=1))
            miner.observe(doc("write", i * 10 + 5, tid=2))
        assert miner.nodes == 2
        assert miner.transitions == 100
        # Per-tid chains: no invented read->write edge.
        assert ("read", "write") not in miner.graph.edges

    def test_phase_counting(self):
        miner = StreamingDFGMiner(window_events=16, drift_threshold=0.4)
        for i in range(64):
            miner.observe(doc("read", i * 10))
        for i in range(64):
            miner.observe(doc("write", 640 + i * 10))
        assert miner.phases >= 2


class TestDiagnosisTap:
    def test_live_tap_on_fluentbit_consumer_path(self):
        tap = DiagnosisTap()
        case = run_fluentbit_case(FLUENTBIT_BUGGY, tap=tap)
        assert tap.events_observed == case.store.count("dio_trace")
        assert tap.finalized
        findings = [f for _, f in tap.findings()]
        assert any(f.detector == "stale-offset-resume"
                   and f.severity == "critical" for f in findings)

    def test_live_tap_fixed_version_no_critical(self):
        tap = DiagnosisTap()
        run_fluentbit_case(FLUENTBIT_FIXED, tap=tap)
        assert all(f.severity != "critical" for _, f in tap.findings())

    def test_drain_new_is_incremental(self):
        tap = DiagnosisTap()
        tap.observe(doc("read", 10, tag="t", offset=26, ret=0), "e1")
        assert tap.drain_new() == []
        tap.finalize()
        fresh = tap.drain_new()
        assert len(fresh) == 1
        assert tap.drain_new() == []

    def test_bind_telemetry_registers_families(self):
        from repro.telemetry.registry import MetricsRegistry

        tap = DiagnosisTap()
        registry = MetricsRegistry()
        tap.bind_telemetry(registry)
        names = {family.name for family in registry.collect()}
        assert {"dio_diagnosis_events_observed_total",
                "dio_diagnosis_findings_total",
                "dio_diagnosis_detectors",
                "dio_dfg_nodes", "dio_dfg_edges",
                "dio_dfg_transitions_total",
                "dio_dfg_phases_total"} <= names

    def test_default_battery_composition(self):
        detectors = default_streaming_detectors()
        names = [d.name for d in detectors]
        assert names == ["stale-offset-resume", "fd-leak",
                         "io-contention", "latency-spike-blame",
                         "write-amplification", "uring-completion-lag"]
