"""Unit tests for the shard router and the tenancy layer.

The differential suite (``test_sharding_differential.py``) proves the
router is observably identical to the plain store; these tests pin the
*mechanisms* — deterministic routing, subset narrowing, partial-merge
vs gather accounting, kill/restore/rebalance lifecycle, per-shard
persistence, and the ``dio_shard_*``/``dio_tenant_*`` telemetry.
"""

import json

import pytest

from repro.backend import (DocumentStore, ShardedDocumentStore,
                           TenantBackend, TenantQuotaExceeded, TenantStore,
                           create_store)
from repro.backend.store import StoreError
from repro.telemetry import MetricsRegistry

INDEX = "idx"
INDEXED = ("syscall", "pid", "file_tag", "session", "time")


def make_docs(n, session="s"):
    return [{"syscall": ("read", "write", "open")[i % 3],
             "pid": i % 5 + 1, "tid": i % 2 + 1,
             "time": i * 250, "duration_ns": i,
             "file_tag": f"/f{i % 4}", "session": session,
             "proc_name": "app", "ret": 0}
            for i in range(n)]


def sharded(count=3, key="pid", **kwargs):
    store = ShardedDocumentStore(shard_count=count, shard_key=key,
                                 time_window_ns=1_000, **kwargs)
    store.ensure_index(INDEX, indexed_fields=INDEXED)
    return store


class TestRouting:
    def test_routing_is_deterministic_across_instances(self):
        a, b = sharded(), sharded()
        for pid in range(1, 30):
            assert a._route_value(pid) == b._route_value(pid)

    def test_cross_type_equal_keys_share_a_shard(self):
        store = sharded(count=5)
        assert (store._route_value(3) == store._route_value(3.0)
                == store._route_value(True) * 0 + store._route_value(3))
        assert store._route_value(True) == store._route_value(1)

    def test_absent_shard_key_still_routes(self):
        store = sharded(key="file_tag")
        store.bulk(INDEX, [{"syscall": "read", "pid": 1, "time": 0}])
        assert store.count(INDEX) == 1

    def test_time_window_groups_neighbouring_events(self):
        store = sharded(key="time_window")
        # Same 1000ns window -> same shard; the window id routes, not
        # the raw timestamp.
        assert store._route_source({"time": 10}) == store._route_source(
            {"time": 990})

    def test_bulk_partitions_by_route_code(self):
        store = sharded()
        store.bulk(INDEX, make_docs(50))
        assert store.count(INDEX) == 50
        assert store.bulk_partitions >= 2
        per_shard = [store._shard_docs(i) for i in range(3)]
        assert sum(per_shard) == 50
        assert sum(1 for n in per_shard if n) >= 2

    def test_shard_key_term_query_routes_to_subset(self):
        store = sharded()
        store.bulk(INDEX, make_docs(30))
        before = store.routed_queries
        store.count(INDEX, {"term": {"pid": 2}})
        assert store.routed_queries == before + 1

    def test_non_key_query_fans_out(self):
        store = sharded()
        store.bulk(INDEX, make_docs(30))
        before = store.fanout_queries
        store.count(INDEX, {"term": {"syscall": "read"}})
        assert store.fanout_queries == before + 1

    def test_route_field_mutation_disables_exact_routing(self):
        store = sharded()
        store.bulk(INDEX, make_docs(30))
        store.update_by_query(INDEX, {"term": {"pid": 1}}, {"pid": 2})
        # Every pid-1 doc now claims pid 2 but lives on pid-1's shard:
        # routed reads would miss them, so the coordinator must fan out.
        before = store.fanout_queries
        assert store.count(INDEX, {"term": {"pid": 2}}) == store.count(
            INDEX, {"term": {"pid": 2}})
        assert store.fanout_queries > before

    def test_invalid_construction_rejected(self):
        with pytest.raises(StoreError):
            ShardedDocumentStore(shard_count=0)
        with pytest.raises(StoreError):
            ShardedDocumentStore(shard_key="hostname")
        with pytest.raises(StoreError):
            ShardedDocumentStore(time_window_ns=0)


class TestMerges:
    def test_scan_preserves_global_ingest_order(self):
        store = sharded()
        docs = make_docs(40)
        store.bulk(INDEX, docs)
        got = [doc["duration_ns"] for _, doc in store.scan(INDEX)]
        assert got == list(range(40))

    def test_sortfree_aggs_use_partial_merge(self):
        store = sharded()
        store.bulk(INDEX, make_docs(60))
        before = store.agg_merges
        store.search(INDEX, size=0, aggs={
            "per": {"terms": {"field": "syscall", "size": 5}},
            "lat": {"stats": {"field": "duration_ns"}}})
        assert store.agg_merges == before + 1

    def test_sorted_agg_requests_fall_back_to_gather(self):
        store = sharded()
        store.bulk(INDEX, make_docs(60))
        before = store.agg_gathers
        store.search(INDEX, sort=[{"time": {"order": "desc"}}], size=5,
                     aggs={"lat": {"stats": {"field": "duration_ns"}}})
        assert store.agg_gathers == before + 1

    def test_coordinator_cache_hits_on_repeat(self):
        store = sharded()
        store.bulk(INDEX, make_docs(60))
        request = dict(size=0, aggs={"lat": {"stats":
                                             {"field": "duration_ns"}}})
        first = store.search(INDEX, **request)
        hits = store.agg_cache_hits
        second = store.search(INDEX, **request)
        assert store.agg_cache_hits == hits + 1
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True)

    def test_cache_invalidated_by_writes(self):
        store = sharded()
        store.bulk(INDEX, make_docs(10))
        request = dict(size=0,
                       aggs={"n": {"value_count": {"field": "pid"}}})
        assert store.search(INDEX, **request)[
            "aggregations"]["n"]["value"] == 10
        store.bulk(INDEX, make_docs(5))
        assert store.search(INDEX, **request)[
            "aggregations"]["n"]["value"] == 15


class TestLifecycle:
    def test_kill_then_restore_round_trips(self, tmp_path):
        store = sharded()
        store.bulk(INDEX, make_docs(45))
        snapshot = list(store.scan(INDEX))
        store.save_shards(tmp_path)
        victim = max(range(3), key=store._shard_docs)
        held = store._shard_docs(victim)
        store.kill_shard(victim)
        assert store.shard_kills == 1
        assert store.count(INDEX) == 45 - held
        assert store.restore_shard(victim, tmp_path) == held
        assert list(store.scan(INDEX)) == snapshot

    def test_kill_bad_shard_rejected(self):
        store = sharded()
        with pytest.raises(StoreError):
            store.kill_shard(7)
        with pytest.raises(StoreError):
            store.restore_shard(-1, "/nowhere")

    def test_restore_missing_image_is_a_noop(self, tmp_path):
        store = sharded()
        store.bulk(INDEX, make_docs(9))
        before = store.count(INDEX)
        assert store.restore_shard(0, tmp_path / "empty") == 0
        assert store.count(INDEX) == before

    def test_rebalance_changes_count_and_keeps_answers(self):
        store = sharded(count=2)
        store.bulk(INDEX, make_docs(48))
        snapshot = list(store.scan(INDEX))
        aggs = {"per": {"terms": {"field": "pid", "size": 10}}}
        agg_before = store.search(INDEX, size=0, aggs=aggs)["aggregations"]
        moved = store.rebalance(4)
        assert store.shard_count == 4
        assert len(store.shards) == 4
        assert store.rebalances == 1
        assert moved > 0
        assert list(store.scan(INDEX)) == snapshot
        assert store.search(INDEX, size=0,
                            aggs=aggs)["aggregations"] == agg_before

    def test_save_shard_segments_writes_per_shard_dirs(self, tmp_path):
        store = sharded()
        store.bulk(INDEX, make_docs(30, session="cap"))
        written = store.save_shard_segments(tmp_path, "cap", index=INDEX)
        assert written
        for shard_dir in written:
            assert shard_dir.exists()
            assert any(shard_dir.iterdir())


class TestTelemetry:
    def test_shard_gauges_reflect_layout(self):
        store = sharded()
        registry = MetricsRegistry()
        store.bind_telemetry(registry)
        store.bulk(INDEX, make_docs(33))
        store.count(INDEX, {"term": {"pid": 1}})
        assert registry.value("dio_shard_count") == 3
        family = registry.get("dio_shard_docs")
        total = sum(family.labels(shard=str(i)).value for i in range(3))
        assert total == 33
        assert registry.value("dio_shard_routed_queries_total") == 1
        assert registry.value("dio_store_documents_indexed_total") == 33

    def test_store_families_sum_over_shards(self):
        store = sharded()
        registry = MetricsRegistry()
        store.bind_telemetry(registry)
        store.bulk(INDEX, make_docs(20))
        store.search(INDEX, size=0,
                     aggs={"lat": {"stats": {"field": "duration_ns"}}})
        names = {family.name for family in registry.collect()}
        assert {"dio_shard_count", "dio_shard_docs",
                "dio_shard_fanout_queries_total",
                "dio_store_agg_pushdown_total"} <= names


class TestTenancy:
    def test_quota_rejects_and_counts(self):
        backend = TenantBackend(shards_per_tenant=2)
        tenant = backend.register("acme", quota_docs=10)
        tenant.ensure_index(INDEX, indexed_fields=INDEXED)
        tenant.bulk(INDEX, make_docs(8))
        with pytest.raises(TenantQuotaExceeded):
            tenant.bulk(INDEX, make_docs(5))
        assert tenant.docs_held() == 8
        assert tenant.quota_rejections == 1
        report = backend.fleet_report()
        assert report["tenants"]["acme"]["status"] == "rejecting"

    def test_tenants_are_isolated(self):
        backend = TenantBackend(shards_per_tenant=2)
        a = backend.register("a")
        b = backend.register("b")
        for tenant in (a, b):
            tenant.ensure_index(INDEX, indexed_fields=INDEXED)
        a.bulk(INDEX, make_docs(12))
        assert a.docs_held() == 12
        assert b.docs_held() == 0
        # Disjoint shard sets: no DocumentStore object is shared.
        a_shards = {id(s) for s in a.inner.shards}
        b_shards = {id(s) for s in b.inner.shards}
        assert not (a_shards & b_shards)

    def test_fleet_report_totals(self):
        backend = TenantBackend(shards_per_tenant=2, default_quota_docs=100)
        for name in ("x", "y"):
            tenant = backend.register(name)
            tenant.ensure_index(INDEX, indexed_fields=INDEXED)
            tenant.bulk(INDEX, make_docs(10))
        report = backend.fleet_report()
        assert report["total_docs"] == 20
        assert report["tenant_count"] == 2
        assert all(t["status"] == "ok"
                   for t in report["tenants"].values())

    def test_tenant_telemetry_gauges(self):
        backend = TenantBackend(shards_per_tenant=2)
        tenant = backend.register("acme", quota_docs=50)
        tenant.ensure_index(INDEX, indexed_fields=INDEXED)
        tenant.bulk(INDEX, make_docs(5))
        registry = MetricsRegistry()
        backend.bind_telemetry(registry)
        assert registry.value("dio_tenant_count") == 1
        assert registry.get("dio_tenant_docs").labels(
            tenant="acme").value == 5
        assert registry.get("dio_tenant_shards").labels(
            tenant="acme").value == 2

    def test_tenant_store_delegates_reads(self):
        backend = TenantBackend(shards_per_tenant=2)
        tenant = backend.register("acme")
        tenant.ensure_index(INDEX, indexed_fields=INDEXED)
        tenant.bulk(INDEX, make_docs(6))
        assert isinstance(tenant, TenantStore)
        assert tenant.count(INDEX, {"term": {"syscall": "read"}}) == 2
        assert len(list(tenant.scan(INDEX))) == 6

    def test_duplicate_registration_rejected(self):
        backend = TenantBackend()
        backend.register("acme")
        with pytest.raises(StoreError):
            backend.register("acme")


class TestFactory:
    def test_create_store_single_is_plain(self):
        assert type(create_store(shard_count=1)) is DocumentStore

    def test_create_store_sharded_passes_modes(self):
        store = create_store(shard_count=2, shard_key="file_tag",
                             plan_mode="legacy")
        assert isinstance(store, ShardedDocumentStore)
        assert all(s.plan_mode == "legacy" for s in store.shards)
