"""Tests for pipeline-level properties the paper claims.

- *Near real-time*: events become queryable at the backend while
  tracing is still running (inline pipeline, §II / Table III).
- *DIO as a service*: several tracer instances on different machines
  ship to one shared backend, kept apart by session names (§II-F).
- *Asynchronous handling*: tracing latency stays off the application's
  critical path even when the consumer lags.
"""

import pytest

from repro.backend import DocumentStore
from repro.kernel import Kernel, O_CREAT, O_WRONLY
from repro.sim import Environment
from repro.tracer import DIOTracer, TracerConfig

MS = 1_000_000
SECOND = 1_000_000_000


def writes(kernel, task, count, path="/f", delay_ns=0):
    fd = yield from kernel.syscall(task, "open", path=path,
                                   flags=O_CREAT | O_WRONLY)
    for _ in range(count):
        yield from kernel.syscall(task, "write", fd=fd, data=b"x" * 16)
        if delay_ns:
            yield kernel.env.timeout(delay_ns)
    yield from kernel.syscall(task, "close", fd=fd)


class TestNearRealTime:
    def test_events_queryable_while_tracing_runs(self):
        env = Environment()
        kernel = Kernel(env, ncpus=2)
        store = DocumentStore()
        tracer = DIOTracer(env, kernel, store,
                           TracerConfig(batch_size=16,
                                        session_name="live"))
        task = kernel.spawn_process("app").threads[0]
        tracer.attach()
        observed = {}

        def app():
            yield from writes(kernel, task, 500, delay_ns=50_000)

        def observer():
            # Long before the app finishes, the backend must already
            # answer queries over the traced events.
            yield env.timeout(10 * MS)
            observed["mid_run"] = store.count(
                "dio_trace", {"term": {"session": "live"}})

        app_proc = env.process(app())
        env.process(observer())

        def main():
            yield app_proc
            yield from tracer.shutdown()

        env.run(until=env.process(main()))
        assert observed["mid_run"] > 10
        assert observed["mid_run"] < tracer.stats.shipped

    def test_visualizer_works_mid_trace(self):
        from repro.visualizer import DIODashboards

        env = Environment()
        kernel = Kernel(env, ncpus=2)
        store = DocumentStore()
        tracer = DIOTracer(env, kernel, store,
                           TracerConfig(batch_size=8, session_name="live"))
        task = kernel.spawn_process("app").threads[0]
        tracer.attach()
        snapshots = []

        def observer():
            yield env.timeout(5 * MS)
            dash = DIODashboards(store, session="live")
            snapshots.append(dash.syscall_summary())

        app_proc = env.process(writes(kernel, task, 300, delay_ns=50_000))
        env.process(observer())

        def main():
            yield app_proc
            yield from tracer.shutdown()

        env.run(until=env.process(main()))
        assert "write" in snapshots[0]


class TestTracingAsAService:
    def test_two_machines_one_backend(self):
        """Two kernels ("machines"), two tracers, one shared backend."""
        store = DocumentStore()

        def run_machine(session, proc_name, count):
            env = Environment()
            kernel = Kernel(env, ncpus=2)
            tracer = DIOTracer(env, kernel, store,
                               TracerConfig(session_name=session))
            task = kernel.spawn_process(proc_name).threads[0]
            tracer.attach()

            def main():
                yield from writes(kernel, task, count)
                yield from tracer.shutdown()

            env.run(until=env.process(main()))
            return tracer

        run_machine("machine-a", "service-x", 10)
        run_machine("machine-b", "service-y", 20)

        a = store.count("dio_trace", {"term": {"session": "machine-a"}})
        b = store.count("dio_trace", {"term": {"session": "machine-b"}})
        assert a == 12
        assert b == 22
        # Per-session views do not bleed into each other.
        procs_a = store.search(
            "dio_trace", query={"term": {"session": "machine-a"}},
            size=0, aggs={"p": {"terms": {"field": "proc_name"}}})
        names = {bucket["key"] for bucket in
                 procs_a["aggregations"]["p"]["buckets"]}
        assert names == {"service-x"}

    def test_correlation_is_session_scoped(self):
        """Same inode numbers on two machines must not cross-pollute."""
        store = DocumentStore()

        def run_machine(session, path):
            env = Environment()
            kernel = Kernel(env, ncpus=1)
            tracer = DIOTracer(env, kernel, store,
                               TracerConfig(session_name=session))
            task = kernel.spawn_process("app").threads[0]
            tracer.attach()

            def main():
                yield from writes(kernel, task, 3, path=path)
                yield from tracer.shutdown()

            env.run(until=env.process(main()))

        run_machine("m1", "/alpha")
        run_machine("m2", "/beta")
        for session, expected in (("m1", "/alpha"), ("m2", "/beta")):
            hits = store.search(
                "dio_trace",
                query={"bool": {"must": [
                    {"term": {"session": session}},
                    {"term": {"syscall": "write"}},
                ]}}, size=None)["hits"]["hits"]
            paths = {h["_source"].get("file_path") for h in hits}
            assert paths == {expected}, session


class TestAsynchronousHandling:
    def test_slow_consumer_does_not_slow_the_application(self):
        """Consumer speed changes shipping lag, not app completion."""

        def run_with(parse_ns):
            env = Environment()
            kernel = Kernel(env, ncpus=2)
            store = DocumentStore()
            config = TracerConfig(parse_ns_per_event=parse_ns)
            tracer = DIOTracer(env, kernel, store, config)
            task = kernel.spawn_process("app").threads[0]
            tracer.attach()
            done = {}

            def main():
                yield from writes(kernel, task, 200)
                done["at"] = env.now
                yield from tracer.shutdown()

            env.run(until=env.process(main()))
            return done["at"]

        assert run_with(1_000) == run_with(100_000)
