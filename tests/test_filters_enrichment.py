"""Direct unit tests for kernel-space filtering and enrichment."""

import pytest

from repro.kernel.inode import FileType
from repro.kernel.process import KernelProcess, Task
from repro.kernel.tracepoints import SyscallContext
from repro.tracer.enrichment import Enricher
from repro.tracer.filters import KernelFilter


def make_ctx(name, args=None, pid=100, tid=101, retval=0, extras=None,
             enter_ns=1000):
    process = KernelProcess(pid=pid, name="app")
    task = Task(tid=tid, process=process, comm="app")
    ctx = SyscallContext(name, task, args or {}, enter_ns=enter_ns)
    ctx.retval = retval
    ctx.exit_ns = enter_ns + 10
    if extras:
        ctx.kernel_extras.update(extras)
    return ctx


class TestPidTidFilters:
    def test_pid_accept_and_reject(self):
        f = KernelFilter(pids=frozenset({100}))
        assert f.accepts(make_ctx("read", {"fd": 3}, pid=100))
        assert not f.accepts(make_ctx("read", {"fd": 3}, pid=200))
        assert f.rejected == 1

    def test_tid_filter(self):
        f = KernelFilter(tids=frozenset({7}))
        assert f.accepts(make_ctx("read", {"fd": 3}, tid=7))
        assert not f.accepts(make_ctx("read", {"fd": 3}, tid=8))

    def test_no_filters_accepts_everything(self):
        f = KernelFilter()
        assert f.accepts(make_ctx("read", {"fd": 3}))
        assert f.rejected == 0


class TestPathFilter:
    def test_open_under_prefix_accepted_and_fd_tracked(self):
        f = KernelFilter(paths=("/logs",))
        open_ctx = make_ctx("openat", {"path": "/logs/a.log"}, retval=3)
        assert f.accepts(open_ctx)
        # fd-based syscall on the tracked fd is accepted.
        assert f.accepts(make_ctx("write", {"fd": 3, "data": b"x"}))

    def test_untracked_fd_rejected(self):
        f = KernelFilter(paths=("/logs",))
        assert not f.accepts(make_ctx("write", {"fd": 9, "data": b"x"}))

    def test_close_untracks_fd(self):
        f = KernelFilter(paths=("/logs",))
        f.accepts(make_ctx("openat", {"path": "/logs/a"}, retval=3))
        assert f.accepts(make_ctx("close", {"fd": 3}))
        # The fd may be reused for an unrelated file afterwards.
        assert not f.accepts(make_ctx("read", {"fd": 3, "buf": b""}))

    def test_failed_open_not_tracked(self):
        f = KernelFilter(paths=("/logs",))
        assert f.accepts(make_ctx("openat", {"path": "/logs/a"}, retval=-2))
        assert not f.accepts(make_ctx("read", {"fd": 3}))

    def test_exact_path_match(self):
        f = KernelFilter(paths=("/file",))
        assert f.accepts(make_ctx("stat", {"path": "/file"}))
        assert not f.accepts(make_ctx("stat", {"path": "/file2"}))
        assert f.accepts(make_ctx("unlink", {"path": "/file"}))

    def test_prefix_requires_component_boundary(self):
        f = KernelFilter(paths=("/log",))
        assert f.accepts(make_ctx("stat", {"path": "/log/x"}))
        assert not f.accepts(make_ctx("stat", {"path": "/logs/x"}))

    def test_rename_matches_either_side(self):
        f = KernelFilter(paths=("/logs",))
        assert f.accepts(make_ctx(
            "rename", {"oldpath": "/logs/a", "newpath": "/tmp/b"}))
        assert f.accepts(make_ctx(
            "rename", {"oldpath": "/tmp/a", "newpath": "/logs/b"}))
        assert not f.accepts(make_ctx(
            "rename", {"oldpath": "/tmp/a", "newpath": "/tmp/b"}))

    def test_fd_tracking_is_per_process(self):
        f = KernelFilter(paths=("/logs",))
        f.accepts(make_ctx("openat", {"path": "/logs/a"}, retval=3, pid=1))
        assert not f.accepts(make_ctx("read", {"fd": 3}, pid=2))


class TestEnricher:
    FILE_EXTRAS = {
        "dev": 7, "ino": 12, "generation": 1, "inode_birth_ns": 0,
        "file_type": FileType.REGULAR, "fd_based": True,
    }

    def test_tag_stable_across_events_on_same_file(self):
        enricher = Enricher()
        a = enricher.file_tag(make_ctx("read", extras=self.FILE_EXTRAS,
                                       enter_ns=100))
        b = enricher.file_tag(make_ctx("write", extras=self.FILE_EXTRAS,
                                       enter_ns=999))
        assert a == b == "7 12 100"

    def test_tag_changes_when_generation_changes(self):
        enricher = Enricher()
        first = enricher.file_tag(make_ctx("read", extras=self.FILE_EXTRAS,
                                           enter_ns=100))
        recycled = dict(self.FILE_EXTRAS, generation=2)
        second = enricher.file_tag(make_ctx("read", extras=recycled,
                                            enter_ns=500))
        assert first == "7 12 100"
        assert second == "7 12 500"

    def test_no_tag_for_path_only_syscalls(self):
        enricher = Enricher()
        extras = dict(self.FILE_EXTRAS, fd_based=False)
        assert enricher.file_tag(make_ctx("unlink", extras=extras)) is None

    def test_file_type_and_offset(self):
        enricher = Enricher()
        extras = dict(self.FILE_EXTRAS, offset=26)
        fields = enricher.enrich(make_ctx("read", extras=extras))
        assert fields["file_type"] == "regular"
        assert fields["offset"] == 26
        assert "file_tag" in fields

    def test_enrich_empty_for_no_extras(self):
        enricher = Enricher()
        assert enricher.enrich(make_ctx("read")) == {}

    def test_offset_zero_is_reported(self):
        """Offset 0 is meaningful (Fig. 2) and must not be dropped."""
        enricher = Enricher()
        extras = dict(self.FILE_EXTRAS, offset=0)
        fields = enricher.enrich(make_ctx("write", extras=extras))
        assert fields["offset"] == 0
