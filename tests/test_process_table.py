"""Unit tests for processes, threads, and fd-table edge cases."""

import pytest

from repro.kernel import Kernel, O_CREAT, O_WRONLY
from repro.kernel.errno import Errno, KernelError
from repro.kernel.process import (FileDescriptorTable, KernelProcess,
                                  OpenFileDescription, ProcessTable)
from repro.kernel.inode import FileType, Inode
from repro.sim import Environment


def make_description():
    inode = Inode(5, 1, FileType.REGULAR, 1, 0)
    return OpenFileDescription(inode, 0, True, True, False, "/f")


class TestFileDescriptorTable:
    def test_lowest_free_fd_starting_at_3(self):
        table = FileDescriptorTable()
        assert table.install(make_description()) == 3
        assert table.install(make_description()) == 4
        table.remove(3)
        assert table.install(make_description()) == 3

    def test_get_and_remove_missing_raise_ebadf(self):
        table = FileDescriptorTable()
        with pytest.raises(KernelError) as exc:
            table.get(3)
        assert exc.value.errno == Errno.EBADF
        with pytest.raises(KernelError):
            table.remove(3)

    def test_emfile_when_table_full(self):
        table = FileDescriptorTable(max_fds=6)
        for _ in range(3):  # fds 3, 4, 5
            table.install(make_description())
        with pytest.raises(KernelError) as exc:
            table.install(make_description())
        assert exc.value.errno == Errno.EMFILE

    def test_dup_shares_description(self):
        table = FileDescriptorTable()
        fd = table.install(make_description())
        dup_fd = table.dup(fd)
        assert dup_fd != fd
        assert table.get(dup_fd) is table.get(fd)
        # Offset is shared through the description, as in POSIX.
        table.get(fd).offset = 42
        assert table.get(dup_fd).offset == 42

    def test_open_fds_listing(self):
        table = FileDescriptorTable()
        table.install(make_description())
        table.install(make_description())
        assert table.open_fds() == [3, 4]
        assert len(table) == 2


class TestProcessTable:
    def test_unique_ids_across_processes_and_threads(self):
        table = ProcessTable()
        p1 = table.spawn_process("a")
        p2 = table.spawn_process("b")
        t1 = table.spawn_thread(p1)
        ids = {p1.pid, p2.pid, t1.tid}
        assert len(ids) == 3

    def test_main_thread_shares_pid(self):
        table = ProcessTable()
        process = table.spawn_process("a")
        assert process.threads[0].tid == process.pid
        assert process.threads[0].comm == "a"

    def test_thread_comm_defaults_to_process_name(self):
        table = ProcessTable()
        process = table.spawn_process("svc")
        thread = table.spawn_thread(process)
        assert thread.comm == "svc"
        named = table.spawn_thread(process, comm="svc:bg0")
        assert named.comm == "svc:bg0"

    def test_pids_by_name(self):
        table = ProcessTable()
        a1 = table.spawn_process("dup")
        table.spawn_process("other")
        a2 = table.spawn_process("dup")
        assert sorted(table.pids_by_name("dup")) == sorted([a1.pid, a2.pid])
        assert table.pids_by_name("ghost") == []

    def test_cpu_assignment_spreads_tasks(self):
        table = ProcessTable()
        process = table.spawn_process("a", ncpus=2)
        cpus = {process.threads[0].cpu}
        for _ in range(4):
            cpus.add(table.spawn_thread(process, ncpus=2).cpu)
        assert cpus == {0, 1}


class TestFdExhaustionThroughSyscalls:
    def test_open_returns_emfile_when_out_of_fds(self):
        env = Environment()
        kernel = Kernel(env)
        process = kernel.processes.spawn_process("greedy", max_fds=8)
        task = process.threads[0]

        def scenario():
            rets = []
            for i in range(8):
                ret = yield from kernel.syscall(
                    task, "open", path=f"/f{i}", flags=O_CREAT | O_WRONLY)
                rets.append(ret)
            return rets

        rets = env.run(until=env.process(scenario()))
        assert rets[:5] == [3, 4, 5, 6, 7]
        assert all(ret == -int(Errno.EMFILE) for ret in rets[5:])
