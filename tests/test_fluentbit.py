"""Tests for the Fluent Bit tail-plugin simulation (§III-B)."""

import pytest

from repro.apps.fluentbit import (FLUENTBIT_BUGGY, FLUENTBIT_FIXED,
                                  FluentBit, OffsetDatabase)
from repro.apps.logger import FIRST_PAYLOAD, SECOND_PAYLOAD, LogWriterApp
from repro.kernel import Kernel
from repro.sim import Environment

SECOND = 1_000_000_000


def run_scenario(version, poll_interval_ns=5 * SECOND):
    env = Environment()
    kernel = Kernel(env, ncpus=2)
    app = LogWriterApp(kernel, path="/app.log",
                       write_delay_ns=10 * SECOND,
                       unlink_delay_ns=10 * SECOND)
    flb = FluentBit(kernel, "/app.log", version=version,
                    poll_interval_ns=poll_interval_ns)
    flb.start()

    def main():
        yield from app.run()
        # Give the tailer time for its final polls.
        yield env.timeout(3 * poll_interval_ns)
        flb.stop()

    env.run(until=env.process(main()))
    return env, kernel, app, flb


class TestOffsetDatabase:
    def test_default_offset_is_zero(self):
        db = OffsetDatabase()
        assert db.get("/f", 12) == 0

    def test_set_get_roundtrip(self):
        db = OffsetDatabase()
        db.set("/f", 12, 26)
        assert db.get("/f", 12) == 26

    def test_entries_keyed_by_name_and_inode(self):
        db = OffsetDatabase()
        db.set("/f", 12, 26)
        assert db.get("/f", 13) == 0
        assert db.get("/g", 12) == 0

    def test_delete_name_removes_all_inodes(self):
        db = OffsetDatabase()
        db.set("/f", 12, 26)
        db.set("/f", 13, 5)
        db.set("/g", 12, 7)
        assert db.delete_name("/f") == 2
        assert len(db) == 1
        assert db.get("/g", 12) == 7


class TestBuggyVersion:
    def test_first_file_fully_delivered(self):
        _, _, _, flb = run_scenario(FLUENTBIT_BUGGY)
        assert flb.delivered[0][1] == FIRST_PAYLOAD

    def test_second_file_content_lost(self):
        """Issue #1875: the 16 new bytes are never forwarded."""
        _, _, _, flb = run_scenario(FLUENTBIT_BUGGY)
        assert flb.delivered_bytes == len(FIRST_PAYLOAD)
        delivered_payloads = [chunk for _, chunk in flb.delivered]
        assert SECOND_PAYLOAD not in delivered_payloads

    def test_stale_db_entry_survives_unlink(self):
        _, kernel, _, flb = run_scenario(FLUENTBIT_BUGGY)
        ino = kernel.vfs.resolve("/app.log").ino
        # The stale offset (26) is still recorded for the reused inode.
        assert flb.db.get("/app.log", ino) == len(FIRST_PAYLOAD)

    def test_new_file_reuses_inode_number(self):
        env, kernel, app, flb = run_scenario(FLUENTBIT_BUGGY)
        # Precondition of the bug: same inode number for the new file.
        assert kernel.vfs.resolve("/app.log").generation > 1


class TestFixedVersion:
    def test_all_content_delivered(self):
        _, _, _, flb = run_scenario(FLUENTBIT_FIXED)
        payloads = [chunk for _, chunk in flb.delivered]
        assert payloads == [FIRST_PAYLOAD, SECOND_PAYLOAD]
        assert flb.delivered_bytes == len(FIRST_PAYLOAD) + len(SECOND_PAYLOAD)

    def test_db_entry_removed_on_delete(self):
        _, kernel, _, flb = run_scenario(FLUENTBIT_FIXED)
        # Only the live file's entry remains, at its true position.
        ino = kernel.vfs.resolve("/app.log").ino
        assert flb.db.get("/app.log", ino) == len(SECOND_PAYLOAD)

    def test_pipeline_thread_name(self):
        _, _, _, flb = run_scenario(FLUENTBIT_FIXED)
        assert flb.task.comm == "flb-pipeline"
        assert flb.process.name == "fluent-bit"

    def test_buggy_thread_name(self):
        _, _, _, flb = run_scenario(FLUENTBIT_BUGGY)
        assert flb.task.comm == "fluent-bit"


class TestRobustness:
    def test_unknown_version_rejected(self):
        env = Environment()
        kernel = Kernel(env)
        with pytest.raises(ValueError):
            FluentBit(kernel, "/f", version="9.9.9")

    def test_double_start_rejected(self):
        env = Environment()
        kernel = Kernel(env)
        flb = FluentBit(kernel, "/f")
        flb.start()
        with pytest.raises(RuntimeError):
            flb.start()

    def test_poll_with_no_file_is_quiet(self):
        env = Environment()
        kernel = Kernel(env)
        flb = FluentBit(kernel, "/never-created",
                        poll_interval_ns=SECOND)
        flb.start()

        def main():
            yield env.timeout(5 * SECOND)
            flb.stop()

        env.run(until=env.process(main()))
        assert flb.delivered == []

    def test_growing_file_tailed_incrementally(self):
        env = Environment()
        kernel = Kernel(env, ncpus=2)
        app = LogWriterApp(kernel, path="/grow.log")
        flb = FluentBit(kernel, "/grow.log", version=FLUENTBIT_FIXED,
                        poll_interval_ns=SECOND)
        flb.start()

        def producer():
            from repro.kernel import O_APPEND, O_CREAT, O_WRONLY
            fd = yield from kernel.syscall(
                app.task, "open", path="/grow.log",
                flags=O_CREAT | O_WRONLY | O_APPEND)
            for i in range(3):
                yield from kernel.syscall(app.task, "write", fd=fd,
                                          data=f"line{i}\n".encode())
                yield env.timeout(2 * SECOND)
            yield from kernel.syscall(app.task, "close", fd=fd)
            yield env.timeout(2 * SECOND)
            flb.stop()

        env.run(until=env.process(producer()))
        assert flb.delivered_bytes == len(b"line0\nline1\nline2\n")
