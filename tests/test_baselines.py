"""Tests for the vanilla/strace/sysdig baseline tracers."""

import pytest

from repro.baselines import (CAPABILITY_MATRIX, StraceTracer, SysdigTracer,
                             TOOLS, VanillaTracer, capability_table)
from repro.baselines.capabilities import tools_with
from repro.kernel import Kernel, O_CREAT, O_RDWR
from repro.sim import Environment


def make_kernel():
    env = Environment()
    kernel = Kernel(env, ncpus=2)
    task = kernel.spawn_process("app").threads[0]
    return env, kernel, task


def io_workload(kernel, task, nwrites=20, path="/f"):
    fd = yield from kernel.syscall(task, "open", path=path,
                                   flags=O_CREAT | O_RDWR)
    for i in range(nwrites):
        yield from kernel.syscall(task, "write", fd=fd, data=b"x" * 64)
    buf = bytearray(64)
    yield from kernel.syscall(task, "pread64", fd=fd, buf=buf, offset=0)
    yield from kernel.syscall(task, "close", fd=fd)


def timed_run(env, kernel, task, tracer=None, nwrites=20):
    if tracer is not None:
        tracer.attach()

    def main():
        yield from io_workload(kernel, task, nwrites)
        if tracer is not None:
            yield from tracer.shutdown()

    done = env.process(main())
    env.run(until=done)
    return env.now


class TestVanilla:
    def test_vanilla_adds_no_handlers(self):
        env, kernel, task = make_kernel()
        tracer = VanillaTracer(env, kernel)
        tracer.attach()
        assert kernel.tracepoints.attached_syscalls() == set()
        timed_run(env, kernel, task, tracer)


class TestStrace:
    def test_captures_every_event(self):
        env, kernel, task = make_kernel()
        tracer = StraceTracer(env, kernel)
        timed_run(env, kernel, task, tracer, nwrites=50)
        # open + 50 writes + pread + close
        assert tracer.stats.events_captured == 53
        assert tracer.stats.events_dropped == 0

    def test_output_lines_look_like_strace(self):
        env, kernel, task = make_kernel()
        tracer = StraceTracer(env, kernel)
        timed_run(env, kernel, task, tracer, nwrites=1)
        open_lines = [line for line in tracer.lines if "open(" in line]
        assert open_lines and "path='/f'" in open_lines[0]
        assert any(") = 64" in line for line in tracer.lines)

    def test_slows_down_the_application(self):
        env1, kernel1, task1 = make_kernel()
        vanilla_time = timed_run(env1, kernel1, task1, None, nwrites=100)
        env2, kernel2, task2 = make_kernel()
        strace_time = timed_run(env2, kernel2, task2,
                                StraceTracer(env2, kernel2), nwrites=100)
        assert strace_time > vanilla_time * 1.3

    def test_detach_stops_capture(self):
        env, kernel, task = make_kernel()
        tracer = StraceTracer(env, kernel)
        tracer.attach()
        tracer.stop()
        timed_run(env, kernel, task, None)
        assert tracer.stats.events_captured == 0

    def test_double_attach_rejected(self):
        env, kernel, task = make_kernel()
        tracer = StraceTracer(env, kernel)
        tracer.attach()
        with pytest.raises(RuntimeError):
            tracer.attach()


class TestSysdig:
    def test_captures_events_with_proc_name(self):
        env, kernel, task = make_kernel()
        tracer = SysdigTracer(env, kernel)
        timed_run(env, kernel, task, tracer, nwrites=10)
        assert tracer.stats.events_captured == 13
        assert all(e["proc_name"] == "app" for e in tracer.events)

    def test_resolves_paths_from_observed_opens(self):
        env, kernel, task = make_kernel()
        tracer = SysdigTracer(env, kernel)
        timed_run(env, kernel, task, tracer, nwrites=5)
        writes = [e for e in tracer.events if e["syscall"] == "write"]
        assert all(e.get("file_path") == "/f" for e in writes)
        assert tracer.stats.path_miss_ratio == 0.0

    def test_misses_paths_for_fds_opened_before_attach(self):
        env, kernel, task = make_kernel()
        tracer = SysdigTracer(env, kernel)
        fd_holder = {}

        def main():
            fd = yield from kernel.syscall(task, "open", path="/pre",
                                           flags=O_CREAT | O_RDWR)
            fd_holder["fd"] = fd
            tracer.attach()
            for _ in range(10):
                yield from kernel.syscall(task, "write", fd=fd, data=b"x")
            yield from tracer.shutdown()

        env.run(until=env.process(main()))
        writes = [e for e in tracer.events if e["syscall"] == "write"]
        assert len(writes) == 10
        assert all("file_path" not in e for e in writes)
        assert tracer.stats.path_miss_ratio == 1.0

    def test_small_buffer_drops_events(self):
        env, kernel, task = make_kernel()
        tracer = SysdigTracer(env, kernel, buffer_bytes_per_cpu=96 * 4,
                              poll_interval_ns=10_000_000)
        timed_run(env, kernel, task, tracer, nwrites=200)
        assert tracer.ring.stats.dropped > 0

    def test_cheaper_than_strace(self):
        env1, kernel1, task1 = make_kernel()
        t_sysdig = timed_run(env1, kernel1, task1,
                             SysdigTracer(env1, kernel1), nwrites=100)
        env2, kernel2, task2 = make_kernel()
        t_strace = timed_run(env2, kernel2, task2,
                             StraceTracer(env2, kernel2), nwrites=100)
        assert t_sysdig < t_strace


class TestCapabilityMatrix:
    def test_nine_tools(self):
        assert len(TOOLS) == 9
        assert set(CAPABILITY_MATRIX) == set(TOOLS)

    def test_only_dio_collects_file_offsets_among_full_pipelines(self):
        offset_tools = tools_with("f_offset")
        assert "dio" in offset_tools
        # IOscope traces offsets but has no analysis for the use case.
        assert set(offset_tools) <= {"dio", "ioscope"}

    def test_only_dio_and_longline_are_inline(self):
        assert tools_with("integrated", "I") == ["longline", "dio"]

    def test_only_dio_analyses_both_use_cases(self):
        both = [tool for tool in TOOLS
                if CAPABILITY_MATRIX[tool]["usecase_IIIB"] == "TA"
                and CAPABILITY_MATRIX[tool]["usecase_IIIC"] == "TA"]
        assert both == ["dio"]

    def test_render_contains_all_tools(self):
        text = capability_table()
        for tool in TOOLS:
            assert tool in text
        assert "TA" in text
