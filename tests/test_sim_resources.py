"""Unit tests for simulation synchronization primitives."""

import pytest

from repro.sim import Environment, Lock, Semaphore, Store, Resource
from repro.sim.engine import SimulationError


@pytest.fixture()
def env():
    return Environment()


class TestLock:
    def test_acquire_release_roundtrip(self, env):
        lock = Lock(env)
        log = []

        def proc():
            yield lock.acquire()
            log.append("held")
            lock.release()

        env.process(proc())
        env.run()
        assert log == ["held"]
        assert not lock.locked

    def test_mutual_exclusion_and_fifo_order(self, env):
        lock = Lock(env)
        log = []

        def proc(tag, hold):
            yield lock.acquire()
            log.append(("enter", tag, env.now))
            yield env.timeout(hold)
            log.append(("exit", tag, env.now))
            lock.release()

        env.process(proc("a", 10))
        env.process(proc("b", 10))
        env.process(proc("c", 10))
        env.run()
        assert log == [
            ("enter", "a", 0), ("exit", "a", 10),
            ("enter", "b", 10), ("exit", "b", 20),
            ("enter", "c", 20), ("exit", "c", 30),
        ]

    def test_release_unlocked_is_error(self, env):
        with pytest.raises(SimulationError):
            Lock(env).release()


class TestSemaphore:
    def test_limits_concurrency(self, env):
        sem = Semaphore(env, value=2)
        active = []
        peak = []

        def proc():
            yield sem.acquire()
            active.append(1)
            peak.append(len(active))
            yield env.timeout(10)
            active.pop()
            sem.release()

        for _ in range(5):
            env.process(proc())
        env.run()
        assert max(peak) == 2

    def test_negative_value_rejected(self, env):
        with pytest.raises(ValueError):
            Semaphore(env, value=-1)


class TestStore:
    def test_put_then_get(self, env):
        store = Store(env)
        got = []

        def producer():
            yield store.put("item")

        def consumer():
            item = yield store.get()
            got.append(item)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert got == ["item"]

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        got = []

        def consumer():
            item = yield store.get()
            got.append((env.now, item))

        def producer():
            yield env.timeout(50)
            yield store.put("late")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert got == [(50, "late")]

    def test_fifo_item_order(self, env):
        store = Store(env)
        got = []

        def producer():
            for i in range(3):
                yield store.put(i)

        def consumer():
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert got == [0, 1, 2]

    def test_bounded_put_blocks_when_full(self, env):
        store = Store(env, capacity=1)
        log = []

        def producer():
            yield store.put("first")
            log.append(("put-first", env.now))
            yield store.put("second")
            log.append(("put-second", env.now))

        def consumer():
            yield env.timeout(100)
            item = yield store.get()
            log.append(("got", item, env.now))

        env.process(producer())
        env.process(consumer())
        env.run()
        assert log == [
            ("put-first", 0),
            ("got", "first", 100),
            ("put-second", 100),
        ]

    def test_try_put_respects_capacity(self, env):
        store = Store(env, capacity=1)
        assert store.try_put("a") is True
        assert store.try_put("b") is False
        assert len(store) == 1

    def test_try_get_on_empty(self, env):
        ok, item = Store(env).try_get()
        assert not ok
        assert item is None

    def test_zero_capacity_rejected(self, env):
        with pytest.raises(ValueError):
            Store(env, capacity=0)


class TestResource:
    def test_fifo_queueing(self, env):
        disk = Resource(env, capacity=1)
        log = []

        def proc(tag, duration):
            yield disk.request()
            log.append((tag, env.now))
            yield env.timeout(duration)
            disk.release()

        env.process(proc("a", 30))
        env.process(proc("b", 30))
        env.process(proc("c", 30))
        env.run()
        assert log == [("a", 0), ("b", 30), ("c", 60)]

    def test_capacity_allows_parallelism(self, env):
        disk = Resource(env, capacity=2)
        log = []

        def proc(tag):
            yield disk.request()
            log.append((tag, env.now))
            yield env.timeout(10)
            disk.release()

        for tag in ("a", "b", "c"):
            env.process(proc(tag))
        env.run()
        assert log == [("a", 0), ("b", 0), ("c", 10)]

    def test_queue_depth_visible(self, env):
        disk = Resource(env, capacity=1)
        depths = []

        def holder():
            yield disk.request()
            yield env.timeout(100)
            disk.release()

        def contender():
            yield disk.request()
            disk.release()

        def observer():
            yield env.timeout(50)
            depths.append(disk.queued)

        env.process(holder())
        env.process(contender())
        env.process(contender())
        env.process(observer())
        env.run()
        assert depths == [2]

    def test_release_idle_is_error(self, env):
        with pytest.raises(SimulationError):
            Resource(env).release()
