"""Tests for the ``dio`` command-line interface."""

import pytest

from repro.cli import main


class TestFluentBitCommand:
    def test_buggy_version_reports_loss(self, capsys):
        assert main(["fluentbit", "--version", "1.4.0"]) == 0
        out = capsys.readouterr().out
        assert "data lost      : 16 bytes" in out
        assert "stale-offset resume detected" in out
        assert "lseek" in out

    def test_fixed_version_reports_no_loss(self, capsys):
        assert main(["fluentbit", "--version", "2.0.5"]) == 0
        out = capsys.readouterr().out
        assert "data lost      : 0 bytes" in out
        assert "stale-offset" not in out
        assert "flb-pipeline" in out

    def test_rejects_unknown_version(self):
        with pytest.raises(SystemExit):
            main(["fluentbit", "--version", "3.0.0"])


class TestRocksDBCommand:
    def test_small_run_prints_both_figures(self, capsys):
        assert main(["rocksdb", "--duration", "0.4"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out
        assert "Fig. 4" in out
        assert "db_bench" in out
        assert "rocksdb:high0" in out
        assert "ring-buffer discards" in out


class TestOverheadCommand:
    def test_prints_table2(self, capsys):
        assert main(["overhead", "--ops", "400"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        for deployment in ("vanilla", "sysdig", "dio", "strace"):
            assert deployment in out
        assert "1.00x" in out


class TestCapabilitiesCommand:
    def test_prints_matrix(self, capsys):
        assert main(["capabilities"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "f_offset" in out
        assert "TA" in out


class TestPostMortemCommands:
    @pytest.fixture(scope="class")
    def traces(self, tmp_path_factory):
        base = tmp_path_factory.mktemp("traces")
        buggy = base / "buggy.jsonl"
        fixed = base / "fixed.jsonl"
        assert main(["fluentbit", "--version", "1.4.0",
                     "--export", str(buggy)]) == 0
        assert main(["fluentbit", "--version", "2.0.5",
                     "--export", str(fixed)]) == 0
        return buggy, fixed

    def test_export_mentions_file(self, traces, capsys):
        capsys.readouterr()
        assert traces[0].exists()
        assert traces[1].exists()

    def test_sessions_lists_both(self, traces, capsys):
        assert main(["sessions", str(traces[0]), str(traces[1])]) == 0
        out = capsys.readouterr().out
        assert "fluentbit-1.4.0" in out
        assert "fluentbit-2.0.5" in out
        assert "app" in out

    def test_analyze_flags_buggy_with_nonzero_exit(self, traces, capsys):
        assert main(["analyze", str(traces[0])]) == 1
        out = capsys.readouterr().out
        assert "critical" in out
        assert "stale-offset-resume" in out

    def test_analyze_passes_fixed(self, traces, capsys):
        assert main(["analyze", str(traces[1])]) == 0
        out = capsys.readouterr().out
        assert "critical" not in out

    def test_compare_finds_the_divergent_step(self, traces, capsys):
        assert main(["compare", str(traces[0]), str(traces[1])]) == 0
        out = capsys.readouterr().out
        assert "first divergence" in out
        assert "lseek = 26" in out
        assert "read = 16" in out

    def test_dashboard_predefined(self, traces, capsys):
        assert main(["dashboard", str(traces[0]),
                     "--name", "file-access"]) == 0
        out = capsys.readouterr().out
        assert "File access table" in out
        assert "fluent-bit" in out

    def test_replay_reports_fidelity(self, traces, capsys):
        assert main(["replay", str(traces[0])]) == 0
        out = capsys.readouterr().out
        assert "replayed" in out
        assert "fidelity" in out

    def test_dashboard_custom_spec(self, traces, capsys, tmp_path):
        spec = tmp_path / "dash.json"
        spec.write_text("""{
            "name": "mine", "title": "My panels",
            "panels": [{"type": "syscall_histogram"}]
        }""")
        assert main(["dashboard", str(traces[0]), "--spec", str(spec)]) == 0
        out = capsys.readouterr().out
        assert "My panels" in out
        assert "write" in out


def test_no_command_errors():
    with pytest.raises(SystemExit):
        main([])


class TestMetricsCommand:
    def test_prometheus_output(self, capsys):
        assert main(["metrics", "--scenario", "fluentbit"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE dio_ring_produced_total counter" in out
        assert "# TYPE dio_span_duration_ns histogram" in out
        assert "dio_health_drop_ratio" in out

    def test_json_output(self, capsys):
        import json

        assert main(["metrics", "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        names = {metric["name"] for metric in data["metrics"]}
        assert "dio_shipper_events_total" in names

    def test_query_planner_counters_exported(self, capsys):
        # End-to-end: the scenario's stop-time correlation runs planned
        # queries, so the planner decision counters must be live.
        assert main(["metrics", "--scenario", "fluentbit"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE dio_store_plan_exact_total counter" in out
        assert "dio_store_plan_pruning_ratio" in out
        planned = {
            mode: value
            for mode in ("exact", "pruned", "fullscan")
            for line in out.splitlines()
            if line.startswith(f"dio_store_plan_{mode}_total ")
            for value in [float(line.split()[-1])]
        }
        assert sum(planned.values()) > 0
        assert planned["exact"] > 0


class TestHealthCommand:
    def test_text_report_lists_stages(self, capsys):
        assert main(["health", "--scenario", "fluentbit"]) == 0
        out = capsys.readouterr().out
        for stage in ("kernel_filter", "ring_buffer", "consumer",
                      "shipper", "store", "correlator"):
            assert stage in out
        assert "p95" in out
        assert "drop ratio" in out

    def test_json_report(self, capsys):
        import json

        assert main(["health", "--format", "json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert "stages" in report and "derived" in report
        assert report["stages"][1]["name"] == "ring_buffer"


class TestDstCommand:
    def test_run_campaign(self, capsys, tmp_path):
        summary_path = tmp_path / "summary.json"
        assert main(["dst", "run", "--seeds", "3",
                     "--json", str(summary_path)]) == 0
        out = capsys.readouterr().out
        assert "running seeds 1..3" in out
        assert "0 failed" in out
        import json
        summary = json.loads(summary_path.read_text())
        assert summary["seeds_run"] == 3
        assert summary["seeds_failed"] == 0

    def test_repro_passing_seed(self, capsys):
        assert main(["dst", "repro", "7"]) == 0
        out = capsys.readouterr().out
        assert "seed 7 passes" in out
        assert "digest" in out

    def test_repro_scenario_file(self, capsys, tmp_path):
        from repro.dst import generate

        path = tmp_path / "s.json"
        generate(2).save(path)
        assert main(["dst", "repro", "--scenario", str(path)]) == 0
        assert "passes" in capsys.readouterr().out

    def test_corpus_replays(self, capsys):
        assert main(["dst", "corpus"]) == 0
        out = capsys.readouterr().out
        assert "0 failed" in out

    def test_corpus_empty_dir(self, capsys, tmp_path):
        assert main(["dst", "corpus", "--dir", str(tmp_path)]) == 0
        assert "no corpus scenarios" in capsys.readouterr().out

    def test_failing_seed_is_reported_and_saved(self, capsys, tmp_path):
        from repro.backend.store import DocumentStore

        real_bulk = DocumentStore.bulk

        def buggy_bulk(self, index, sources, *args, **kwargs):
            kept = [s for i, s in enumerate(sources) if i % 7 != 6]
            return real_bulk(self, index, kept, *args, **kwargs)

        DocumentStore.bulk = buggy_bulk
        try:
            code = main(["dst", "run", "--seeds", "1",
                         "--save-failures", str(tmp_path / "fails")])
        finally:
            DocumentStore.bulk = real_bulk
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "dio dst repro 1" in out
        assert (tmp_path / "fails" / "seed-1.json").exists()
        assert (tmp_path / "fails" / "seed-1.failures.txt").exists()
