"""Tests for the RocksDB simulation and db_bench harness."""

import numpy as np
import pytest

from repro.apps.rocksdb import (DBBench, DBOptions, MemTable, RocksDB,
                                SSTable, ZipfianGenerator)
from repro.apps.rocksdb.db_bench import key_name
from repro.kernel import Kernel
from repro.sim import Environment

MS = 1_000_000
SECOND = 1_000_000_000


def make_db(**option_overrides):
    env = Environment()
    kernel = Kernel(env, ncpus=4)
    process = kernel.spawn_process("db_bench")
    options = DBOptions(**option_overrides)
    db = RocksDB(kernel, process, options)
    return env, kernel, process, db


def run(env, gen):
    return env.run(until=env.process(gen))


class TestMemTable:
    def test_put_get(self):
        table = MemTable()
        table.put("k", b"v", 1)
        assert table.get("k") == (1, b"v")
        assert table.get("missing") is None

    def test_overwrite_updates_size(self):
        table = MemTable()
        table.put("k", b"aaaa", 1)
        size = table.approximate_bytes
        table.put("k", b"bb", 2)
        assert table.approximate_bytes == size - 2
        assert table.get("k") == (2, b"bb")

    def test_frozen_rejects_writes(self):
        table = MemTable()
        table.freeze()
        with pytest.raises(RuntimeError):
            table.put("k", b"v", 1)

    def test_sorted_entries(self):
        table = MemTable()
        for i, key in enumerate(("c", "a", "b")):
            table.put(key, b"v", i)
        assert [k for k, _, _ in table.sorted_entries()] == ["a", "b", "c"]


class TestSSTable:
    def make_table(self, n=100):
        entries = [(key_name(i), i, b"x" * 100) for i in range(n)]
        return SSTable("/t.sst", 1, 1, entries)

    def test_key_range(self):
        table = self.make_table()
        assert table.smallest == key_name(0)
        assert table.largest == key_name(99)
        assert table.contains_key_range(key_name(50))
        assert not table.contains_key_range(key_name(100))

    def test_may_contain_exact(self):
        table = self.make_table()
        assert table.may_contain(key_name(7))
        assert not table.may_contain("nope")

    def test_overlaps(self):
        table = self.make_table()
        assert table.overlaps(key_name(90), key_name(200))
        assert not table.overlaps(key_name(100), key_name(200))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SSTable("/t.sst", 0, 1, [])

    def test_block_offsets_monotonic(self):
        table = self.make_table()
        offsets = [table.block_offset(key_name(i)) for i in range(100)]
        assert offsets == sorted(offsets)
        with pytest.raises(KeyError):
            table.block_offset("absent")

    def test_disk_roundtrip(self):
        env = Environment()
        kernel = Kernel(env)
        task = kernel.spawn_process("db").threads[0]
        table = self.make_table()

        def scenario():
            yield from table.write_to_disk(kernel, task, 32768)
            seq, value = yield from table.read_value(kernel, task, key_name(3))
            assert (seq, value) == (3, b"x" * 100)
            entries = yield from table.read_all(kernel, task, 65536)
            assert len(entries) == 100
            yield from table.close_and_delete(kernel, task)

        run(env, scenario())
        assert kernel.vfs.lookup("/t.sst") is None

    def test_file_size_matches_vfs(self):
        env = Environment()
        kernel = Kernel(env)
        task = kernel.spawn_process("db").threads[0]
        table = self.make_table()

        def scenario():
            yield from table.write_to_disk(kernel, task, 32768)

        run(env, scenario())
        assert kernel.vfs.resolve("/t.sst").size == table.file_size


class TestRocksDBBasics:
    def test_put_get_roundtrip(self):
        env, kernel, process, db = make_db()
        task = process.threads[0]

        def scenario():
            yield from db.open(task)
            yield from db.put(task, "alpha", b"1")
            yield from db.put(task, "beta", b"2")
            value = yield from db.get(task, "alpha")
            assert value == b"1"
            value = yield from db.get(task, "missing")
            assert value is None
            db.close()

        run(env, scenario())

    def test_memtable_flush_creates_l0_file(self):
        env, kernel, process, db = make_db(memtable_bytes=2048)
        task = process.threads[0]

        def scenario():
            yield from db.open(task)
            for i in range(40):
                yield from db.put(task, key_name(i), b"v" * 100)
            # Let the flush thread work.
            yield env.timeout(1 * SECOND)
            db.close()

        run(env, scenario())
        assert db.stats.flushes >= 1
        files = kernel.vfs.listdir("/rocksdb")
        assert any(name.endswith(".sst") for name in files)

    def test_value_survives_flush(self):
        env, kernel, process, db = make_db(memtable_bytes=2048)
        task = process.threads[0]

        def scenario():
            yield from db.open(task)
            for i in range(50):
                yield from db.put(task, key_name(i), f"v{i}".encode())
            yield env.timeout(1 * SECOND)
            value = yield from db.get(task, key_name(3))
            assert value == b"v3"
            db.close()

        run(env, scenario())

    def test_latest_version_wins_across_levels(self):
        env, kernel, process, db = make_db(memtable_bytes=1024)
        task = process.threads[0]

        def scenario():
            yield from db.open(task)
            for round_no in range(5):
                for i in range(15):
                    yield from db.put(task, key_name(i),
                                      f"r{round_no}".encode())
                yield env.timeout(200 * MS)
            value = yield from db.get(task, key_name(7))
            assert value == b"r4"
            db.close()

        run(env, scenario())

    def test_compaction_triggered_by_l0_growth(self):
        env, kernel, process, db = make_db(
            memtable_bytes=1024, l0_compaction_trigger=2)
        task = process.threads[0]

        def scenario():
            yield from db.open(task)
            for i in range(200):
                yield from db.put(task, key_name(i), b"v" * 64)
            yield env.timeout(2 * SECOND)
            db.close()

        run(env, scenario())
        assert db.stats.compactions >= 1
        # Compacted data lives at L1+; L0 was (at least partly) drained.
        counts = db.level_sizes()
        assert counts[1][0] >= 1

    def test_compaction_preserves_all_data(self):
        env, kernel, process, db = make_db(
            memtable_bytes=1024, l0_compaction_trigger=2)
        task = process.threads[0]

        def scenario():
            yield from db.open(task)
            for i in range(120):
                yield from db.put(task, key_name(i), f"val{i}".encode())
            yield env.timeout(2 * SECOND)
            for i in (0, 59, 119):
                value = yield from db.get(task, key_name(i))
                assert value == f"val{i}".encode(), key_name(i)
            db.close()

        run(env, scenario())

    def test_unused_sst_files_deleted_after_compaction(self):
        env, kernel, process, db = make_db(
            memtable_bytes=1024, l0_compaction_trigger=2)
        task = process.threads[0]

        def scenario():
            yield from db.open(task)
            for i in range(200):
                yield from db.put(task, key_name(i), b"v" * 64)
            yield env.timeout(2 * SECOND)
            db.close()

        run(env, scenario())
        live = {t.path for level in db.levels for t in level}
        on_disk = {f"/rocksdb/{name}" for name in kernel.vfs.listdir("/rocksdb")
                   if name.endswith(".sst")}
        assert on_disk == live

    def test_activity_log_names_threads(self):
        env, kernel, process, db = make_db(
            memtable_bytes=1024, l0_compaction_trigger=2)
        task = process.threads[0]

        def scenario():
            yield from db.open(task)
            for i in range(200):
                yield from db.put(task, key_name(i), b"v" * 64)
            yield env.timeout(2 * SECOND)
            db.close()

        run(env, scenario())
        kinds = {a["kind"] for a in db.stats.activity}
        assert kinds == {"flush", "compaction"}
        flush_threads = {a["thread"] for a in db.stats.activity
                         if a["kind"] == "flush"}
        assert flush_threads == {"rocksdb:high0"}
        compaction_threads = {a["thread"] for a in db.stats.activity
                              if a["kind"] == "compaction"}
        assert compaction_threads <= {f"rocksdb:low{i}" for i in range(7)}

    def test_write_stall_when_l0_saturated(self):
        env, kernel, process, db = make_db(
            memtable_bytes=512, l0_compaction_trigger=2, l0_stop_trigger=3,
            max_immutable_memtables=1)
        task = process.threads[0]

        def scenario():
            yield from db.open(task)
            for i in range(600):
                yield from db.put(task, key_name(i % 100), b"v" * 64)
            db.close()

        run(env, scenario())
        assert db.stats.stall_events > 0
        assert db.stats.stall_ns > 0

    def test_put_before_open_rejected(self):
        env, kernel, process, db = make_db()
        task = process.threads[0]
        with pytest.raises(RuntimeError):
            next(db.put(task, "k", b"v"))

    def test_bulk_load_and_read(self):
        env, kernel, process, db = make_db()
        task = process.threads[0]

        def scenario():
            yield from db.open(task)
            items = [(key_name(i), b"L" * 64) for i in range(500)]
            yield from db.bulk_load(task, items)
            value = yield from db.get(task, key_name(123))
            assert value == b"L" * 64
            db.close()

        run(env, scenario())
        sizes = db.level_sizes()
        assert sum(count for count, _ in sizes[1:]) > 0
        assert sizes[0][0] == 0


class TestZipfian:
    def test_skewed_distribution(self):
        zipf = ZipfianGenerator(1000, seed=1)
        samples = zipf.sample(20_000)
        counts = np.bincount(samples, minlength=1000)
        top_share = np.sort(counts)[::-1][:10].sum() / samples.size
        assert top_share > 0.25  # hot keys dominate

    def test_deterministic_given_seed(self):
        a = ZipfianGenerator(100, seed=7).sample(50)
        b = ZipfianGenerator(100, seed=7).sample(50)
        assert np.array_equal(a, b)

    def test_range(self):
        zipf = ZipfianGenerator(50, seed=3)
        samples = zipf.sample(1000)
        assert samples.min() >= 0
        assert samples.max() < 50

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0)
        with pytest.raises(ValueError):
            ZipfianGenerator(10, theta=1.5)


class TestDBBench:
    def test_closed_loop_mixed_workload(self):
        env, kernel, process, db = make_db(memtable_bytes=4096)
        bench = DBBench(kernel, db, client_threads=4, key_count=500,
                        value_size=64, seed=11)

        def scenario():
            yield from db.open(bench.client_tasks[0])
            yield from bench.load()
            handle = bench.run(duration_ns=50 * MS)
            result = yield from handle.wait()
            db.close()
            return result

        result = run(env, scenario())
        assert result.op_count > 50
        ops = {op for _, _, op, _ in result.operations}
        assert ops == {"read", "update"}
        assert result.throughput_ops_per_sec > 0

    def test_client_threads_named_db_bench(self):
        env, kernel, process, db = make_db()
        bench = DBBench(kernel, db, client_threads=8)
        assert len(bench.client_tasks) == 8
        assert {t.comm for t in bench.client_tasks} == {"db_bench"}
        assert len({t.tid for t in bench.client_tasks}) == 8

    def test_latency_recorded_per_op(self):
        env, kernel, process, db = make_db()
        bench = DBBench(kernel, db, client_threads=2, key_count=100,
                        value_size=32, seed=5)

        def scenario():
            yield from db.open(bench.client_tasks[0])
            yield from bench.load()
            handle = bench.run(duration_ns=20 * MS)
            result = yield from handle.wait()
            db.close()
            return result

        result = run(env, scenario())
        lats = result.latencies()
        assert (lats > 0).all()
        assert result.latencies("read").size + result.latencies("update").size \
            == result.op_count

    def test_ycsb_presets(self):
        env, kernel, process, db = make_db()
        for workload, expected in (("A", 0.5), ("B", 0.95), ("C", 1.0)):
            bench = DBBench.ycsb(kernel, db, workload, client_threads=1)
            assert bench.read_fraction == expected
        bench = DBBench.ycsb(kernel, db, "a", client_threads=1)
        assert bench.read_fraction == 0.5
        with pytest.raises(ValueError):
            DBBench.ycsb(kernel, db, "Z")

    def test_ycsb_c_runs_read_only(self):
        env, kernel, process, db = make_db()
        bench = DBBench.ycsb(kernel, db, "C", client_threads=2,
                             key_count=100, value_size=32, seed=5)

        def scenario():
            yield from db.open(bench.client_tasks[0])
            yield from bench.load()
            handle = bench.run(duration_ns=10 * MS)
            result = yield from handle.wait()
            db.close()
            return result

        result = run(env, scenario())
        assert {op for _, _, op, _ in result.operations} == {"read"}

    def test_read_fraction_respected(self):
        env, kernel, process, db = make_db()
        bench = DBBench(kernel, db, client_threads=2, key_count=100,
                        value_size=32, read_fraction=1.0, seed=5)

        def scenario():
            yield from db.open(bench.client_tasks[0])
            yield from bench.load()
            handle = bench.run(duration_ns=10 * MS)
            result = yield from handle.wait()
            db.close()
            return result

        result = run(env, scenario())
        assert {op for _, _, op, _ in result.operations} == {"read"}
