"""Unit tests for the document store, aggregations, and correlation."""

import math

import pytest

from repro.backend import (DocumentStore, FilePathCorrelator,
                           run_aggregations)
from repro.backend.aggregations import AggregationError, percentile
from repro.backend.store import StoreError


@pytest.fixture()
def store():
    return DocumentStore()


def seed_events(store, index="events"):
    docs = [
        {"syscall": "openat", "proc_name": "app", "ret": 3, "time": 100,
         "file_tag": "7 12 50", "args": {"path": "/tmp/app.log"}},
        {"syscall": "write", "proc_name": "app", "ret": 26, "time": 200,
         "file_tag": "7 12 50", "args": {"fd": 3}},
        {"syscall": "close", "proc_name": "app", "ret": 0, "time": 300,
         "file_tag": "7 12 50", "args": {"fd": 3}},
        {"syscall": "openat", "proc_name": "fluent-bit", "ret": 23, "time": 400,
         "file_tag": "7 12 50", "args": {"path": "/tmp/app.log"}},
        {"syscall": "read", "proc_name": "fluent-bit", "ret": 26, "time": 500,
         "file_tag": "7 12 50", "args": {"fd": 23}},
        {"syscall": "unlink", "proc_name": "app", "ret": 0, "time": 600,
         "args": {"path": "/tmp/app.log"}},
    ]
    store.bulk(index, docs)
    return docs


class TestIndexLifecycle:
    def test_create_and_list(self, store):
        store.create_index("a")
        store.create_index("b")
        assert store.index_names() == ["a", "b"]

    def test_duplicate_create_rejected(self, store):
        store.create_index("a")
        with pytest.raises(StoreError):
            store.create_index("a")

    def test_ensure_index_idempotent(self, store):
        first = store.ensure_index("a")
        assert store.ensure_index("a") is first

    def test_delete_index(self, store):
        store.create_index("a")
        store.delete_index("a")
        assert store.index_names() == []
        with pytest.raises(StoreError):
            store.delete_index("a")

    def test_search_missing_index_rejected(self, store):
        with pytest.raises(StoreError):
            store.search("nope")


class TestDocumentAPIs:
    def test_index_and_get(self, store):
        doc_id = store.index_doc("idx", {"k": "v"})
        assert store.get_doc("idx", doc_id) == {"k": "v"}

    def test_explicit_id_overwrites(self, store):
        store.index_doc("idx", {"v": 1}, doc_id="x")
        store.index_doc("idx", {"v": 2}, doc_id="x")
        assert store.get_doc("idx", "x") == {"v": 2}
        assert store.count("idx") == 1

    def test_bulk_counts(self, store):
        n = store.bulk("idx", [{"i": i} for i in range(5)])
        assert n == 5
        assert store.bulk_requests == 1
        assert store.count("idx") == 5

    def test_delete_by_query(self, store):
        seed_events(store)
        deleted = store.delete_by_query(
            "events", {"term": {"proc_name": "app"}})
        assert deleted == 4
        assert store.count("events") == 2


class TestIdAllocation:
    def test_explicit_numeric_id_advances_auto_ids(self, store):
        # Regression: an explicit numeric id used to leave ``_next_id``
        # behind, so the next auto-id silently overwrote the document.
        store.index_doc("idx", {"who": "explicit"}, doc_id="7")
        auto_id = store.index_doc("idx", {"who": "auto"})
        assert auto_id != "7"
        assert store.get_doc("idx", "7") == {"who": "explicit"}
        assert store.get_doc("idx", auto_id) == {"who": "auto"}

    def test_explicit_int_id_advances_auto_ids(self, store):
        store.index_doc("idx", {"who": "explicit"}, doc_id=3)
        assert store.index_doc("idx", {"who": "auto"}) == "4"

    def test_non_numeric_ids_leave_sequence_alone(self, store):
        store.index_doc("idx", {"k": 1}, doc_id="alpha")
        assert store.index_doc("idx", {"k": 2}) == "1"
        assert store.count("idx") == 2


class TestSearchValidation:
    def test_negative_from_rejected(self, store):
        seed_events(store)
        with pytest.raises(StoreError):
            store.search("events", from_=-1)

    def test_negative_size_rejected(self, store):
        seed_events(store)
        with pytest.raises(StoreError):
            store.search("events", size=-5)

    def test_zero_size_still_counts(self, store):
        seed_events(store)
        response = store.search("events", size=0)
        assert response["hits"]["hits"] == []
        assert response["hits"]["total"]["value"] == 6


class TestCount:
    def test_count_matches_search_total(self, store):
        seed_events(store)
        query = {"term": {"proc_name": "app"}}
        total = store.search("events", query=query)["hits"]["total"]["value"]
        assert store.count("events", query) == total

    def test_count_without_query_is_index_size(self, store):
        seed_events(store)
        assert store.count("events") == 6

    def test_count_skips_materialization_on_exact_plans(self, store):
        seed_events(store)
        scanned = []
        original = store._index("events").scan
        store._index("events").scan = (
            lambda *a, **k: scanned.append(1) or original(*a, **k))
        assert store.count("events", {"term": {"syscall": "openat"}}) == 2
        assert not scanned


class TestSearch:
    def test_query_filters_hits(self, store):
        seed_events(store)
        response = store.search(
            "events", query={"term": {"proc_name": "fluent-bit"}}, size=None)
        assert response["hits"]["total"]["value"] == 2

    def test_sort_ascending_and_descending(self, store):
        seed_events(store)
        response = store.search("events", sort=["time"], size=None)
        times = [h["_source"]["time"] for h in response["hits"]["hits"]]
        assert times == sorted(times)
        response = store.search(
            "events", sort=[{"time": {"order": "desc"}}], size=None)
        times = [h["_source"]["time"] for h in response["hits"]["hits"]]
        assert times == sorted(times, reverse=True)

    def test_pagination(self, store):
        seed_events(store)
        response = store.search("events", sort=["time"], size=2, from_=2)
        times = [h["_source"]["time"] for h in response["hits"]["hits"]]
        assert times == [300, 400]
        assert response["hits"]["total"]["value"] == 6

    def test_inverted_index_pruning_matches_linear_scan(self, store):
        seed_events(store)
        query = {"bool": {"must": [
            {"term": {"syscall": "openat"}},
            {"range": {"time": {"gte": 0}}},
        ]}}
        response = store.search("events", query=query, size=None)
        assert response["hits"]["total"]["value"] == 2

    def test_update_by_query_dict(self, store):
        seed_events(store)
        updated = store.update_by_query(
            "events", {"term": {"file_tag": "7 12 50"}},
            {"file_path": "/tmp/app.log"})
        assert updated == 5
        response = store.search(
            "events", query={"term": {"file_path": "/tmp/app.log"}}, size=None)
        assert response["hits"]["total"]["value"] == 5

    def test_update_by_query_callable(self, store):
        seed_events(store)
        store.update_by_query(
            "events", {"term": {"syscall": "write"}},
            lambda src: src.update(double_ret=src["ret"] * 2))
        doc = store.search("events",
                           query={"term": {"syscall": "write"}})["hits"]["hits"][0]
        assert doc["_source"]["double_ret"] == 52

    def test_update_refreshes_inverted_index(self, store):
        store.index_doc("idx", {"state": "old"}, doc_id="1")
        # Force the inverted index to exist before the update.
        store.search("idx", query={"term": {"state": "old"}})
        store.update_by_query("idx", {"term": {"state": "old"}},
                              {"state": "new"})
        assert store.count("idx", {"term": {"state": "new"}}) == 1
        assert store.count("idx", {"term": {"state": "old"}}) == 0


class TestAggregations:
    def test_terms_agg(self, store):
        seed_events(store)
        response = store.search("events", aggs={
            "by_proc": {"terms": {"field": "proc_name"}}})
        buckets = response["aggregations"]["by_proc"]["buckets"]
        assert buckets[0]["key"] == "app"
        assert buckets[0]["doc_count"] == 4
        assert buckets[1]["key"] == "fluent-bit"

    def test_terms_agg_size_limits_buckets(self, store):
        seed_events(store)
        response = store.search("events", aggs={
            "by_syscall": {"terms": {"field": "syscall", "size": 2}}})
        assert len(response["aggregations"]["by_syscall"]["buckets"]) == 2

    def test_date_histogram_with_nested_terms(self, store):
        seed_events(store)
        response = store.search("events", aggs={
            "over_time": {
                "date_histogram": {"field": "time", "fixed_interval": 300},
                "aggs": {"by_proc": {"terms": {"field": "proc_name"}}},
            }})
        buckets = response["aggregations"]["over_time"]["buckets"]
        assert [b["key"] for b in buckets] == [0, 300, 600]
        assert buckets[0]["doc_count"] == 2
        nested = buckets[1]["by_proc"]["buckets"]
        assert {b["key"] for b in nested} == {"app", "fluent-bit"}

    def test_metric_aggs(self, store):
        seed_events(store)
        response = store.search("events", aggs={
            "ret_stats": {"stats": {"field": "ret"}},
            "ret_avg": {"avg": {"field": "ret"}},
            "n_procs": {"cardinality": {"field": "proc_name"}},
            "n_rets": {"value_count": {"field": "ret"}},
        })
        aggs = response["aggregations"]
        assert aggs["ret_stats"]["count"] == 6
        assert aggs["ret_stats"]["max"] == 26
        assert aggs["n_procs"]["value"] == 2
        assert aggs["n_rets"]["value"] == 6
        assert aggs["ret_avg"]["value"] == pytest.approx(78 / 6)

    def test_percentiles_agg(self):
        sources = [{"lat": v} for v in range(1, 101)]
        result = run_aggregations(
            {"p": {"percentiles": {"field": "lat", "percents": [50, 99]}}},
            sources)
        assert result["p"]["values"]["50"] == pytest.approx(50.5)
        assert result["p"]["values"]["99"] == pytest.approx(99.01)

    def test_histogram_buckets(self):
        sources = [{"size": v} for v in (1, 5, 9, 10, 19, 25)]
        result = run_aggregations(
            {"h": {"histogram": {"field": "size", "interval": 10}}}, sources)
        buckets = result["h"]["buckets"]
        assert [(b["key"], b["doc_count"]) for b in buckets] == [
            (0, 3), (10, 2), (20, 1)]

    def test_stats_on_empty(self):
        result = run_aggregations({"s": {"stats": {"field": "x"}}}, [])
        assert result["s"]["count"] == 0
        assert result["s"]["avg"] is None

    def test_errors(self):
        with pytest.raises(AggregationError):
            run_aggregations({"bad": {"terms": {}}}, [])
        with pytest.raises(AggregationError):
            run_aggregations({"bad": {"nonsense": {"field": "x"}}}, [])
        with pytest.raises(AggregationError):
            run_aggregations({"bad": {"histogram": {"field": "x"}}}, [])
        with pytest.raises(AggregationError):
            run_aggregations(
                {"bad": {"avg": {"field": "x"},
                         "aggs": {"n": {"avg": {"field": "y"}}}}}, [])


class TestPercentileFunction:
    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 50))

    def test_single_value(self):
        assert percentile([7], 99) == 7.0

    def test_interpolation(self):
        assert percentile([0, 10], 50) == 5.0

    def test_extremes(self):
        values = list(range(10))
        assert percentile(values, 0) == 0
        assert percentile(values, 100) == 9


class TestFilePathCorrelation:
    def test_tags_translate_to_paths(self, store):
        seed_events(store)
        correlator = FilePathCorrelator(store)
        report = correlator.correlate("events")
        assert report.tags_resolved == 1
        assert report.documents_updated == 5
        assert report.documents_unresolved == 0
        response = store.search(
            "events", query={"term": {"syscall": "read"}})
        assert response["hits"]["hits"][0]["_source"]["file_path"] == "/tmp/app.log"

    def test_unresolved_when_open_missing(self, store):
        store.bulk("events", [
            {"syscall": "read", "ret": 10, "time": 1,
             "file_tag": "7 99 1", "args": {"fd": 4}},
            {"syscall": "close", "ret": 0, "time": 2,
             "file_tag": "7 99 1", "args": {"fd": 4}},
        ])
        report = FilePathCorrelator(store).correlate("events")
        assert report.tags_resolved == 0
        assert report.documents_unresolved == 2
        assert report.unresolved_ratio == 1.0

    def test_latest_open_wins_after_rename(self, store):
        store.bulk("events", [
            {"syscall": "openat", "ret": 3, "time": 1, "file_tag": "7 5 1",
             "args": {"path": "/a"}},
            {"syscall": "openat", "ret": 3, "time": 9, "file_tag": "7 5 1",
             "args": {"path": "/b"}},
            {"syscall": "read", "ret": 1, "time": 10, "file_tag": "7 5 1",
             "args": {"fd": 3}},
        ])
        FilePathCorrelator(store).correlate("events")
        doc = store.search(
            "events", query={"term": {"syscall": "read"}})["hits"]["hits"][0]
        assert doc["_source"]["file_path"] == "/b"

    def test_session_scoping(self, store):
        store.bulk("events", [
            {"syscall": "openat", "ret": 3, "time": 1, "file_tag": "7 5 1",
             "session": "s1", "args": {"path": "/a"}},
            {"syscall": "read", "ret": 1, "time": 2, "file_tag": "7 5 1",
             "session": "s1", "args": {"fd": 3}},
            {"syscall": "read", "ret": 1, "time": 3, "file_tag": "7 5 1",
             "session": "s2", "args": {"fd": 3}},
        ])
        report = FilePathCorrelator(store).correlate("events", session="s1")
        assert report.documents_updated == 2
        s2_doc = store.search(
            "events", query={"term": {"session": "s2"}})["hits"]["hits"][0]
        assert "file_path" not in s2_doc["_source"]
