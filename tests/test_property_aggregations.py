"""Property tests: columnar kernels vs the legacy dict-walking oracle.

Every generated request is executed twice — once through
``store.search(size=0, aggs=...)`` (columnar pushdown, or fallback if
the engine declines) and once through :func:`naive_aggregate` (full
scan + ``run_aggregations``, no planner / columns / cache anywhere).
The responses must be byte-identical after a canonical JSON dump: the
columnar engine is not allowed to differ in bucket order, tie-breaking,
float arithmetic, or missing-value handling.

Documents deliberately mix types per field (ints, floats, strings,
bools, None, absent, lists), values go negative (histogram keys floor
toward -inf), and nested aggregations stack buckets inside buckets.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.backend import DocumentStore, naive_aggregate

# --- document strategies ----------------------------------------------------

#: Few distinct values per field → plenty of count ties, so terms
#: tie-breaking (stable sort by -count then str(key)) is exercised.
_terms_values = st.one_of(
    st.sampled_from(["read", "write", "open", "wal.log"]),
    st.integers(min_value=-3, max_value=3),
    st.booleans(),
    st.none(),
)
_numeric_values = st.one_of(
    st.integers(min_value=-500, max_value=500),
    st.floats(min_value=-500, max_value=500,
              allow_nan=False, allow_infinity=False),
    st.none(),
)
_messy_values = st.one_of(
    _terms_values,
    _numeric_values,
    st.lists(st.integers(min_value=0, max_value=3), max_size=2),
)

documents = st.fixed_dictionaries(
    {},
    optional={
        "group": _terms_values,
        "n": _numeric_values,
        "time": st.integers(min_value=-10_000, max_value=10_000),
        "messy": _messy_values,
    })

# --- aggregation strategies -------------------------------------------------

_fields = st.sampled_from(["group", "n", "time", "messy", "absent"])

_metric = st.one_of(
    st.fixed_dictionaries({
        "kind": st.sampled_from(["sum", "avg", "min", "max", "stats",
                                 "value_count", "cardinality"]),
        "field": _fields}),
    st.fixed_dictionaries({
        "kind": st.just("percentiles"),
        "field": _fields,
        "percents": st.lists(
            st.integers(min_value=0, max_value=100), min_size=1,
            max_size=3)}),
)

_bucket = st.one_of(
    st.fixed_dictionaries({
        "kind": st.just("terms"),
        "field": _fields,
        "size": st.integers(min_value=1, max_value=5)}),
    st.fixed_dictionaries({
        "kind": st.sampled_from(["histogram", "date_histogram"]),
        "field": st.sampled_from(["n", "time", "messy"]),
        "interval": st.sampled_from([1, 3, 7, 100, 2.5])}),
)


def _spec(shape: dict, nested=None) -> dict:
    kind = shape["kind"]
    body = {"field": shape["field"]}
    if kind == "terms":
        body["size"] = shape["size"]
    elif kind in ("histogram", "date_histogram"):
        key = "fixed_interval" if kind == "date_histogram" else "interval"
        body[key] = shape["interval"]
    elif kind == "percentiles":
        body["percents"] = shape["percents"]
    spec = {kind: body}
    if nested:
        spec["aggs"] = nested
    return spec


#: One or two top-level aggregations; buckets may nest a bucket that
#: nests metrics, so partitions of partitions get exercised.
aggs_requests = st.builds(
    lambda outer, inner, leaf: {
        "a0": _spec(outer, {"a1": _spec(inner, {"a2": _spec(leaf)})}),
        "m0": _spec(leaf),
    },
    outer=_bucket, inner=_bucket, leaf=_metric)

simple_requests = st.builds(
    lambda shape, leaf: {"a0": _spec(shape, {"m": _spec(leaf)})},
    shape=_bucket, leaf=_metric)


def canon(payload) -> str:
    return json.dumps(payload, sort_keys=True)


def _assert_equivalent(store, query, aggs):
    """The search path mirrors the oracle — result or exception.

    Some generated requests legitimately raise (a terms aggregation
    over unhashable list values raises ``TypeError`` on the legacy
    path); the columnar store must then raise the same exception type,
    which it does by declining pushdown and falling back.  Returns the
    response (or ``None`` when both raised).
    """
    try:
        expected = naive_aggregate(store._index("ev"), query, aggs)
    except Exception as exc:
        with pytest.raises(type(exc)):
            store.search("ev", query=query, size=0, aggs=aggs)
        return None
    response = store.search("ev", query=query, size=0, aggs=aggs)
    assert canon(response["aggregations"]) == canon(expected)
    return response


def _seeded(docs):
    store = DocumentStore()
    store.create_index("ev")
    store.bulk("ev", [dict(d) for d in docs])
    return store


class TestColumnarEquivalence:
    @given(docs=st.lists(documents, max_size=60), aggs=simple_requests)
    @settings(max_examples=120, deadline=None)
    def test_single_level_matches_oracle(self, docs, aggs):
        _assert_equivalent(_seeded(docs), None, aggs)

    @given(docs=st.lists(documents, max_size=40), aggs=aggs_requests)
    @settings(max_examples=120, deadline=None)
    def test_nested_matches_oracle(self, docs, aggs):
        _assert_equivalent(_seeded(docs), None, aggs)

    @given(docs=st.lists(documents, min_size=1, max_size=40),
           aggs=simple_requests, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_equivalence_survives_mutation(self, docs, aggs, data):
        """Columns updated in place agree with a fresh oracle scan."""
        store = DocumentStore()
        for i, doc in enumerate(docs):
            store.index_doc("ev", dict(doc), doc_id=f"d{i}")
        try:
            store.search("ev", size=0, aggs=aggs)  # build columns
        except Exception:
            pass                                   # oracle-shaped error
        victim = data.draw(
            st.integers(min_value=0, max_value=len(docs) - 1))
        replacement = data.draw(documents)
        store.index_doc("ev", dict(replacement), doc_id=f"d{victim}")
        _assert_equivalent(store, None, aggs)

    @given(docs=st.lists(documents, max_size=60),
           aggs=simple_requests,
           lo=st.integers(min_value=-5_000, max_value=5_000),
           span=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_filtered_requests_match_oracle(self, docs, aggs, lo, span):
        query = {"range": {"time": {"gte": lo, "lt": lo + span}}}
        _assert_equivalent(_seeded(docs), query, aggs)

    @given(docs=st.lists(documents, max_size=40), aggs=simple_requests)
    @settings(max_examples=40, deadline=None)
    def test_repeat_is_cache_stable(self, docs, aggs):
        store = _seeded(docs)
        response = _assert_equivalent(store, None, aggs)
        if response is not None:
            again = store.search("ev", size=0, aggs=aggs)
            assert canon(response) == canon(again)
