"""Unit tests for the virtual file system layer."""

import pytest

from repro.kernel.errno import Errno, KernelError
from repro.kernel.inode import FileType, InodeAllocator
from repro.kernel.vfs import VirtualFileSystem


@pytest.fixture()
def vfs():
    return VirtualFileSystem(dev=0x700000)


class TestInodeAllocator:
    def test_sequential_allocation(self):
        alloc = InodeAllocator()
        assert alloc.allocate()[0] == 2
        assert alloc.allocate()[0] == 3

    def test_lowest_free_recycled_first(self):
        alloc = InodeAllocator()
        inos = [alloc.allocate()[0] for _ in range(4)]  # 2, 3, 4, 5
        alloc.free(inos[2])
        alloc.free(inos[0])
        assert alloc.allocate()[0] == inos[0]
        assert alloc.allocate()[0] == inos[2]

    def test_generation_increases_on_reuse(self):
        alloc = InodeAllocator()
        ino, gen1 = alloc.allocate()
        alloc.free(ino)
        ino2, gen2 = alloc.allocate()
        assert ino2 == ino
        assert gen2 == gen1 + 1


class TestCreateResolve:
    def test_create_and_resolve_file(self, vfs):
        inode = vfs.create("/a.txt")
        assert vfs.resolve("/a.txt") is inode
        assert inode.file_type is FileType.REGULAR

    def test_resolve_missing_raises_enoent(self, vfs):
        with pytest.raises(KernelError) as exc:
            vfs.resolve("/missing")
        assert exc.value.errno == Errno.ENOENT

    def test_nested_paths(self, vfs):
        vfs.mkdir("/dir")
        vfs.mkdir("/dir/sub")
        inode = vfs.create("/dir/sub/f")
        assert vfs.resolve("/dir/sub/f") is inode

    def test_file_component_in_middle_is_enotdir(self, vfs):
        vfs.create("/plain")
        with pytest.raises(KernelError) as exc:
            vfs.resolve("/plain/child")
        assert exc.value.errno == Errno.ENOTDIR

    def test_relative_path_rejected(self, vfs):
        with pytest.raises(KernelError) as exc:
            vfs.resolve("relative")
        assert exc.value.errno == Errno.EINVAL

    def test_exclusive_create_on_existing_raises(self, vfs):
        vfs.create("/f")
        with pytest.raises(KernelError) as exc:
            vfs.create("/f", exclusive=True)
        assert exc.value.errno == Errno.EEXIST

    def test_nonexclusive_create_returns_existing(self, vfs):
        first = vfs.create("/f")
        assert vfs.create("/f") is first

    def test_root_resolves_to_root(self, vfs):
        assert vfs.resolve("/") is vfs.root

    def test_name_too_long(self, vfs):
        with pytest.raises(KernelError) as exc:
            vfs.create("/" + "x" * 300)
        assert exc.value.errno == Errno.ENAMETOOLONG


class TestUnlinkRecycling:
    def test_unlink_removes_entry(self, vfs):
        vfs.create("/f")
        vfs.unlink("/f")
        assert vfs.lookup("/f") is None

    def test_unlink_missing_raises(self, vfs):
        with pytest.raises(KernelError) as exc:
            vfs.unlink("/nope")
        assert exc.value.errno == Errno.ENOENT

    def test_unlink_directory_raises_eisdir(self, vfs):
        vfs.mkdir("/d")
        with pytest.raises(KernelError) as exc:
            vfs.unlink("/d")
        assert exc.value.errno == Errno.EISDIR

    def test_inode_number_recycled_to_new_file(self, vfs):
        """The exact mechanism behind the Fluent Bit data-loss bug."""
        old = vfs.create("/app.log")
        old_ino = old.ino
        vfs.unlink("/app.log")
        new = vfs.create("/app.log")
        assert new.ino == old_ino
        assert new.generation == old.generation + 1

    def test_open_inode_survives_unlink_until_close(self, vfs):
        inode = vfs.create("/f")
        vfs.inode_opened(inode)
        vfs.unlink("/f")
        # Inode number must NOT be recycled while the file is open.
        other = vfs.create("/other")
        assert other.ino != inode.ino
        vfs.inode_closed(inode)
        recycled = vfs.create("/again")
        assert recycled.ino == inode.ino

    def test_hard_link_keeps_inode_alive(self, vfs):
        inode = vfs.create("/f")
        vfs.link("/f", "/g")
        vfs.unlink("/f")
        assert vfs.resolve("/g") is inode
        assert inode.nlink == 1


class TestRename:
    def test_rename_moves_entry(self, vfs):
        inode = vfs.create("/a")
        vfs.rename("/a", "/b")
        assert vfs.lookup("/a") is None
        assert vfs.resolve("/b") is inode

    def test_rename_replaces_target(self, vfs):
        src = vfs.create("/src")
        vfs.create("/dst")
        vfs.rename("/src", "/dst")
        assert vfs.resolve("/dst") is src

    def test_rename_missing_source(self, vfs):
        with pytest.raises(KernelError) as exc:
            vfs.rename("/no", "/where")
        assert exc.value.errno == Errno.ENOENT

    def test_rename_dir_over_nonempty_dir_fails(self, vfs):
        vfs.mkdir("/a")
        vfs.mkdir("/b")
        vfs.create("/b/file")
        with pytest.raises(KernelError) as exc:
            vfs.rename("/a", "/b")
        assert exc.value.errno == Errno.ENOTEMPTY

    def test_rename_across_directories(self, vfs):
        vfs.mkdir("/d1")
        vfs.mkdir("/d2")
        inode = vfs.create("/d1/f")
        vfs.rename("/d1/f", "/d2/f")
        assert vfs.resolve("/d2/f") is inode


class TestDirectories:
    def test_rmdir_empty(self, vfs):
        vfs.mkdir("/d")
        vfs.rmdir("/d")
        assert vfs.lookup("/d") is None

    def test_rmdir_nonempty_fails(self, vfs):
        vfs.mkdir("/d")
        vfs.create("/d/f")
        with pytest.raises(KernelError) as exc:
            vfs.rmdir("/d")
        assert exc.value.errno == Errno.ENOTEMPTY

    def test_rmdir_file_fails(self, vfs):
        vfs.create("/f")
        with pytest.raises(KernelError) as exc:
            vfs.rmdir("/f")
        assert exc.value.errno == Errno.ENOTDIR

    def test_listdir_sorted(self, vfs):
        for name in ("c", "a", "b"):
            vfs.create(f"/{name}")
        assert vfs.listdir("/") == ["a", "b", "c"]

    def test_mkdir_existing_fails(self, vfs):
        vfs.mkdir("/d")
        with pytest.raises(KernelError) as exc:
            vfs.mkdir("/d")
        assert exc.value.errno == Errno.EEXIST

    def test_nlink_accounting(self, vfs):
        assert vfs.root.nlink == 2
        vfs.mkdir("/d")
        assert vfs.root.nlink == 3
        vfs.rmdir("/d")
        assert vfs.root.nlink == 2


class TestSymlinks:
    def test_symlink_resolution(self, vfs):
        target = vfs.create("/real")
        vfs.symlink("/real", "/link")
        assert vfs.resolve("/link") is target

    def test_nofollow_returns_symlink(self, vfs):
        vfs.create("/real")
        link = vfs.symlink("/real", "/link")
        assert vfs.resolve("/link", follow_symlinks=False) is link

    def test_symlink_loop_raises_eloop(self, vfs):
        vfs.symlink("/b", "/a")
        vfs.symlink("/a", "/b")
        with pytest.raises(KernelError) as exc:
            vfs.resolve("/a")
        assert exc.value.errno == Errno.ELOOP

    def test_symlink_in_directory_component(self, vfs):
        vfs.mkdir("/real_dir")
        vfs.create("/real_dir/f")
        vfs.symlink("/real_dir", "/lnk")
        assert vfs.resolve("/lnk/f") is vfs.resolve("/real_dir/f")


class TestFileData:
    def test_write_read_roundtrip(self, vfs):
        inode = vfs.create("/f")
        inode.write_bytes(0, b"hello world", 1)
        assert inode.read_bytes(0, 5) == b"hello"
        assert inode.size == 11

    def test_read_past_eof_returns_empty(self, vfs):
        inode = vfs.create("/f")
        inode.write_bytes(0, b"abc", 1)
        assert inode.read_bytes(10, 5) == b""

    def test_write_with_hole_zero_fills(self, vfs):
        inode = vfs.create("/f")
        inode.write_bytes(5, b"x", 1)
        assert inode.read_bytes(0, 6) == b"\x00\x00\x00\x00\x00x"

    def test_truncate_shrink_and_grow(self, vfs):
        inode = vfs.create("/f")
        inode.write_bytes(0, b"abcdef", 1)
        inode.truncate(3, 2)
        assert inode.read_bytes(0, 10) == b"abc"
        inode.truncate(5, 3)
        assert inode.read_bytes(0, 10) == b"abc\x00\x00"

    def test_walk_yields_tree(self, vfs):
        vfs.mkdir("/d")
        vfs.create("/d/f")
        vfs.create("/top")
        paths = [p for p, _ in vfs.walk()]
        assert paths == ["/", "/d", "/d/f", "/top"]
