"""Dedicated unit tests for the block device and page cache models."""

import pytest

from repro.kernel import BlockDevice, PageCache
from repro.kernel.pagecache import BLOCK_SIZE
from repro.sim import Environment


@pytest.fixture()
def env():
    return Environment()


def run(env, gen):
    return env.run(until=env.process(gen))


class TestBlockDevice:
    def test_service_time_model(self, env):
        device = BlockDevice(env, base_latency_ns=10_000,
                             bandwidth_bytes_per_sec=1_000_000_000)
        assert device.service_time_ns(0) == 10_000
        assert device.service_time_ns(1_000_000) == 10_000 + 1_000_000

    def test_transfer_takes_service_time(self, env):
        device = BlockDevice(env, base_latency_ns=20_000,
                             bandwidth_bytes_per_sec=500_000_000)

        def scenario():
            yield from device.read(1_000_000)

        run(env, scenario())
        # 1 MB at 2 ns/byte, split into 2 chunks paying base latency each.
        assert env.now == 20_000 * 2 + 2_000_000

    def test_queue_depth_limits_parallelism(self, env):
        device = BlockDevice(env, queue_depth=1, base_latency_ns=1000,
                             bandwidth_bytes_per_sec=10**9,
                             max_request_bytes=10**9)
        finish_times = []

        def requester():
            yield from device.read(1000)
            finish_times.append(env.now)

        for _ in range(3):
            env.process(requester())
        env.run()
        # Strictly serialized: distinct, increasing completion times.
        assert len(set(finish_times)) == 3
        assert finish_times == sorted(finish_times)

    def test_large_request_split_bounds_monopoly(self, env):
        """A small read queued behind a huge write must not wait for
        the whole transfer — only for the current chunk."""
        device = BlockDevice(env, queue_depth=1, base_latency_ns=0,
                             bandwidth_bytes_per_sec=100_000_000,
                             max_request_bytes=256 * 1024)
        read_done = {}

        def big_writer():
            yield from device.write(16 * 1024 * 1024)

        def small_reader():
            yield env.timeout(1000)  # arrive mid-write
            yield from device.read(4096)
            read_done["at"] = env.now

        env.process(big_writer())
        env.process(small_reader())
        env.run()
        whole_write_ns = 16 * 1024 * 1024 * 10
        assert read_done["at"] < whole_write_ns / 4

    def test_stats_accounting(self, env):
        device = BlockDevice(env)

        def scenario():
            yield from device.write(10_000)
            yield from device.read(5_000)

        run(env, scenario())
        assert device.stats.writes == 1
        assert device.stats.reads == 1
        assert device.stats.bytes_written == 10_000
        assert device.stats.bytes_read == 5_000
        assert device.stats.busy_ns > 0

    def test_invalid_parameters(self, env):
        with pytest.raises(ValueError):
            BlockDevice(env, bandwidth_bytes_per_sec=0)
        device = BlockDevice(env)
        with pytest.raises(ValueError):
            run(env, device.read(-1))


class TestPageCache:
    def make(self, env, capacity_blocks=16):
        device = BlockDevice(env, base_latency_ns=10_000,
                             bandwidth_bytes_per_sec=10**9)
        cache = PageCache(env, device,
                          capacity_bytes=capacity_blocks * BLOCK_SIZE)
        return device, cache

    def test_second_read_is_a_hit(self, env):
        device, cache = self.make(env)

        def scenario():
            yield from cache.read(1, 0, BLOCK_SIZE)
            first_reads = device.stats.reads
            yield from cache.read(1, 0, BLOCK_SIZE)
            return first_reads, device.stats.reads

        first, second = run(env, scenario())
        assert first == second  # no extra device read
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_write_is_buffered_until_fsync(self, env):
        device, cache = self.make(env)

        def scenario():
            yield from cache.write(1, 0, 3 * BLOCK_SIZE)
            buffered = device.stats.bytes_written
            yield from cache.fsync(1)
            return buffered, device.stats.bytes_written

        before, after = run(env, scenario())
        assert before == 0
        assert after == 3 * BLOCK_SIZE
        assert cache.dirty_blocks(1) == 0

    def test_fsync_is_per_inode(self, env):
        device, cache = self.make(env)

        def scenario():
            yield from cache.write(1, 0, BLOCK_SIZE)
            yield from cache.write(2, 0, BLOCK_SIZE)
            yield from cache.fsync(1)

        run(env, scenario())
        assert cache.dirty_blocks(1) == 0
        assert cache.dirty_blocks(2) == 1

    def test_lru_eviction_writes_back_dirty(self, env):
        device, cache = self.make(env, capacity_blocks=4)

        def scenario():
            yield from cache.write(1, 0, 4 * BLOCK_SIZE)   # fill with dirty
            yield from cache.read(2, 0, 2 * BLOCK_SIZE)    # evicts 2 dirty

        run(env, scenario())
        assert cache.stats.evictions >= 2
        assert cache.stats.writebacks >= 2
        assert cache.cached_blocks() <= 4

    def test_drop_inode_discards_without_writeback(self, env):
        device, cache = self.make(env)

        def scenario():
            yield from cache.write(1, 0, 2 * BLOCK_SIZE)

        run(env, scenario())
        cache.drop_inode(1)
        assert cache.dirty_blocks() == 0
        assert device.stats.bytes_written == 0

    def test_partial_block_ranges(self, env):
        device, cache = self.make(env)

        def scenario():
            # 100 bytes spanning a block boundary touches 2 blocks.
            yield from cache.read(1, BLOCK_SIZE - 50, 100)

        run(env, scenario())
        assert cache.stats.misses == 2

    def test_zero_length_io_touches_nothing(self, env):
        device, cache = self.make(env)

        def scenario():
            yield from cache.read(1, 0, 0)
            yield from cache.write(1, 0, 0)

        run(env, scenario())
        assert cache.stats.hits + cache.stats.misses == 0
        assert cache.cached_blocks() == 0

    def test_capacity_validation(self, env):
        device = BlockDevice(env)
        with pytest.raises(ValueError):
            PageCache(env, device, capacity_bytes=100)
