"""Integration tests for the DIO tracer pipeline."""

import pytest

from repro.backend import DocumentStore
from repro.kernel import Kernel, O_CREAT, O_RDONLY, O_RDWR, O_WRONLY
from repro.sim import Environment
from repro.tracer import DIOTracer, TracerConfig
from repro.tracer.events import Event, estimate_record_size


def make_env(config=None):
    env = Environment()
    kernel = Kernel(env, ncpus=2)
    store = DocumentStore()
    tracer = DIOTracer(env, kernel, store, config)
    return env, kernel, store, tracer


def run_traced(env, tracer, workload):
    """Attach, run a workload generator, shut the tracer down."""
    tracer.attach()

    def main():
        yield from workload
        yield from tracer.shutdown()

    env.run(until=env.process(main()))


def simple_workload(env, kernel, task, path="/f", payload=b"hello"):
    fd = yield from kernel.syscall(task, "open", path=path,
                                   flags=O_CREAT | O_RDWR)
    yield from kernel.syscall(task, "write", fd=fd, data=payload)
    yield from kernel.syscall(task, "lseek", fd=fd, offset=0, whence=0)
    buf = bytearray(len(payload))
    yield from kernel.syscall(task, "read", fd=fd, buf=buf)
    yield from kernel.syscall(task, "close", fd=fd)


class TestEndToEnd:
    def test_events_reach_backend(self):
        env, kernel, store, tracer = make_env()
        task = kernel.spawn_process("app").threads[0]
        run_traced(env, tracer, simple_workload(env, kernel, task))
        hits = store.search("dio_trace", size=None)["hits"]["hits"]
        syscalls = [h["_source"]["syscall"] for h in hits]
        assert sorted(syscalls) == ["close", "lseek", "open", "read", "write"]

    def test_entry_exit_aggregated_into_one_event(self):
        env, kernel, store, tracer = make_env()
        task = kernel.spawn_process("app").threads[0]
        run_traced(env, tracer, simple_workload(env, kernel, task))
        for hit in store.search("dio_trace", size=None)["hits"]["hits"]:
            source = hit["_source"]
            assert source["time_exit"] > source["time"]
            assert source["duration_ns"] == (
                source["time_exit"] - source["time"])

    def test_process_fields_recorded(self):
        env, kernel, store, tracer = make_env()
        process = kernel.spawn_process("myapp")
        task = process.threads[0]
        run_traced(env, tracer, simple_workload(env, kernel, task))
        source = store.search("dio_trace")["hits"]["hits"][0]["_source"]
        assert source["proc_name"] == "myapp"
        assert source["pid"] == process.pid
        assert source["tid"] == task.tid
        assert source["session"] == "dio-session"

    def test_offsets_enriched_for_read_write(self):
        env, kernel, store, tracer = make_env()
        task = kernel.spawn_process("app").threads[0]
        run_traced(env, tracer,
                   simple_workload(env, kernel, task, payload=b"x" * 26))
        hits = store.search("dio_trace", size=None,
                            sort=["time"])["hits"]["hits"]
        by_syscall = {h["_source"]["syscall"]: h["_source"] for h in hits}
        assert by_syscall["write"]["offset"] == 0
        assert by_syscall["read"]["offset"] == 0
        assert by_syscall["write"]["ret"] == 26
        assert by_syscall["read"]["ret"] == 26

    def test_file_type_enriched(self):
        env, kernel, store, tracer = make_env()
        task = kernel.spawn_process("app").threads[0]
        run_traced(env, tracer, simple_workload(env, kernel, task))
        source = store.search(
            "dio_trace",
            query={"term": {"syscall": "write"}})["hits"]["hits"][0]["_source"]
        assert source["file_type"] == "regular"

    def test_write_buffer_serialized_as_size(self):
        env, kernel, store, tracer = make_env()
        task = kernel.spawn_process("app").threads[0]
        run_traced(env, tracer,
                   simple_workload(env, kernel, task, payload=b"q" * 100))
        source = store.search(
            "dio_trace",
            query={"term": {"syscall": "write"}})["hits"]["hits"][0]["_source"]
        assert source["args"]["data"] == 100

    def test_failed_syscalls_traced_with_negative_ret(self):
        env, kernel, store, tracer = make_env()
        task = kernel.spawn_process("app").threads[0]

        def workload():
            yield from kernel.syscall(task, "open", path="/missing",
                                      flags=O_RDONLY)

        run_traced(env, tracer, workload())
        source = store.search("dio_trace")["hits"]["hits"][0]["_source"]
        assert source["syscall"] == "open"
        assert source["ret"] < 0


class TestFileTags:
    def test_same_file_same_tag(self):
        env, kernel, store, tracer = make_env()
        task = kernel.spawn_process("app").threads[0]
        run_traced(env, tracer, simple_workload(env, kernel, task))
        hits = store.search("dio_trace", size=None)["hits"]["hits"]
        tags = {h["_source"].get("file_tag") for h in hits
                if h["_source"]["syscall"] != "lseek" or True}
        tags.discard(None)
        assert len(tags) == 1

    def test_recycled_inode_gets_fresh_tag(self):
        """The property the Fluent Bit diagnosis depends on."""
        env, kernel, store, tracer = make_env()
        task = kernel.spawn_process("app").threads[0]

        def workload():
            fd = yield from kernel.syscall(task, "open", path="/app.log",
                                           flags=O_CREAT | O_WRONLY)
            yield from kernel.syscall(task, "write", fd=fd, data=b"v1")
            yield from kernel.syscall(task, "close", fd=fd)
            yield from kernel.syscall(task, "unlink", path="/app.log")
            fd = yield from kernel.syscall(task, "open", path="/app.log",
                                           flags=O_CREAT | O_WRONLY)
            yield from kernel.syscall(task, "write", fd=fd, data=b"v2")
            yield from kernel.syscall(task, "close", fd=fd)

        run_traced(env, tracer, workload())
        hits = store.search("dio_trace", size=None,
                            sort=["time"])["hits"]["hits"]
        writes = [h["_source"] for h in hits
                  if h["_source"]["syscall"] == "write"]
        tag1, tag2 = writes[0]["file_tag"], writes[1]["file_tag"]
        assert tag1 != tag2
        # Same device and inode number, different first-access timestamp.
        dev1, ino1, ts1 = tag1.split()
        dev2, ino2, ts2 = tag2.split()
        assert (dev1, ino1) == (dev2, ino2)
        assert ts1 != ts2

    def test_unlink_carries_no_file_tag(self):
        """Path-only syscalls are not fd-handling (paper Fig. 2a)."""
        env, kernel, store, tracer = make_env()
        task = kernel.spawn_process("app").threads[0]

        def workload():
            yield from kernel.syscall(task, "creat", path="/f")
            yield from kernel.syscall(task, "unlink", path="/f")

        run_traced(env, tracer, workload())
        source = store.search(
            "dio_trace",
            query={"term": {"syscall": "unlink"}})["hits"]["hits"][0]["_source"]
        assert "file_tag" not in source


class TestCorrelation:
    def test_shutdown_resolves_file_paths(self):
        env, kernel, store, tracer = make_env()
        kernel.vfs.mkdir("/data")
        task = kernel.spawn_process("app").threads[0]
        run_traced(env, tracer,
                   simple_workload(env, kernel, task, path="/data/x.log"))
        source = store.search(
            "dio_trace",
            query={"term": {"syscall": "read"}})["hits"]["hits"][0]["_source"]
        assert source["file_path"] == "/data/x.log"
        assert tracer.correlation_report is not None
        assert tracer.correlation_report.unresolved_ratio == 0.0

    def test_correlation_disabled(self):
        config = TracerConfig(correlate_on_stop=False)
        env, kernel, store, tracer = make_env(config)
        task = kernel.spawn_process("app").threads[0]
        run_traced(env, tracer, simple_workload(env, kernel, task))
        assert tracer.correlation_report is None
        source = store.search(
            "dio_trace",
            query={"term": {"syscall": "read"}})["hits"]["hits"][0]["_source"]
        assert "file_path" not in source


class TestFiltering:
    def test_syscall_scope_limits_tracepoints(self):
        config = TracerConfig(syscalls=frozenset({"write"}))
        env, kernel, store, tracer = make_env(config)
        task = kernel.spawn_process("app").threads[0]
        run_traced(env, tracer, simple_workload(env, kernel, task))
        hits = store.search("dio_trace", size=None)["hits"]["hits"]
        assert {h["_source"]["syscall"] for h in hits} == {"write"}

    def test_pid_filter(self):
        env0 = Environment()
        kernel = Kernel(env0, ncpus=2)
        wanted = kernel.spawn_process("wanted")
        noise = kernel.spawn_process("noise")
        store = DocumentStore()
        config = TracerConfig(pids=frozenset({wanted.pid}))
        tracer = DIOTracer(env0, kernel, store, config)
        tracer.attach()

        def main():
            yield from simple_workload(env0, kernel, wanted.threads[0], "/a")
            yield from simple_workload(env0, kernel, noise.threads[0], "/b")
            yield from tracer.shutdown()

        env0.run(until=env0.process(main()))
        hits = store.search("dio_trace", size=None)["hits"]["hits"]
        assert {h["_source"]["pid"] for h in hits} == {wanted.pid}
        assert tracer.stats.filtered_out > 0

    def test_tid_filter(self):
        env = Environment()
        kernel = Kernel(env, ncpus=2)
        process = kernel.spawn_process("app")
        main_task = process.threads[0]
        side_task = kernel.spawn_thread(process, comm="app-side")
        store = DocumentStore()
        config = TracerConfig(tids=frozenset({side_task.tid}))
        tracer = DIOTracer(env, kernel, store, config)
        tracer.attach()

        def body():
            yield from simple_workload(env, kernel, main_task, "/a")
            yield from simple_workload(env, kernel, side_task, "/b")
            yield from tracer.shutdown()

        env.run(until=env.process(body()))
        hits = store.search("dio_trace", size=None)["hits"]["hits"]
        assert {h["_source"]["tid"] for h in hits} == {side_task.tid}

    def test_path_filter_tracks_fds(self):
        config = TracerConfig(paths=("/logs",))
        env, kernel, store, tracer = make_env(config)
        kernel.vfs.mkdir("/logs")
        kernel.vfs.mkdir("/other")
        task = kernel.spawn_process("app").threads[0]
        tracer.attach()

        def workload():
            yield from simple_workload(env, kernel, task, "/logs/app.log")
            yield from simple_workload(env, kernel, task, "/other/noise.log")

        def main():
            yield from workload()
            yield from tracer.shutdown()

        env.run(until=env.process(main()))
        hits = store.search("dio_trace", size=None)["hits"]["hits"]
        assert hits, "expected events under /logs"
        for hit in hits:
            source = hit["_source"]
            path = source.get("file_path") or source.get("args", {}).get("path")
            assert path == "/logs/app.log"

    def test_path_filter_exact_file(self):
        config = TracerConfig(paths=("/f",))
        env, kernel, store, tracer = make_env(config)
        task = kernel.spawn_process("app").threads[0]
        run_traced(env, tracer, simple_workload(env, kernel, task, "/f"))
        hits = store.search("dio_trace", size=None)["hits"]["hits"]
        assert len(hits) == 5


class TestDropsAndBatching:
    def test_tiny_ring_buffer_drops_events(self):
        config = TracerConfig(ring_capacity_bytes_per_cpu=400,
                              poll_interval_ns=50_000_000)
        env, kernel, store, tracer = make_env(config)
        task = kernel.spawn_process("app").threads[0]

        def workload():
            fd = yield from kernel.syscall(task, "open", path="/f",
                                           flags=O_CREAT | O_WRONLY)
            for _ in range(100):
                yield from kernel.syscall(task, "write", fd=fd, data=b"z")

        run_traced(env, tracer, workload())
        assert tracer.stats.dropped > 0
        assert 0 < tracer.stats.drop_ratio < 1
        # Shipped events are exactly the non-dropped ones.
        assert tracer.stats.shipped == tracer.stats.produced

    def test_batching_reduces_bulk_requests(self):
        config = TracerConfig(batch_size=64)
        env, kernel, store, tracer = make_env(config)
        task = kernel.spawn_process("app").threads[0]

        def workload():
            fd = yield from kernel.syscall(task, "open", path="/f",
                                           flags=O_CREAT | O_WRONLY)
            for _ in range(200):
                yield from kernel.syscall(task, "write", fd=fd, data=b"z")
            yield from kernel.syscall(task, "close", fd=fd)

        run_traced(env, tracer, workload())
        assert tracer.stats.shipped == 202
        assert tracer.stats.batches < 202 / 2

    def test_consumer_drains_after_stop(self):
        env, kernel, store, tracer = make_env()
        task = kernel.spawn_process("app").threads[0]
        run_traced(env, tracer, simple_workload(env, kernel, task))
        assert tracer.ring.pending_records() == 0

    def test_double_attach_rejected(self):
        env, kernel, store, tracer = make_env()
        tracer.attach()
        with pytest.raises(RuntimeError):
            tracer.attach()


class TestConfig:
    def test_unknown_syscall_rejected(self):
        with pytest.raises(ValueError):
            TracerConfig(syscalls=frozenset({"execve"}))

    def test_relative_path_filter_rejected(self):
        with pytest.raises(ValueError):
            TracerConfig(paths=("relative/path",))

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            TracerConfig(ring_capacity_bytes_per_cpu=0)
        with pytest.raises(ValueError):
            TracerConfig(batch_size=0)

    def test_from_toml(self):
        config = TracerConfig.from_toml("""
            [tracer]
            syscalls = ["open", "read", "write", "close"]
            pids = [42]
            paths = ["/tmp"]
            session_name = "run-1"

            [ring_buffer]
            capacity_mib_per_cpu = 8

            [backend]
            index = "my_trace"
            batch_size = 128
            correlate_on_stop = false
        """)
        assert config.enabled_syscalls == {"open", "read", "write", "close"}
        assert config.pids == {42}
        assert config.paths == ("/tmp",)
        assert config.session_name == "run-1"
        assert config.ring_capacity_bytes_per_cpu == 8 * 1024 * 1024
        assert config.index == "my_trace"
        assert config.batch_size == 128
        assert config.correlate_on_stop is False

    def test_default_enables_all_42(self):
        # The 42 classic syscalls of Table I plus the three io_uring
        # control syscalls.
        enabled = TracerConfig().enabled_syscalls
        assert len(enabled) == 45
        assert {"io_uring_setup", "io_uring_enter",
                "io_uring_register"} <= enabled

    def test_ring_mode_validation(self):
        assert TracerConfig().ring_mode == "classic"
        assert TracerConfig(ring_mode="ring-aware").ring_mode == "ring-aware"
        with pytest.raises(ValueError):
            TracerConfig(ring_mode="io_uring")

    def test_ring_mode_from_toml(self):
        config = TracerConfig.from_toml("""
            [tracer]
            ring_mode = "ring-aware"
        """)
        assert config.ring_mode == "ring-aware"


class TestEventModel:
    def test_json_roundtrip(self):
        event = Event(syscall="write", args={"fd": 3, "data": b"xyz"},
                      ret=3, pid=1, tid=2, proc_name="app",
                      time=100, time_exit=150, file_type="regular",
                      offset=0, file_tag="7 12 100", session="s")
        doc = event.to_doc()
        assert doc["args"]["data"] == 3
        rebuilt = Event.from_doc(doc)
        assert rebuilt.to_doc() == doc

    def test_sparse_fields_omitted(self):
        event = Event(syscall="unlink", args={"path": "/f"}, ret=0,
                      pid=1, tid=1, proc_name="app", time=1, time_exit=2)
        doc = event.to_doc()
        assert "file_tag" not in doc
        assert "offset" not in doc
        assert "file_type" not in doc

    def test_record_size_grows_with_path(self):
        small = estimate_record_size("open", {"path": "/a", "flags": 0})
        large = estimate_record_size("open", {"path": "/a" * 100, "flags": 0})
        assert large > small


class TestTracerStatsDict:
    def test_as_dict_covers_every_public_property(self):
        from repro.tracer.tracer import TracerStats

        expected = {name for name, attr in vars(TracerStats).items()
                    if isinstance(attr, property)
                    and not name.startswith("_")}
        env, kernel, store, tracer = make_env()
        assert set(tracer.stats.as_dict()) == expected

    def test_as_dict_values_match_properties(self):
        env, kernel, store, tracer = make_env()
        task = kernel.spawn_process("app").threads[0]
        tracer.attach()

        def workload():
            fd = yield from kernel.syscall(task, "open", path="/f",
                                           flags=O_CREAT | O_RDWR)
            for _ in range(10):
                yield from kernel.syscall(task, "write", fd=fd, data=b"x")
            yield from tracer.shutdown()

        env.run(until=env.process(workload()))
        snapshot = tracer.stats.as_dict()
        assert snapshot["shipped"] == tracer.stats.shipped == 11
        for name, value in snapshot.items():
            assert getattr(tracer.stats, name) == value
