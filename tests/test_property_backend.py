"""Property-based tests: query DSL, aggregations, store invariants."""

import json
import math

from hypothesis import given, settings, strategies as st

from repro.backend import DocumentStore, compile_query
from repro.backend.aggregations import percentile, run_aggregations
from repro.tracer.events import Event

# --- document strategies ----------------------------------------------------

field_values = st.one_of(
    st.integers(min_value=-1_000, max_value=1_000),
    st.sampled_from(["read", "write", "open", "close"]),
    st.booleans(),
)
documents = st.fixed_dictionaries({
    "syscall": st.sampled_from(["read", "write", "open", "close"]),
    "ret": st.integers(min_value=-40, max_value=4096),
    "tid": st.integers(min_value=1, max_value=8),
    "time": st.integers(min_value=0, max_value=10_000),
})


class TestQueryProperties:
    @given(docs=st.lists(documents, max_size=40),
           value=st.sampled_from(["read", "write", "open", "close"]))
    @settings(max_examples=100, deadline=None)
    def test_term_query_equals_python_filter(self, docs, value):
        predicate = compile_query({"term": {"syscall": value}})
        assert [predicate(d) for d in docs] == [
            d["syscall"] == value for d in docs]

    @given(docs=st.lists(documents, max_size=40),
           lo=st.integers(min_value=-50, max_value=50),
           span=st.integers(min_value=0, max_value=100))
    @settings(max_examples=100, deadline=None)
    def test_range_query_equals_python_filter(self, docs, lo, span):
        hi = lo + span
        predicate = compile_query({"range": {"ret": {"gte": lo, "lt": hi}}})
        assert [predicate(d) for d in docs] == [
            lo <= d["ret"] < hi for d in docs]

    @given(docs=st.lists(documents, max_size=40), data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_bool_must_is_conjunction(self, docs, data):
        value = data.draw(st.sampled_from(["read", "write"]))
        bound = data.draw(st.integers(min_value=-10, max_value=100))
        combined = compile_query({"bool": {"must": [
            {"term": {"syscall": value}},
            {"range": {"ret": {"gte": bound}}},
        ]}})
        left = compile_query({"term": {"syscall": value}})
        right = compile_query({"range": {"ret": {"gte": bound}}})
        for doc in docs:
            assert combined(doc) == (left(doc) and right(doc))

    @given(docs=st.lists(documents, max_size=40),
           value=st.sampled_from(["read", "write", "open", "close"]))
    @settings(max_examples=60, deadline=None)
    def test_must_not_is_complement(self, docs, value):
        positive = compile_query({"term": {"syscall": value}})
        negative = compile_query({"bool": {"must_not": [
            {"term": {"syscall": value}}]}})
        for doc in docs:
            assert positive(doc) != negative(doc)


class TestStoreProperties:
    @given(docs=st.lists(documents, max_size=40),
           value=st.sampled_from(["read", "write", "open", "close"]))
    @settings(max_examples=60, deadline=None)
    def test_inverted_index_matches_linear_scan(self, docs, value):
        """Term search (index-accelerated) == full-scan filtering."""
        store = DocumentStore()
        store.bulk("idx", [dict(d) for d in docs])
        hits = store.search("idx", query={"term": {"syscall": value}},
                            size=None)["hits"]["hits"]
        expected = [d for d in docs if d["syscall"] == value]
        assert sorted((h["_source"]["time"], h["_source"]["ret"])
                      for h in hits) == sorted(
            (d["time"], d["ret"]) for d in expected)

    @given(docs=st.lists(documents, min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_sort_and_pagination_partition_results(self, docs):
        store = DocumentStore()
        store.bulk("idx", [dict(d) for d in docs])
        page_size = 7
        collected = []
        offset = 0
        while True:
            hits = store.search("idx", sort=["time"], size=page_size,
                                from_=offset)["hits"]["hits"]
            if not hits:
                break
            collected.extend(h["_source"]["time"] for h in hits)
            offset += page_size
        assert collected == sorted(d["time"] for d in docs)

    @given(docs=st.lists(documents, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_update_by_query_touches_exactly_the_matches(self, docs):
        store = DocumentStore()
        store.bulk("idx", [dict(d) for d in docs])
        updated = store.update_by_query(
            "idx", {"term": {"syscall": "read"}}, {"flagged": True})
        assert updated == sum(1 for d in docs if d["syscall"] == "read")
        assert store.count("idx", {"term": {"flagged": True}}) == updated


class TestAggregationProperties:
    @given(values=st.lists(st.integers(min_value=-10_000, max_value=10_000),
                           min_size=1, max_size=100),
           percent=st.floats(min_value=0.1, max_value=100.0))
    @settings(max_examples=100, deadline=None)
    def test_percentile_within_bounds_and_monotone(self, values, percent):
        ordered = sorted(values)
        result = percentile(ordered, percent)
        assert min(values) <= result <= max(values)
        if percent >= 50:
            assert result >= percentile(ordered, percent / 2) - 1e-9

    @given(docs=st.lists(documents, min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_terms_buckets_partition_documents(self, docs):
        result = run_aggregations(
            {"by": {"terms": {"field": "syscall", "size": 10}}}, docs)
        buckets = result["by"]["buckets"]
        assert sum(b["doc_count"] for b in buckets) == len(docs)
        assert len({b["key"] for b in buckets}) == len(buckets)

    @given(docs=st.lists(documents, min_size=1, max_size=60),
           interval=st.integers(min_value=1, max_value=5_000))
    @settings(max_examples=60, deadline=None)
    def test_histogram_buckets_partition_and_align(self, docs, interval):
        result = run_aggregations(
            {"h": {"histogram": {"field": "time", "interval": interval}}},
            docs)
        buckets = result["h"]["buckets"]
        assert sum(b["doc_count"] for b in buckets) == len(docs)
        for bucket in buckets:
            assert bucket["key"] % interval == 0
        keys = [b["key"] for b in buckets]
        assert keys == sorted(keys)

    @given(docs=st.lists(documents, min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_stats_consistency(self, docs):
        result = run_aggregations({"s": {"stats": {"field": "ret"}}}, docs)
        stats = result["s"]
        values = [d["ret"] for d in docs]
        assert stats["count"] == len(values)
        assert stats["min"] == min(values)
        assert stats["max"] == max(values)
        assert math.isclose(stats["avg"], sum(values) / len(values))


class TestEventProperties:
    @given(syscall=st.sampled_from(["read", "write", "openat"]),
           args=st.dictionaries(
               st.sampled_from(["fd", "path", "flags", "data"]),
               st.one_of(st.integers(min_value=0, max_value=10_000),
                         st.text(max_size=20),
                         st.binary(max_size=50)),
               max_size=4),
           ret=st.integers(min_value=-40, max_value=100_000),
           times=st.tuples(st.integers(min_value=0, max_value=10**15),
                           st.integers(min_value=0, max_value=10**6)))
    @settings(max_examples=100, deadline=None)
    def test_doc_roundtrip_is_stable(self, syscall, args, ret, times):
        start, duration = times
        event = Event(syscall=syscall, args=args, ret=ret, pid=1, tid=2,
                      proc_name="p", time=start, time_exit=start + duration)
        doc = event.to_doc()
        assert Event.from_doc(doc).to_doc() == doc
        # Compact wire format round-trips to the exact same document
        # (no bytes leak in, no key reordering changes anything).
        assert Event.from_doc(json.loads(event.to_json())).to_doc() == doc
