"""Tests for text rendering and the predefined DIO dashboards."""

from repro.backend import DocumentStore
from repro.visualizer import (DIODashboards, render_histogram,
                              render_sparkline_grid, render_table,
                              render_timeseries, to_csv)
from repro.visualizer.render import sparkline

MS = 1_000_000


class TestRenderTable:
    def test_alignment_and_header_rule(self):
        text = render_table(["a", "long_header"], [[1, "x"], [22, "yy"]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4
        # Columns align: every row has the second column at same position.
        position = lines[0].index("long_header")
        assert lines[2][position] == "x"

    def test_truncates_wide_cells(self):
        text = render_table(["c"], [["z" * 100]], max_col_width=10)
        assert "z" * 11 not in text

    def test_none_rendered_empty(self):
        text = render_table(["c", "d"], [[None, 1]])
        assert text.splitlines()[2].strip().startswith("1") or "1" in text


class TestCharts:
    def test_histogram_scales_bars(self):
        text = render_histogram([("a", 100), ("b", 50), ("c", 0)], width=20)
        lines = text.splitlines()
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10
        assert lines[2].count("#") == 0

    def test_histogram_empty(self):
        assert render_histogram([]) == "(no data)"

    def test_sparkline_levels(self):
        line = sparkline([0, 1, 4, 8], maximum=8)
        assert len(line) == 4
        assert line[0] == " "
        assert line[3] == "█"

    def test_sparkline_grid_shared_scale(self):
        text = render_sparkline_grid(
            [0, 10], {"hot": {0: 100, 10: 100}, "cold": {0: 1}})
        lines = dict(line.split(" ", 1) for line in text.splitlines())
        assert "█" in lines["hot"]
        assert "█" not in lines["cold"]
        assert "(101)" not in text  # totals are per row
        assert "(200)" in text
        assert "(1)" in text

    def test_timeseries_has_peak_column(self):
        text = render_timeseries([(0, 1.0), (1, 10.0), (2, 2.0)], height=5)
        assert "max=10" in text
        assert "█" in text

    def test_timeseries_empty(self):
        assert render_timeseries([]) == "(no data)"

    def test_csv_output(self):
        csv_text = to_csv(["x", "y"], [[1, "a"], [2, "b"]])
        assert csv_text.splitlines() == ["x,y", "1,a", "2,b"]


def seeded_dashboards():
    store = DocumentStore()
    store.bulk("dio_trace", [
        {"syscall": "openat", "proc_name": "app", "pid": 1, "tid": 1,
         "ret": 3, "time": 0, "file_tag": "7 12 0", "session": "s1",
         "args": {"path": "/app.log"}},
        {"syscall": "write", "proc_name": "app", "pid": 1, "tid": 1,
         "ret": 26, "time": 1 * MS, "file_tag": "7 12 0", "offset": 0,
         "session": "s1"},
        {"syscall": "read", "proc_name": "fluent-bit", "pid": 2, "tid": 2,
         "ret": 26, "time": 2 * MS, "file_tag": "7 12 0", "offset": 0,
         "session": "s1"},
        {"syscall": "read", "proc_name": "other-session", "pid": 9, "tid": 9,
         "ret": 1, "time": 3 * MS, "session": "s2"},
    ])
    return store, DIODashboards(store, "dio_trace", session="s1")


class TestDashboards:
    def test_file_access_table_fig2_columns(self):
        _, dash = seeded_dashboards()
        text = dash.file_access_table()
        assert "proc_name" in text
        assert "file_tag" in text
        assert "offset" in text
        assert "fluent-bit" in text
        assert "7 12 0" in text

    def test_session_scoping_excludes_other_sessions(self):
        _, dash = seeded_dashboards()
        assert "other-session" not in dash.file_access_table()

    def test_proc_and_syscall_filters(self):
        _, dash = seeded_dashboards()
        rows = dash.file_access_rows(procs=["app"], syscalls=["write"])
        assert len(rows) == 1
        assert rows[0]["syscall"] == "write"

    def test_rows_sorted_by_time(self):
        _, dash = seeded_dashboards()
        times = [r["time"] for r in dash.file_access_rows()]
        assert times == sorted(times)

    def test_syscalls_over_time_chart(self):
        _, dash = seeded_dashboards()
        text = dash.syscalls_over_time_chart(window_ns=MS)
        assert "app" in text
        assert "fluent-bit" in text
        assert "aggregated by thread name" in text

    def test_latency_timeline(self):
        operations = [(i * MS, 100_000 + (i % 3) * 50_000, "read", 1)
                      for i in range(30)]
        text = DIODashboards.latency_timeline(operations, window_ns=5 * MS)
        assert "p99" in text
        assert "█" in text

    def test_summaries(self):
        _, dash = seeded_dashboards()
        syscall_text = dash.syscall_summary()
        assert "read" in syscall_text
        proc_text = dash.process_summary()
        assert "fluent-bit" in proc_text
