"""Tests for ring-buffer overflow policies (§V optimization study)."""

import pytest

from repro.ebpf.ringbuf import (PerCPURingBuffer, SAMPLE_STRIDE,
                                SAMPLE_WATERMARK)
from repro.tracer import TracerConfig


class TestDropNew:
    def test_default_policy(self):
        rb = PerCPURingBuffer(1, 100)
        assert rb.policy == "drop-new"

    def test_keeps_oldest(self):
        rb = PerCPURingBuffer(1, 100)
        rb.produce(0, "old", 100)
        assert not rb.produce(0, "new", 100)
        assert rb.consume(0) == ["old"]


class TestOverwriteOldest:
    def test_keeps_newest(self):
        rb = PerCPURingBuffer(1, 100, policy="overwrite-oldest")
        rb.produce(0, "old", 100)
        assert rb.produce(0, "new", 100)
        assert rb.consume(0) == ["new"]
        assert rb.stats.dropped == 1

    def test_evicts_multiple_small_for_one_large(self):
        rb = PerCPURingBuffer(1, 100, policy="overwrite-oldest")
        for i in range(4):
            rb.produce(0, i, 25)
        assert rb.produce(0, "big", 80)
        remaining = rb.consume(0)
        assert remaining[-1] == "big"
        assert rb.stats.dropped >= 3

    def test_oversized_record_rejected(self):
        rb = PerCPURingBuffer(1, 100, policy="overwrite-oldest")
        rb.produce(0, "x", 50)
        assert not rb.produce(0, "huge", 200)
        assert rb.consume(0) == []  # the eviction loop emptied the buffer

    def test_capacity_never_exceeded(self):
        rb = PerCPURingBuffer(1, 128, policy="overwrite-oldest")
        for i in range(50):
            rb.produce(0, i, 13)
            assert rb.fill_bytes(0) <= 128


class TestSample:
    def test_no_thinning_below_watermark(self):
        rb = PerCPURingBuffer(1, 1000, policy="sample")
        for i in range(int(1000 * SAMPLE_WATERMARK) // 10 - 1):
            assert rb.produce(0, i, 10)
        assert rb.stats.dropped == 0

    def test_thins_above_watermark(self):
        rb = PerCPURingBuffer(1, 1000, policy="sample")
        admitted = sum(1 for i in range(100) if rb.produce(0, i, 10))
        # Up to the watermark everything fits; beyond it ~1/STRIDE pass.
        assert admitted < 100
        assert rb.stats.dropped > 0
        # Roughly a quarter of the overflow region is admitted.
        assert admitted >= int(1000 * SAMPLE_WATERMARK) // 10 - 1

    def test_sampling_spreads_across_the_stream(self):
        """Unlike drop-new, sampling keeps records from the burst tail."""
        rb_drop = PerCPURingBuffer(1, 500, policy="drop-new")
        rb_sample = PerCPURingBuffer(1, 500, policy="sample")
        for i in range(200):
            rb_drop.produce(0, i, 10)
            rb_sample.produce(0, i, 10)
        kept_drop = rb_drop.consume(0)
        kept_sample = rb_sample.consume(0)
        # drop-new keeps only the head of the burst; sampling stretches
        # the same capacity further into the stream.
        assert max(kept_sample) > max(kept_drop) * 1.5


class TestPolicyValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            PerCPURingBuffer(1, 100, policy="yolo")

    def test_tracer_config_validates_policy(self):
        with pytest.raises(ValueError):
            TracerConfig(ring_policy="nonsense")
        config = TracerConfig(ring_policy="overwrite-oldest")
        assert config.ring_policy == "overwrite-oldest"

    def test_config_from_toml(self):
        config = TracerConfig.from_toml("""
            [ring_buffer]
            capacity_mib_per_cpu = 1
            policy = "sample"
        """)
        assert config.ring_policy == "sample"
