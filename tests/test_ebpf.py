"""Unit tests for the simulated eBPF runtime."""

import pytest

from repro.ebpf import (BPFArrayMap, BPFHashMap, EBPFProgram, PerCPUArray,
                        PerCPURingBuffer, ProgramType, VerifierError)
from repro.kernel.process import KernelProcess, Task
from repro.kernel.tracepoints import SyscallContext, TracepointRegistry


def make_ctx(name="read", tid=1):
    process = KernelProcess(pid=100, name="app")
    task = Task(tid=tid, process=process, comm="app")
    return SyscallContext(name, task, {"fd": 3}, enter_ns=0)


class TestBPFHashMap:
    def test_update_lookup_delete(self):
        m = BPFHashMap(max_entries=4)
        assert m.update("k", 1)
        assert m.lookup("k") == 1
        assert m.delete("k")
        assert m.lookup("k") is None
        assert not m.delete("k")

    def test_full_map_rejects_insert(self):
        m = BPFHashMap(max_entries=2)
        assert m.update("a", 1)
        assert m.update("b", 2)
        assert not m.update("c", 3)
        assert m.failed_inserts == 1

    def test_full_map_allows_overwrite(self):
        m = BPFHashMap(max_entries=1)
        m.update("a", 1)
        assert m.update("a", 2)
        assert m.lookup("a") == 2

    def test_lru_map_evicts_oldest(self):
        m = BPFHashMap(max_entries=2, lru=True)
        m.update("a", 1)
        m.update("b", 2)
        m.lookup("a")           # refresh "a"
        m.update("c", 3)        # evicts "b"
        assert m.lookup("b") is None
        assert m.lookup("a") == 1
        assert m.evictions == 1

    def test_pop(self):
        m = BPFHashMap(max_entries=4)
        m.update("k", 5)
        assert m.pop("k") == 5
        assert m.pop("k") is None

    def test_items_snapshot(self):
        m = BPFHashMap(max_entries=4)
        m.update("a", 1)
        m.update("b", 2)
        assert dict(m.items()) == {"a": 1, "b": 2}

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            BPFHashMap(max_entries=0)


class TestArrayMaps:
    def test_array_map(self):
        m = BPFArrayMap(4)
        m.update(2, "x")
        assert m.lookup(2) == "x"
        assert m.lookup(0) is None
        with pytest.raises(IndexError):
            m.lookup(4)
        with pytest.raises(IndexError):
            m.update(-1, "y")

    def test_percpu_array(self):
        m = PerCPUArray(ncpus=4)
        m.add(0, 5)
        m.add(2, 7)
        assert m.get(0) == 5
        assert m.get(1) == 0
        assert m.sum() == 12
        m.set(1, 100)
        assert m.sum() == 112


class TestRingBuffer:
    def test_produce_consume_roundtrip(self):
        rb = PerCPURingBuffer(ncpus=2, capacity_bytes_per_cpu=1024)
        assert rb.produce(0, "rec1", 100)
        assert rb.produce(1, "rec2", 100)
        assert rb.consume_all() == ["rec1", "rec2"]
        assert rb.stats.consumed == 2

    def test_per_cpu_fifo_order(self):
        rb = PerCPURingBuffer(ncpus=1, capacity_bytes_per_cpu=1024)
        for i in range(5):
            rb.produce(0, i, 10)
        assert rb.consume(0) == [0, 1, 2, 3, 4]

    def test_full_buffer_drops_new_records(self):
        rb = PerCPURingBuffer(ncpus=1, capacity_bytes_per_cpu=250)
        assert rb.produce(0, "a", 100)
        assert rb.produce(0, "b", 100)
        assert not rb.produce(0, "c", 100)   # would exceed 250
        assert rb.stats.dropped == 1
        assert rb.stats.produced == 2
        # Old records are intact — only the new one was lost.
        assert rb.consume(0) == ["a", "b"]

    def test_drop_ratio(self):
        rb = PerCPURingBuffer(ncpus=1, capacity_bytes_per_cpu=100)
        rb.produce(0, "a", 100)
        rb.produce(0, "b", 100)
        assert rb.stats.drop_ratio == pytest.approx(0.5)

    def test_consume_frees_capacity(self):
        rb = PerCPURingBuffer(ncpus=1, capacity_bytes_per_cpu=100)
        rb.produce(0, "a", 100)
        assert not rb.produce(0, "b", 100)
        rb.consume(0)
        assert rb.produce(0, "b", 100)

    def test_max_records_limit(self):
        rb = PerCPURingBuffer(ncpus=1, capacity_bytes_per_cpu=10_000)
        for i in range(10):
            rb.produce(0, i, 10)
        assert rb.consume(0, max_records=3) == [0, 1, 2]
        assert rb.pending_records() == 7

    def test_buffers_are_independent_per_cpu(self):
        rb = PerCPURingBuffer(ncpus=2, capacity_bytes_per_cpu=100)
        rb.produce(0, "fill", 100)
        # CPU 1 still has room even though CPU 0 is full.
        assert rb.produce(1, "ok", 100)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PerCPURingBuffer(ncpus=0, capacity_bytes_per_cpu=10)
        with pytest.raises(ValueError):
            PerCPURingBuffer(ncpus=1, capacity_bytes_per_cpu=0)
        rb = PerCPURingBuffer(ncpus=1, capacity_bytes_per_cpu=10)
        with pytest.raises(ValueError):
            rb.produce(0, "x", 0)


class TestEBPFProgram:
    def test_program_charges_cost(self):
        prog = EBPFProgram("p", ProgramType.SYS_ENTER,
                           func=lambda ctx: None, cost_ns=500)
        assert prog(make_ctx()) == 500
        assert prog.invocations == 1

    def test_extra_cost_from_func(self):
        prog = EBPFProgram("p", ProgramType.SYS_EXIT,
                           func=lambda ctx: 300, cost_ns=200)
        assert prog(make_ctx()) == 500

    def test_attach_detach_roundtrip(self):
        registry = TracepointRegistry()
        prog = EBPFProgram("p", ProgramType.SYS_ENTER,
                           func=lambda ctx: None, cost_ns=100)
        prog.attach(registry, "read")
        prog.attach(registry, "write")
        assert registry.attached_syscalls() == {"read", "write"}
        overhead = registry.fire_enter(make_ctx("read"))
        assert overhead == 100
        prog.detach_all()
        assert registry.attached_syscalls() == set()
        assert prog.attach_count == 0

    def test_exit_program_fires_on_exit_only(self):
        registry = TracepointRegistry()
        prog = EBPFProgram("p", ProgramType.SYS_EXIT,
                           func=lambda ctx: None, cost_ns=100)
        prog.attach(registry, "read")
        assert registry.fire_enter(make_ctx("read")) == 0
        assert registry.fire_exit(make_ctx("read")) == 100

    def test_verifier_rejects_oversized_program(self):
        with pytest.raises(VerifierError):
            EBPFProgram("huge", ProgramType.SYS_ENTER,
                        func=lambda ctx: None, insns=2_000_000)

    def test_invalid_cost(self):
        with pytest.raises(ValueError):
            EBPFProgram("p", ProgramType.SYS_ENTER,
                        func=lambda ctx: None, cost_ns=-1)
