"""End-to-end soak: the whole stack under one mixed, multi-process run.

One kernel hosts four concurrent applications (an LSM store with
background threads, a log writer, its tailer, and a metadata-churning
batch job) on two mounted devices, traced by DIO.  Afterwards the run
is validated against global invariants across every subsystem, the
detector battery is exercised, and the captured session is replayed on
a fresh kernel.
"""

import numpy as np
import pytest

from repro.analysis import run_detectors
from repro.apps.fluentbit import FLUENTBIT_FIXED, FluentBit
from repro.apps.rocksdb import DBBench, DBOptions, RocksDB
from repro.backend import DocumentStore, export_session, import_session
from repro.kernel import BlockDevice, Kernel
from repro.sim import Environment
from repro.tracer import DIOTracer, TraceReplayer, TracerConfig
from repro.workloads import metadata_storm, small_appender

SECOND = 1_000_000_000
MS = 1_000_000


@pytest.fixture(scope="module")
def soak():
    env = Environment()
    kernel = Kernel(env, ncpus=4)
    kernel.add_mount("/logs", BlockDevice(env, name="logdisk",
                                          bandwidth_bytes_per_sec=10**8))
    store = DocumentStore()
    tracer = DIOTracer(env, kernel, store,
                       TracerConfig(session_name="soak"))
    tracer.attach()

    # App 1: the LSM store + clients.
    db_process = kernel.spawn_process("db_bench")
    db = RocksDB(kernel, db_process, DBOptions(
        memtable_bytes=64 * 1024, l0_compaction_trigger=2,
        sstable_bytes=32 * 1024, compaction_threads=3))
    bench = DBBench(kernel, db, client_threads=4, key_count=2_000,
                    value_size=128, seed=3)

    # App 2 + 3: a log producer and its tailer.
    logger_task = kernel.spawn_process("logger").threads[0]
    tail = FluentBit(kernel, "/logs/app.log", version=FLUENTBIT_FIXED,
                     poll_interval_ns=20 * MS)
    tail.start()

    # App 4: metadata churn.
    batch_task = kernel.spawn_process("batchjob").threads[0]

    def main():
        yield from db.open(bench.client_tasks[0])
        yield from bench.load()
        clients = bench.run(duration_ns=150 * MS)
        log_proc = env.process(small_appender(
            kernel, logger_task, "/logs/app.log", appends=150,
            record_bytes=60))
        meta_proc = env.process(metadata_storm(
            kernel, batch_task, "/scratch", files=30))
        result = yield from clients.wait()
        yield log_proc
        yield meta_proc
        yield env.timeout(100 * MS)          # let the tailer catch up
        tail.stop()
        db.close()
        yield from tracer.shutdown()
        return result

    result = env.run(until=env.process(main()))
    return {"env": env, "kernel": kernel, "store": store,
            "tracer": tracer, "db": db, "bench_result": result,
            "tail": tail}


class TestGlobalInvariants:
    def test_every_syscall_became_exactly_one_event(self, soak):
        issued = sum(soak["kernel"].syscall_counts.values())
        assert soak["tracer"].stats.shipped == issued
        assert soak["store"].count("dio_trace") == issued

    def test_no_background_crashes(self, soak):
        soak["db"].check_health()

    def test_all_processes_visible_in_trace(self, soak):
        response = soak["store"].search("dio_trace", size=0, aggs={
            "p": {"terms": {"field": "proc_name", "size": 50}}})
        names = {b["key"] for b in response["aggregations"]["p"]["buckets"]}
        assert {"db_bench", "logger", "flb-pipeline",
                "batchjob"} <= names

    def test_tailer_delivered_all_log_bytes(self, soak):
        assert soak["tail"].delivered_bytes == 150 * 60

    def test_log_io_went_to_the_log_device(self, soak):
        log_dev = soak["kernel"].vfs.resolve("/logs/app.log").dev
        assert log_dev != soak["kernel"].vfs.dev

    def test_correlation_fully_resolved(self, soak):
        report = soak["tracer"].correlation_report
        assert report.unresolved_ratio <= 0.01

    def test_clients_made_progress(self, soak):
        assert soak["bench_result"].op_count > 500
        assert soak["db"].stats.flushes >= 1
        assert soak["db"].stats.compactions >= 1


class TestAnalysisOnSoak:
    def test_detectors_run_clean_of_crashes(self, soak):
        findings = run_detectors(soak["store"], session="soak")
        # No data-loss style critical findings in a healthy run.
        assert all(f.severity != "critical" for f in findings)

    def test_session_roundtrip_and_replay(self, soak, tmp_path):
        path = tmp_path / "soak.jsonl"
        exported = export_session(soak["store"], "soak", path)
        fresh_store = DocumentStore()
        import_session(fresh_store, path)
        assert fresh_store.count("dio_trace") == exported

        replay_kernel = Kernel(Environment())
        replay_kernel.add_mount(
            "/logs", BlockDevice(replay_kernel.env, name="logdisk"))
        replayer = TraceReplayer.from_session(fresh_store, replay_kernel,
                                              "soak")
        report = replay_kernel.env.run(
            until=replay_kernel.env.process(replayer.run()))
        assert report.issued > 0
        # Most returns match; divergence can only come from events whose
        # fds were opened before tracing (there are none here) or
        # interleaving-dependent reads.
        assert report.fidelity > 0.9
