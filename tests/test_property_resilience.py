"""Property-based test: the hardened shipping path is exactly-once.

For ANY seeded :class:`~repro.faults.FaultPlan` whose outages end
before the simulation does (so the backend eventually recovers), the
records that reach the store — through direct ships plus spill-WAL
replays — must be exactly the records the ring buffers accepted: no
loss, no duplicates, regardless of how the outages line up with
retries, breaker probes, and backpressure.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.backend import DocumentStore
from repro.faults import FaultPlan, FaultyStore
from repro.kernel import Kernel
from repro.sim import Environment
from repro.tracer import DIOTracer, TracerConfig
from repro.workloads import mixed_rw, sequential_writer

MS = 1_000_000


class TestExactlyOnceUnderFaults:
    @given(plan_seed=st.integers(min_value=0, max_value=10_000),
           outages=st.integers(min_value=0, max_value=4),
           workload_seed=st.integers(min_value=0, max_value=99))
    @settings(max_examples=30, deadline=None)
    def test_no_loss_no_duplicates(self, plan_seed, outages, workload_seed):
        env = Environment()
        kernel = Kernel(env, ncpus=2)
        inner = DocumentStore()
        # Outages confined to the first ~60 virtual ms; the workload +
        # shutdown drain run well past them, so recovery always comes.
        plan = FaultPlan.seeded(plan_seed, horizon_ns=60 * MS,
                                outages=outages, mean_outage_ns=10 * MS)
        faulty = FaultyStore(inner, plan, clock=lambda: env.now)
        config = TracerConfig(session_name="prop-faults",
                              ship_max_retries=2,
                              ship_retry_backoff_ns=500_000,
                              backoff_cap_ns=4 * MS,
                              breaker_failure_threshold=2,
                              breaker_recovery_ns=3 * MS,
                              resilience_seed=plan_seed)
        tracer = DIOTracer(env, kernel, faulty, config)
        task = kernel.spawn_process("wl").threads[0]
        rng = np.random.default_rng(workload_seed)
        tracer.attach()

        def main():
            yield from sequential_writer(kernel, task, "/a",
                                         total_bytes=48 * 1024)
            yield from mixed_rw(kernel, task, "/b", rng, operations=30)
            yield from tracer.shutdown()

        env.run(until=env.process(main()))

        stats = tracer.stats
        accepted = stats.produced
        # Exactly-once: every accepted record is indexed exactly once.
        assert inner.count("dio_trace") == accepted
        assert stats.shipped == accepted
        assert stats.spill_pending == 0
        assert stats.staged_records == 0
        assert tracer.ring.pending_records() == 0
        # Whatever went through the WAL came back out of it.
        assert stats.replayed_records == stats.spilled_records
        # The store saw one document per distinct (tid, enter-time)
        # pair — a duplicate replay would collide here.
        hits = inner.search("dio_trace", size=None)["hits"]["hits"]
        keys = {(h["_source"]["tid"], h["_source"]["time"],
                 h["_source"]["syscall"]) for h in hits}
        assert len(keys) == accepted

    @given(plan_seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=10, deadline=None)
    def test_same_seed_same_outcome(self, plan_seed):
        def run():
            env = Environment()
            kernel = Kernel(env, ncpus=2)
            inner = DocumentStore()
            plan = FaultPlan.seeded(plan_seed, horizon_ns=40 * MS,
                                    outages=2, mean_outage_ns=8 * MS)
            faulty = FaultyStore(inner, plan, clock=lambda: env.now)
            tracer = DIOTracer(env, kernel, faulty,
                               TracerConfig(ship_max_retries=2,
                                            ship_retry_backoff_ns=500_000,
                                            breaker_recovery_ns=3 * MS,
                                            resilience_seed=plan_seed))
            task = kernel.spawn_process("wl").threads[0]
            tracer.attach()

            def main():
                yield from sequential_writer(kernel, task, "/a",
                                             total_bytes=32 * 1024)
                yield from tracer.shutdown()

            env.run(until=env.process(main()))
            stats = tracer.stats
            return (env.now, stats.produced, stats.shipped,
                    stats.ship_retries, stats.bulk_attempts,
                    stats.spilled_records, stats.replayed_records,
                    dict(faulty.injected))

        assert run() == run()
