"""Edge cases for the blame and compare analyses.

These are the degenerate inputs the case-study tests never hit: empty
latency series, sessions that touch disjoint files, and single-event
sessions.
"""

import pytest

from repro.analysis.blame import (SpikeBlame, ThreadActivity, blame_spikes,
                                  render_blame)
from repro.analysis.compare import compare_sessions, session_fingerprint
from repro.analysis.dfg import compare_session_dfgs
from repro.backend import DocumentStore

MS = 1_000_000


def event(syscall, time, proc="p", tid=1, ret=0, session="s", path=None,
          offset=None):
    doc = {"syscall": syscall, "time": time, "proc_name": proc,
           "pid": 1, "tid": tid, "ret": ret, "session": session}
    if path is not None:
        doc["file_path"] = path
    if offset is not None:
        doc["offset"] = offset
    return doc


class TestBlameEdgeCases:
    def test_no_operations_no_spikes(self):
        assert blame_spikes(DocumentStore(), [], window_ns=100 * MS) == []

    def test_render_empty_report(self):
        assert render_blame([]) == "no latency spikes detected"

    def test_uniform_latency_has_no_spikes(self):
        store = DocumentStore()
        store.bulk("dio_trace", [event("read", i * MS, ret=512)
                                 for i in range(100)])
        operations = [(i * MS, 2 * MS, "read", 1) for i in range(100)]
        assert blame_spikes(store, operations, window_ns=10 * MS) == []

    def test_spike_window_with_no_trace_activity(self):
        # A spike over an empty store: blame report exists, but names
        # nobody — the analysis must not crash on missing activity.
        operations = [(i * MS, 1 * MS, "read", 1) for i in range(90)]
        operations += [(95 * MS, 500 * MS, "read", 1)]
        store = DocumentStore()
        store.bulk("dio_trace", [event("read", 10_000 * MS, ret=512)])
        reports = blame_spikes(store, operations, window_ns=10 * MS)
        assert len(reports) == 1
        assert reports[0].background == []
        assert reports[0].client_syscalls == 0
        assert reports[0].top_culprits() == []

    def test_render_spike_without_culprits(self):
        report = SpikeBlame(window_start_ns=90 * MS, p99_ns=500.0 * MS,
                            background=[], client_syscalls=0)
        text = render_blame([report])
        assert "spike @ 90 ms" in text
        assert "0 background threads" in text

    def test_top_culprits_ranked_by_bytes(self):
        report = SpikeBlame(
            window_start_ns=0, p99_ns=1.0,
            background=[ThreadActivity("heavy", 2, 1, 9000),
                        ThreadActivity("light", 3, 50, 10)],
            client_syscalls=1)
        assert report.top_culprits(1) == ["heavy"]


class TestCompareEdgeCases:
    def test_single_event_sessions_identical(self):
        store = DocumentStore()
        store.bulk("dio_trace", [event("read", 1, session="x", ret=4),
                                 event("read", 1, session="y", ret=4)])
        comparison = compare_sessions(store, "x", "y")
        assert comparison.behaviorally_identical
        assert comparison.common_prefix == 1
        assert comparison.syscall_deltas == {}

    def test_single_event_sessions_differ(self):
        store = DocumentStore()
        store.bulk("dio_trace", [event("read", 1, session="x", ret=4),
                                 event("write", 1, session="y", ret=4)])
        comparison = compare_sessions(store, "x", "y")
        assert not comparison.behaviorally_identical
        assert comparison.divergence.position == 0
        assert "read" in comparison.divergence.describe()
        assert "write" in comparison.divergence.describe()

    def test_empty_vs_nonempty_session(self):
        store = DocumentStore()
        store.bulk("dio_trace", [event("read", 1, session="x", ret=4)])
        comparison = compare_sessions(store, "missing", "x")
        assert not comparison.behaviorally_identical
        assert comparison.common_prefix == 0
        assert comparison.divergence.event_a is None
        assert "(sequence ended)" in comparison.divergence.describe()

    def test_zero_overlapping_files(self):
        # Two sessions touching disjoint files: behaviourally identical
        # under normalization (same syscall/ret shape), but the
        # file-class DFG comparison separates them.
        store = DocumentStore()
        store.bulk("dio_trace", [
            event("write", 1, session="x", path="/a.log", ret=10),
            event("write", 2, session="x", path="/a.log", ret=10),
            event("write", 1, session="y", path="/b.sst", ret=10),
            event("write", 2, session="y", path="/b.sst", ret=10),
        ])
        comparison = compare_sessions(store, "x", "y")
        assert comparison.behaviorally_identical
        dfg = compare_session_dfgs(store, "x", "y",
                                   node_mode="syscall_fileclass")
        assert dfg.distance == pytest.approx(1.0)

    def test_fingerprint_of_missing_session_is_empty(self):
        store = DocumentStore()
        store.bulk("dio_trace", [event("read", 1, session="real", ret=4)])
        fingerprint = session_fingerprint(store, "ghost")
        assert fingerprint["events"] == 0
        assert fingerprint["by_syscall"] == {}
        assert fingerprint["failed_syscalls"] == 0

    def test_renamed_threads_still_align(self):
        store = DocumentStore()
        store.bulk("dio_trace", [
            event("open", 1, session="x", proc="fluent-bit", ret=3),
            event("open", 1, session="y", proc="flb-pipeline", ret=3),
        ])
        comparison = compare_sessions(store, "x", "y")
        assert comparison.behaviorally_identical
