"""Tests for post-mortem session storage and session comparison."""

import json

import pytest

from repro.analysis.compare import compare_sessions, session_fingerprint
from repro.apps.fluentbit import FLUENTBIT_BUGGY, FLUENTBIT_FIXED
from repro.backend import DocumentStore
from repro.backend.persistence import (SessionError, delete_session,
                                       export_session, import_session,
                                       list_sessions)
from repro.experiments import run_fluentbit_case


def seed_two_sessions(store):
    store.bulk("dio_trace", [
        {"syscall": "openat", "proc_name": "app", "pid": 1, "tid": 1,
         "ret": 3, "time": 10, "session": "s1",
         "args": {"path": "/a"}, "file_tag": "7 3 10"},
        {"syscall": "write", "proc_name": "app", "pid": 1, "tid": 1,
         "ret": 26, "time": 20, "offset": 0, "session": "s1",
         "file_tag": "7 3 10"},
        {"syscall": "openat", "proc_name": "app", "pid": 2, "tid": 2,
         "ret": 3, "time": 15, "session": "s2",
         "args": {"path": "/a"}, "file_tag": "7 3 15"},
        {"syscall": "write", "proc_name": "app", "pid": 2, "tid": 2,
         "ret": 16, "time": 25, "offset": 0, "session": "s2",
         "file_tag": "7 3 15"},
        {"syscall": "close", "proc_name": "app", "pid": 2, "tid": 2,
         "ret": 0, "time": 30, "session": "s2", "file_tag": "7 3 15"},
    ])


class TestSessionListing:
    def test_summaries(self):
        store = DocumentStore()
        seed_two_sessions(store)
        sessions = {s["session"]: s for s in list_sessions(store)}
        assert sessions["s1"]["events"] == 2
        assert sessions["s2"]["events"] == 3
        assert sessions["s1"]["first_ns"] == 10
        assert sessions["s1"]["last_ns"] == 20
        assert sessions["s2"]["processes"] == ["app"]

    def test_missing_index_raises(self):
        with pytest.raises(SessionError):
            list_sessions(DocumentStore(), index="nope")


class TestExportImport:
    def test_roundtrip(self, tmp_path):
        store = DocumentStore()
        seed_two_sessions(store)
        path = tmp_path / "s1.jsonl"
        assert export_session(store, "s1", path) == 2

        fresh = DocumentStore()
        name = import_session(fresh, path)
        assert name == "s1"
        hits = fresh.search("dio_trace", sort=["time"],
                            size=None)["hits"]["hits"]
        assert [h["_source"]["syscall"] for h in hits] == ["openat", "write"]

    def test_roundtrip_preserves_documents_exactly(self, tmp_path):
        """Compact data lines re-import to identical docs."""
        store = DocumentStore()
        seed_two_sessions(store)
        path = tmp_path / "s1.jsonl"
        export_session(store, "s1", path)
        originals = [h["_source"] for h in store.search(
            "dio_trace", query={"term": {"session": "s1"}},
            sort=["time"], size=None)["hits"]["hits"]]

        fresh = DocumentStore()
        import_session(fresh, path)
        reloaded = [h["_source"] for h in fresh.search(
            "dio_trace", sort=["time"], size=None)["hits"]["hits"]]
        assert reloaded == originals

    def test_export_format_compact_data_sorted_header(self, tmp_path):
        """Header keeps sorted keys (stable diffs); data lines are
        compact and keep document key order."""
        store = DocumentStore()
        seed_two_sessions(store)
        path = tmp_path / "s1.jsonl"
        export_session(store, "s1", path)
        header, *data = path.read_text().splitlines()
        assert json.loads(header) == json.loads(
            json.dumps(json.loads(header), sort_keys=True))
        assert list(json.loads(header)) == sorted(json.loads(header))
        for line in data:
            doc = json.loads(line)
            assert line == json.dumps(doc, separators=(",", ":"))

    def test_import_with_rename(self, tmp_path):
        store = DocumentStore()
        seed_two_sessions(store)
        path = tmp_path / "s1.jsonl"
        export_session(store, "s1", path)
        import_session(store, path, rename_to="s1-copy")
        sessions = {s["session"] for s in list_sessions(store)}
        assert "s1-copy" in sessions
        assert store.count("dio_trace", {"term": {"session": "s1-copy"}}) == 2

    def test_export_unknown_session(self, tmp_path):
        store = DocumentStore()
        seed_two_sessions(store)
        with pytest.raises(SessionError):
            export_session(store, "ghost", tmp_path / "x.jsonl")

    def test_import_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(SessionError):
            import_session(DocumentStore(), path)

    def test_import_rejects_truncated_file(self, tmp_path):
        store = DocumentStore()
        seed_two_sessions(store)
        path = tmp_path / "s2.jsonl"
        export_session(store, "s2", path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(SessionError):
            import_session(DocumentStore(), path)

    def test_delete_session(self):
        store = DocumentStore()
        seed_two_sessions(store)
        assert delete_session(store, "s1") == 2
        assert store.count("dio_trace",
                           {"term": {"session": "s1"}}) == 0
        assert store.count("dio_trace",
                           {"term": {"session": "s2"}}) == 3


class TestFingerprints:
    def test_fingerprint_fields(self):
        store = DocumentStore()
        seed_two_sessions(store)
        fp = session_fingerprint(store, "s2")
        assert fp["events"] == 3
        assert fp["by_syscall"] == {"openat": 1, "write": 1, "close": 1}
        assert fp["failed_syscalls"] == 0


class TestSessionComparison:
    def test_identical_sessions(self):
        store = DocumentStore()
        seed_two_sessions(store)
        # Compare s1 with a renamed copy of itself.
        import tempfile, pathlib
        with tempfile.TemporaryDirectory() as tmp:
            path = pathlib.Path(tmp) / "s1.jsonl"
            export_session(store, "s1", path)
            import_session(store, path, rename_to="s1b")
        comparison = compare_sessions(store, "s1", "s1b")
        assert comparison.behaviorally_identical
        assert comparison.syscall_deltas == {}

    def test_divergence_position_and_delta(self):
        store = DocumentStore()
        seed_two_sessions(store)
        comparison = compare_sessions(store, "s1", "s2")
        # Same openat, then write 26 vs write 16 -> diverge at step 1.
        assert comparison.common_prefix == 1
        assert comparison.divergence.position == 1
        assert comparison.divergence.event_a["ret"] == 26
        assert comparison.divergence.event_b["ret"] == 16
        assert comparison.syscall_deltas == {"close": 1}
        assert "write = 26" in comparison.divergence.describe()

    def test_fluentbit_versions_diverge_at_the_stale_lseek(self):
        """The paper's Fig. 2a-vs-2b comparison, automated end to end."""
        store = DocumentStore()
        for version in (FLUENTBIT_BUGGY, FLUENTBIT_FIXED):
            case = run_fluentbit_case(version)
            import tempfile, pathlib
            with tempfile.TemporaryDirectory() as tmp:
                path = pathlib.Path(tmp) / "s.jsonl"
                export_session(case.store, f"fluentbit-{version}", path)
                import_session(store, path)
        comparison = compare_sessions(
            store, f"fluentbit-{FLUENTBIT_BUGGY}",
            f"fluentbit-{FLUENTBIT_FIXED}")
        assert not comparison.behaviorally_identical
        # The buggy trace's divergent event is the stale lseek to 26.
        assert comparison.divergence.event_a["syscall"] == "lseek"
        assert comparison.divergence.event_a["ret"] == 26
        # The fixed trace reads the 16 new bytes at that step instead.
        assert comparison.divergence.event_b["syscall"] == "read"
        assert comparison.divergence.event_b["ret"] == 16
