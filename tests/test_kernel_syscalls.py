"""Integration tests for the syscall layer on the simulated kernel."""

import pytest

from repro.kernel import (Kernel, O_APPEND, O_CREAT, O_EXCL, O_RDONLY,
                          O_RDWR, O_TRUNC, O_WRONLY, SEEK_CUR, SEEK_END,
                          SEEK_SET, SYSCALLS)
from repro.kernel.errno import Errno
from repro.kernel.syscalls import (ALL_SYSCALLS, DATA_SYSCALLS,
                                   DIRECTORY_SYSCALLS, METADATA_SYSCALLS,
                                   S_IFIFO, S_IFSOCK, URING_SYSCALLS,
                                   XATTR_SYSCALLS, AT_REMOVEDIR,
                                   syscall_category)
from repro.sim import Environment


@pytest.fixture()
def setup():
    env = Environment()
    kernel = Kernel(env)
    process = kernel.spawn_process("testapp")
    return env, kernel, process.threads[0]


def run(env, gen):
    """Drive a syscall generator to completion, returning its value."""
    return env.run(until=env.process(gen))


class TestTableISyscallSet:
    def test_exactly_42_syscalls(self):
        assert len(SYSCALLS) == 42

    def test_category_partition(self):
        assert len(DATA_SYSCALLS) == 6
        assert len(METADATA_SYSCALLS) == 19
        assert len(XATTR_SYSCALLS) == 12
        assert len(DIRECTORY_SYSCALLS) == 5

    def test_categories_are_disjoint(self):
        total = (len(DATA_SYSCALLS) + len(METADATA_SYSCALLS)
                 + len(XATTR_SYSCALLS) + len(DIRECTORY_SYSCALLS))
        assert total == len(SYSCALLS)

    def test_category_lookup(self):
        assert syscall_category("read") == "data"
        assert syscall_category("stat") == "metadata"
        assert syscall_category("getxattr") == "extended attributes"
        assert syscall_category("mkdir") == "directory management"
        assert syscall_category("io_uring_enter") == "io_uring"
        with pytest.raises(ValueError):
            syscall_category("clone")

    def test_uring_surface_kept_outside_table1(self):
        # Table I stays at 42: the ring control syscalls live in their
        # own set so classic-set consumers (and anything seeded from
        # it) are unchanged.
        assert len(URING_SYSCALLS) == 3
        assert not URING_SYSCALLS & SYSCALLS
        assert ALL_SYSCALLS == SYSCALLS | URING_SYSCALLS

    def test_every_syscall_has_an_implementation(self):
        env = Environment()
        kernel = Kernel(env)
        for name in ALL_SYSCALLS:
            assert hasattr(kernel, f"_sys_{name}"), name

    def test_unknown_syscall_rejected(self, setup):
        env, kernel, task = setup
        with pytest.raises(ValueError):
            next(kernel.syscall(task, "execve"))


class TestOpenClose:
    def test_open_create_write_read(self, setup):
        env, kernel, task = setup

        def scenario():
            fd = yield from kernel.syscall(
                task, "open", path="/f", flags=O_CREAT | O_RDWR)
            assert fd >= 3
            n = yield from kernel.syscall(task, "write", fd=fd, data=b"hello")
            assert n == 5
            yield from kernel.syscall(task, "lseek", fd=fd, offset=0,
                                      whence=SEEK_SET)
            buf = bytearray(16)
            n = yield from kernel.syscall(task, "read", fd=fd, buf=buf)
            assert n == 5
            assert bytes(buf[:n]) == b"hello"
            ret = yield from kernel.syscall(task, "close", fd=fd)
            assert ret == 0

        run(env, scenario())

    def test_open_missing_returns_negative_enoent(self, setup):
        env, kernel, task = setup

        def scenario():
            ret = yield from kernel.syscall(task, "open", path="/missing",
                                            flags=O_RDONLY)
            assert ret == -int(Errno.ENOENT)

        run(env, scenario())

    def test_open_excl_on_existing(self, setup):
        env, kernel, task = setup

        def scenario():
            yield from kernel.syscall(task, "open", path="/f",
                                      flags=O_CREAT | O_WRONLY)
            ret = yield from kernel.syscall(
                task, "open", path="/f", flags=O_CREAT | O_EXCL | O_WRONLY)
            assert ret == -int(Errno.EEXIST)

        run(env, scenario())

    def test_open_trunc_clears_content(self, setup):
        env, kernel, task = setup

        def scenario():
            fd = yield from kernel.syscall(task, "open", path="/f",
                                           flags=O_CREAT | O_WRONLY)
            yield from kernel.syscall(task, "write", fd=fd, data=b"content")
            yield from kernel.syscall(task, "close", fd=fd)
            fd = yield from kernel.syscall(task, "open", path="/f",
                                           flags=O_WRONLY | O_TRUNC)
            yield from kernel.syscall(task, "close", fd=fd)
            st = {}
            yield from kernel.syscall(task, "stat", path="/f", statbuf=st)
            assert st["st_size"] == 0

        run(env, scenario())

    def test_close_bad_fd(self, setup):
        env, kernel, task = setup

        def scenario():
            ret = yield from kernel.syscall(task, "close", fd=99)
            assert ret == -int(Errno.EBADF)

        run(env, scenario())

    def test_creat_equivalent_to_open_trunc(self, setup):
        env, kernel, task = setup

        def scenario():
            fd = yield from kernel.syscall(task, "creat", path="/f")
            n = yield from kernel.syscall(task, "write", fd=fd, data=b"x")
            assert n == 1

        run(env, scenario())

    def test_lowest_free_fd_reused(self, setup):
        env, kernel, task = setup

        def scenario():
            fd1 = yield from kernel.syscall(task, "open", path="/a",
                                            flags=O_CREAT | O_WRONLY)
            fd2 = yield from kernel.syscall(task, "open", path="/b",
                                            flags=O_CREAT | O_WRONLY)
            yield from kernel.syscall(task, "close", fd=fd1)
            fd3 = yield from kernel.syscall(task, "open", path="/c",
                                            flags=O_CREAT | O_WRONLY)
            assert fd3 == fd1
            assert fd2 != fd3

        run(env, scenario())


class TestReadWriteOffsets:
    def test_sequential_reads_advance_offset(self, setup):
        env, kernel, task = setup

        def scenario():
            fd = yield from kernel.syscall(task, "open", path="/f",
                                           flags=O_CREAT | O_RDWR)
            yield from kernel.syscall(task, "write", fd=fd, data=b"abcdef")
            yield from kernel.syscall(task, "lseek", fd=fd, offset=0,
                                      whence=SEEK_SET)
            buf = bytearray(3)
            yield from kernel.syscall(task, "read", fd=fd, buf=buf)
            assert bytes(buf) == b"abc"
            yield from kernel.syscall(task, "read", fd=fd, buf=buf)
            assert bytes(buf) == b"def"
            n = yield from kernel.syscall(task, "read", fd=fd, buf=buf)
            assert n == 0  # EOF

        run(env, scenario())

    def test_pread_pwrite_do_not_move_offset(self, setup):
        env, kernel, task = setup

        def scenario():
            fd = yield from kernel.syscall(task, "open", path="/f",
                                           flags=O_CREAT | O_RDWR)
            yield from kernel.syscall(task, "pwrite64", fd=fd,
                                      data=b"0123456789", offset=0)
            buf = bytearray(4)
            n = yield from kernel.syscall(task, "pread64", fd=fd, buf=buf,
                                          offset=6)
            assert n == 4
            assert bytes(buf) == b"6789"
            pos = yield from kernel.syscall(task, "lseek", fd=fd, offset=0,
                                            whence=SEEK_CUR)
            assert pos == 0

        run(env, scenario())

    def test_append_mode_writes_at_end(self, setup):
        env, kernel, task = setup

        def scenario():
            fd = yield from kernel.syscall(task, "open", path="/f",
                                           flags=O_CREAT | O_WRONLY)
            yield from kernel.syscall(task, "write", fd=fd, data=b"base")
            yield from kernel.syscall(task, "close", fd=fd)
            fd = yield from kernel.syscall(task, "open", path="/f",
                                           flags=O_WRONLY | O_APPEND)
            yield from kernel.syscall(task, "write", fd=fd, data=b"+tail")
            st = {}
            yield from kernel.syscall(task, "fstat", fd=fd, statbuf=st)
            assert st["st_size"] == 9

        run(env, scenario())

    def test_writev_readv(self, setup):
        env, kernel, task = setup

        def scenario():
            fd = yield from kernel.syscall(task, "open", path="/f",
                                           flags=O_CREAT | O_RDWR)
            n = yield from kernel.syscall(task, "writev", fd=fd,
                                          datas=[b"ab", b"cd", b"ef"])
            assert n == 6
            yield from kernel.syscall(task, "lseek", fd=fd, offset=0,
                                      whence=SEEK_SET)
            bufs = [bytearray(2), bytearray(2)]
            n = yield from kernel.syscall(task, "readv", fd=fd, bufs=bufs)
            assert n == 4
            assert bytes(bufs[0]) == b"ab"
            assert bytes(bufs[1]) == b"cd"

        run(env, scenario())

    def test_write_to_readonly_fd(self, setup):
        env, kernel, task = setup

        def scenario():
            yield from kernel.syscall(task, "creat", path="/f")
            fd = yield from kernel.syscall(task, "open", path="/f",
                                           flags=O_RDONLY)
            ret = yield from kernel.syscall(task, "write", fd=fd, data=b"x")
            assert ret == -int(Errno.EBADF)

        run(env, scenario())

    def test_lseek_whences(self, setup):
        env, kernel, task = setup

        def scenario():
            fd = yield from kernel.syscall(task, "open", path="/f",
                                           flags=O_CREAT | O_RDWR)
            yield from kernel.syscall(task, "write", fd=fd, data=b"0123456789")
            pos = yield from kernel.syscall(task, "lseek", fd=fd, offset=2,
                                            whence=SEEK_SET)
            assert pos == 2
            pos = yield from kernel.syscall(task, "lseek", fd=fd, offset=3,
                                            whence=SEEK_CUR)
            assert pos == 5
            pos = yield from kernel.syscall(task, "lseek", fd=fd, offset=-1,
                                            whence=SEEK_END)
            assert pos == 9
            ret = yield from kernel.syscall(task, "lseek", fd=fd, offset=-100,
                                            whence=SEEK_SET)
            assert ret == -int(Errno.EINVAL)

        run(env, scenario())


class TestMetadataSyscalls:
    def test_stat_reports_identity_and_size(self, setup):
        env, kernel, task = setup

        def scenario():
            fd = yield from kernel.syscall(task, "open", path="/f",
                                           flags=O_CREAT | O_WRONLY)
            yield from kernel.syscall(task, "write", fd=fd, data=b"12345")
            st = {}
            yield from kernel.syscall(task, "stat", path="/f", statbuf=st)
            assert st["st_size"] == 5
            assert st["st_dev"] == kernel.vfs.dev
            assert st["st_file_type"] == "regular"

        run(env, scenario())

    def test_rename_and_unlink(self, setup):
        env, kernel, task = setup

        def scenario():
            yield from kernel.syscall(task, "creat", path="/old")
            ret = yield from kernel.syscall(task, "rename", oldpath="/old",
                                            newpath="/new")
            assert ret == 0
            ret = yield from kernel.syscall(task, "unlink", path="/new")
            assert ret == 0
            ret = yield from kernel.syscall(task, "unlink", path="/new")
            assert ret == -int(Errno.ENOENT)

        run(env, scenario())

    def test_unlinkat_removedir(self, setup):
        env, kernel, task = setup

        def scenario():
            yield from kernel.syscall(task, "mkdir", path="/d")
            ret = yield from kernel.syscall(task, "unlinkat", path="/d",
                                            flags=AT_REMOVEDIR)
            assert ret == 0
            st = {}
            ret = yield from kernel.syscall(task, "stat", path="/d", statbuf=st)
            assert ret == -int(Errno.ENOENT)

        run(env, scenario())

    def test_truncate_and_ftruncate(self, setup):
        env, kernel, task = setup

        def scenario():
            fd = yield from kernel.syscall(task, "open", path="/f",
                                           flags=O_CREAT | O_RDWR)
            yield from kernel.syscall(task, "write", fd=fd, data=b"0123456789")
            yield from kernel.syscall(task, "ftruncate", fd=fd, length=4)
            st = {}
            yield from kernel.syscall(task, "fstat", fd=fd, statbuf=st)
            assert st["st_size"] == 4
            yield from kernel.syscall(task, "truncate", path="/f", length=8)
            yield from kernel.syscall(task, "stat", path="/f", statbuf=st)
            assert st["st_size"] == 8

        run(env, scenario())

    def test_fsync_writes_back_dirty_blocks(self, setup):
        env, kernel, task = setup

        def scenario():
            fd = yield from kernel.syscall(task, "open", path="/f",
                                           flags=O_CREAT | O_WRONLY)
            yield from kernel.syscall(task, "write", fd=fd,
                                      data=b"x" * 10000)
            before = kernel.cache.dirty_blocks()
            assert before > 0
            yield from kernel.syscall(task, "fsync", fd=fd)
            assert kernel.cache.dirty_blocks() == 0

        run(env, scenario())
        assert kernel.device.stats.bytes_written > 0

    def test_fstatfs(self, setup):
        env, kernel, task = setup

        def scenario():
            fd = yield from kernel.syscall(task, "creat", path="/f")
            st = {}
            ret = yield from kernel.syscall(task, "fstatfs", fd=fd, statbuf=st)
            assert ret == 0
            assert st["f_bsize"] == 4096

        run(env, scenario())


class TestXattrs:
    def test_set_get_list_remove(self, setup):
        env, kernel, task = setup

        def scenario():
            yield from kernel.syscall(task, "creat", path="/f")
            ret = yield from kernel.syscall(task, "setxattr", path="/f",
                                            name="user.tag", value=b"v1")
            assert ret == 0
            buf = bytearray(16)
            size = yield from kernel.syscall(task, "getxattr", path="/f",
                                             name="user.tag", buf=buf)
            assert bytes(buf[:size]) == b"v1"
            listing = bytearray(64)
            size = yield from kernel.syscall(task, "listxattr", path="/f",
                                             buf=listing)
            assert b"user.tag" in bytes(listing[:size])
            ret = yield from kernel.syscall(task, "removexattr", path="/f",
                                            name="user.tag")
            assert ret == 0
            ret = yield from kernel.syscall(task, "getxattr", path="/f",
                                            name="user.tag")
            assert ret == -int(Errno.ENODATA)

        run(env, scenario())

    def test_fd_variants(self, setup):
        env, kernel, task = setup

        def scenario():
            fd = yield from kernel.syscall(task, "creat", path="/f")
            yield from kernel.syscall(task, "fsetxattr", fd=fd,
                                      name="user.k", value=b"val")
            buf = bytearray(8)
            size = yield from kernel.syscall(task, "fgetxattr", fd=fd,
                                             name="user.k", buf=buf)
            assert bytes(buf[:size]) == b"val"
            size = yield from kernel.syscall(task, "flistxattr", fd=fd,
                                             buf=bytearray(64))
            assert size > 0
            ret = yield from kernel.syscall(task, "fremovexattr", fd=fd,
                                            name="user.k")
            assert ret == 0

        run(env, scenario())

    def test_symlink_variants_do_not_follow(self, setup):
        env, kernel, task = setup
        kernel.vfs.create("/real")
        kernel.vfs.symlink("/real", "/lnk")

        def scenario():
            yield from kernel.syscall(task, "lsetxattr", path="/lnk",
                                      name="user.on_link", value=b"1")
            # Following getxattr must NOT see the link's attribute.
            ret = yield from kernel.syscall(task, "getxattr", path="/lnk",
                                            name="user.on_link")
            assert ret == -int(Errno.ENODATA)
            size = yield from kernel.syscall(task, "lgetxattr", path="/lnk",
                                             name="user.on_link")
            assert size == 1
            yield from kernel.syscall(task, "llistxattr", path="/lnk",
                                      buf=bytearray(64))
            ret = yield from kernel.syscall(task, "lremovexattr", path="/lnk",
                                            name="user.on_link")
            assert ret == 0

        run(env, scenario())


class TestDirectoryManagement:
    def test_mkdir_mkdirat_rmdir(self, setup):
        env, kernel, task = setup

        def scenario():
            ret = yield from kernel.syscall(task, "mkdir", path="/d1")
            assert ret == 0
            ret = yield from kernel.syscall(task, "mkdirat", path="/d1/d2")
            assert ret == 0
            ret = yield from kernel.syscall(task, "rmdir", path="/d1")
            assert ret == -int(Errno.ENOTEMPTY)
            yield from kernel.syscall(task, "rmdir", path="/d1/d2")
            ret = yield from kernel.syscall(task, "rmdir", path="/d1")
            assert ret == 0

        run(env, scenario())

    def test_mknod_creates_special_files(self, setup):
        env, kernel, task = setup

        def scenario():
            ret = yield from kernel.syscall(task, "mknod", path="/fifo",
                                            mode=S_IFIFO)
            assert ret == 0
            ret = yield from kernel.syscall(task, "mknodat", path="/sock",
                                            mode=S_IFSOCK)
            assert ret == 0
            st = {}
            yield from kernel.syscall(task, "stat", path="/fifo", statbuf=st)
            assert st["st_file_type"] == "pipe"
            yield from kernel.syscall(task, "stat", path="/sock", statbuf=st)
            assert st["st_file_type"] == "socket"

        run(env, scenario())


class TestTimeAccounting:
    def test_syscalls_consume_virtual_time(self, setup):
        env, kernel, task = setup

        def scenario():
            yield from kernel.syscall(task, "creat", path="/f")

        run(env, scenario())
        assert env.now > 0

    def test_disk_io_slower_than_cache_hit(self, setup):
        env, kernel, task = setup
        durations = {}

        def scenario():
            fd = yield from kernel.syscall(task, "open", path="/f",
                                           flags=O_CREAT | O_RDWR)
            yield from kernel.syscall(task, "write", fd=fd, data=b"z" * 65536)
            yield from kernel.syscall(task, "fsync", fd=fd)
            # Cache hit: blocks were just written.
            start = env.now
            buf = bytearray(65536)
            yield from kernel.syscall(task, "pread64", fd=fd, buf=buf, offset=0)
            durations["hit"] = env.now - start
            # Force misses by dropping the inode's cached blocks.
            kernel.cache.drop_inode(kernel.vfs.resolve("/f").ino)
            start = env.now
            yield from kernel.syscall(task, "pread64", fd=fd, buf=buf, offset=0)
            durations["miss"] = env.now - start

        run(env, scenario())
        assert durations["miss"] > durations["hit"] * 2

    def test_syscall_counts_recorded(self, setup):
        env, kernel, task = setup

        def scenario():
            fd = yield from kernel.syscall(task, "creat", path="/f")
            yield from kernel.syscall(task, "write", fd=fd, data=b"a")
            yield from kernel.syscall(task, "write", fd=fd, data=b"b")

        run(env, scenario())
        assert kernel.syscall_counts["creat"] == 1
        assert kernel.syscall_counts["write"] == 2
