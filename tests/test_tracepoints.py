"""Unit tests for the tracepoint registry."""

import pytest

from repro.kernel.process import KernelProcess, Task
from repro.kernel.tracepoints import SyscallContext, TracepointRegistry


def make_ctx(name="read"):
    process = KernelProcess(pid=1, name="p")
    task = Task(tid=2, process=process, comm="p")
    return SyscallContext(name, task, {"fd": 3}, enter_ns=10)


class TestRegistry:
    def test_handlers_fire_in_attach_order(self):
        registry = TracepointRegistry()
        order = []
        registry.attach_enter("read", lambda ctx: order.append("a"))
        registry.attach_enter("read", lambda ctx: order.append("b"))
        registry.fire_enter(make_ctx())
        assert order == ["a", "b"]

    def test_costs_sum_and_none_is_free(self):
        registry = TracepointRegistry()
        registry.attach_exit("read", lambda ctx: 100)
        registry.attach_exit("read", lambda ctx: None)
        registry.attach_exit("read", lambda ctx: 250)
        assert registry.fire_exit(make_ctx()) == 350

    def test_per_syscall_isolation(self):
        registry = TracepointRegistry()
        registry.attach_enter("read", lambda ctx: 100)
        assert registry.fire_enter(make_ctx("write")) == 0
        assert registry.fire_enter(make_ctx("read")) == 100

    def test_detach_specific_handler(self):
        registry = TracepointRegistry()
        h1 = lambda ctx: 1
        h2 = lambda ctx: 2
        registry.attach_enter("read", h1)
        registry.attach_enter("read", h2)
        registry.detach_enter("read", h1)
        assert registry.fire_enter(make_ctx()) == 2

    def test_detach_missing_raises(self):
        registry = TracepointRegistry()
        with pytest.raises(ValueError):
            registry.detach_enter("read", lambda ctx: 0)

    def test_detach_all_and_introspection(self):
        registry = TracepointRegistry()
        registry.attach_enter("read", lambda ctx: 0)
        registry.attach_exit("write", lambda ctx: 0)
        assert registry.attached_syscalls() == {"read", "write"}
        assert registry.has_handlers("read")
        assert not registry.has_handlers("open")
        registry.detach_all()
        assert registry.attached_syscalls() == set()

    def test_context_exposes_task_fields(self):
        ctx = make_ctx()
        assert ctx.pid == 1
        assert ctx.tid == 2
        assert ctx.comm == "p"
        assert ctx.retval is None
        assert ctx.exit_ns is None
