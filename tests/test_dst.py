"""The DST harness: determinism, invariants, mutation kill, corpus.

Three kinds of evidence that the harness works:

- **self-tests** — seeded scenarios run clean through the full
  pipeline and the harness's own determinism check (same seed →
  byte-identical digest) holds;
- **mutation smoke** — an artificially injected store/pipeline bug is
  caught by the invariants, proving the oracle actually bites;
- **corpus regression** — every minimised scenario under
  ``tests/corpus/`` replays clean on every run.
"""

import json
from pathlib import Path

import pytest

from repro.backend.store import DocumentStore
from repro.dst import Scenario, generate, run_scenario, run_seeds, shrink
from repro.dst.crash import CrashingStore
from repro.dst.runner import execute_pipeline, run_digest
from repro.faults import InjectedFault

CORPUS_DIR = Path(__file__).parent / "corpus"

#: Seeds exercised by the tier-1 smoke campaign.  Chosen to cover the
#: machinery: consumer kills, store crashes, fault windows, sampling
#: and overwrite-oldest ring policies, unicode paths (see
#: ``dio dst run --verbose`` for per-seed shapes).
SMOKE_SEEDS = (1, 3, 5, 8, 10, 12, 18, 78)


# ----------------------------------------------------------------------
# Scenario generation

def test_generate_is_deterministic():
    assert generate(42).to_json() == generate(42).to_json()


def test_generate_varies_by_seed():
    assert generate(1).to_json() != generate(2).to_json()


def test_scenario_round_trips_through_json():
    scenario = generate(7)
    clone = Scenario.from_json(scenario.to_json())
    assert clone == scenario


def test_scenario_save_load(tmp_path):
    scenario = generate(9)
    path = tmp_path / "s.json"
    scenario.save(path)
    assert Scenario.load(path) == scenario


def test_scenario_rejects_wrong_format():
    payload = generate(1).to_dict()
    payload["format"] = "something-else"
    with pytest.raises(ValueError):
        Scenario.from_dict(payload)


def test_scenario_ignores_unknown_keys():
    payload = generate(1).to_dict()
    payload["corpus_note"] = "annotation"
    assert Scenario.from_dict(payload) == generate(1)


# ----------------------------------------------------------------------
# Harness self-tests

@pytest.mark.parametrize("seed", SMOKE_SEEDS)
def test_seed_passes_full_harness(seed):
    result = run_scenario(generate(seed))
    assert result.failures == []
    assert result.events_stored > 0


def test_same_seed_runs_are_byte_identical():
    scenario = generate(11)
    runs = [execute_pipeline(scenario) for _ in range(2)]
    digests = [run_digest(run, [], []) for run in runs]
    assert digests[0] == digests[1]
    assert runs[0].docs == runs[1].docs


def test_campaign_smoke():
    campaign = run_seeds(SMOKE_SEEDS[:4])
    assert campaign.ok
    assert campaign.stats.seeds_run == 4
    summary = campaign.summary()
    assert summary["seeds_failed"] == 0
    assert summary["events_stored"] > 0


def test_campaign_counts_injections():
    # Seed 1 schedules both a consumer kill and store crashes; the
    # campaign stats must see them.
    campaign = run_seeds([1])
    assert campaign.stats.consumer_crashes_injected >= 1
    assert campaign.stats.store_crashes_injected >= 1


# ----------------------------------------------------------------------
# Mutation smoke: the harness must catch injected bugs

def _sequential_writer_scenario() -> Scenario:
    from repro.kernel.syscalls import O_CREAT, O_WRONLY

    ops = [{"sc": "open", "p": 0, "fl": O_CREAT | O_WRONLY}]
    ops += [{"sc": "write", "f": 0, "n": 64, "d": 200_000}
            for _ in range(12)]
    ops += [{"sc": "close", "f": 0, "d": 200_000}]
    return Scenario(seed=990001, ncpus=1,
                    processes=[{"name": "seq-writer", "traced": True,
                                "ops": ops}])


@pytest.fixture()
def _restore_bulk():
    # Mutation tests patch ``DocumentStore.bulk`` with an injected bug.
    # Route the vectorized endpoint through the (patched) dict path for
    # the fixture's lifetime, so the bug fires whichever ingest_mode
    # the scenario generator picked.
    real = DocumentStore.bulk
    real_columnar = DocumentStore.bulk_columnar
    DocumentStore.bulk_columnar = (
        lambda self, index, batch: self.bulk(index, batch.to_docs()))
    yield real
    DocumentStore.bulk = real
    DocumentStore.bulk_columnar = real_columnar


def test_catches_store_dropping_documents(_restore_bulk):
    real_bulk = _restore_bulk

    def buggy_bulk(self, index, sources, *args, **kwargs):
        kept = [s for i, s in enumerate(sources) if i % 7 != 6]
        return real_bulk(self, index, kept, *args, **kwargs)

    DocumentStore.bulk = buggy_bulk
    result = run_scenario(generate(1), check_determinism=False,
                          check_oracle=False)
    assert not result.ok
    assert any("conservation" in f for f in result.failures)


def test_catches_store_duplicating_documents(_restore_bulk):
    real_bulk = _restore_bulk

    def buggy_bulk(self, index, sources, *args, **kwargs):
        sources = list(sources)
        return real_bulk(self, index, sources + sources[:1],
                         *args, **kwargs)

    DocumentStore.bulk = buggy_bulk
    result = run_scenario(generate(1), check_determinism=False,
                          check_oracle=False)
    assert not result.ok
    assert any("conservation" in f or "duplicate" in f
               for f in result.failures)


def test_catches_store_corrupting_fields(_restore_bulk):
    real_bulk = _restore_bulk

    def buggy_bulk(self, index, sources, *args, **kwargs):
        mangled, done = [], False
        for source in sources:
            if (not done and source.get("syscall") == "write"
                    and source.get("offset") is not None):
                source = dict(source,
                              offset=source["offset"] + 10_000_000)
                done = True
            mangled.append(source)
        return real_bulk(self, index, mangled, *args, **kwargs)

    DocumentStore.bulk = buggy_bulk
    # A pure sequential writer with no seeks, crashes, or faults: the
    # monotone-offset oracle is armed and must flag the writes that
    # follow the inflated one as regressions.
    result = run_scenario(_sequential_writer_scenario(),
                          check_determinism=False)
    assert not result.ok
    assert any("offset regression" in f for f in result.failures)


def test_shrinker_minimises_a_failing_scenario(_restore_bulk):
    real_bulk = _restore_bulk

    def buggy_bulk(self, index, sources, *args, **kwargs):
        kept = [s for i, s in enumerate(sources) if i % 7 != 6]
        return real_bulk(self, index, kept, *args, **kwargs)

    DocumentStore.bulk = buggy_bulk
    outcome = shrink(generate(3), max_runs=40)
    assert outcome.still_failing
    assert outcome.final_ops < outcome.original_ops
    assert outcome.scenario.seed == 3
    # The shrunk scenario still reproduces under the bug, evaluated with
    # the same predicate the shrinker used (oracle twin on): with a
    # sharded fast run the drop bug may only be visible as a divergence
    # from the single-shard oracle, not as an invariant violation.
    assert not run_scenario(outcome.scenario, check_determinism=False).ok


def test_shrink_of_passing_scenario_reports_not_failing():
    outcome = shrink(generate(1), max_runs=4)
    assert not outcome.still_failing
    assert outcome.final_ops == outcome.original_ops


# ----------------------------------------------------------------------
# CrashingStore unit behaviour

def test_crashing_store_crashes_and_recovers():
    store = DocumentStore()
    crashing = CrashingStore(
        store, [{"after_bulks": 2, "torn_frac": 0.5}])
    crashing.ensure_index("idx", indexed_fields=("a",))
    assert crashing.bulk("idx", [{"a": 1}, {"a": 2}]) == 2
    with pytest.raises(InjectedFault):
        crashing.bulk("idx", [{"a": 3}])
    # The torn bulk was not applied; the journal rebuild reproduced
    # the pre-crash state exactly.
    assert store.count("idx") == 2
    assert crashing.crashes_total == 1
    assert crashing.rebuilds_consistent
    report = crashing.recovery_reports[0]
    assert report["replayed_bulks"] == 1
    assert report["replayed_docs"] == 2
    assert report["torn_lines"] == 1
    # Retry after recovery succeeds and lands exactly once.
    assert crashing.bulk("idx", [{"a": 3}]) == 1
    assert store.count("idx") == 3


def test_crashing_store_torn_record_never_parses():
    store = DocumentStore()
    crashing = CrashingStore(store, [])
    crashing.bulk("idx", [{"k": "v"}])
    line = json.dumps({"index": "idx", "docs": [{"k": "v"}]},
                      separators=(",", ":"), sort_keys=True)
    for frac in (0.0, 0.5, 0.99, 1.0):
        blob = crashing.journal_bytes(torn_line=line, torn_frac=frac)
        tail = blob.decode("utf-8").rsplit("\n", 1)[-1]
        if tail:
            with pytest.raises(ValueError):
                json.loads(tail)


# ----------------------------------------------------------------------
# Corpus regression suite

def _corpus_files():
    return sorted(CORPUS_DIR.glob("*.json"))


def test_corpus_is_populated():
    assert len(_corpus_files()) >= 3


@pytest.mark.parametrize("path", _corpus_files(),
                         ids=lambda p: p.stem)
def test_corpus_scenario_replays_clean(path):
    scenario = Scenario.load(path)
    result = run_scenario(scenario)
    assert result.failures == []
