"""Vectorized ingest: RecordBatch lanes, bulk_columnar, lazy hydration.

The fast path's contract is *byte-identity with the legacy path
whenever it is observed*: documents a query returns, index structures,
counters, and diagnosis output must all match what per-event ``Event``
materialisation would have produced.  These are the unit-level checks;
``tests/test_ingest_differential.py`` generalises them with Hypothesis
and the DST harness runs the legacy twin as an oracle on every seed.
"""

import json

import pytest

from repro.backend import DocumentStore
from repro.kernel import Kernel, O_CREAT, O_RDWR
from repro.sim import Environment
from repro.tracer import DIOTracer, RecordBatch, TracerConfig
from repro.tracer.batch import _DictLane, _make_lane, _num_lane
from repro.tracer.events import Event, estimate_record_size

SESSION = "ingest-test"


def make_records():
    """A batch covering the lane corner cases.

    Mixed arg value types (buffers, vectors, out-params, exotica),
    optional enrichment fields present/absent, repeated and unique
    lane values.
    """
    return [
        {"syscall": "open", "args": {"path": "/data/a", "flags": 66},
         "ret": 3, "pid": 10, "tid": 10, "comm": "app",
         "enter_ns": 100, "exit_ns": 150, "file_type": "regular",
         "file_tag": "/data/a"},
        {"syscall": "write", "args": {"fd": 3, "data": b"x" * 64},
         "ret": 64, "pid": 10, "tid": 10, "comm": "app",
         "enter_ns": 200, "exit_ns": 280, "file_type": "regular",
         "offset": 0, "file_tag": "/data/a"},
        {"syscall": "writev",
         "args": {"fd": 3, "datas": [b"a" * 10, b"b" * 20]},
         "ret": 30, "pid": 10, "tid": 11, "comm": "app",
         "enter_ns": 300, "exit_ns": 420, "file_type": "regular",
         "offset": 64, "file_tag": "/data/a"},
        {"syscall": "fstat", "args": {"fd": 3, "statbuf": {"size": 94}},
         "ret": 0, "pid": 10, "tid": 10, "comm": "app",
         "enter_ns": 500, "exit_ns": 540, "file_type": "regular",
         "file_tag": "/data/a"},
        {"syscall": "stat",
         "args": {"path": "/data/b", "statbuf": {}, "weird": object()},
         "ret": -2, "pid": 11, "tid": 12, "comm": "other",
         "enter_ns": 600, "exit_ns": 610},
        {"syscall": "close", "args": {"fd": 3},
         "ret": 0, "pid": 10, "tid": 10, "comm": "app",
         "enter_ns": 700, "exit_ns": 705, "file_type": "regular",
         "file_tag": "/data/a"},
    ]


def legacy_docs(records, session=SESSION):
    """What the per-event path would ship for the same records."""
    return [Event(
        syscall=r["syscall"], args=r["args"], ret=r["ret"],
        pid=r["pid"], tid=r["tid"], proc_name=r["comm"],
        time=r["enter_ns"], time_exit=r["exit_ns"],
        file_type=r.get("file_type"), offset=r.get("offset"),
        file_tag=r.get("file_tag"), session=session,
    ).to_doc() for r in records]


# ----------------------------------------------------------------------
# RecordBatch lanes

class TestRecordBatch:
    def test_to_docs_byte_identical_to_legacy_path(self):
        records = make_records()
        batch = RecordBatch.decode(records, session=SESSION)
        expected = legacy_docs(records)
        assert batch.to_docs() == expected
        # Same key *order*, not just equal mappings.
        for got, want in zip(batch.to_docs(), expected):
            assert list(got) == list(want)
        assert len(batch) == len(records)
        assert list(batch) == expected

    def test_values_for_matches_document_reads(self):
        from repro.backend.query import get_field

        records = make_records()
        batch = RecordBatch.decode(records, session=SESSION)
        docs = legacy_docs(records)
        for field in ("syscall", "proc_name", "pid", "tid", "file_type",
                      "file_tag", "ret", "time", "time_exit",
                      "duration_ns", "offset", "session", "file_path",
                      "args.fd", "args.path"):
            assert batch.values_for(field) == [
                get_field(doc, field) for doc in docs], field

    def test_groups_cover_rows_exactly(self):
        records = make_records()
        batch = RecordBatch.decode(records, session=SESSION)
        for field in ("syscall", "proc_name", "pid", "tid", "file_type",
                      "file_tag", "session"):
            grouped = batch.groups_for(field)
            assert grouped is not None, field
            rebuilt = [None] * len(batch)
            for value, rows in grouped:
                for row in rows:
                    assert rebuilt[row] is None  # disjoint groups
                    rebuilt[row] = value
            assert rebuilt == batch.values_for(field), field

    def test_args_sanitisation_is_deferred(self):
        records = make_records()
        batch = RecordBatch.decode(records, session=SESSION)
        assert batch._args is None  # nothing sanitised at decode time
        args = batch.args()
        assert batch._args is not None
        # Buffers became sizes, vectors became counts, out-params vanished.
        assert args[1]["data"] == 64
        assert args[2]["datas"] == 30
        assert "statbuf" not in args[3]
        assert batch.args() is args  # memoised

    def test_dict_lane_rejects_cross_type_equal_values(self):
        # True == 1 and 1.0 == 1: coding them would decode a
        # different-but-equal object and break byte-identity.
        assert type(_make_lane(["a", "a", "b"])) is _DictLane
        assert type(_make_lane([1, 1, 2])) is _DictLane
        assert type(_make_lane([1, True, 2])) is list
        assert type(_make_lane([1.0, 1, 2])) is list
        assert type(_make_lane([None, "a", None])) is _DictLane

    def test_num_lane_falls_back_on_bool_and_bignum(self):
        packed = _num_lane([1, 2, 3])
        assert packed.typecode == "q"
        assert type(_num_lane([1, True, 3])) is list
        assert type(_num_lane([1, 2 ** 80, 3])) is list

    def test_decoded_bool_ret_survives_round_trip(self):
        records = make_records()
        records[0]["ret"] = True
        batch = RecordBatch.decode(records, session=SESSION)
        doc = batch.to_docs()[0]
        assert doc["ret"] is True
        assert json.dumps(doc) == json.dumps(legacy_docs(records)[0])


# ----------------------------------------------------------------------
# estimate_record_size (nested-args regression)

class TestEstimateRecordSize:
    def test_nested_dict_args_cost_nothing(self):
        # _sanitize_args drops dict-valued out-params entirely, so the
        # ring accounting must not charge for their contents — however
        # deeply nested.
        flat = estimate_record_size("fstat", {"fd": 3, "statbuf": {}})
        nested = estimate_record_size("fstat", {
            "fd": 3,
            "statbuf": {"size": 4096,
                        "times": {"atime": {"sec": 1, "nsec": 2},
                                  "mtime": [1, 2, 3, {"deep": "x" * 500}]}},
        })
        assert nested == flat

    def test_buffer_lists_collapse_to_counts(self):
        small = estimate_record_size("writev",
                                     {"fd": 3, "datas": [b"a"]})
        huge = estimate_record_size(
            "writev", {"fd": 3, "datas": [b"a" * 65536] * 64})
        assert huge == small  # both serialize as one count int

    def test_strings_and_exotics_charge_their_length(self):
        base = estimate_record_size("open", {})
        assert (estimate_record_size("open", {"path": "/abc"})
                == base + len("/abc") + 8)

        class Exotic:
            def __str__(self):
                return "EXOTIC"

        assert (estimate_record_size("open", {"w": Exotic()})
                == base + len("EXOTIC") + 8)


# ----------------------------------------------------------------------
# bulk_columnar + lazy hydration

#: The fields the tracer eagerly indexes on attach.
TRACED_FIELDS = ("syscall", "proc_name", "pid", "tid", "file_tag",
                 "session", "time")


def store_pair(records):
    """(legacy store, vectorized store) loaded with the same records."""
    legacy = DocumentStore()
    legacy.ensure_index("idx", indexed_fields=TRACED_FIELDS)
    legacy.bulk("idx", legacy_docs(records))
    vec = DocumentStore()
    vec.ensure_index("idx", indexed_fields=TRACED_FIELDS)
    vec.bulk_columnar("idx", RecordBatch.decode(records, session=SESSION))
    return legacy, vec


class TestBulkColumnar:
    def test_scan_matches_legacy_bulk(self):
        legacy, vec = store_pair(make_records())
        assert (list(vec.scan("idx", {"match_all": {}}))
                == list(legacy.scan("idx", {"match_all": {}})))

    def test_indexes_match_legacy_bulk(self):
        legacy, vec = store_pair(make_records())
        vec._indices["idx"]._flush_all_lanes()
        for field in TRACED_FIELDS:
            lhs = legacy._indices["idx"]._fields[field]
            rhs = vec._indices["idx"]._fields[field]
            assert lhs.postings == rhs.postings, field
            assert lhs.present == rhs.present, field

    def test_queries_flush_only_the_fields_they_touch(self):
        _, vec = store_pair(make_records())
        index = vec._indices["idx"]
        assert len(index._lane_backlog) == 1
        assert vec.count("idx", {"term": {"syscall": "write"}}) == 1
        assert index._lane_pos.get("syscall") == 1
        assert "time" not in index._lane_pos
        assert not index._fields["time"].postings
        # A per-document mutation is the full barrier: every field
        # catches up and the backlog drops.
        vec.index_doc("idx", {"syscall": "late", "session": SESSION})
        assert not index._lane_backlog
        assert index._fields["time"].postings

    def test_count_and_len_do_not_hydrate(self):
        vec = DocumentStore()
        vec.ensure_index("idx", indexed_fields=TRACED_FIELDS)
        vec.bulk_columnar("idx", RecordBatch.decode(make_records(),
                                                    session=SESSION))
        index = vec._indices["idx"]
        assert index.pending_docs == 6
        assert vec.count("idx") == 6
        assert len(index) == 6
        assert vec.count("idx", {"term": {"syscall": "write"}}) == 1
        assert index.pending_docs == 6  # still nothing materialised

    def test_reads_hydrate_on_demand(self):
        records = make_records()
        vec = DocumentStore()
        vec.bulk_columnar("idx", RecordBatch.decode(records,
                                                    session=SESSION))
        index = vec._indices["idx"]
        assert vec.get_doc("idx", "1") == legacy_docs(records)[0]
        assert index.pending_docs == 0
        assert index.hydrated_docs_total == 6

    def test_steady_state_aggregation_stays_lazy(self):
        # Once the columns exist, further columnar bulks + aggregations
        # never materialise a _source dict.
        records = make_records()
        vec = DocumentStore()
        aggs = {"per": {"terms": {"field": "syscall", "size": 10}}}
        vec.bulk_columnar("idx", RecordBatch.decode(records,
                                                    session=SESSION))
        vec.search("idx", size=0, aggs=aggs)  # builds the column
        index = vec._indices["idx"]
        hydrated = index.hydrated_docs_total
        vec.bulk_columnar("idx", RecordBatch.decode(records,
                                                    session=SESSION))
        response = vec.search("idx", size=0, aggs=aggs)
        assert vec.count("idx") == 12
        assert index.hydrated_docs_total == hydrated
        assert index.pending_docs == 6
        buckets = {b["key"]: b["doc_count"]
                   for b in response["aggregations"]["per"]["buckets"]}
        assert buckets["write"] == 2

    def test_mutations_after_columnar_bulk_are_ordered(self):
        records = make_records()
        vec = DocumentStore()
        vec.bulk_columnar("idx", RecordBatch.decode(records,
                                                    session=SESSION))
        vec.index_doc("idx", {"syscall": "late", "session": SESSION},
                      doc_id="99")
        assert vec.delete_by_query("idx", {"term": {"syscall": "open"}}) == 1
        docs = [doc_id for doc_id, _ in vec.scan("idx", {"match_all": {}})]
        assert "1" not in docs and "99" in docs
        assert vec.count("idx") == 6

    def test_ingest_telemetry_families(self):
        from repro.telemetry import MetricsRegistry

        vec = DocumentStore()
        registry = MetricsRegistry()
        vec.bind_telemetry(registry)
        vec.bulk_columnar("idx", RecordBatch.decode(make_records(),
                                                    session=SESSION))
        assert registry.value("dio_ingest_columnar_bulks_total") == 1
        assert registry.value("dio_ingest_pending_docs") == 6
        assert registry.value("dio_ingest_docs_hydrated_total") == 0
        vec.get_doc("idx", "1")
        assert registry.value("dio_ingest_pending_docs") == 0
        assert registry.value("dio_ingest_docs_hydrated_total") == 6


# ----------------------------------------------------------------------
# The consumer: mode equivalence + batched counter updates

def run_pipeline(ingest_mode, hook=None):
    """Trace a small workload end-to-end under ``ingest_mode``."""
    env = Environment()
    kernel = Kernel(env, ncpus=2)
    store = DocumentStore()
    tracer = DIOTracer(env, kernel, store,
                       TracerConfig(ingest_mode=ingest_mode))
    if hook is not None:
        hook(tracer)
    task = kernel.spawn_process("app").threads[0]
    tracer.attach()

    def workload():
        fd = yield from kernel.syscall(task, "open", path="/f",
                                       flags=O_CREAT | O_RDWR)
        for i in range(40):
            yield from kernel.syscall(task, "write", fd=fd,
                                      data=b"x" * (i + 1))
        yield from kernel.syscall(task, "close", fd=fd)
        yield from tracer.shutdown()

    env.run(until=env.process(workload()))
    return store, tracer


class TestConsumerModes:
    def test_modes_store_identical_documents(self):
        stores = {}
        for mode in ("vectorized", "legacy"):
            store, _ = run_pipeline(mode)
            stores[mode] = list(store.scan("dio_trace", {"match_all": {}}))
        assert stores["vectorized"] == stores["legacy"]

    def test_modes_agree_on_shared_counters(self):
        values = {}
        for mode in ("vectorized", "legacy"):
            _, tracer = run_pipeline(mode)
            registry = tracer.telemetry.registry
            values[mode] = {
                name: registry.value(name)
                for name in ("dio_consumer_events_parsed_total",
                             "dio_consumer_batches_total",
                             "dio_shipper_events_total")
            }
            values[mode]["ingest_events"] = registry.value(
                "dio_ingest_events_total", {"mode": mode})
            values[mode]["ingest_batches"] = registry.value(
                "dio_ingest_batches_total", {"mode": mode})
        lhs, rhs = values["vectorized"], values["legacy"]
        assert lhs == {**rhs, **{}}  # identical counter readings
        assert lhs["ingest_events"] == lhs[
            "dio_consumer_events_parsed_total"]

    @pytest.mark.parametrize("mode", ["vectorized", "legacy"])
    def test_counter_updates_are_batched(self, mode):
        # One registry add per batch, not per event: the parsed-events
        # counter and both ingest counters must each be incremented
        # exactly as many times as there were batches.
        calls = {"parsed": 0, "events": 0, "batches": 0}

        class CountingProxy:
            def __init__(self, inner, key):
                self._inner, self._key = inner, key

            def inc(self, amount=1):
                calls[self._key] += 1
                return self._inner.inc(amount)

        def hook(tracer):
            tracer._m_parsed = CountingProxy(tracer._m_parsed, "parsed")
            tracer._m_ingest_events = CountingProxy(
                tracer._m_ingest_events, "events")
            tracer._m_ingest_batches = CountingProxy(
                tracer._m_ingest_batches, "batches")

        _, tracer = run_pipeline(mode, hook=hook)
        registry = tracer.telemetry.registry
        batches = registry.value("dio_consumer_batches_total")
        parsed = registry.value("dio_consumer_events_parsed_total")
        assert parsed == 42  # open + 40 writes + close
        assert batches >= 1
        assert calls["parsed"] == batches
        assert calls["events"] == batches
        assert calls["batches"] == batches


class TestIngestConfig:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            TracerConfig(ingest_mode="simd")

    def test_from_toml_reads_ingest_mode(self):
        config = TracerConfig.from_toml(
            "[backend]\ningest_mode = 'legacy'\n")
        assert config.ingest_mode == "legacy"

    def test_store_without_bulk_columnar_degrades(self):
        # A backend predating the vectorized endpoint still works: the
        # consumer materialises the batch and ships a dict bulk.
        class OldStore:
            def __init__(self):
                self.inner = DocumentStore()

            def ensure_index(self, *a, **k):
                return self.inner.ensure_index(*a, **k)

            def bulk(self, index, sources, nominal_ns=0):
                return self.inner.bulk(index, sources)

            def bind_telemetry(self, registry, clock=None):
                pass

        env = Environment()
        kernel = Kernel(env, ncpus=1)
        old = OldStore()
        tracer = DIOTracer(env, kernel, old,
                           TracerConfig(correlate_on_stop=False))
        task = kernel.spawn_process("app").threads[0]
        tracer.attach()

        def workload():
            fd = yield from kernel.syscall(task, "open", path="/f",
                                           flags=O_CREAT | O_RDWR)
            yield from kernel.syscall(task, "close", fd=fd)
            yield from tracer.shutdown()

        env.run(until=env.process(workload()))
        assert old.inner.count("dio_trace") == 2
