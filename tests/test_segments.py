"""Segment storage engine: WAL, segment files, engine lifecycle.

Covers the durability contract byte by byte (a WAL or segment torn at
*any* byte recovers exactly the intact prefix / is rejected whole),
the maintenance paths (flush, compaction, retention, snapshot and
restore), zone-map pruning against the query semantics, and the
persistence facade that routes ``storage_mode``.  The adversarial
round-trip against the JSON-lines oracle lives at the bottom as a
Hypothesis property.
"""

import json
import math
import zlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.backend import DocumentStore
from repro.backend.persistence import (STORAGE_MODES, SessionError,
                                       export_session, import_session,
                                       load_session, save_session,
                                       storage_mode_of)
from repro.backend.planner import prune_constraints
from repro.backend.query import compile_query
from repro.backend.segments import (MANIFEST_NAME, WAL_NAME, Segment,
                                    SegmentError, SegmentStorage,
                                    sort_docs, write_segment)
from repro.backend.wal import (WAL_MAGIC, WriteAheadLog, encode_record,
                               recover_bytes)

DOCS = [
    {"time": 40, "syscall": "write", "ret": 8, "path": "/data/f0"},
    {"time": 10, "syscall": "open", "ret": 3, "path": "/data/f0"},
    {"time": 30, "syscall": "read", "ret": -9, "path": "/data/журнал"},
    {"time": 20, "syscall": "close", "ret": 0},
    {"time": 50, "syscall": "fsync", "ret": 0, "latency": 1.5},
]


def dumps(docs):
    return [json.dumps(d, sort_keys=True) for d in docs]


# ---------------------------------------------------------------------------
# Write-ahead log


class TestWAL:
    def test_round_trip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.bin")
        assert wal.open() == []
        wal.append("s1", DOCS[:2])
        wal.append("s1", DOCS[2:])
        wal.close()

        reopened = WriteAheadLog(tmp_path / "wal.bin")
        assert reopened.open() == [(1, "s1", DOCS[:2]), (2, "s1", DOCS[2:])]
        assert reopened.report["records_recovered"] == 2
        assert reopened.report["docs_recovered"] == len(DOCS)
        assert reopened.report["torn_bytes_dropped"] == 0
        reopened.close()

    def test_torn_at_every_byte_recovers_whole_frame_prefix(self, tmp_path):
        image = WAL_MAGIC
        frames = [encode_record("s", [d], i + 1)
                  for i, d in enumerate(DOCS)]
        boundaries = [len(image)]
        for frame in frames:
            image += frame
            boundaries.append(len(image))
        for cut in range(len(image) + 1):
            entries, report = recover_bytes(image[:cut])
            if cut < len(WAL_MAGIC):
                assert entries == []
                assert not report["header_ok"]
                continue
            complete = sum(1 for b in boundaries[1:] if b <= cut)
            assert len(entries) == complete, f"cut at byte {cut}"
            assert [docs for _, _, docs in entries] == \
                [[d] for d in DOCS[:complete]]
            assert [rec_id for rec_id, _, _ in entries] == \
                list(range(1, complete + 1))
            assert report["torn_bytes_dropped"] == \
                cut - boundaries[complete]

    def test_open_truncates_torn_tail_in_place(self, tmp_path):
        path = tmp_path / "wal.bin"
        wal = WriteAheadLog(path)
        wal.open()
        wal.append("s", DOCS[:1])
        wal.close()
        intact = path.read_bytes()
        path.write_bytes(intact + b"\x99\x01garbage")

        reopened = WriteAheadLog(path)
        assert reopened.open() == [(1, "s", DOCS[:1])]
        reopened.close()
        assert path.read_bytes() == intact

    def test_read_only_open_leaves_torn_tail_on_disk(self, tmp_path):
        path = tmp_path / "wal.bin"
        wal = WriteAheadLog(path)
        wal.open()
        wal.append("s", DOCS[:1])
        wal.close()
        damaged = path.read_bytes() + b"\x99\x01garbage"
        path.write_bytes(damaged)

        inspector = WriteAheadLog(path)
        assert inspector.open(read_only=True) == [(1, "s", DOCS[:1])]
        assert path.read_bytes() == damaged   # evidence untouched
        with pytest.raises(Exception):
            inspector.append("s", DOCS[1:2])
        inspector.close()

    def test_record_ids_survive_reset(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.bin")
        wal.open()
        assert wal.append("s", DOCS[:1])[0] == 1
        wal.reset()
        assert wal.append("s", DOCS[1:2])[0] == 2
        wal.ensure_next_id(10)
        assert wal.append("s", DOCS[2:3])[0] == 10
        wal.close()

    def test_reset_truncates_to_header(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.bin")
        wal.open()
        wal.append("s", DOCS)
        wal.reset()
        wal.close()
        assert (tmp_path / "wal.bin").read_bytes() == WAL_MAGIC

    def test_corrupt_crc_stops_recovery(self, tmp_path):
        good = encode_record("s", DOCS[:1])
        bad = bytearray(encode_record("s", DOCS[1:2]))
        bad[-1] ^= 0xFF
        entries, report = recover_bytes(WAL_MAGIC + good + bytes(bad))
        assert len(entries) == 1
        assert report["torn_bytes_dropped"] == len(bad)

    def test_foreign_file_is_restarted(self, tmp_path):
        path = tmp_path / "wal.bin"
        path.write_bytes(b"not a wal at all")
        wal = WriteAheadLog(path)
        assert wal.open() == []
        wal.close()
        assert path.read_bytes() == WAL_MAGIC


# ---------------------------------------------------------------------------
# Segment files


class TestSegmentFile:
    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "seg-000001.dseg"
        meta = write_segment(path, DOCS, session="s1", seq=1,
                             created_ns=123)
        assert meta["rows"] == len(DOCS)
        segment = Segment(path)
        assert segment.rows == len(DOCS)
        assert segment.session == "s1"
        assert segment.seq == 1
        assert segment.created_ns == 123
        assert dumps(segment.docs()) == dumps(sort_docs(DOCS))

    def test_order_and_key_order_match_sorted_input(self, tmp_path):
        path = tmp_path / "seg.dseg"
        write_segment(path, DOCS, session="s", seq=1)
        loaded = Segment(path).docs()
        expected = sort_docs(DOCS)
        assert [json.dumps(d) for d in loaded] == \
            [json.dumps(d) for d in expected]

    def test_absent_vs_explicit_none_survive(self, tmp_path):
        docs = [{"time": 1, "x": None}, {"time": 2}, {"time": 3, "x": 7}]
        path = tmp_path / "seg.dseg"
        write_segment(path, docs, session="s", seq=1)
        loaded = Segment(path).docs()
        assert loaded == docs
        assert "x" in loaded[0] and "x" not in loaded[1]

    def test_exotic_values_round_trip(self, tmp_path):
        docs = [{"time": 1, "v": 2 ** 80, "w": True},
                {"time": 2, "v": -(2 ** 80), "w": {"nested": [1, "é"]}},
                {"time": 3, "v": 0.5, "w": float("inf")},
                {"time": 4, "v": "строка", "w": None}]
        path = tmp_path / "seg.dseg"
        write_segment(path, docs, session="s", seq=1)
        assert dumps(Segment(path).docs()) == dumps(docs)

    def test_truncation_at_every_byte_is_rejected_whole(self, tmp_path):
        path = tmp_path / "seg.dseg"
        write_segment(path, DOCS, session="s", seq=1)
        blob = path.read_bytes()
        torn = tmp_path / "torn.dseg"
        for cut in range(len(blob)):
            torn.write_bytes(blob[:cut])
            with pytest.raises(SegmentError):
                Segment(torn)

    def test_flipped_block_byte_fails_verify(self, tmp_path):
        path = tmp_path / "seg.dseg"
        write_segment(path, DOCS, session="s", seq=1)
        blob = bytearray(path.read_bytes())
        blob[20] ^= 0xFF                 # inside the first field block
        path.write_bytes(bytes(blob))
        segment = Segment(path)          # trailer+footer still intact
        assert not segment.verify()["ok"]

    def test_zone_maps_cover_typed_fields(self, tmp_path):
        path = tmp_path / "seg.dseg"
        write_segment(path, DOCS, session="s", seq=1)
        zones = Segment(path).zones
        assert zones["time"][1:] == (10, 50)
        assert zones["ret"][1:] == (-9, 8)
        assert zones["syscall"][1:] == ("close", "write")

    def test_may_match_prunes_disjoint_ranges(self, tmp_path):
        path = tmp_path / "seg.dseg"
        write_segment(path, DOCS, session="s", seq=1)
        segment = Segment(path)
        assert segment.may_match(
            [("time", "range", {"gte": 10, "lte": 20})])
        assert not segment.may_match(
            [("time", "range", {"gt": 50})])
        assert not segment.may_match([("syscall", "eq", "zzz")])
        assert segment.may_match([("syscall", "eq", "open")])
        # The str zone on "path" excludes values above its max too.
        assert not segment.may_match([("path", "eq", "/zzz")])

    def test_may_match_keeps_unzoned_fields(self, tmp_path):
        # Mixed value classes leave the field without a zone map, so
        # pruning must conservatively keep the segment.
        docs = [{"time": 1, "mixed": 1}, {"time": 2, "mixed": "x"}]
        path = tmp_path / "seg.dseg"
        write_segment(path, docs, session="s", seq=1)
        segment = Segment(path)
        assert "mixed" not in segment.zones
        assert segment.may_match([("mixed", "eq", "anything")])

    def test_may_match_keeps_dotted_paths_into_nested_values(self, tmp_path):
        # get_field resolves "a.b" inside the root column's nested
        # dicts, which no zone map covers — the segment must survive
        # pruning so the per-row predicate can find the match.
        docs = [{"time": 1, "a": {"b": 5}}, {"time": 2, "a": {"b": 7}}]
        path = tmp_path / "seg.dseg"
        write_segment(path, docs, session="s", seq=1)
        segment = Segment(path)
        assert segment.may_match([("a.b", "eq", 5)])
        assert segment.may_match([("a.b", "range", {"gte": 6})])
        # No root column at all is still a proof of absence.
        assert not segment.may_match([("zz.yy", "eq", 5)])

    def test_may_match_missing_field_can_equal_none(self, tmp_path):
        # A row without the field resolves to None under get_field, so
        # an eq-None / in-[None] constraint cannot exclude the segment.
        path = tmp_path / "seg.dseg"
        write_segment(path, [{"time": 1}], session="s", seq=1)
        segment = Segment(path)
        assert segment.may_match([("missing", "eq", None)])
        assert segment.may_match([("missing", "in", [1, None])])
        assert not segment.may_match([("missing", "eq", 3)])
        assert not segment.may_match([("missing", "range", {"gte": 0})])


# ---------------------------------------------------------------------------
# The engine


def fill(engine, n=20, session="s"):
    docs = [{"time": i * 10, "syscall": "write", "ret": i} for i in range(n)]
    engine.import_docs(docs, session=session)
    return docs


class TestSegmentStorage:
    def test_append_is_wal_durable_before_flush(self, tmp_path):
        engine = SegmentStorage(tmp_path / "store", flush_events=100)
        engine.append(DOCS[:3], session="s")
        engine.close()                    # no flush: only the WAL has them

        reopened = SegmentStorage(tmp_path / "store", flush_events=100,
                                  create=False)
        assert reopened.open_report["wal_docs_recovered"] == 3
        assert dumps(reopened.all_docs()) == dumps(sort_docs(DOCS[:3]))
        reopened.close()

    def test_flush_seals_and_truncates_wal(self, tmp_path):
        engine = SegmentStorage(tmp_path / "store", flush_events=4)
        engine.append(DOCS, session="s")  # 5 docs >= 4: auto-flush
        assert engine.flushes_total == 1
        assert (tmp_path / "store" / WAL_NAME).read_bytes() == WAL_MAGIC
        assert engine.count() == len(DOCS)
        engine.close()

    def test_import_chunks_into_segments(self, tmp_path):
        engine = SegmentStorage(tmp_path / "store", flush_events=6)
        docs = fill(engine, 20)
        assert len(engine._segments) == math.ceil(20 / 6)
        assert dumps(engine.all_docs()) == dumps(sort_docs(docs))
        engine.close()

    def test_compaction_preserves_contents_and_order(self, tmp_path):
        engine = SegmentStorage(tmp_path / "store", flush_events=3)
        docs = fill(engine, 21)
        before = dumps(engine.all_docs())
        report = engine.compact(small_rows=100)
        assert report["segments_merged"] >= 2
        assert len(engine._segments) == 1
        assert dumps(engine.all_docs()) == before == dumps(sort_docs(docs))
        engine.close()

        reopened = SegmentStorage(tmp_path / "store", create=False)
        assert dumps(reopened.all_docs()) == before
        reopened.close()

    def test_compaction_needs_a_contiguous_small_run(self, tmp_path):
        engine = SegmentStorage(tmp_path / "store", flush_events=4)
        engine.import_docs([{"time": i} for i in range(4)], session="s")
        engine.import_docs([{"time": 100 + i} for i in range(8)],
                           session="s")
        engine.import_docs([{"time": 200}], session="s")
        # Segments hold 4, 4, 4, 1 rows: a lone small segment is not a
        # run, so nothing merges below a threshold of 2.
        assert engine.compact(small_rows=2)["segments_merged"] == 0
        engine.close()

    def test_retention_drops_expired_segments(self, tmp_path):
        engine = SegmentStorage(tmp_path / "store", flush_events=5)
        fill(engine, 20)                  # times 0..190, 4 segments
        report = engine.retain(now_ns=500, retention_ns=300)
        # cutoff 200: segments with max time 40, 90, 140, 190 all expire
        assert report["segments_dropped"] == 4
        assert engine.count() == 0
        engine.close()

    def test_snapshot_restore_round_trip(self, tmp_path):
        engine = SegmentStorage(tmp_path / "store", flush_events=4)
        docs = fill(engine, 10)
        engine.append(DOCS[:2], session="s")   # leave a WAL tail too
        snap = tmp_path / "snap.zip"
        engine.snapshot(snap)
        engine.close()

        restored = SegmentStorage.restore(snap, tmp_path / "restored")
        assert dumps(restored.all_docs()) == \
            dumps(sort_docs(docs + DOCS[:2]))
        restored.close()

    def test_torn_segment_dropped_whole_on_open(self, tmp_path):
        engine = SegmentStorage(tmp_path / "store", flush_events=5)
        fill(engine, 15)                  # 3 segments of 5
        engine.close()
        victim = sorted((tmp_path / "store").glob("*.dseg"))[1]
        victim.write_bytes(victim.read_bytes()[:-7])

        reopened = SegmentStorage(tmp_path / "store", create=False)
        assert reopened.open_report["segments_dropped"] == 1
        assert reopened.count() == 10
        assert reopened.verify()["ok"]
        # The rewritten manifest no longer names the damaged file.
        manifest = json.loads(
            (tmp_path / "store" / MANIFEST_NAME).read_text())
        assert victim.name not in manifest["segments"]
        reopened.close()

    def test_orphan_segments_removed_on_open(self, tmp_path):
        engine = SegmentStorage(tmp_path / "store", flush_events=5)
        fill(engine, 5)
        engine.close()
        orphan = tmp_path / "store" / "seg-000099.dseg"
        write_segment(orphan, DOCS, session="ghost", seq=99)
        (tmp_path / "store" / "seg-000003.dseg.tmp").write_bytes(b"half")

        reopened = SegmentStorage(tmp_path / "store", create=False)
        assert reopened.open_report["orphans_removed"] == 2
        assert not orphan.exists()
        assert reopened.count() == 5
        reopened.close()

    def test_crash_between_segment_and_manifest_loses_nothing(
            self, tmp_path):
        engine = SegmentStorage(tmp_path / "store", flush_events=100)
        engine.append(DOCS, session="s")

        def boom(stage):
            raise RuntimeError("injected")

        engine._crash_hook = boom
        with pytest.raises(RuntimeError):
            engine.flush()
        engine.close()

        reopened = SegmentStorage(tmp_path / "store", create=False)
        assert reopened.open_report["orphans_removed"] == 1
        assert reopened.open_report["wal_docs_recovered"] == len(DOCS)
        assert dumps(reopened.all_docs()) == dumps(sort_docs(DOCS))
        reopened.close()

    def test_mid_compaction_crash_leaves_old_view(self, tmp_path):
        engine = SegmentStorage(tmp_path / "store", flush_events=3)
        docs = fill(engine, 12)

        def boom(stage):
            if stage == "compact":
                raise RuntimeError("injected")

        engine._crash_hook = boom
        with pytest.raises(RuntimeError):
            engine.compact(small_rows=100)
        engine.close()

        reopened = SegmentStorage(tmp_path / "store", create=False)
        assert dumps(reopened.all_docs()) == dumps(sort_docs(docs))
        reopened.compact(small_rows=100)
        assert dumps(reopened.all_docs()) == dumps(sort_docs(docs))
        reopened.close()

    def test_crash_after_manifest_before_wal_reset_no_duplicates(
            self, tmp_path):
        engine = SegmentStorage(tmp_path / "store", flush_events=100)
        engine.append(DOCS[:3], session="s")
        engine.append(DOCS[3:], session="s")

        def boom(stage):
            if stage == "flush-published":
                raise RuntimeError("injected")

        engine._crash_hook = boom
        with pytest.raises(RuntimeError):
            engine.flush()                 # manifest published, WAL intact
        engine.close()

        reopened = SegmentStorage(tmp_path / "store", create=False)
        assert reopened.open_report["wal_docs_skipped_sealed"] == len(DOCS)
        assert reopened.open_report["wal_docs_recovered"] == 0
        assert dumps(reopened.all_docs()) == dumps(sort_docs(DOCS))
        # New appends must not reuse sealed record ids.
        reopened.append(DOCS[:1], session="s")
        reopened.close()
        again = SegmentStorage(tmp_path / "store", create=False)
        assert again.count() == len(DOCS) + 1
        again.close()

    def test_damaged_segment_quarantined_not_unlinked(self, tmp_path):
        engine = SegmentStorage(tmp_path / "store", flush_events=5)
        fill(engine, 15)                  # 3 segments of 5
        engine.close()
        victim = sorted((tmp_path / "store").glob("*.dseg"))[1]
        blob = victim.read_bytes()
        victim.write_bytes(blob[:-7])

        reopened = SegmentStorage(tmp_path / "store", create=False)
        assert reopened.open_report["segments_dropped"] == 1
        entry = reopened.open_report["dropped"][0]
        assert entry["quarantined"] == victim.name + ".damaged"
        quarantined = victim.with_name(victim.name + ".damaged")
        assert quarantined.read_bytes() == blob[:-7]
        assert not victim.exists()
        reopened.close()

        # The quarantined file survives later opens (no orphan sweep).
        again = SegmentStorage(tmp_path / "store", create=False)
        assert quarantined.exists()
        assert again.open_report["orphans_removed"] == 0
        again.close()

    def test_read_only_open_changes_nothing_on_disk(self, tmp_path):
        engine = SegmentStorage(tmp_path / "store", flush_events=5)
        fill(engine, 15)
        engine.append(DOCS[:2], session="s")
        engine.close()
        root = tmp_path / "store"
        victim = sorted(root.glob("*.dseg"))[0]
        victim.write_bytes(victim.read_bytes()[:-7])
        (root / "seg-000099.dseg").write_bytes(b"orphan")
        wal = root / WAL_NAME
        wal.write_bytes(wal.read_bytes() + b"torn-tail")
        before = {p.name: p.read_bytes() for p in root.iterdir()}

        inspector = SegmentStorage(root, create=False, read_only=True)
        assert inspector.open_report["segments_dropped"] == 1
        assert "quarantined" not in inspector.open_report["dropped"][0]
        assert inspector.open_report["orphans_removed"] == 0
        assert inspector.open_report["wal_docs_recovered"] == 2
        assert inspector.count() == 12    # 2 surviving segments + buffer
        with pytest.raises(SegmentError):
            inspector.append(DOCS[:1], session="s")
        with pytest.raises(SegmentError):
            inspector.import_docs(DOCS, session="s")
        with pytest.raises(SegmentError):
            inspector.flush()
        with pytest.raises(SegmentError):
            inspector.compact()
        with pytest.raises(SegmentError):
            inspector.retain(now_ns=10, retention_ns=1)
        inspector.close()
        after = {p.name: p.read_bytes() for p in root.iterdir()}
        assert after == before            # not one byte moved

    def test_load_into_stamps_copies_not_cached_docs(self, tmp_path):
        engine = SegmentStorage(tmp_path / "store", flush_events=3)
        fill(engine, 4)                   # one sealed segment + a tail
        engine.append(DOCS[:1], session="s")
        store = DocumentStore()
        engine.load_into(store, rename_to="stamped")
        # The engine's own documents must be exactly what was stored —
        # no injected "session" field in segment caches or the buffer.
        assert all("session" not in d for d in engine.all_docs())
        loaded = [s for _, s in store.scan("dio_trace", {"match_all": {}})]
        assert all(d["session"] == "stamped" for d in loaded)
        engine.close()

    def test_scan_prunes_but_matches_predicate_scan(self, tmp_path):
        engine = SegmentStorage(tmp_path / "store", flush_events=4)
        fill(engine, 40)                  # 10 segments, times 0..390
        window = {"range": {"time": {"gte": 100, "lt": 140}}}
        result = engine.scan(window)
        predicate = compile_query(window)
        expected = [d for d in engine.all_docs() if predicate(d)]
        assert sorted(dumps(result)) == sorted(dumps(expected))
        assert engine.scan_pruned_total > 0
        engine.close()

    def test_load_into_matches_import_session(self, tmp_path):
        store = DocumentStore()
        for doc in sort_docs(DOCS):
            store.index_doc("dio_trace", dict(doc, session="orig"))

        seg_root = tmp_path / "segstore"
        save_session(store, "orig", seg_root, storage_mode="segments",
                     flush_events=2)
        jsonl = tmp_path / "orig.jsonl"
        export_session(store, "orig", jsonl)

        via_seg, via_jsonl = DocumentStore(), DocumentStore()
        assert load_session(via_seg, seg_root, rename_to="x") == "x"
        import_session(via_jsonl, jsonl, rename_to="x")
        a = [s for _, s in via_seg.scan("dio_trace", {"match_all": {}})]
        b = [s for _, s in via_jsonl.scan("dio_trace", {"match_all": {}})]
        assert dumps(a) == dumps(b)

    def test_storage_mode_autodetect(self, tmp_path):
        store = DocumentStore()
        store.index_doc("dio_trace", {"time": 1, "session": "s"})
        seg_root = tmp_path / "segstore"
        save_session(store, "s", seg_root, storage_mode="segments")
        jsonl = tmp_path / "s.jsonl"
        save_session(store, "s", jsonl, storage_mode="jsonl")
        assert storage_mode_of(seg_root) == "segments"
        assert storage_mode_of(jsonl) == "jsonl"
        with pytest.raises(SessionError):
            storage_mode_of(tmp_path)     # a directory, but no manifest

    def test_telemetry_gauges_track_state(self, tmp_path):
        from repro.telemetry.registry import MetricsRegistry
        registry = MetricsRegistry()
        engine = SegmentStorage(tmp_path / "store", flush_events=4)
        engine.bind_telemetry(registry)
        fill(engine, 8)
        engine.append(DOCS[:1], session="s")
        sample = {f.name: f for f in registry.collect()}
        assert "dio_segment_files" in sample
        assert "dio_segment_wal_pending_docs" in sample
        engine.close()


# ---------------------------------------------------------------------------
# Planner constraint extraction (what zone pruning consumes)


class TestPruneConstraints:
    def test_extracts_conjunctive_constraints(self):
        query = {"bool": {"must": [
            {"term": {"syscall": "read"}},
            {"range": {"time": {"gte": 5, "lt": 10}}},
        ], "filter": [{"terms": {"ret": [0, 1]}}]}}
        got = prune_constraints(query)
        assert ("syscall", "eq", "read") in got
        assert ("time", "range", {"gte": 5, "lt": 10}) in got
        assert ("ret", "in", [0, 1]) in got

    def test_disjunction_yields_nothing(self):
        assert prune_constraints(
            {"bool": {"should": [{"term": {"a": 1}}]}}) == []
        assert prune_constraints({"match_all": {}}) == []


# ---------------------------------------------------------------------------
# Config axis stays in sync across layers


def test_storage_modes_constants_agree():
    from repro.tracer.config import STORAGE_MODES as tracer_modes
    assert set(tracer_modes) == set(STORAGE_MODES)


def test_tracer_persists_acknowledged_batches(tmp_path):
    from repro.kernel import O_CREAT, O_WRONLY, Kernel
    from repro.sim import Environment
    from repro.tracer import DIOTracer, TracerConfig

    env = Environment()
    kernel = Kernel(env, ncpus=1)
    store = DocumentStore()
    tracer = DIOTracer(env, kernel, store,
                       TracerConfig(session_name="persisted",
                                    storage_dir=str(tmp_path / "store"),
                                    storage_mode="segments",
                                    storage_flush_events=8))
    task = kernel.spawn_process("app").threads[0]
    tracer.attach()

    def main():
        fd = yield from kernel.syscall(task, "open", path="/f",
                                       flags=O_CREAT | O_WRONLY)
        for _ in range(6):
            yield from kernel.syscall(task, "write", fd=fd, data=b"x" * 64)
        yield from kernel.syscall(task, "close", fd=fd)
        yield from tracer.shutdown()

    env.run(until=env.process(main()))
    shipped = store.count("dio_trace")
    assert shipped > 0

    engine = SegmentStorage(tmp_path / "store", create=False)
    assert engine.count() == shipped
    assert engine.session() == "persisted"
    engine.close()


def test_tracer_jsonl_mode_exports_at_shutdown(tmp_path):
    from repro.kernel import O_CREAT, O_WRONLY, Kernel
    from repro.sim import Environment
    from repro.tracer import DIOTracer, TracerConfig

    env = Environment()
    kernel = Kernel(env, ncpus=1)
    store = DocumentStore()
    tracer = DIOTracer(env, kernel, store,
                       TracerConfig(session_name="jl",
                                    storage_dir=str(tmp_path / "out"),
                                    storage_mode="jsonl"))
    task = kernel.spawn_process("app").threads[0]
    tracer.attach()

    def main():
        fd = yield from kernel.syscall(task, "open", path="/f",
                                       flags=O_CREAT | O_WRONLY)
        yield from kernel.syscall(task, "write", fd=fd, data=b"y")
        yield from kernel.syscall(task, "close", fd=fd)
        yield from tracer.shutdown()

    env.run(until=env.process(main()))
    exported = tmp_path / "out" / "jl.jsonl"
    assert exported.exists()
    loaded = DocumentStore()
    import_session(loaded, exported, rename_to="check")
    assert loaded.count("dio_trace") == store.count("dio_trace")


# ---------------------------------------------------------------------------
# Adversarial round-trip vs. the JSON-lines oracle (Hypothesis)

scalar = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 70), max_value=2 ** 70),
    st.floats(allow_nan=False),
    st.text(max_size=12),
)
json_value = st.recursive(
    scalar,
    lambda inner: st.one_of(
        st.lists(inner, max_size=3),
        st.dictionaries(st.text(max_size=6), inner, max_size=3)),
    max_leaves=6)
adversarial_doc = st.dictionaries(
    st.sampled_from(["time", "syscall", "ret", "tid", "path", "étrange"]),
    json_value, max_size=6)
timed_doc = adversarial_doc.map(
    lambda d: dict(d, time=d.get("time")) if "time" in d else d)


class TestRoundTripOracle:
    @given(docs=st.lists(adversarial_doc, max_size=30),
           flush=st.integers(min_value=1, max_value=7))
    @settings(max_examples=60, deadline=None)
    def test_segments_match_jsonl_oracle(self, docs, flush, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("seg")
        engine = SegmentStorage(tmp / "store", flush_events=flush)
        engine.import_docs([dict(d) for d in docs], session="hyp")
        loaded = engine.all_docs()
        engine.close()
        # The oracle: JSON round trip (what a .jsonl export would keep)
        # then the export's stable time sort.
        oracle = sort_docs([json.loads(json.dumps(d)) for d in docs])
        assert dumps(loaded) == dumps(oracle)

    @given(docs=st.lists(adversarial_doc, max_size=16),
           cut_frac=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_wal_torn_anywhere_recovers_prefix(self, docs, cut_frac):
        image = WAL_MAGIC + b"".join(
            encode_record("s", [json.loads(json.dumps(d))], i + 1)
            for i, d in enumerate(docs))
        cut = int(len(image) * cut_frac)
        entries, report = recover_bytes(image[:cut])
        recovered = [doc for _, _, batch in entries for doc in batch]
        assert dumps(recovered) == \
            dumps([json.loads(json.dumps(d))
                   for d in docs[:len(recovered)]])
        assert report["torn_bytes_dropped"] <= cut or not entries
