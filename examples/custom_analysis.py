#!/usr/bin/env python
"""Building a custom analysis on DIO's pipeline (paper §II-C/§V).

DIO's backend exposes the complete captured information, so users can
write their own correlation algorithms.  This example traces a mixed
workload and implements two custom analyses over the stored events:

1. an I/O access-pattern report (sequential vs random, request sizes),
2. a "who touched this file" audit using the file-path correlation.

Run with::

    python examples/custom_analysis.py
"""

from repro.analysis import classify_file_accesses, small_io_files
from repro.backend import DocumentStore
from repro.kernel import Kernel, O_CREAT, O_RDWR
from repro.sim import Environment
from repro.tracer import DIOTracer, TracerConfig
from repro.visualizer import render_table


def sequential_reader(kernel, task, path):
    """Stream a file in 64 KiB chunks."""
    fd = yield from kernel.syscall(task, "open", path=path,
                                   flags=O_CREAT | O_RDWR)
    yield from kernel.syscall(task, "write", fd=fd, data=b"s" * 512 * 1024)
    yield from kernel.syscall(task, "lseek", fd=fd, offset=0, whence=0)
    while True:
        buf = bytearray(64 * 1024)
        n = yield from kernel.syscall(task, "read", fd=fd, buf=buf)
        if n <= 0:
            break
    yield from kernel.syscall(task, "close", fd=fd)


def random_small_reader(kernel, task, path, rng):
    """Poke a file with tiny random-offset reads — the costly pattern."""
    fd = yield from kernel.syscall(task, "open", path=path,
                                   flags=O_CREAT | O_RDWR)
    yield from kernel.syscall(task, "write", fd=fd, data=b"r" * 256 * 1024)
    for _ in range(64):
        offset = int(rng.integers(0, 255 * 1024))
        buf = bytearray(128)
        yield from kernel.syscall(task, "pread64", fd=fd, buf=buf,
                                  offset=offset)
    yield from kernel.syscall(task, "close", fd=fd)


def main():
    import numpy as np

    env = Environment()
    kernel = Kernel(env)
    store = DocumentStore()
    tracer = DIOTracer(env, kernel, store,
                       TracerConfig(session_name="custom-analysis"))
    tracer.attach()

    seq_task = kernel.spawn_process("streamer").threads[0]
    rnd_task = kernel.spawn_process("poker").threads[0]

    def scenario():
        a = env.process(sequential_reader(kernel, seq_task, "/big.dat"))
        b = env.process(random_small_reader(
            kernel, rnd_task, "/index.db", np.random.default_rng(1)))
        yield env.all_of([a, b])
        yield from tracer.shutdown()

    env.run(until=env.process(scenario()))

    # --- custom analysis 1: access patterns per file -------------------
    patterns = classify_file_accesses(store, "dio_trace")
    rows = [[p.file_path, p.reads, p.writes,
             f"{p.sequential_fraction * 100:.0f}%",
             f"{p.mean_request_bytes:,.0f} B"] for p in patterns]
    print("--- access patterns by file ---")
    print(render_table(
        ["file", "reads", "writes", "sequential", "mean request"], rows))
    print()

    flagged = small_io_files(store, "dio_trace", threshold_bytes=4096)
    for p in flagged:
        print(f"INEFFICIENCY: {p.file_path} is accessed with many small "
              f"requests (mean {p.mean_request_bytes:.0f} B) — consider "
              "batching (paper §I, costly access patterns).")
    print()

    # --- custom analysis 2: who touched /index.db ----------------------
    response = store.search(
        "dio_trace",
        query={"term": {"file_path": "/index.db"}},
        aggs={"by_proc": {
            "terms": {"field": "proc_name"},
            "aggs": {"bytes": {"sum": {"field": "ret"}}},
        }},
        size=0)
    print("--- processes that touched /index.db ---")
    for bucket in response["aggregations"]["by_proc"]["buckets"]:
        print(f"{bucket['key']}: {bucket['doc_count']} syscalls, "
              f"{bucket['bytes']['value']:,.0f} bytes moved")


if __name__ == "__main__":
    main()
