#!/usr/bin/env python
"""Table II walkthrough: what tracing costs, and what you get for it.

Runs the identical db_bench operation budget under four deployments —
no tracing, Sysdig, DIO, strace — and prints the execution times,
overhead factors, and reporting fidelity, reproducing the trade-off
the paper measures: strace sees everything but slows the application
down badly; Sysdig is nearly free but loses file paths for a large
fraction of events; DIO sits in between, with (almost) full fidelity.

Run with::

    python examples/tracer_comparison.py
"""

from repro.experiments import run_overhead_comparison
from repro.visualizer import render_table


def main():
    print("running the same workload under vanilla / sysdig / dio / strace")
    print("(8 client threads, fixed operation budget)...\n")
    result = run_overhead_comparison(ops_per_thread=6_000)

    print(render_table(
        ["deployment", "execution time", "overhead",
         "events w/o file path", "ring discards"],
        result.table2_rows()))
    print()

    dio = result.runs["dio"]
    sysdig = result.runs["sysdig"]
    print(f"DIO cost: {result.overhead('dio'):.2f}x execution time "
          f"(paper: 1.37x)")
    print(f"strace cost: {result.overhead('strace'):.2f}x (paper: 1.71x) — "
          "the ptrace stop+context-switch tax on every syscall")
    print(f"sysdig cost: {result.overhead('sysdig'):.2f}x (paper: 1.04x), "
          f"but {sysdig.path_miss_ratio * 100:.0f}% of its events have no "
          f"file path (paper: 45%)")
    print(f"DIO resolves paths for "
          f"{(1 - dio.path_miss_ratio) * 100:.1f}% of events while "
          f"discarding {dio.drop_ratio * 100:.2f}% at the ring buffer "
          "(paper: <=5% unresolved, 3.5% discarded)")


if __name__ == "__main__":
    main()
