#!/usr/bin/env python
"""Post-mortem analysis: store, reload, and diff tracing sessions.

The paper's design principles (§II) include post-mortem analysis:
*"DIO allows storing different tracing executions from the same or
different applications and posteriorly analyzing and comparing them."*

This example traces both Fluent Bit versions, exports each session to
a JSON-lines file, re-imports them into a fresh backend (as a second
machine or a later day would), and lets the comparison engine find the
exact step where the two versions' behaviour diverges — automating the
Fig. 2a vs Fig. 2b analysis.

Run with::

    python examples/session_comparison.py
"""

import tempfile
from pathlib import Path

from repro.analysis.compare import compare_sessions, session_fingerprint
from repro.analysis.detectors import run_detectors
from repro.apps.fluentbit import FLUENTBIT_BUGGY, FLUENTBIT_FIXED
from repro.backend import DocumentStore
from repro.backend.persistence import (export_session, import_session,
                                       list_sessions)
from repro.experiments import run_fluentbit_case


def main():
    workdir = Path(tempfile.mkdtemp(prefix="dio-sessions-"))

    # --- capture phase: trace each version, keep the session on disk --
    files = {}
    for version in (FLUENTBIT_BUGGY, FLUENTBIT_FIXED):
        case = run_fluentbit_case(version)
        path = workdir / f"fluentbit-{version}.jsonl"
        count = export_session(case.store, f"fluentbit-{version}", path)
        files[version] = path
        print(f"traced Fluent Bit {version}: {count} events -> {path}")
    print()

    # --- post-mortem phase: a fresh backend, possibly much later ------
    store = DocumentStore()
    for path in files.values():
        import_session(store, path)

    print("stored sessions:")
    for summary in list_sessions(store):
        print(f"  {summary['session']}: {summary['events']} events, "
              f"processes {summary['processes']}")
    print()

    buggy = f"fluentbit-{FLUENTBIT_BUGGY}"
    fixed = f"fluentbit-{FLUENTBIT_FIXED}"

    # Fingerprints: the coarse difference.
    for session in (buggy, fixed):
        fp = session_fingerprint(store, session)
        print(f"{session}: {fp['events']} events, "
              f"syscall mix {fp['by_syscall']}")
    print()

    # The behavioural diff: where exactly do the versions part ways?
    comparison = compare_sessions(store, buggy, fixed)
    print(f"sessions agree for the first {comparison.common_prefix} steps")
    print(f"first divergence -> {comparison.divergence.describe()}")
    print()
    print("That single step IS the bug fix: v1.4.0 seeks to the stale")
    print("offset 26 before reading the fresh file; v2.0.5 reads the 16")
    print("new bytes from offset 0.")
    print()

    # And the detector battery agrees about which session is sick.
    for session in (buggy, fixed):
        findings = run_detectors(store, session=session)
        verdict = findings[0] if findings else "no issues detected"
        print(f"{session}: {verdict}")


if __name__ == "__main__":
    main()
