#!/usr/bin/env python
"""Quickstart: trace an application with DIO and explore the events.

Builds the full pipeline by hand — simulated kernel, DIO tracer,
backend, visualizer — runs a tiny application against it, and shows
the three things DIO gives you on top of plain syscall tracing:

1. every syscall as a structured, queryable event,
2. kernel-context enrichment (process name, file type, offset, file tag),
3. file-path correlation for fd-based syscalls.

Run with::

    python examples/quickstart.py
"""

from repro.backend import DocumentStore
from repro.kernel import Kernel, O_CREAT, O_RDWR, SEEK_SET
from repro.sim import Environment
from repro.tracer import DIOTracer, TracerConfig
from repro.visualizer import DIODashboards


def application(kernel, task):
    """A small program: write a file, read it back, rename it."""
    fd = yield from kernel.syscall(task, "open", path="/notes.txt",
                                   flags=O_CREAT | O_RDWR)
    yield from kernel.syscall(task, "write", fd=fd, data=b"hello, DIO!\n")
    yield from kernel.syscall(task, "lseek", fd=fd, offset=0, whence=SEEK_SET)
    buf = bytearray(64)
    n = yield from kernel.syscall(task, "read", fd=fd, buf=buf)
    print(f"application read back: {bytes(buf[:n])!r}")
    yield from kernel.syscall(task, "fsync", fd=fd)
    yield from kernel.syscall(task, "close", fd=fd)
    yield from kernel.syscall(task, "rename", oldpath="/notes.txt",
                              newpath="/notes.bak")


def main():
    # 1. The substrate: a virtual-time kernel and an analysis backend.
    env = Environment()
    kernel = Kernel(env)
    store = DocumentStore()

    # 2. Configure and attach the tracer (defaults trace all 42 syscalls).
    config = TracerConfig(session_name="quickstart")
    tracer = DIOTracer(env, kernel, store, config)
    tracer.attach()

    # 3. Run the application to completion, then drain the tracer.
    task = kernel.spawn_process("quickstart-app").threads[0]

    def scenario():
        yield from application(kernel, task)
        yield from tracer.shutdown()

    env.run(until=env.process(scenario()))

    # 4. Explore the trace.
    dashboards = DIODashboards(store, session="quickstart")
    print()
    print("--- all traced events (Fig. 2-style table) ---")
    print(dashboards.file_access_table())
    print()
    print("--- events per syscall ---")
    print(dashboards.syscall_summary())
    print()

    # 5. Ad-hoc querying, Elasticsearch-style.
    response = store.search(
        "dio_trace",
        query={"bool": {"must": [
            {"term": {"syscall": "write"}},
            {"range": {"ret": {"gt": 0}}},
        ]}})
    for hit in response["hits"]["hits"]:
        event = hit["_source"]
        print(f"write of {event['ret']} bytes at offset {event['offset']} "
              f"to {event['file_path']} (file type: {event['file_type']})")

    stats = tracer.stats.as_dict()
    print(f"\ntracer: {stats['shipped']} events shipped in "
          f"{stats['batches']} batches, {stats['dropped']} dropped")


if __name__ == "__main__":
    main()
