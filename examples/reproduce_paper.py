#!/usr/bin/env python
"""One-command reproduction of every table and figure in the paper.

Runs all experiments at moderate scale and prints a paper-vs-measured
summary.  For the asserted version of the same runs, use
``pytest benchmarks/``; for the recorded numbers, see EXPERIMENTS.md.

Run with::

    python examples/reproduce_paper.py          # ~2-4 minutes
"""

import time

import numpy as np

from repro.analysis.contention import detect_contention
from repro.analysis.latency import percentile_series
from repro.apps.fluentbit import FLUENTBIT_BUGGY, FLUENTBIT_FIXED
from repro.baselines import capability_table
from repro.experiments import (run_fluentbit_case, run_overhead_comparison,
                               run_rocksdb_case)
from repro.experiments.rocksdb_case import RocksDBScale
from repro.visualizer import render_table

SECOND = 1_000_000_000
WINDOW = 100_000_000


def banner(text):
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


def fig2():
    banner("Fig. 2 — Fluent Bit data loss (§III-B)")
    buggy = run_fluentbit_case(FLUENTBIT_BUGGY)
    fixed = run_fluentbit_case(FLUENTBIT_FIXED)
    print(f"v1.4.0: client wrote {buggy.written_bytes} B, "
          f"Fluent Bit delivered {buggy.delivered_bytes} B "
          f"-> {buggy.lost_bytes} B LOST (paper: 16 B lost)")
    print(f"v2.0.5: client wrote {fixed.written_bytes} B, "
          f"Fluent Bit delivered {fixed.delivered_bytes} B "
          f"-> {fixed.lost_bytes} B lost (paper: fixed, 0 B)")
    print("\nFig. 2a table (v1.4.0):")
    print(buggy.figure2_table())


def fig3_fig4():
    banner("Fig. 3 + Fig. 4 — RocksDB contention (§III-C)")
    case = run_rocksdb_case(RocksDBScale(duration_ns=int(1.6 * SECOND)))
    series = percentile_series(case.bench.records(), WINDOW)
    values = np.array([point.value_ns for point in series])
    baseline = np.percentile(values, 25)
    print(f"db_bench: {case.bench.op_count:,} ops, "
          f"{case.bench.throughput_ops_per_sec:,.0f} ops/s")
    print(f"p99 baseline {baseline / 1e6:.2f} ms, spikes up to "
          f"{values.max() / 1e6:.2f} ms "
          f"({values.max() / baseline:.1f}x — paper: episodic 1.5-3.5 ms)")
    report = detect_contention(case.store, "dio_trace", WINDOW,
                               session=case.session)
    print(f"windows with >=5 active compaction threads: "
          f"{len(report.contended_windows)}; client syscall rate drops "
          f"{report.client_slowdown:.2f}x there (paper: visible dips)")
    print("\nFig. 3 (p99 latency over time):")
    print(case.dashboards.latency_timeline(case.bench.records(), WINDOW))
    print("\nFig. 4 (syscalls by thread):")
    print(case.dashboards.syscalls_over_time_chart(WINDOW))


def table2():
    banner("Table II — tracer overhead and fidelity (§III-D)")
    result = run_overhead_comparison(ops_per_thread=6_000)
    print(render_table(
        ["deployment", "execution time", "overhead (paper)",
         "no-path events (paper)", "discards (paper)"],
        [
            ["vanilla", f"{result.runs['vanilla'].execution_time_ns / 1e9:.3f} s",
             f"{result.overhead('vanilla'):.2f}x (1.00x)", "-", "-"],
            ["sysdig", f"{result.runs['sysdig'].execution_time_ns / 1e9:.3f} s",
             f"{result.overhead('sysdig'):.2f}x (1.04x)",
             f"{result.runs['sysdig'].path_miss_ratio * 100:.1f}% (45%)",
             f"{result.runs['sysdig'].drop_ratio * 100:.1f}%"],
            ["dio", f"{result.runs['dio'].execution_time_ns / 1e9:.3f} s",
             f"{result.overhead('dio'):.2f}x (1.37x)",
             f"{result.runs['dio'].path_miss_ratio * 100:.1f}% (<=5%)",
             f"{result.runs['dio'].drop_ratio * 100:.1f}% (3.5%)"],
            ["strace", f"{result.runs['strace'].execution_time_ns / 1e9:.3f} s",
             f"{result.overhead('strace'):.2f}x (1.71x)", "-", "-"],
        ]))


def table3():
    banner("Table III — tool comparison (§IV)")
    print(capability_table())


def main():
    start = time.time()
    fig2()
    fig3_fig4()
    table2()
    table3()
    banner(f"done in {time.time() - start:.0f} s — see EXPERIMENTS.md for "
           "the recorded paper-vs-measured bands")


if __name__ == "__main__":
    main()
