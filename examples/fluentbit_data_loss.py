#!/usr/bin/env python
"""§III-B walkthrough: diagnosing Fluent Bit's data loss with DIO.

Reproduces the paper's Fig. 2 end to end, for both the buggy (v1.4.0)
and the fixed (v2.0.5) tail plugin, and runs the automated
stale-offset detector over the trace.

Run with::

    python examples/fluentbit_data_loss.py
"""

from repro.analysis.patterns import find_stale_offset_resumes
from repro.apps.fluentbit import FLUENTBIT_BUGGY, FLUENTBIT_FIXED
from repro.experiments import run_fluentbit_case


def show(version, title):
    case = run_fluentbit_case(version)
    print(f"=== {title} (Fluent Bit {version}) ===\n")
    print(case.figure2_table())
    print()
    print(f"client wrote  : {case.written_bytes} bytes "
          f"(26 then, after delete/recreate, 16)")
    print(f"flb delivered : {case.delivered_bytes} bytes")
    print(f"data lost     : {case.lost_bytes} bytes")

    findings = find_stale_offset_resumes(case.store, "dio_trace")
    if findings:
        f = findings[0]
        print(f"\nDIAGNOSIS: {f.proc_name} resumed reading "
              f"{f.file_path or f.file_tag} at stale offset {f.offset} on "
              f"a freshly created file -> the new content was skipped.")
        print("Root cause (paper §III-B): the tail plugin's offset database")
        print("is keyed by (file name, inode number) and entries are never")
        print("deleted; when the filesystem recycles the inode number for a")
        print("new file with the same name, the stale offset is applied.")
    else:
        print("\nNo stale-offset resumes detected: every byte was read from")
        print("offset 0 of the new file.")
    print()


def main():
    show(FLUENTBIT_BUGGY, "Fig. 2a — erroneous access pattern")
    show(FLUENTBIT_FIXED, "Fig. 2b — corrected access pattern")
    print("Note how the file tag (dev inode first-access-timestamp) lets")
    print("DIO tell the two same-name, same-inode files apart — the key")
    print("piece of enrichment behind this diagnosis.")


if __name__ == "__main__":
    main()
