#!/usr/bin/env python
"""DIO as a service: many machines, one analysis pipeline (paper §II-F).

The paper: *"one can deploy DIO as a service, setting up the analysis
pipeline on dedicated servers and allowing multiple executions of
DIO's tracer on different machines and by distinct users."*

This example runs three independent "machines" (separate simulated
kernels), each tracing a different workload into the *same* shared
backend under its own session name, then explores the combined data
the way an operator at the Kibana screen would.

Run with::

    python examples/dio_as_a_service.py
"""

import numpy as np

from repro.backend import DocumentStore
from repro.backend.persistence import list_sessions
from repro.kernel import Kernel
from repro.sim import Environment
from repro.tracer import DIOTracer, TracerConfig
from repro.visualizer import DIODashboards, load_predefined, render_table
from repro.workloads import (metadata_storm, mixed_rw, sequential_writer,
                             small_appender)


def machine(session, proc_name, workload_factory, store):
    """One 'machine': its own kernel + tracer, the shared backend."""
    env = Environment()
    kernel = Kernel(env, ncpus=2)
    tracer = DIOTracer(env, kernel, store,
                       TracerConfig(session_name=session))
    task = kernel.spawn_process(proc_name).threads[0]
    tracer.attach()

    def main():
        yield from workload_factory(kernel, task)
        yield from tracer.shutdown()

    env.run(until=env.process(main()))
    return tracer


def main():
    store = DocumentStore()   # the dedicated analysis pipeline

    rng = np.random.default_rng(11)
    machine("edge-01", "log-shipper",
            lambda k, t: small_appender(k, t, "/var.log", appends=300),
            store)
    machine("db-02", "kv-store",
            lambda k, t: mixed_rw(k, t, "/store.db", rng, operations=400),
            store)
    machine("build-03", "ci-runner",
            lambda k, t: metadata_storm(k, t, "/tmp.build", files=40),
            store)

    print("--- sessions at the shared backend ---")
    rows = [[s["session"], s["events"], ", ".join(s["processes"])]
            for s in list_sessions(store)]
    print(render_table(["session", "events", "processes"], rows))
    print()

    # Cross-session view: which machine generates which syscall mix?
    print("--- syscall mix per machine ---")
    for summary in list_sessions(store):
        session = summary["session"]
        dash = DIODashboards(store, session=session)
        print(f"[{session}]")
        print(dash.syscall_summary())
        print()

    # Per-session dashboards stay isolated despite the shared store.
    print("--- overview dashboard, session db-02 only ---")
    print(load_predefined("overview").render(store, session="db-02"))


if __name__ == "__main__":
    main()
