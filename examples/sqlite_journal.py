#!/usr/bin/env python
"""§V extension: diagnosing an unfamiliar application with DIO.

Traces a SQLite-style embedded database running the same commit-heavy
workload in its two journal modes, then lets DIO's pipeline explain —
without looking at the application's code — why the rollback-journal
(DELETE) mode is slower: per-transaction journal file churn and double
fsyncs, all visible in the syscall trace.

Run with::

    python examples/sqlite_journal.py
"""

from repro.analysis.compare import compare_sessions
from repro.analysis.detectors import ShortLivedFileDetector, run_detectors
from repro.apps.sqlitedb import JOURNAL_DELETE, JOURNAL_WAL, PAGE_SIZE
from repro.backend import DocumentStore
from repro.backend.persistence import export_session, import_session
from repro.experiments.sqlite_case import run_both_modes
from repro.visualizer import render_table


def main():
    print("running 120 write transactions in each journal mode...\n")
    cases = run_both_modes(transactions=120)

    rows = []
    for mode, case in cases.items():
        rows.append([
            mode,
            f"{case.mean_commit_ns / 1e3:.1f} us",
            case.db.stats.fsyncs,
            case.db.stats.journals_created,
            case.db.stats.checkpoints,
            case.tracer.stats.shipped,
        ])
    print(render_table(
        ["journal mode", "mean commit", "fsyncs", "journals",
         "checkpoints", "traced events"], rows))
    print()

    # What do the traces say? Per-syscall mix of each session.
    for mode, case in cases.items():
        print(f"--- syscall mix, journal_mode={mode} ---")
        print(case.dashboards.syscall_summary())
        print()

    # The detector battery points at the problem.
    for mode, case in cases.items():
        findings = run_detectors(
            case.store, session=case.session,
            detectors=(ShortLivedFileDetector(min_bytes=PAGE_SIZE,
                                              min_files=1),))
        label = findings[0] if findings else "clean"
        print(f"{mode}: {label}")
    print()

    # And the session comparison quantifies the difference.
    store = DocumentStore()
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as tmp:
        for mode, case in cases.items():
            path = Path(tmp) / f"{mode}.jsonl"
            export_session(case.store, case.session, path)
            import_session(store, path)
    comparison = compare_sessions(store, cases[JOURNAL_DELETE].session,
                                  cases[JOURNAL_WAL].session)
    print("syscall-count deltas (WAL minus DELETE):")
    for syscall, delta in comparison.syscall_deltas.items():
        print(f"  {syscall:10s} {delta:+d}")
    print()
    print("DIAGNOSIS: the DELETE-journal trace creates, fsyncs, and")
    print("unlinks one journal file per transaction and fsyncs the main")
    print("database on top — WAL mode replaces all of that with a single")
    print("appending log and an occasional checkpoint.")


if __name__ == "__main__":
    main()
