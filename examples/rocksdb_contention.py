#!/usr/bin/env python
"""§III-C walkthrough: finding the root cause of RocksDB tail latency.

Runs db_bench (8 client threads, YCSB-A mix, Zipfian keys) against the
LSM store with 1 flush + 7 compaction threads, traced by DIO capturing
only data syscalls, then:

- plots the p99 client latency over time (the paper's Fig. 3),
- plots syscalls per thread name over time (the paper's Fig. 4), and
- runs the contention detector that correlates the two.

Run with::

    python examples/rocksdb_contention.py          # ~1.2 virtual seconds
    python examples/rocksdb_contention.py 2.0      # longer run
"""

import sys

from repro.analysis.contention import detect_contention
from repro.experiments import run_rocksdb_case
from repro.experiments.rocksdb_case import RocksDBScale

SECOND = 1_000_000_000
WINDOW_NS = 100_000_000


def main():
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 1.2
    print(f"running db_bench for {duration:g} virtual seconds "
          f"(8 clients, YCSB-A, 1 flush + 7 compaction threads)...\n")
    case = run_rocksdb_case(RocksDBScale(duration_ns=int(duration * SECOND)))

    bench = case.bench
    print(f"operations   : {bench.op_count:,} "
          f"({bench.throughput_ops_per_sec:,.0f} ops/s)")
    print(f"flushes      : {case.db.stats.flushes}, "
          f"compactions: {case.db.stats.compactions}")
    print(f"traced events: {case.tracer.stats.shipped:,} "
          f"({case.tracer.stats.drop_ratio * 100:.2f}% discarded)\n")

    print("--- Fig. 3: p99 client latency over time (source: db_bench) ---")
    print(case.dashboards.latency_timeline(bench.records(), WINDOW_NS))
    print()
    print("--- Fig. 4: syscalls by thread name over time (source: DIO) ---")
    print(case.dashboards.syscalls_over_time_chart(WINDOW_NS))
    print()

    report = detect_contention(case.store, "dio_trace", WINDOW_NS,
                               min_compaction_threads=5,
                               session=case.session)
    print("--- contention analysis ---")
    print(f"windows with >= {report.threshold} active compaction threads: "
          f"{len(report.contended_windows)}")
    print(f"calm windows: {len(report.calm_windows)}")
    print(f"client syscalls per window: {report.client_rate_calm:,.0f} calm "
          f"vs {report.client_rate_contended:,.0f} contended "
          f"({report.client_slowdown:.2f}x slowdown)")
    print()
    print("DIAGNOSIS (paper §III-C): when several compaction threads submit")
    print("I/O concurrently they saturate the shared disk; flushes and")
    print("L0->L1 compactions slow down, client writes stall behind them,")
    print("and the client-visible p99 spikes — the SILK phenomenon, found")
    print("here without instrumenting a single line of RocksDB.")


if __name__ == "__main__":
    main()
