"""Setuptools entry point.

A classic ``setup.py`` is kept (instead of PEP 517 metadata in
``pyproject.toml``) because this environment is offline and lacks the
``wheel`` package required by PEP 660 editable installs; the legacy
``setup.py develop`` path works without it.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of DIO (DSN 2023): diagnosing applications' I/O "
        "behavior through system call observability"
    ),
    python_requires=">=3.11",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    entry_points={"console_scripts": ["dio=repro.cli:main"]},
)
