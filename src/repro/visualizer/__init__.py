"""DIO's visualizer: the Kibana substitute.

Renders the predefined visualizations the paper's figures come from —
tabular file-access views (Fig. 2), per-thread syscall activity over
time (Fig. 4), latency timelines (Fig. 3) — as plain text and CSV,
plus generic table/histogram/sparkline primitives for custom
dashboards.
"""

from repro.visualizer.render import (render_table, render_histogram,
                                     render_heatmap, render_sparkline_grid,
                                     render_timeseries, to_csv)
from repro.visualizer.dashboards import DIODashboards, SelfMonitoringDashboard
from repro.visualizer.saved import (Dashboard, DashboardError,
                                    PREDEFINED_DASHBOARDS, load_predefined)

__all__ = [
    "render_table",
    "render_histogram",
    "render_heatmap",
    "render_sparkline_grid",
    "render_timeseries",
    "to_csv",
    "DIODashboards",
    "SelfMonitoringDashboard",
    "Dashboard",
    "DashboardError",
    "PREDEFINED_DASHBOARDS",
    "load_predefined",
]
