"""Saved dashboards: declarative, importable panel specifications.

The paper's deployment flow (§II-F) *imports DIO's predefined
dashboards* into the visualization component, after which users can
edit them or build their own.  This module is that mechanism: a
dashboard is a JSON-serializable spec of panels, validated on load and
rendered against any backend/session.

Panel types::

    {"type": "event_table",   "syscalls": [...], "procs": [...]}
    {"type": "syscall_histogram", "size": 20}
    {"type": "process_table"}
    {"type": "thread_sparklines", "window_ms": 100}
    {"type": "offset_heatmap", "file_path": "/a" | "file_tag": "..."}

The paper's own dashboards ship as :data:`PREDEFINED_DASHBOARDS`.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.backend.store import DocumentStore

from repro.visualizer.dashboards import DIODashboards
from repro.visualizer.render import render_histogram

#: Recognized panel types.
PANEL_TYPES = ("event_table", "syscall_histogram", "process_table",
               "thread_sparklines", "offset_heatmap", "process_io",
               "diagnosis")


class DashboardError(Exception):
    """Malformed dashboard specification."""


class Dashboard:
    """A validated, renderable dashboard."""

    def __init__(self, name: str, title: str, panels: list[dict]):
        self.name = name
        self.title = title
        self.panels = panels

    # ------------------------------------------------------------------
    # Loading / saving

    @classmethod
    def from_spec(cls, spec: dict | str) -> "Dashboard":
        """Validate and load a spec (dict or JSON string)."""
        if isinstance(spec, str):
            try:
                spec = json.loads(spec)
            except json.JSONDecodeError as exc:
                raise DashboardError(f"invalid JSON: {exc}") from exc
        if not isinstance(spec, dict):
            raise DashboardError(f"spec must be an object: {spec!r}")
        for field in ("name", "title", "panels"):
            if field not in spec:
                raise DashboardError(f"spec is missing {field!r}")
        panels = spec["panels"]
        if not isinstance(panels, list) or not panels:
            raise DashboardError("panels must be a non-empty list")
        for panel in panels:
            cls._validate_panel(panel)
        return cls(spec["name"], spec["title"], panels)

    @staticmethod
    def _validate_panel(panel: Any) -> None:
        if not isinstance(panel, dict):
            raise DashboardError(f"panel must be an object: {panel!r}")
        kind = panel.get("type")
        if kind not in PANEL_TYPES:
            raise DashboardError(
                f"unknown panel type {kind!r}; expected one of {PANEL_TYPES}")
        if kind == "thread_sparklines":
            window = panel.get("window_ms", 100)
            if not isinstance(window, (int, float)) or window <= 0:
                raise DashboardError(f"bad window_ms {window!r}")
        if kind == "offset_heatmap":
            if not panel.get("file_path") and not panel.get("file_tag"):
                raise DashboardError(
                    "offset_heatmap needs file_path or file_tag")
        if kind == "diagnosis":
            limit = panel.get("max_findings")
            if limit is not None and (not isinstance(limit, int)
                                      or limit < 0):
                raise DashboardError(f"bad max_findings {limit!r}")

    def to_spec(self) -> dict:
        """The JSON-serializable representation."""
        return {"name": self.name, "title": self.title,
                "panels": self.panels}

    def to_json(self) -> str:
        """Serialize for export/import."""
        return json.dumps(self.to_spec(), indent=2, sort_keys=True)

    # ------------------------------------------------------------------
    # Rendering

    def render(self, store: DocumentStore, index: str = "dio_trace",
               session: Optional[str] = None) -> str:
        """Render every panel against ``store`` as one text report."""
        dash = DIODashboards(store, index, session=session)
        blocks = [f"==== {self.title} ===="
                  + (f"  (session: {session})" if session else "")]
        for panel in self.panels:
            blocks.append(self._render_panel(panel, dash))
        return "\n\n".join(blocks)

    def _render_panel(self, panel: dict, dash: DIODashboards) -> str:
        kind = panel["type"]
        title = panel.get("title", kind)
        body: str
        if kind == "event_table":
            body = dash.file_access_table(
                procs=panel.get("procs"),
                syscalls=panel.get("syscalls"),
                path=panel.get("path"))
        elif kind == "syscall_histogram":
            response = dash.store.search(
                dash.index, query=dash._base_query(), size=0,
                aggs={"s": {"terms": {"field": "syscall",
                                      "size": panel.get("size", 20)}}})
            buckets = [(b["key"], b["doc_count"])
                       for b in response["aggregations"]["s"]["buckets"]]
            body = render_histogram(buckets)
        elif kind == "process_table":
            body = dash.process_summary()
        elif kind == "process_io":
            body = dash.process_io_table()
        elif kind == "thread_sparklines":
            window_ns = int(panel.get("window_ms", 100) * 1_000_000)
            body = dash.syscalls_over_time_chart(window_ns)
        elif kind == "offset_heatmap":
            body = dash.offset_heatmap(file_path=panel.get("file_path"),
                                       file_tag=panel.get("file_tag"))
        elif kind == "diagnosis":
            from repro.analysis.diagnose import diagnose_session

            report = diagnose_session(
                dash.store, dash.session, dash.index,
                window_events=panel.get("window_events", 64))
            if panel.get("max_findings") is not None:
                report.findings = report.findings[:panel["max_findings"]]
            body = report.render()
        else:  # pragma: no cover - validated at load time
            raise DashboardError(f"unknown panel type {kind!r}")
        return f"-- {title} --\n{body}"


#: The dashboards DIO ships with (paper §II-F / the figures of §III).
PREDEFINED_DASHBOARDS: dict[str, dict] = {
    "overview": {
        "name": "overview",
        "title": "DIO overview",
        "panels": [
            {"type": "syscall_histogram", "title": "events per syscall"},
            {"type": "process_table", "title": "events per process"},
            {"type": "process_io", "title": "I/O per process"},
        ],
    },
    "file-access": {
        "name": "file-access",
        "title": "File access table (Fig. 2)",
        "panels": [
            {"type": "event_table",
             "title": "storage syscalls by time",
             "syscalls": ["open", "openat", "creat", "read", "write",
                          "close", "unlink", "lseek"]},
        ],
    },
    "thread-activity": {
        "name": "thread-activity",
        "title": "Per-thread syscall activity (Fig. 4)",
        "panels": [
            {"type": "thread_sparklines", "window_ms": 100,
             "title": "syscalls over time by thread"},
        ],
    },
    "diagnosis": {
        "name": "diagnosis",
        "title": "Automatic diagnosis",
        "panels": [
            {"type": "diagnosis",
             "title": "ranked findings, DFG phases, and evidence"},
            {"type": "process_table", "title": "events per process"},
        ],
    },
}


def load_predefined(name: str) -> Dashboard:
    """Load one of DIO's shipped dashboards by name."""
    try:
        return Dashboard.from_spec(PREDEFINED_DASHBOARDS[name])
    except KeyError:
        raise DashboardError(
            f"no predefined dashboard {name!r}; "
            f"available: {sorted(PREDEFINED_DASHBOARDS)}") from None
