"""DIO's predefined dashboards (the figures of the paper's §III).

Each method both returns the underlying structured data and can render
it as text, mirroring how the real tool pairs Elasticsearch queries
with Kibana visualizations.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.analysis.contention import syscall_counts_by_thread
from repro.analysis.latency import percentile_series
from repro.backend.store import DocumentStore

from repro.visualizer.render import (render_heatmap, render_sparkline_grid,
                                     render_table, render_timeseries,
                                     sparkline)


def _format_ns(value) -> str:
    """Human-readable virtual duration."""
    if value is None:
        return "-"
    if value < 1_000:
        return f"{value:.0f} ns"
    if value < 1_000_000:
        return f"{value / 1e3:.1f} us"
    if value < 1_000_000_000:
        return f"{value / 1e6:.1f} ms"
    return f"{value / 1e9:.3f} s"


def _format_count(value) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.2f}"
    return f"{int(value):,}"


def _ratio_pct(numerator: float, denominator: float) -> str:
    if not denominator:
        return "0.0 %"
    return f"{numerator / denominator * 100:.1f} %"


class SelfMonitoringDashboard:
    """The "DIO self-monitoring" dashboard: the pipeline observing itself.

    Mirrors how the paper's Kibana instance monitors its Elasticsearch
    backend, but over our whole pipeline: per-stage counters, stage
    latency quantiles from the span histograms, the derived health
    gauges, and span-duration distributions as sparklines.  Rendered
    with the same text primitives as the paper-figure dashboards.
    """

    def __init__(self, telemetry):
        self.telemetry = telemetry

    def stage_table(self) -> str:
        """Per-stage counters and p50/p95/p99 span latencies."""
        report = self.telemetry.health_report()
        rows = []
        for stage in report.stages:
            counters = "  ".join(f"{name}={_format_count(value)}"
                                 for name, value in stage.counters.items())
            latency = stage.latency_ns or {}
            rows.append([stage.name, counters,
                         _format_ns(latency.get("p50")),
                         _format_ns(latency.get("p95")),
                         _format_ns(latency.get("p99"))])
        return render_table(["stage", "counters", "p50", "p95", "p99"],
                            rows, max_col_width=72)

    #: Breaker state codes back to names for the derived table.
    _BREAKER_NAMES = {0: "closed", 1: "half-open", 2: "open"}

    def derived_table(self) -> str:
        """The derived drop-ratio / lag / retry-rate / spill gauges."""
        derived = self.telemetry.health_report().derived
        breaker = self._BREAKER_NAMES.get(
            int(derived.get("breaker_state", 0)), "?")
        rows = [
            ["drop ratio", f"{derived['drop_ratio'] * 100:.2f} %"],
            ["consumer lag", f"{derived['consumer_lag']:.0f} records"],
            ["retry rate",
             f"{derived['retry_rate'] * 100:.2f} % of bulk attempts"],
            ["unresolved ratio", f"{derived['unresolved_ratio'] * 100:.2f} %"],
            ["spill backlog",
             f"{derived.get('spill_backlog', 0):.0f} records"],
            ["breaker state", breaker],
        ]
        return render_table(["gauge", "value"], rows)

    def agg_engine_table(self) -> str:
        """Columnar aggregation engine: pushdown, cache, kernel time."""
        value = self.telemetry.registry.value
        pushed = value("dio_store_agg_pushdown_total")
        fallback = value("dio_store_agg_fallback_total")
        hits = value("dio_store_agg_cache_hits_total")
        misses = value("dio_store_agg_cache_misses_total")
        total = pushed + fallback
        lookups = hits + misses
        family = self.telemetry.registry.get("dio_store_agg_kernel_ns")
        kernel_ns = sum(child.sum for _, child in family.samples()) \
            if family is not None else 0.0
        rows = [
            ["pushdown", f"{_format_count(pushed)} "
             f"({_ratio_pct(pushed, total)} of agg requests)"],
            ["fallback (legacy walk)", _format_count(fallback)],
            ["cache hits", f"{_format_count(hits)} "
             f"({_ratio_pct(hits, lookups)} of lookups)"],
            ["cache misses", _format_count(misses)],
            ["kernel time", f"{kernel_ns / 1e6:.2f} ms total"],
        ]
        return render_table(["aggregation engine", "value"], rows)

    def span_histograms(self) -> str:
        """One sparkline per span name over the duration buckets."""
        family = self.telemetry.registry.get("dio_span_duration_ns")
        if family is None:
            return "(no spans recorded)"
        lines = []
        for labels, child in family.samples():
            counts = child.bucket_counts()
            lines.append((labels["span"], counts, child.count))
        if not lines:
            return "(no spans recorded)"
        width = max(len(name) for name, _, _ in lines)
        return "\n".join(
            f"{name.ljust(width)} {sparkline(counts)} (n={total})"
            for name, counts, total in lines)

    def render(self) -> str:
        """The full self-monitoring dashboard."""
        sections = [
            "=== DIO self-monitoring ===",
            "",
            "pipeline stages (kernel filter -> ring buffer -> consumer "
            "-> shipper -> store -> correlator)",
            self.stage_table(),
            "",
            "derived health gauges",
            self.derived_table(),
            "",
            "columnar aggregation engine (dio_store_agg_*)",
            self.agg_engine_table(),
            "",
            "span durations (buckets 0 ns .. 10 s, log scale)",
            self.span_histograms(),
        ]
        return "\n".join(sections)


class DIODashboards:
    """Dashboards over one backend index (optionally one session)."""

    def __init__(self, store: DocumentStore, index: str = "dio_trace",
                 session: Optional[str] = None):
        self.store = store
        self.index = index
        self.session = session

    def _base_query(self, extra: Optional[list] = None) -> dict:
        must: list = list(extra or [])
        if self.session:
            must.append({"term": {"session": self.session}})
        if not must:
            return {"match_all": {}}
        return {"bool": {"must": must}}

    # ------------------------------------------------------------------
    # Fig. 2: tabular file-access view

    FILE_ACCESS_COLUMNS = ("time", "proc_name", "syscall", "ret",
                           "file_tag", "offset")

    def file_access_rows(self, procs: Optional[Iterable[str]] = None,
                         syscalls: Optional[Iterable[str]] = None,
                         path: Optional[str] = None) -> list[dict]:
        """The event rows of a Fig. 2-style table, sorted by time."""
        extra: list = []
        if procs:
            extra.append({"terms": {"proc_name": list(procs)}})
        if syscalls:
            extra.append({"terms": {"syscall": list(syscalls)}})
        if path:
            extra.append({"bool": {
                "should": [
                    {"term": {"file_path": path}},
                    {"term": {"args.path": path}},
                ],
            }})
        response = self.store.search(self.index,
                                     query=self._base_query(extra),
                                     sort=["time"], size=None)
        return [hit["_source"] for hit in response["hits"]["hits"]]

    def file_access_table(self, procs: Optional[Iterable[str]] = None,
                          syscalls: Optional[Iterable[str]] = None,
                          path: Optional[str] = None) -> str:
        """Render the Fig. 2 tabular visualization."""
        rows = []
        for event in self.file_access_rows(procs, syscalls, path):
            rows.append([
                f"{event['time']:,}",
                event["proc_name"],
                event["syscall"],
                event["ret"],
                event.get("file_tag", ""),
                event.get("offset", ""),
            ])
        return render_table(
            ["time", "proc_name", "syscall", "ret_val",
             "file_tag (dev_no ino_no timestamp)", "offset"], rows)

    # ------------------------------------------------------------------
    # Fig. 4: syscalls over time by thread name

    def syscalls_over_time(self, window_ns: int) -> dict:
        """``window -> {thread: count}`` (date_histogram + terms)."""
        return syscall_counts_by_thread(self.store, self.index, window_ns,
                                        self.session)

    def syscalls_over_time_chart(self, window_ns: int) -> str:
        """Render the Fig. 4 per-thread activity grid."""
        data = self.syscalls_over_time(window_ns)
        if not data:
            return "(no data)"
        windows = sorted(data)
        lo, hi = windows[0], windows[-1]
        full = list(range(lo, hi + window_ns, window_ns))
        groups: dict[str, dict[int, float]] = {}
        for window, threads in data.items():
            for thread, count in threads.items():
                groups.setdefault(thread, {})[window] = count
        header = (f"syscalls issued over time, aggregated by thread name "
                  f"(window = {window_ns / 1e6:.0f} ms)")
        return header + "\n" + render_sparkline_grid(full, groups)

    # ------------------------------------------------------------------
    # Fig. 3: tail-latency timeline (source: db_bench, as in the paper)

    @staticmethod
    def latency_timeline(operations: Sequence[tuple[int, int, str, int]],
                         window_ns: int, percent: float = 99.0,
                         op: Optional[str] = None) -> str:
        """Render the Fig. 3 p99-latency-over-time chart.

        Like the paper's Fig. 3, the data comes from the benchmark's own
        latency records rather than from traced syscalls.
        """
        series = percentile_series(operations, window_ns, percent, op)
        points = [(p.window_start_ns, p.value_ns / 1e6) for p in series]
        title = f"p{percent:g} client latency (ms) per {window_ns / 1e6:.0f} ms window"
        return title + "\n" + render_timeseries(points, unit=" ms")

    # ------------------------------------------------------------------
    # Offset access map (the enrichment §III-B depends on)

    def offset_events(self, file_path: Optional[str] = None,
                      file_tag: Optional[str] = None) -> list[dict]:
        """Data-syscall events with offsets for one file, by time."""
        extra: list = [
            {"terms": {"syscall": ["read", "pread64", "readv",
                                   "write", "pwrite64", "writev"]}},
            {"exists": {"field": "offset"}},
        ]
        if file_path:
            extra.append({"term": {"file_path": file_path}})
        if file_tag:
            extra.append({"term": {"file_tag": file_tag}})
        response = self.store.search(self.index,
                                     query=self._base_query(extra),
                                     sort=["time"], size=None)
        return [hit["_source"] for hit in response["hits"]["hits"]]

    def offset_heatmap(self, file_path: Optional[str] = None,
                       file_tag: Optional[str] = None,
                       time_buckets: int = 60,
                       offset_buckets: int = 16) -> str:
        """File-offset-over-time access map (IOscope-style).

        Sequential access renders as a rising diagonal, random access
        as scatter — making the paper's "costly access patterns"
        recognizable at a glance.
        """
        events = self.offset_events(file_path, file_tag)
        if not events:
            return "(no data)"
        times = [e["time"] for e in events]
        ends = [e["offset"] + max(e["ret"], 0) for e in events]
        t_lo, t_hi = min(times), max(times)
        max_offset = max(ends) or 1
        t_span = max(t_hi - t_lo, 1)
        grid = [[0.0] * time_buckets for _ in range(offset_buckets)]
        for event in events:
            col = min(int((event["time"] - t_lo) / t_span * (time_buckets - 1)),
                      time_buckets - 1)
            row = min(int(event["offset"] / max_offset * (offset_buckets - 1)),
                      offset_buckets - 1)
            # Row 0 at the top should be the HIGHEST offset.
            grid[offset_buckets - 1 - row][col] += 1
        labels = [f"{max_offset * (offset_buckets - i) // offset_buckets:>9}"
                  for i in range(offset_buckets)]
        target = file_path or file_tag or "all files"
        return render_heatmap(
            grid, labels,
            title=f"offset access map for {target} (x: time, y: offset)")

    # ------------------------------------------------------------------
    # Summary panels

    def syscall_summary(self) -> str:
        """Counts by syscall type — the landing dashboard panel."""
        response = self.store.search(
            self.index, query=self._base_query(), size=0,
            aggs={"by_syscall": {"terms": {"field": "syscall", "size": 50}}})
        rows = [[b["key"], b["doc_count"]]
                for b in response["aggregations"]["by_syscall"]["buckets"]]
        return render_table(["syscall", "events"], rows)

    def process_summary(self) -> str:
        """Counts and distinct threads per process name."""
        response = self.store.search(
            self.index, query=self._base_query(), size=0,
            aggs={"by_proc": {
                "terms": {"field": "proc_name", "size": 50},
                "aggs": {"tids": {"cardinality": {"field": "tid"}}},
            }})
        rows = [[b["key"], b["doc_count"], b["tids"]["value"]]
                for b in response["aggregations"]["by_proc"]["buckets"]]
        return render_table(["proc_name", "events", "threads"], rows)

    def process_io_rows(self) -> list[dict]:
        """Per-process I/O totals derived from the trace (iotop-style).

        Sums read/write syscall counts and the bytes their return
        values reported, per process name.
        """
        reads = ("read", "pread64", "readv")
        writes = ("write", "pwrite64", "writev")
        response = self.store.search(
            self.index,
            query=self._base_query(
                [{"terms": {"syscall": list(reads + writes)}},
                 {"range": {"ret": {"gte": 0}}}]),
            size=0,
            aggs={"by_proc": {
                "terms": {"field": "proc_name", "size": 50},
                "aggs": {
                    "r": {"terms": {"field": "syscall", "size": 10},
                          "aggs": {"bytes": {"sum": {"field": "ret"}}}},
                },
            }})
        rows = []
        for bucket in response["aggregations"]["by_proc"]["buckets"]:
            row = {"proc_name": bucket["key"], "read_syscalls": 0,
                   "read_bytes": 0, "write_syscalls": 0, "write_bytes": 0}
            for sub in bucket["r"]["buckets"]:
                bytes_moved = int(sub["bytes"]["value"] or 0)
                if sub["key"] in reads:
                    row["read_syscalls"] += sub["doc_count"]
                    row["read_bytes"] += bytes_moved
                else:
                    row["write_syscalls"] += sub["doc_count"]
                    row["write_bytes"] += bytes_moved
            rows.append(row)
        rows.sort(key=lambda r: -(r["read_bytes"] + r["write_bytes"]))
        return rows

    def process_io_table(self) -> str:
        """Render the iotop-style per-process I/O panel."""
        rows = [[r["proc_name"], r["read_syscalls"], f"{r['read_bytes']:,}",
                 r["write_syscalls"], f"{r['write_bytes']:,}"]
                for r in self.process_io_rows()]
        return render_table(
            ["proc_name", "reads", "bytes read", "writes", "bytes written"],
            rows)
