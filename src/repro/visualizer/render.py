"""Text rendering primitives for dashboards.

All functions return strings; nothing touches a display.  Numeric
scaling uses eight block glyphs for sparklines and ``#`` bars for
histograms, so output stays readable in any terminal and in test
output.
"""

from __future__ import annotations

import io
from typing import Any, Iterable, Optional, Sequence

#: Eight-level block glyphs for sparklines.
_BLOCKS = " ▁▂▃▄▅▆▇█"


def _stringify(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence[Any]],
                 max_col_width: int = 40) -> str:
    """Render an aligned text table with a header rule."""
    rendered_rows = [[_stringify(cell)[:max_col_width] for cell in row]
                     for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        # Cells beyond the header count render unpadded rather than
        # crashing the dashboard on a malformed row.
        return "  ".join(
            cell.ljust(widths[i]) if i < len(widths) else cell
            for i, cell in enumerate(cells)).rstrip()

    lines = [format_row(list(headers)),
             format_row(["-" * w for w in widths])]
    lines.extend(format_row(row) for row in rendered_rows)
    return "\n".join(lines)


def render_histogram(buckets: Iterable[tuple[Any, int]],
                     width: int = 50) -> str:
    """Render ``(label, count)`` buckets as horizontal bars."""
    buckets = list(buckets)
    if not buckets:
        return "(no data)"
    top = max(count for _, count in buckets) or 1
    label_width = max(len(_stringify(label)) for label, _ in buckets)
    lines = []
    for label, count in buckets:
        bar = "#" * max(1 if count else 0, round(count / top * width))
        lines.append(f"{_stringify(label).rjust(label_width)} "
                     f"{str(count).rjust(8)} {bar}")
    return "\n".join(lines)


def sparkline(values: Sequence[float],
              maximum: Optional[float] = None) -> str:
    """One-line block-glyph series scaled to ``maximum``."""
    if not values:
        return ""
    top = maximum if maximum is not None else max(values)
    if top <= 0:
        return _BLOCKS[0] * len(values)
    out = []
    for value in values:
        level = 0 if value <= 0 else max(
            1, min(8, round(value / top * 8)))
        out.append(_BLOCKS[level])
    return "".join(out)


def render_sparkline_grid(windows: Sequence[int],
                          groups: dict[str, dict[int, float]],
                          scale_per_row: bool = False) -> str:
    """The Fig. 4 shape: one sparkline row per group over shared windows.

    ``groups`` maps a row label (e.g. thread name) to ``window -> value``.
    With ``scale_per_row=False`` all rows share one scale, so relative
    magnitudes between threads are comparable.
    """
    if not windows:
        return "(no data)"
    labels = sorted(groups)
    label_width = max((len(label) for label in labels), default=0)
    global_max = max((value for series in groups.values()
                      for value in series.values()), default=0)
    lines = []
    for label in labels:
        series = groups[label]
        values = [series.get(window, 0) for window in windows]
        maximum = max(values) if scale_per_row else global_max
        total = int(sum(values))
        lines.append(f"{label.ljust(label_width)} "
                     f"{sparkline(values, maximum)} ({total})")
    return "\n".join(lines)


def render_timeseries(points: Iterable[tuple[int, float]],
                      height: int = 10, width: int = 72,
                      unit: str = "") -> str:
    """Render an (x, y) series as a fixed-size ASCII chart."""
    points = list(points)
    if not points:
        return "(no data)"
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    top = max(ys) or 1.0
    # Downsample columns to fit the width.
    if len(points) > width:
        step = len(points) / width
        ys = [max(ys[int(i * step):max(int((i + 1) * step), int(i * step) + 1)])
              for i in range(width)]
    columns = len(ys)
    grid = [[" "] * columns for _ in range(height)]
    for col, value in enumerate(ys):
        filled = 0 if value <= 0 else max(1, round(value / top * height))
        for row in range(filled):
            grid[height - 1 - row][col] = "█"
    lines = [f"max={top:.0f}{unit}"]
    lines.extend("".join(row) for row in grid)
    lines.append(f"t: {xs[0]} .. {xs[-1]}")
    return "\n".join(lines)


def render_heatmap(grid: Sequence[Sequence[float]],
                   row_labels: Optional[Sequence[str]] = None,
                   title: str = "") -> str:
    """Render a 2-D intensity grid with block glyphs.

    ``grid[row][col]`` is an intensity; rows render top-to-bottom.
    Used for offset-over-time access maps (random access shows as
    scatter, sequential access as a diagonal).
    """
    rows = [list(row) for row in grid]
    if not rows or not rows[0]:
        return "(no data)"
    top = max((value for row in rows for value in row), default=0)
    label_width = max((len(label) for label in row_labels or []), default=0)
    lines = [title] if title else []
    for index, row in enumerate(rows):
        label = (row_labels[index] if row_labels and index < len(row_labels)
                 else "")
        cells = []
        for value in row:
            if top <= 0 or value <= 0:
                cells.append(_BLOCKS[0] if value <= 0 else _BLOCKS[1])
            else:
                cells.append(_BLOCKS[max(1, min(8, round(value / top * 8)))])
        lines.append(f"{label.rjust(label_width)} |{''.join(cells)}|")
    return "\n".join(lines)


def to_csv(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Serialize a table as CSV (what Kibana's export gives you)."""
    import csv

    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(headers)
    for row in rows:
        writer.writerow([_stringify(cell) for cell in row])
    return out.getvalue()
