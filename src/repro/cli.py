"""``dio`` command-line interface.

Runs the paper's experiments from a terminal::

    dio fluentbit --version 1.4.0     # §III-B, Fig. 2a
    dio fluentbit --version 2.0.5     # §III-B, Fig. 2b
    dio rocksdb --duration 2.0        # §III-C, Fig. 3 + Fig. 4
    dio overhead --ops 1500           # §III-D, Table II
    dio capabilities                  # Table III
    dio resilience                    # ingestion under backend outage

Each subcommand prints the DIO dashboards the corresponding figure or
table was generated from.  Traces can be kept for post-mortem work
(paper §II design principle)::

    dio fluentbit --version 1.4.0 --export buggy.jsonl
    dio fluentbit --version 2.0.5 --export fixed.jsonl
    dio sessions buggy.jsonl fixed.jsonl      # list stored sessions
    dio analyze buggy.jsonl                   # run the detector battery
    dio compare buggy.jsonl fixed.jsonl       # first behavioural diff
    dio segments /var/lib/dio/run --verify    # inspect a segment store

Every TRACE argument accepts either a JSON-lines export or a segment
store directory (docs/STORAGE.md) — the loader auto-detects.
"""

from __future__ import annotations

import argparse
import sys

SECOND = 1_000_000_000


def _cmd_fluentbit(args) -> int:
    from repro.analysis.patterns import find_stale_offset_resumes
    from repro.backend.persistence import export_session
    from repro.experiments import run_fluentbit_case

    case = run_fluentbit_case(args.version)
    session = case.tracer.config.session_name
    print(f"Fluent Bit {args.version} traced by DIO (session {session!r})\n")
    print(case.figure2_table())
    print()
    print(f"client wrote   : {case.written_bytes} bytes")
    print(f"flb delivered  : {case.delivered_bytes} bytes")
    print(f"data lost      : {case.lost_bytes} bytes")
    findings = find_stale_offset_resumes(case.store, "dio_trace")
    for finding in findings:
        print(f"stale-offset resume detected: {finding.proc_name} read "
              f"{finding.file_path or finding.file_tag} from offset "
              f"{finding.offset} on a fresh file")
    if args.export:
        count = export_session(case.store, session, args.export)
        print(f"\nexported {count} events to {args.export}")
    return 0


def _cmd_rocksdb(args) -> int:
    from repro.analysis.contention import detect_contention
    from repro.experiments import run_rocksdb_case
    from repro.experiments.rocksdb_case import RocksDBScale

    scale = RocksDBScale(duration_ns=int(args.duration * SECOND))
    case = run_rocksdb_case(scale)
    window = 100_000_000
    print("Fig. 3 — p99 client latency over time (source: db_bench)\n")
    print(case.dashboards.latency_timeline(case.bench.records(), window))
    print()
    print("Fig. 4 — syscalls over time by thread name (source: DIO)\n")
    print(case.dashboards.syscalls_over_time_chart(window))
    print()
    report = detect_contention(case.store, "dio_trace", window,
                               session=case.session)
    print(f"contended windows (>= {report.threshold} compaction threads): "
          f"{len(report.contended_windows)}")
    print(f"client syscalls/window: calm {report.client_rate_calm:.0f} vs "
          f"contended {report.client_rate_contended:.0f} "
          f"({report.client_slowdown:.1f}x slowdown)")
    print(f"ring-buffer discards: {case.tracer.stats.drop_ratio * 100:.2f}%")
    from repro.analysis.blame import blame_spikes, render_blame

    print()
    print("spike blame (busiest background threads per spike window):")
    print(render_blame(blame_spikes(
        case.store, case.bench.records(), window,
        session=case.session, spike_factor=2.0)))
    if args.export:
        from repro.backend.persistence import export_session

        count = export_session(case.store, case.session, args.export)
        print(f"\nexported {count} events to {args.export}")
    return 0


def _load_traces(paths):
    from repro.backend import DocumentStore
    from repro.backend.persistence import load_session

    # load_session auto-detects the on-disk layout, so every trace
    # argument accepts a JSON-lines file or a segment-store directory.
    store = DocumentStore()
    sessions = [load_session(store, path) for path in paths]
    return store, sessions


def _cmd_segments(args) -> int:
    import json

    from repro.backend.segments import SegmentError, SegmentStorage
    from repro.visualizer import render_table

    try:
        # Inspect/verify must never alter the store (no manifest
        # rewrite, no quarantine, no WAL truncation); only --compact
        # needs a writable open.
        engine = SegmentStorage(args.store, create=False,
                                read_only=not args.compact)
    except SegmentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    exit_code = 0
    report = {"stats": None, "open_report": engine.open_report}
    if args.compact:
        report["compaction"] = engine.compact()
    if args.verify:
        sweep = engine.verify()
        report["verify"] = sweep
        # Damage found at open time (segments dropped from the live
        # view) is a verify failure too, not just bad live blocks.
        if not sweep["ok"] or engine.open_report["segments_dropped"]:
            exit_code = 1
    report["stats"] = stats = engine.stats()
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return exit_code
    rows = []
    for seg in stats["segments"]:
        span = ("-" if seg["time_min"] is None else
                f"{seg['time_min']/1e9:.3f}s..{seg['time_max']/1e9:.3f}s")
        rows.append([seg["name"], seg["rows"], seg["session"], span,
                     f"{seg['bytes'] / 1024:.1f} KiB",
                     len(seg["zone_fields"])])
    print(render_table(
        ["segment", "rows", "session", "time range", "size", "zones"],
        rows))
    print(f"\nrows: {stats['rows']}  (buffered in WAL: "
          f"{stats['buffer_docs']})  on disk: "
          f"{stats['disk_bytes'] / 1024:.1f} KiB")
    if engine.open_report["segments_dropped"]:
        dropped = engine.open_report["dropped"]
        verb = ("detected" if engine.read_only else "quarantined")
        print(f"{verb} {len(dropped)} damaged segment(s) on open:")
        for entry in dropped:
            where = (f" -> {entry['quarantined']}"
                     if "quarantined" in entry else "")
            print(f"  {entry['name']}: {entry['error']}{where}")
    if args.compact:
        comp = report["compaction"]
        print(f"compaction: {comp['compactions']} run(s) merged "
              f"{comp['segments_merged']} segment(s) "
              f"({comp['rows']} rows)")
    if args.verify:
        sweep = report["verify"]
        status = "ok" if sweep["ok"] else "FAILED"
        print(f"checksum sweep: {status} "
              f"({sum(s['blocks_checked'] for s in sweep['segments'])} "
              "blocks checked)")
        for seg in sweep["segments"]:
            for error in seg["errors"]:
                print(f"  {seg['path']}: {error}")
    return exit_code


def _cmd_sessions(args) -> int:
    from repro.backend.persistence import list_sessions
    from repro.visualizer import render_table

    store, _ = _load_traces(args.traces)
    rows = [[s["session"], s["events"],
             f"{(s['last_ns'] - s['first_ns']) / 1e9:.3f} s",
             ", ".join(s["processes"])]
            for s in list_sessions(store)]
    print(render_table(["session", "events", "span", "processes"], rows))
    return 0


def _cmd_analyze(args) -> int:
    import json

    from repro.analysis.detectors import run_detectors

    store, sessions = _load_traces(args.traces)
    exit_code = 0
    results = []
    for session in sessions:
        findings = run_detectors(store, session=session)
        if any(f.severity == "critical" for f in findings):
            exit_code = 1
        if args.json:
            results.append({"session": session,
                            "findings": [f.as_dict() for f in findings]})
            continue
        print(f"=== findings for session {session!r} ===")
        if not findings:
            print("no issues detected")
        for finding in findings:
            print(f"  {finding}")
        print()
    if args.json:
        print(json.dumps(results, indent=2, sort_keys=True))
    return exit_code


def _cmd_replay(args) -> int:
    from repro.kernel import Kernel
    from repro.sim import Environment
    from repro.tracer.replay import TraceReplayer

    store, sessions = _load_traces(args.traces)
    for session in sessions:
        env = Environment()
        kernel = Kernel(env)
        replayer = TraceReplayer.from_session(store, kernel, session,
                                              timed=args.timed)
        report = env.run(until=env.process(replayer.run()))
        print(f"session {session!r}: replayed {report.issued} syscalls "
              f"({report.skipped} skipped) in "
              f"{report.duration_ns / 1e9:.3f} virtual seconds; "
              f"return-value fidelity {report.fidelity * 100:.1f}%")
        stats = kernel.device.stats
        print(f"  disk: {stats.bytes_written:,} B written, "
              f"{stats.bytes_read:,} B read")
    return 0


def _cmd_dashboard(args) -> int:
    from repro.visualizer import Dashboard, load_predefined

    store, sessions = _load_traces(args.traces)
    if args.spec:
        with open(args.spec, "r", encoding="utf-8") as handle:
            dashboard = Dashboard.from_spec(handle.read())
    else:
        dashboard = load_predefined(args.name)
    for session in sessions:
        print(dashboard.render(store, session=session))
        print()
    if args.agg_stats:
        stats = store.agg_stats()
        print("aggregation engine: "
              f"pushdowns={stats['pushdowns']} "
              f"fallbacks={stats['fallbacks']} "
              f"cache_hits={stats['cache_hits']} "
              f"cache_misses={stats['cache_misses']} "
              f"hit_rate={stats['cache_hit_rate']:.0%} "
              f"kernel_ms={stats['kernel_ms']:.2f}")
    return 0


def _cmd_compare(args) -> int:
    from repro.analysis.compare import compare_sessions
    from repro.visualizer import render_table

    store, sessions = _load_traces([args.trace_a, args.trace_b])
    session_a, session_b = sessions
    comparison = compare_sessions(store, session_a, session_b)
    if args.json:
        import json

        from repro.analysis.dfg import compare_session_dfgs

        divergence = comparison.divergence
        print(json.dumps({
            "session_a": session_a,
            "session_b": session_b,
            "syscall_deltas": comparison.syscall_deltas,
            "common_prefix": comparison.common_prefix,
            "behaviorally_identical": comparison.behaviorally_identical,
            "divergence": ({
                "position": divergence.position,
                "event_a": divergence.event_a,
                "event_b": divergence.event_b,
            } if divergence else None),
            "dfg": compare_session_dfgs(store, session_a,
                                        session_b).as_dict(),
        }, indent=2, sort_keys=True))
        return 0
    print(f"comparing {session_a!r} (A) with {session_b!r} (B)\n")
    if comparison.syscall_deltas:
        rows = [[name, f"{delta:+d}"]
                for name, delta in comparison.syscall_deltas.items()]
        print(render_table(["syscall", "count B-A"], rows))
        print()
    if comparison.behaviorally_identical:
        print("sessions are behaviorally identical "
              f"({comparison.common_prefix} matching steps)")
        return 0
    print(f"identical for the first {comparison.common_prefix} steps; "
          "first divergence:")
    print(f"  {comparison.divergence.describe()}")
    return 0


def _cmd_diagnose(args) -> int:
    import json

    from repro.analysis.diagnose import diagnose_session, follow_session

    tap_by_session = {}
    latency_by_session = {}
    if args.scenario:
        from repro.analysis.streaming import DiagnosisTap

        tap = DiagnosisTap()
        if args.scenario == "rocksdb":
            from repro.experiments import run_rocksdb_case
            from repro.experiments.rocksdb_case import RocksDBScale

            scale = RocksDBScale(duration_ns=int(args.duration * SECOND))
            case = run_rocksdb_case(scale, tap=tap)
            store, sessions = case.store, [case.session]
            latency_by_session[case.session] = case.bench.records()
        else:
            from repro.experiments import run_fluentbit_case

            case = run_fluentbit_case(args.version, tap=tap)
            store = case.store
            sessions = [case.tracer.config.session_name]
        tap_by_session[sessions[0]] = tap
    elif args.traces:
        store, sessions = _load_traces(args.traces)
    else:
        print("dio diagnose: provide trace files or --scenario",
              file=sys.stderr)
        return 2
    if args.session:
        if args.session not in sessions:
            print(f"dio diagnose: session {args.session!r} not found "
                  f"(have: {', '.join(sessions)})", file=sys.stderr)
            return 2
        sessions = [args.session]

    reports = []
    for session in sessions:
        tap = tap_by_session.get(session)
        latency = latency_by_session.get(session)
        if args.follow:
            def emit(emit_ns, finding):
                print(f"[{emit_ns / 1e6:10.1f} ms] {finding}")

            print(f"--- streaming findings for session {session!r} ---")
            if tap is None:
                tap = follow_session(store, "dio_trace", session,
                                     latency_records=latency, emit=emit)
                latency = None      # already fed
            else:
                # Live tap: it already rode the consumer path; show the
                # incremental findings it emitted, with timestamps.
                for emit_ns, finding in tap.drain_new():
                    emit(emit_ns, finding)
            print()
        reports.append(diagnose_session(store, session, tap=tap,
                                        latency_records=latency))

    if args.json:
        payload = [report.as_dict() for report in reports]
        print(json.dumps(payload[0] if len(payload) == 1 else payload,
                         indent=2, sort_keys=True))
    else:
        for report in reports:
            print(report.render())
            print()
    return 0


def _cmd_overhead(args) -> int:
    from repro.experiments import run_overhead_comparison
    from repro.visualizer import render_table

    result = run_overhead_comparison(ops_per_thread=args.ops)
    print("Table II — execution time under each tracer "
          "(same operation budget)\n")
    print(render_table(
        ["deployment", "execution time", "overhead",
         "events w/o file path", "ring discards"],
        result.table2_rows()))
    return 0


def _cmd_uring(args) -> int:
    """The io_uring blind-spot comparison: classic vs ring-aware."""
    import json

    from repro.experiments import UringScale, run_uring_comparison
    from repro.visualizer import render_table

    scale = UringScale(batches=max(1, args.records // args.batch_size),
                       batch_size=args.batch_size)
    comparison = run_uring_comparison(scale)
    if args.json:
        print(json.dumps(comparison.as_dict(), indent=2, sort_keys=True))
        return 0 if comparison.outcomes_match else 1
    print("io_uring blind spot — the same log workload, classic "
          "syscalls vs ring submission\n")
    rows = []
    for name, run in comparison.runs.items():
        rows.append([
            name, run.app_mode, run.ring_mode or "-",
            f"{run.execution_time_ns / 1e6:.3f} ms",
            run.store_events, run.per_op_events, run.doorbell_events,
        ])
    print(render_table(
        ["deployment", "app", "tracer", "exec time", "events",
         "per-op I/O", "doorbells"], rows))
    print(f"\nclassic visibility on the ring port: "
          f"{comparison.classic_visibility_ratio * 100:.1f}% "
          f"of ring-aware I/O events")
    print(f"ring-aware tracing overhead: "
          f"{(comparison.ring_aware_overhead - 1) * 100:+.2f}% vs "
          f"untraced")
    print(f"classic/io_uring outcomes identical: "
          f"{comparison.outcomes_match}")
    return 0 if comparison.outcomes_match else 1


def _cmd_resilience(args) -> int:
    import json

    from repro.experiments import ResilienceScale, run_resilience_case
    from repro.visualizer import render_table

    scale = ResilienceScale(duration_ns=int(args.duration * SECOND))
    case = run_resilience_case(scale, compare_baseline=not args.no_baseline)
    try:
        report = case.verify()
        verdict = "PASS"
    except AssertionError as exc:
        report = case.report()
        verdict = f"FAIL: {exc}"

    print("Resilient ingestion — RocksDB traced through a scripted "
          "backend outage\n")
    rows = [[w["kind"], f"{w['start_ns'] / 1e9:.3f} s",
             f"{(w['end_ns'] - w['start_ns']) / 1e6:.0f} ms"]
            for w in report["plan"]["windows"]]
    print(render_table(["fault", "start", "length"], rows))
    print()
    stats = report["stats"]
    print(f"accepted records   : {report['accepted']}")
    print(f"indexed records    : {report['indexed']}")
    print(f"lost records       : {report['lost']}")
    print(f"faults injected    : {report['faults_injected']}")
    print(f"bulk retries       : {stats['ship_retries']} "
          f"({stats['retry_rate'] * 100:.2f}% of "
          f"{stats['bulk_attempts']} attempts)")
    print(f"breaker transitions: opened {report['breaker']['opened']}, "
          f"closed {report['breaker']['closed']}")
    print(f"spill WAL          : {report['spill']['records']} spilled, "
          f"{report['spill']['replayed']} replayed, "
          f"{report['spill']['pending']} pending")
    envelope = report["envelope"]
    print(f"drain lag          : {envelope['drain_lag_ns'] / 1e9:.3f} "
          "virtual s after app exit")
    if envelope["baseline_app_done_ns"] is not None:
        delta = (envelope["app_done_ns"]
                 - envelope["baseline_app_done_ns"])
        print(f"app vs fault-free  : {delta:+d} ns")
    print(f"\nloss/latency envelope: {verdict}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"report written to {args.json}")
    return 0 if verdict == "PASS" else 1


def _cmd_capabilities(_args) -> int:
    from repro.baselines import capability_table

    print("Table III — tool comparison\n")
    print(capability_table())
    return 0


def _run_traced_scenario(args):
    """Run one built-in traced scenario; returns its DIOTracer.

    Everything runs on the virtual clock, so the telemetry that comes
    back — counters, span quantiles, exports — is deterministic.
    """
    if args.scenario == "rocksdb":
        from repro.experiments import run_rocksdb_case
        from repro.experiments.rocksdb_case import RocksDBScale

        scale = RocksDBScale(duration_ns=int(args.duration * SECOND))
        return run_rocksdb_case(scale).tracer
    if args.scenario == "resilience":
        from repro.experiments import ResilienceScale, run_resilience_case

        scale = ResilienceScale(duration_ns=int(args.duration * SECOND))
        return run_resilience_case(scale, compare_baseline=False).tracer
    from repro.experiments import run_fluentbit_case

    return run_fluentbit_case(args.version).tracer


def _add_scenario_arguments(parser) -> None:
    parser.add_argument("--scenario",
                        choices=("fluentbit", "rocksdb", "resilience"),
                        default="fluentbit",
                        help="traced workload to run (default: fluentbit)")
    parser.add_argument("--version", choices=("1.4.0", "2.0.5"),
                        default="1.4.0",
                        help="Fluent Bit version (fluentbit scenario)")
    parser.add_argument("--duration", type=float, default=0.4,
                        help="virtual seconds of db_bench load "
                             "(rocksdb/resilience scenarios)")


def _cmd_metrics(args) -> int:
    tracer = _run_traced_scenario(args)
    if args.format == "json":
        print(tracer.telemetry.to_json())
    else:
        print(tracer.telemetry.to_prometheus(), end="")
    return 0


def _cmd_health(args) -> int:
    import json

    from repro.visualizer import SelfMonitoringDashboard

    tracer = _run_traced_scenario(args)
    if args.format == "json":
        print(json.dumps(tracer.telemetry.health_report().as_dict(),
                         indent=2))
        return 0
    print(f"pipeline health for session "
          f"{tracer.config.session_name!r}\n")
    print(SelfMonitoringDashboard(tracer.telemetry).render())
    return 0


def _cmd_fleet(args) -> int:
    """Serve a fleet of tracing sessions from one sharded backend."""
    import json

    from repro.backend.tenancy import TenantBackend, TenantQuotaExceeded
    from repro.dst.runner import DST_INDEX, execute_pipeline
    from repro.dst.scenario import generate
    from repro.visualizer import render_table

    fleet = TenantBackend(shards_per_tenant=args.shards,
                          default_quota_docs=args.quota)
    for offset in range(args.tenants):
        seed = args.seed + offset
        tenant = fleet.register(f"host-{seed}")
        tenant.ensure_index(DST_INDEX)
        # Each tenant is one traced host: a seeded pipeline capture
        # shipped into the tenant's disjoint shard set.
        run = execute_pipeline(generate(seed), shard_count=1)
        sources = [source for _, source in run.docs]
        try:
            tenant.bulk(DST_INDEX, sources)
        except TenantQuotaExceeded:
            pass
        # One dashboard refresh per tenant, so the rollup shows real
        # query traffic (and exercises the scatter-gather path).
        if tenant.docs_held():
            tenant.search(DST_INDEX, size=0, aggs={
                "by_syscall": {"terms": {"field": "syscall", "size": 50}}})
    report = fleet.fleet_report()
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0 if not report["total_rejections"] else 1
    print(f"fleet: {report['tenant_count']} tenants, "
          f"{report['total_docs']} documents, "
          f"{report['total_rejections']} quota rejections\n")
    rows = []
    for name, entry in report["tenants"].items():
        quota = entry["quota_docs"]
        rows.append([
            name, entry["status"], entry["docs"],
            "-" if quota is None else quota,
            f"{entry['quota_utilisation'] * 100:.0f}%",
            entry["quota_rejections"], entry["shard_count"],
            entry["queries"],
        ])
    print(render_table(
        ["tenant", "health", "docs", "quota", "used", "rejected",
         "shards", "queries"], rows))
    return 0


def _cmd_dst_run(args) -> int:
    import json

    from repro.dst import run_seeds

    seeds = range(args.start, args.start + args.seeds)
    print(f"dst: running seeds {seeds.start}..{seeds.stop - 1}")

    def progress(result):
        if not result.ok:
            print(f"  seed {result.seed}: FAIL "
                  f"({len(result.failures)} failures)")
        elif args.verbose:
            print(f"  seed {result.seed}: ok "
                  f"({result.events_stored} events, "
                  f"digest {result.digest[:12]})")

    campaign = run_seeds(seeds, shrink_failures=args.shrink,
                         progress=progress)
    summary = campaign.summary()
    print(f"dst: {summary['seeds_run']} seeds, "
          f"{summary['seeds_failed']} failed, "
          f"{summary['events_stored']} events stored, "
          f"{summary['consumer_crashes']} consumer crashes, "
          f"{summary['store_crashes']} store crashes, "
          f"{summary['faults_injected']} faults injected")
    if args.save_failures and campaign.failed_seeds:
        import pathlib
        out = pathlib.Path(args.save_failures)
        out.mkdir(parents=True, exist_ok=True)
        for result in campaign.results:
            if result.ok:
                continue
            scenario = campaign.shrunk.get(result.seed, result.scenario)
            path = out / f"seed-{result.seed}.json"
            scenario.save(path)
            (out / f"seed-{result.seed}.failures.txt").write_text(
                "\n".join(result.failures) + "\n", encoding="utf-8")
            print(f"  saved {path}")
    for seed in campaign.failed_seeds:
        print(f"reproduce with: dio dst repro {seed}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
    return 0 if campaign.ok else 1


def _cmd_dst_repro(args) -> int:
    from repro.dst import Scenario, generate, run_scenario, shrink

    if args.scenario:
        scenario = Scenario.load(args.scenario)
        print(f"dst: replaying scenario file {args.scenario}")
    else:
        scenario = generate(args.seed)
    if (args.ingest_mode or args.storage_mode or args.shard_count
            or args.ring_mode):
        import dataclasses
        overrides = {}
        if args.ingest_mode:
            overrides["ingest_mode"] = args.ingest_mode
        if args.storage_mode:
            overrides["storage_mode"] = args.storage_mode
        if args.shard_count:
            overrides["shard_count"] = args.shard_count
        if args.ring_mode:
            overrides["ring_mode"] = args.ring_mode
        scenario = dataclasses.replace(scenario, **overrides)
    print(f"dst: {scenario.describe()}")
    result = run_scenario(scenario)
    if result.ok:
        print(f"dst: seed {scenario.seed} passes "
              f"(digest {result.digest[:16]})")
        return 0
    print(f"dst: seed {scenario.seed} FAILS:")
    for failure in result.failures:
        print(f"  {failure}")
    if args.shrink:
        outcome = shrink(scenario, max_runs=args.shrink_budget)
        print(f"dst: shrunk {outcome.original_ops} -> "
              f"{outcome.final_ops} ops "
              f"({outcome.runs_used} runs)")
        if args.save:
            outcome.scenario.save(args.save)
            print(f"dst: minimal scenario saved to {args.save}")
        else:
            print(outcome.scenario.to_json())
    return 1


def _cmd_dst_corpus(args) -> int:
    from repro.dst import run_corpus

    outcomes = run_corpus(args.dir)
    if not outcomes:
        print(f"dst: no corpus scenarios under {args.dir}")
        return 0
    failed = 0
    for path, result in outcomes:
        verdict = "ok" if result.ok else "FAIL"
        print(f"  {path.name}: {verdict}")
        if not result.ok:
            failed += 1
            for failure in result.failures[:5]:
                print(f"    {failure}")
    print(f"dst: corpus {len(outcomes)} scenarios, {failed} failed")
    return 0 if failed == 0 else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="dio",
        description="DIO (DSN 2023) reproduction: syscall-observability "
                    "experiments on a simulated kernel.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_flb = sub.add_parser("fluentbit", help="§III-B data-loss diagnosis")
    p_flb.add_argument("--version", choices=("1.4.0", "2.0.5"),
                       default="1.4.0")
    p_flb.add_argument("--export", metavar="PATH",
                       help="save the traced session to a JSON-lines file")
    p_flb.set_defaults(func=_cmd_fluentbit)

    p_rdb = sub.add_parser("rocksdb", help="§III-C contention diagnosis")
    p_rdb.add_argument("--duration", type=float, default=2.0,
                       help="virtual seconds of db_bench load")
    p_rdb.add_argument("--export", metavar="PATH",
                       help="save the traced session to a JSON-lines file")
    p_rdb.set_defaults(func=_cmd_rocksdb)

    p_sessions = sub.add_parser("sessions",
                                help="list sessions stored in trace files")
    p_sessions.add_argument("traces", nargs="+", metavar="TRACE")
    p_sessions.set_defaults(func=_cmd_sessions)

    p_segments = sub.add_parser(
        "segments",
        help="inspect a segment store (rows, time ranges, zone maps)")
    p_segments.add_argument("store", metavar="DIR",
                            help="segment store directory")
    p_segments.add_argument("--compact", action="store_true",
                            help="merge contiguous runs of small segments")
    p_segments.add_argument("--verify", action="store_true",
                            help="recompute every block/footer checksum")
    p_segments.add_argument("--json", action="store_true",
                            help="machine-readable report")
    p_segments.set_defaults(func=_cmd_segments)

    p_analyze = sub.add_parser(
        "analyze", help="run the misbehaviour detectors on trace files")
    p_analyze.add_argument("traces", nargs="+", metavar="TRACE")
    p_analyze.add_argument("--json", action="store_true",
                           help="emit findings as machine-readable JSON")
    p_analyze.set_defaults(func=_cmd_analyze)

    p_compare = sub.add_parser(
        "compare", help="diff two traced sessions' behaviour")
    p_compare.add_argument("trace_a", metavar="TRACE_A")
    p_compare.add_argument("trace_b", metavar="TRACE_B")
    p_compare.add_argument("--json", action="store_true",
                           help="emit the comparison (including DFG "
                                "drift) as machine-readable JSON")
    p_compare.set_defaults(func=_cmd_compare)

    p_diag = sub.add_parser(
        "diagnose",
        help="automatic diagnosis: batch + streaming detectors, DFG "
             "phases, evidence-backed report")
    p_diag.add_argument("traces", nargs="*", metavar="TRACE",
                        help="trace files to diagnose post-mortem")
    p_diag.add_argument("--scenario", choices=("fluentbit", "rocksdb"),
                        help="run a built-in case study live with the "
                             "streaming tap on the consumer path")
    p_diag.add_argument("--version", choices=("1.4.0", "2.0.5"),
                        default="1.4.0",
                        help="Fluent Bit version (fluentbit scenario)")
    p_diag.add_argument("--duration", type=float, default=0.4,
                        help="virtual seconds of db_bench load "
                             "(rocksdb scenario)")
    p_diag.add_argument("--session", metavar="NAME",
                        help="diagnose only this session")
    p_diag.add_argument("--follow", action="store_true",
                        help="print streaming findings incrementally, "
                             "with emission timestamps")
    p_diag.add_argument("--json", action="store_true",
                        help="emit the diagnosis report as JSON")
    p_diag.set_defaults(func=_cmd_diagnose)

    p_replay = sub.add_parser(
        "replay", help="re-execute stored sessions on a fresh kernel")
    p_replay.add_argument("traces", nargs="+", metavar="TRACE")
    p_replay.add_argument("--timed", action="store_true",
                          help="preserve recorded inter-event gaps")
    p_replay.set_defaults(func=_cmd_replay)

    p_dash = sub.add_parser(
        "dashboard", help="render a (predefined) dashboard over traces")
    p_dash.add_argument("traces", nargs="+", metavar="TRACE")
    p_dash.add_argument("--name", default="overview",
                        help="predefined dashboard name (default: overview)")
    p_dash.add_argument("--spec", metavar="JSON_FILE",
                        help="custom dashboard spec file instead of --name")
    p_dash.add_argument("--agg-stats", action="store_true",
                        help="after rendering, print the store's columnar "
                             "aggregation counters (pushdown / cache)")
    p_dash.set_defaults(func=_cmd_dashboard)

    p_ovh = sub.add_parser("overhead", help="Table II tracer comparison")
    p_ovh.add_argument("--ops", type=int, default=1500,
                       help="operations per client thread")
    p_ovh.set_defaults(func=_cmd_overhead)

    p_uring = sub.add_parser(
        "uring", help="io_uring blind spot: the same log workload "
                      "classic vs ring-aware")
    p_uring.add_argument("--records", type=int, default=192,
                         help="log records per deployment (default 192)")
    p_uring.add_argument("--batch-size", type=int, default=8,
                         help="records per submission batch (default 8)")
    p_uring.add_argument("--json", action="store_true",
                         help="emit the comparison as JSON")
    p_uring.set_defaults(func=_cmd_uring)

    p_res = sub.add_parser(
        "resilience",
        help="trace RocksDB through a scripted backend outage and "
             "check the loss/latency envelopes")
    p_res.add_argument("--duration", type=float, default=1.0,
                       help="virtual seconds of db_bench load")
    p_res.add_argument("--json", metavar="PATH",
                       help="write the scenario report as JSON")
    p_res.add_argument("--no-baseline", action="store_true",
                       help="skip the fault-free twin run (faster; "
                            "drops the app-isolation check)")
    p_res.set_defaults(func=_cmd_resilience)

    p_cap = sub.add_parser("capabilities", help="Table III feature matrix")
    p_cap.set_defaults(func=_cmd_capabilities)

    p_metrics = sub.add_parser(
        "metrics", help="run a traced scenario and export its telemetry")
    _add_scenario_arguments(p_metrics)
    p_metrics.add_argument("--format", choices=("prometheus", "json"),
                           default="prometheus",
                           help="exposition format (default: prometheus)")
    p_metrics.set_defaults(func=_cmd_metrics)

    p_health = sub.add_parser(
        "health", help="run a traced scenario and print pipeline health")
    _add_scenario_arguments(p_health)
    p_health.add_argument("--format", choices=("text", "json"),
                          default="text",
                          help="report format (default: text)")
    p_health.set_defaults(func=_cmd_health)

    p_fleet = sub.add_parser(
        "fleet", help="serve several traced hosts from one sharded "
                      "multi-tenant backend and print per-tenant health")
    p_fleet.add_argument("--tenants", type=int, default=3,
                         help="traced hosts to simulate (default: 3)")
    p_fleet.add_argument("--shards", type=int, default=2,
                         help="shards per tenant (default: 2)")
    p_fleet.add_argument("--quota", type=int, default=None,
                         help="per-tenant document quota "
                              "(default: unlimited)")
    p_fleet.add_argument("--seed", type=int, default=1,
                         help="first workload seed (default: 1)")
    p_fleet.add_argument("--json", action="store_true",
                         help="emit the fleet report as JSON")
    p_fleet.set_defaults(func=_cmd_fleet)

    p_dst = sub.add_parser(
        "dst", help="deterministic simulation testing: seeded "
                    "whole-pipeline fuzzing with crash/fault injection")
    dst_sub = p_dst.add_subparsers(dest="dst_command", required=True)

    p_dst_run = dst_sub.add_parser(
        "run", help="run a seed campaign through the full harness")
    p_dst_run.add_argument("--seeds", type=int, default=50,
                           help="number of seeds to run (default: 50)")
    p_dst_run.add_argument("--start", type=int, default=1,
                           help="first seed (default: 1)")
    p_dst_run.add_argument("--shrink", action="store_true",
                           help="minimise failing scenarios before "
                                "reporting them")
    p_dst_run.add_argument("--save-failures", metavar="DIR",
                           help="write failing scenarios (shrunk when "
                                "--shrink) and failure lists to DIR")
    p_dst_run.add_argument("--json", metavar="PATH",
                           help="write the campaign summary as JSON")
    p_dst_run.add_argument("--verbose", action="store_true",
                           help="print every seed, not just failures")
    p_dst_run.set_defaults(func=_cmd_dst_run)

    p_dst_repro = dst_sub.add_parser(
        "repro", help="replay one seed (or a saved scenario) and "
                      "report its failures")
    p_dst_repro.add_argument("seed", type=int, nargs="?", default=0,
                             help="seed to replay")
    p_dst_repro.add_argument("--scenario", metavar="PATH",
                             help="replay a saved scenario JSON instead "
                                  "of generating from the seed")
    p_dst_repro.add_argument("--shrink", action="store_true",
                             help="minimise the scenario if it fails")
    p_dst_repro.add_argument("--shrink-budget", type=int, default=64,
                             help="max harness runs while shrinking")
    p_dst_repro.add_argument("--ingest-mode",
                             choices=("vectorized", "legacy"),
                             help="override the scenario's ingest axis "
                                  "(e.g. to bisect a vectorized-only "
                                  "failure)")
    p_dst_repro.add_argument("--storage-mode",
                             choices=("segments", "jsonl"),
                             help="override the scenario's storage axis "
                                  "(segments adds the segment-engine "
                                  "recovery checks)")
    p_dst_repro.add_argument("--shard-count", type=int,
                             help="override the scenario's shard axis "
                                  "(>1 serves the fast run from the "
                                  "scatter-gather router and arms the "
                                  "shard-kill/rebalance stage)")
    p_dst_repro.add_argument("--ring-mode",
                             choices=("classic", "ring-aware"),
                             help="override the scenario's tracer ring "
                                  "mode (ring-aware also arms the "
                                  "classic-twin oracle stage)")
    p_dst_repro.add_argument("--save", metavar="PATH",
                             help="write the shrunk scenario to PATH")
    p_dst_repro.set_defaults(func=_cmd_dst_repro)

    p_dst_corpus = dst_sub.add_parser(
        "corpus", help="replay the checked-in regression corpus")
    p_dst_corpus.add_argument("--dir", default="tests/corpus",
                              help="corpus directory "
                                   "(default: tests/corpus)")
    p_dst_corpus.set_defaults(func=_cmd_dst_corpus)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
