"""Cooperative processes driven by Python generators.

A process advances by yielding :class:`~repro.sim.engine.Event` objects;
the engine resumes it with the event's value once the event fires.  A
process is itself an event that triggers when its generator returns (the
return value becomes the event value) or raises.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.sim.engine import Event, SimulationError, URGENT


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    @property
    def cause(self) -> Any:
        """The cause passed to :meth:`Process.interrupt`."""
        return self.args[0] if self.args else None


class Process(Event):
    """Wraps a generator as a schedulable simulation process."""

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env, generator: Generator, name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Event | None = None
        self.name = name or getattr(generator, "__name__", "process")
        # Bootstrap: resume once at the current time.  The bootstrap
        # event is tracked as the current target so that interrupting a
        # process *before it ever ran* detaches it — otherwise the
        # stale bootstrap would resume the already-finished process.
        initial = Event(env)
        initial._ok = True
        initial._value = None
        initial._triggered = True
        initial.callbacks.append(self._resume)
        self._target = initial
        env.schedule(initial, delay=0)

    @property
    def is_alive(self) -> bool:
        """``True`` while the generator has not finished."""
        return not self._triggered

    @property
    def target(self) -> Event | None:
        """The event this process is currently waiting on."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process.

        The process stops waiting on its current target and resumes
        immediately with the exception.  Interrupting a finished process
        is an error.
        """
        if self._triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._triggered = True
        event.callbacks.append(self._resume)
        self.env.schedule(event, delay=0, priority=URGENT)

    def _resume(self, event: Event) -> None:
        # If we were interrupted, detach from the event we were waiting on.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None

        self.env._active_process = self
        try:
            while True:
                if event.ok:
                    next_event = self._generator.send(event.value)
                else:
                    next_event = self._generator.throw(event.value)
                if not isinstance(next_event, Event):
                    raise SimulationError(
                        f"process {self.name!r} yielded non-event {next_event!r}")
                if next_event.env is not self.env:
                    raise SimulationError(
                        f"process {self.name!r} yielded an event from another environment")
                if next_event.callbacks is not None:
                    # Still pending or triggered-but-unprocessed: wait for it.
                    self._target = next_event
                    next_event.callbacks.append(self._resume)
                    break
                # Already processed: feed its value straight back in.
                event = next_event
        except StopIteration as stop:
            self.succeed(stop.value)
        except Interrupt as exc:
            # An interrupt that escapes the generator terminates it quietly
            # with the interrupt cause as value (daemon-style shutdown).
            self.succeed(exc.cause)
        except BaseException as exc:
            self.fail(exc)
        finally:
            self.env._active_process = None

    def __repr__(self) -> str:
        state = "done" if self._triggered else "alive"
        return f"<Process {self.name!r} {state}>"
