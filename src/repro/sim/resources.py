"""Synchronization and queueing primitives for simulation processes.

All primitives hand out plain :class:`~repro.sim.engine.Event` objects;
processes ``yield`` them to block.  Wait queues are strictly FIFO, which
keeps runs deterministic and models fair kernel queueing.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.engine import Environment, Event, SimulationError


class Lock:
    """A FIFO mutual-exclusion lock."""

    def __init__(self, env: Environment):
        self.env = env
        self._locked = False
        self._waiters: Deque[Event] = deque()

    @property
    def locked(self) -> bool:
        """``True`` while some process holds the lock."""
        return self._locked

    def acquire(self) -> Event:
        """Return an event that fires once the lock is held."""
        event = Event(self.env)
        if not self._locked:
            self._locked = True
            event.succeed(self)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Release the lock, waking the next waiter if any."""
        if not self._locked:
            raise SimulationError("release of unlocked Lock")
        if self._waiters:
            self._waiters.popleft().succeed(self)
        else:
            self._locked = False


class Semaphore:
    """A counting semaphore with FIFO waiters."""

    def __init__(self, env: Environment, value: int = 1):
        if value < 0:
            raise ValueError(f"negative initial value {value}")
        self.env = env
        self._value = value
        self._waiters: Deque[Event] = deque()

    @property
    def value(self) -> int:
        """Number of available permits."""
        return self._value

    def acquire(self) -> Event:
        """Return an event that fires once a permit is held."""
        event = Event(self.env)
        if self._value > 0:
            self._value -= 1
            event.succeed(self)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return a permit, waking the next waiter if any."""
        if self._waiters:
            self._waiters.popleft().succeed(self)
        else:
            self._value += 1


class Store:
    """An unbounded-or-bounded FIFO queue of items.

    ``put`` blocks when the store is full (bounded case); ``get`` blocks
    while the store is empty.
    """

    def __init__(self, env: Environment, capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of queued items (oldest first)."""
        return tuple(self._items)

    def put(self, item: Any) -> Event:
        """Enqueue ``item``; the returned event fires once accepted."""
        event = Event(self.env)
        if self._getters:
            # Hand the item straight to the oldest waiting getter.
            self._getters.popleft().succeed(item)
            event.succeed(None)
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            event.succeed(None)
        else:
            self._putters.append((event, item))
        return event

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns ``False`` if the store is full."""
        if self._getters:
            self._getters.popleft().succeed(item)
            return True
        if self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            return True
        return False

    def get(self) -> Event:
        """Dequeue an item; the returned event fires with the item."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
            self._admit_putter()
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get; returns ``(ok, item_or_None)``."""
        if self._items:
            item = self._items.popleft()
            self._admit_putter()
            return True, item
        return False, None

    def _admit_putter(self) -> None:
        if self._putters:
            put_event, item = self._putters.popleft()
            self._items.append(item)
            put_event.succeed(None)


class Resource:
    """A capacity-limited resource with FIFO request queueing.

    Models shared hardware such as a disk queue slot: ``request`` blocks
    until one of ``capacity`` slots frees up.
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently held slots."""
        return self._in_use

    @property
    def queued(self) -> int:
        """Number of processes waiting for a slot."""
        return len(self._waiters)

    def request(self) -> Event:
        """Return an event that fires once a slot is held."""
        event = Event(self.env)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed(self)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Release a slot, waking the next waiter if any."""
        if self._in_use <= 0:
            raise SimulationError("release of idle Resource")
        if self._waiters:
            self._waiters.popleft().succeed(self)
        else:
            self._in_use -= 1
