"""Virtual-time event loop.

The engine measures time in integer nanoseconds.  An
:class:`Environment` owns a priority queue of scheduled events; calling
:meth:`Environment.run` pops events in timestamp order and fires their
callbacks.  Processes (see :mod:`repro.sim.process`) are themselves
events that trigger when their generator finishes.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Optional

#: Priority for events that must fire before ordinary events at the same
#: timestamp (e.g. interrupts).
URGENT = 0
#: Default scheduling priority.
NORMAL = 1


class SimulationError(Exception):
    """Raised for misuse of the simulation engine."""


class Event:
    """An occurrence that processes can wait on.

    An event starts *pending*; it becomes *triggered* once scheduled with
    a value (or an exception), and *processed* after its callbacks ran.
    Callbacks receive the event itself.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_processed")

    #: Sentinel for "no value yet".
    PENDING = object()

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list] = []
        self._value: Any = Event.PENDING
        self._ok: bool = True
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        """``True`` once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """``True`` once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """``True`` if the event carries a value rather than an exception."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception), available once triggered."""
        if self._value is Event.PENDING:
            raise SimulationError("value of untriggered event is not available")
        return self._value

    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError("event has already been triggered")
        self._ok = True
        self._value = value
        self._triggered = True
        self.env.schedule(self, delay=0, priority=priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception.

        A waiting process will have the exception thrown into it.
        """
        if self._triggered:
            raise SimulationError("event has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self._triggered = True
        self.env.schedule(self, delay=0, priority=priority)
        return self

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:
        state = "processed" if self._processed else (
            "triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed virtual-time delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: int, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = int(delay)
        self._ok = True
        self._value = value
        self._triggered = True
        env.schedule(self, delay=self.delay)


class ConditionValue:
    """Mapping of events to values for :class:`AnyOf`/:class:`AllOf`."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def of(self, event: Event) -> Any:
        """Return the value ``event`` fired with."""
        if event not in self.events:
            raise KeyError(event)
        return event.value

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return f"<ConditionValue {self.events!r}>"


class _Condition(Event):
    """Base for composite events over several sub-events."""

    __slots__ = ("_events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._remaining = len(self._events)
        if not self._events:
            self.succeed(ConditionValue())
            return
        for event in self._events:
            if event.env is not env:
                raise SimulationError("events belong to different environments")
            if event.callbacks is None:
                self._on_event(event)
            else:
                event.callbacks.append(self._on_event)

    def _on_event(self, event: Event) -> None:
        raise NotImplementedError

    def _collect(self) -> ConditionValue:
        value = ConditionValue()
        value.events = [e for e in self._events if e.triggered]
        return value


class AnyOf(_Condition):
    """Fires when any sub-event fires (first failure propagates)."""

    __slots__ = ()

    def _on_event(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Fires once all sub-events fired (first failure propagates)."""

    __slots__ = ()

    def _on_event(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())


class Environment:
    """A deterministic virtual-time event loop.

    Time is kept as integer nanoseconds in :attr:`now`.  Events scheduled
    at the same timestamp fire in (priority, insertion) order, which
    makes runs fully reproducible.
    """

    def __init__(self, initial_time: int = 0):
        self._now = int(initial_time)
        self._queue: list[tuple[int, int, int, Event]] = []
        self._seq = 0
        self._active_process = None
        self._events_processed = 0

    @property
    def now(self) -> int:
        """Current virtual time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Events fired by :meth:`step` over the engine's lifetime."""
        return self._events_processed

    @property
    def queue_depth(self) -> int:
        """Events currently scheduled and not yet fired."""
        return len(self._queue)

    def bind_telemetry(self, registry) -> None:
        """Expose engine health on a telemetry registry.

        ``registry`` is a :class:`repro.telemetry.MetricsRegistry`;
        the engine itself stays telemetry-agnostic — everything is
        read through zero-cost collect-time callbacks.
        """
        registry.counter(
            "dio_sim_events_processed_total",
            "Simulation events fired by the virtual-time engine.",
        ).set_function(lambda: self._events_processed)
        registry.gauge(
            "dio_sim_queue_depth",
            "Events currently scheduled on the engine's queue.",
        ).set_function(lambda: len(self._queue))
        registry.gauge(
            "dio_sim_virtual_time_ns",
            "Current virtual time in nanoseconds.",
        ).set_function(lambda: self._now)

    @property
    def active_process(self):
        """The process currently being resumed, if any."""
        return self._active_process

    def schedule(self, event: Event, delay: int = 0, priority: int = NORMAL) -> None:
        """Queue ``event`` to fire ``delay`` nanoseconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + int(delay), priority, self._seq, event))

    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` ns from now."""
        return Timeout(self, delay, value)

    def process(self, generator) -> "Process":
        """Start a new cooperative process driving ``generator``."""
        from repro.sim.process import Process

        return Process(self, generator)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when any of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when all of ``events`` fired."""
        return AllOf(self, events)

    def peek(self) -> Optional[int]:
        """Timestamp of the next scheduled event, or ``None`` if idle."""
        return self._queue[0][0] if self._queue else None

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise SimulationError("no scheduled events")
        when, _priority, _seq, event = heapq.heappop(self._queue)
        self._now = when
        self._events_processed += 1
        event._run_callbacks()

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), an integer
        timestamp (run up to and including that time), or an
        :class:`Event` (run until it has been processed, returning its
        value or raising its exception).
        """
        stop_at: Optional[int] = None
        stop_event: Optional[Event] = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_at = int(until)
            if stop_at < self._now:
                raise SimulationError(
                    f"until={stop_at} lies in the past (now={self._now})")

        while self._queue:
            if stop_event is not None and stop_event.processed:
                break
            if stop_at is not None and self._queue[0][0] > stop_at:
                self._now = stop_at
                return None
            self.step()

        if stop_event is not None:
            if not stop_event.processed:
                raise SimulationError(
                    "simulation ran out of events before the awaited event fired")
            if not stop_event.ok:
                raise stop_event.value
            return stop_event.value
        if stop_at is not None:
            self._now = stop_at
        return None

    def run_all(self, max_events: int = 50_000_000) -> None:
        """Run until the queue drains, guarding against runaway loops."""
        count = 0
        while self._queue:
            self.step()
            count += 1
            if count >= max_events:
                raise SimulationError(f"exceeded {max_events} events; runaway simulation?")
