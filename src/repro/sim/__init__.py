"""Deterministic discrete-event simulation engine.

This package provides the virtual-time substrate on which the simulated
kernel, applications, and tracers run.  It is a lean, dependency-free
engine in the style of SimPy:

- :class:`~repro.sim.engine.Environment` owns a nanosecond-resolution
  virtual clock and an event queue.
- :class:`~repro.sim.process.Process` drives Python generators as
  cooperative processes; a process advances by ``yield``-ing events.
- :mod:`repro.sim.resources` offers locks, semaphores, FIFO stores, and
  capacity-limited resources with fair queueing.

Everything is single-threaded and deterministic: given the same seeds and
the same process creation order, two runs produce identical event
sequences and timestamps.
"""

from repro.sim.engine import Environment, Event, Timeout, AnyOf, AllOf
from repro.sim.process import Process, Interrupt
from repro.sim.resources import Lock, Semaphore, Store, Resource

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "AnyOf",
    "AllOf",
    "Process",
    "Interrupt",
    "Lock",
    "Semaphore",
    "Store",
    "Resource",
]
