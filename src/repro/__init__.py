"""DIO reproduction: syscall observability for I/O diagnosis.

A from-scratch Python reproduction of *"Diagnosing applications' I/O
behavior through system call observability"* (Esteves, Macedo,
Oliveira, Paulo — DSN 2023), built on a deterministic simulated kernel.

Subpackages
-----------
:mod:`repro.sim`
    Discrete-event engine: virtual clock, processes, resources.
:mod:`repro.kernel`
    Simulated POSIX kernel: VFS, page cache, block device, processes,
    the 42 storage syscalls, tracepoints.
:mod:`repro.ebpf`
    eBPF runtime: maps, programs, per-CPU ring buffers.
:mod:`repro.tracer`
    The DIO tracer (the paper's contribution) and a trace replayer.
:mod:`repro.backend`
    Elasticsearch-like document store, file-path correlation, and
    post-mortem session persistence.
:mod:`repro.visualizer`
    Kibana-like renderers, predefined and saved dashboards.
:mod:`repro.baselines`
    strace- and Sysdig-style comparison tracers; Table III matrix.
:mod:`repro.apps`
    Simulated production applications: Fluent Bit, RocksDB + db_bench,
    and a SQLite-style embedded database.
:mod:`repro.workloads`
    Reusable synthetic I/O workload generators.
:mod:`repro.analysis`
    Latency series, contention detection, pattern detectors, session
    comparison.
:mod:`repro.experiments`
    End-to-end harnesses reproducing every table and figure.

Quick start: see ``examples/quickstart.py`` or the README.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
