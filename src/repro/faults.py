"""Deterministic backend fault injection.

The tracer's user-space consumer is the single bridge between the
per-CPU ring buffers and the backend (paper §III-D).  To prove the
ingestion path degrades gracefully rather than silently corrupting
the diagnosis data, this module injects *scripted, reproducible*
backend failures:

- a :class:`FaultPlan` is a schedule of :class:`FaultWindow`\\ s on the
  simulation clock.  Plans are either written out explicitly
  (:meth:`FaultPlan.scripted`, :meth:`FaultPlan.outages`) or generated
  from a seed (:meth:`FaultPlan.seeded`) — either way two runs with
  the same plan observe byte-identical failures;
- a :class:`FaultyStore` wraps any :class:`~repro.backend.store.
  DocumentStore` and makes its write APIs fail according to the plan.

Three fault kinds model the three ways a real Elasticsearch bulk
request goes wrong:

``error``
    The request is rejected immediately (connection refused, 5xx).
    No time is lost beyond the normal request cost.
``timeout``
    The request hangs for ``timeout_ns`` *and then* fails — the
    expensive failure mode, modelled by the raised
    :class:`InjectedFault` carrying a ``cost_ns`` the consumer must
    pay on the virtual clock before it may react.
``slowdown``
    The request *succeeds* but takes ``slowdown_factor`` times the
    nominal latency; the surplus is returned through
    :meth:`FaultyStore.consume_penalty_ns`.

Injection is fail-fast: a failing window raises *before* the inner
store is touched, so a failed bulk request never partially indexes —
which is what makes the shipper's retry/spill/replay loop exactly-once
(see ``docs/RELIABILITY.md`` for the failure model and its caveats).
"""

from __future__ import annotations

import dataclasses
import random
from bisect import bisect_right
from typing import Callable, Iterable, Optional, Sequence

#: Supported fault kinds.
FAULT_KINDS = ("error", "timeout", "slowdown")

#: Default hang duration of a ``timeout`` fault (virtual ns).
DEFAULT_TIMEOUT_NS = 50_000_000

#: Default latency multiplier of a ``slowdown`` fault.
DEFAULT_SLOWDOWN_FACTOR = 8.0


class FaultError(Exception):
    """Misuse of the fault-injection layer."""


class InjectedFault(ConnectionError):
    """A scripted backend failure.

    Subclasses :class:`ConnectionError` so existing retry paths treat
    it like any transient backend failure.  ``cost_ns`` is the virtual
    time the caller must burn before observing the failure (non-zero
    for ``timeout`` faults); the consumer honours it with a simulation
    timeout.
    """

    def __init__(self, kind: str, at_ns: int, cost_ns: int = 0):
        super().__init__(f"injected backend {kind} at t={at_ns}ns")
        self.kind = kind
        self.at_ns = at_ns
        self.cost_ns = cost_ns


@dataclasses.dataclass(frozen=True)
class FaultWindow:
    """One contiguous fault interval ``[start_ns, end_ns)``."""

    start_ns: int
    end_ns: int
    kind: str = "error"
    #: Hang duration charged per request for ``timeout`` faults.
    timeout_ns: int = DEFAULT_TIMEOUT_NS
    #: Latency multiplier for ``slowdown`` faults (> 1).
    slowdown_factor: float = DEFAULT_SLOWDOWN_FACTOR

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultError(f"unknown fault kind {self.kind!r}; "
                             f"pick from {FAULT_KINDS}")
        if self.start_ns < 0 or self.end_ns <= self.start_ns:
            raise FaultError(
                f"bad fault window [{self.start_ns}, {self.end_ns})")
        if self.timeout_ns < 0:
            raise FaultError(f"negative timeout_ns {self.timeout_ns}")
        if self.slowdown_factor <= 1.0:
            raise FaultError(
                f"slowdown_factor must exceed 1.0: {self.slowdown_factor}")

    @property
    def duration_ns(self) -> int:
        """Length of the window in virtual nanoseconds."""
        return self.end_ns - self.start_ns

    def active_at(self, now_ns: int) -> bool:
        """Whether ``now_ns`` falls inside the window."""
        return self.start_ns <= now_ns < self.end_ns

    def as_dict(self) -> dict:
        """Window fields as plain data (reports, JSON artifacts)."""
        data = {"start_ns": self.start_ns, "end_ns": self.end_ns,
                "kind": self.kind}
        if self.kind == "timeout":
            data["timeout_ns"] = self.timeout_ns
        if self.kind == "slowdown":
            data["slowdown_factor"] = self.slowdown_factor
        return data


class FaultPlan:
    """An ordered, non-overlapping schedule of fault windows."""

    def __init__(self, windows: Iterable[FaultWindow] = ()):
        ordered = sorted(windows, key=lambda w: w.start_ns)
        for earlier, later in zip(ordered, ordered[1:]):
            if later.start_ns < earlier.end_ns:
                raise FaultError(
                    f"overlapping fault windows: {earlier} and {later}")
        self.windows: tuple[FaultWindow, ...] = tuple(ordered)
        self._starts = [w.start_ns for w in self.windows]

    # ------------------------------------------------------------------
    # Constructors

    @classmethod
    def scripted(cls, windows: Sequence[tuple]) -> "FaultPlan":
        """Build a plan from ``(start_ns, end_ns[, kind])`` tuples."""
        return cls(FaultWindow(*window) for window in windows)

    @classmethod
    def outages(cls, starts: Sequence[int], duration_ns: int,
                kind: str = "error", **params) -> "FaultPlan":
        """Equal-length outages beginning at each of ``starts``."""
        return cls(FaultWindow(start, start + duration_ns, kind, **params)
                   for start in starts)

    @classmethod
    def seeded(cls, seed: int, horizon_ns: int, outages: int = 3,
               mean_outage_ns: int = 100_000_000,
               kinds: Sequence[str] = FAULT_KINDS) -> "FaultPlan":
        """A reproducible random plan: same seed, same schedule.

        ``outages`` windows of roughly ``mean_outage_ns`` (0.5x–1.5x)
        are spread over ``[0, horizon_ns)`` without overlapping; kinds
        cycle through ``kinds`` shuffled by the seed.
        """
        if outages < 0:
            raise FaultError(f"negative outage count {outages}")
        rng = random.Random(seed)
        kind_cycle = list(kinds)
        rng.shuffle(kind_cycle)
        windows: list[FaultWindow] = []
        cursor = 0
        for index in range(outages):
            remaining = outages - index
            duration = max(1, int(mean_outage_ns * rng.uniform(0.5, 1.5)))
            # Leave room for the remaining outages to fit.
            slack = horizon_ns - cursor - remaining * duration
            if slack <= 0:
                break
            start = cursor + rng.randrange(max(1, slack // remaining))
            windows.append(FaultWindow(
                start, start + duration, kind_cycle[index % len(kind_cycle)]))
            cursor = start + duration
        return cls(windows)

    # ------------------------------------------------------------------
    # Queries

    def fault_at(self, now_ns: int) -> Optional[FaultWindow]:
        """The window covering ``now_ns``, if any."""
        index = bisect_right(self._starts, now_ns) - 1
        if index >= 0 and self.windows[index].active_at(now_ns):
            return self.windows[index]
        return None

    def next_change_after(self, now_ns: int) -> Optional[int]:
        """Next time the fault state flips (window edge), if any."""
        for window in self.windows:
            if window.start_ns > now_ns:
                return window.start_ns
            if window.active_at(now_ns):
                return window.end_ns
        return None

    @property
    def total_outage_ns(self) -> int:
        """Sum of all window durations."""
        return sum(window.duration_ns for window in self.windows)

    @property
    def last_end_ns(self) -> int:
        """End of the final window (0 for an empty plan)."""
        return self.windows[-1].end_ns if self.windows else 0

    def as_dict(self) -> dict:
        """Plan as plain data."""
        return {"windows": [window.as_dict() for window in self.windows],
                "total_outage_ns": self.total_outage_ns}

    def __len__(self) -> int:
        return len(self.windows)

    def __repr__(self) -> str:
        return (f"<FaultPlan windows={len(self.windows)} "
                f"outage={self.total_outage_ns}ns>")


class FaultyStore:
    """A document store whose write path fails on schedule.

    Wraps (rather than subclasses) the inner store: every attribute it
    does not intercept delegates through ``__getattr__``, so the read
    path, the correlator, and telemetry bindings all reach the real
    store untouched.  Only ``bulk``, ``index_doc``, and
    ``update_docs`` consult the plan — the write APIs the ingestion
    path and correlator depend on.
    """

    def __init__(self, inner, plan: FaultPlan,
                 clock: Callable[[], int],
                 protect: Sequence[str] = ("bulk", "index_doc")):
        for name in protect:
            if not callable(getattr(inner, name, None)):
                raise FaultError(f"inner store has no method {name!r}")
        self.inner = inner
        self.plan = plan
        self.clock = clock
        self.protected = tuple(protect)
        #: Injected failures by kind.
        self.injected = {kind: 0 for kind in FAULT_KINDS}
        #: Slowdown surplus not yet claimed by the consumer.
        self._pending_penalty_ns = 0
        #: Total surplus ever injected (telemetry).
        self.penalty_ns_total = 0

    # ------------------------------------------------------------------
    # Fault core

    def _check(self, nominal_ns: int = 0) -> None:
        """Raise or record a penalty if a window is active right now."""
        now = self.clock()
        window = self.plan.fault_at(now)
        if window is None:
            return
        if window.kind == "slowdown":
            self.injected["slowdown"] += 1
            surplus = int(nominal_ns * (window.slowdown_factor - 1.0))
            self._pending_penalty_ns += surplus
            self.penalty_ns_total += surplus
            return
        self.injected[window.kind] += 1
        cost = window.timeout_ns if window.kind == "timeout" else 0
        raise InjectedFault(window.kind, now, cost_ns=cost)

    def consume_penalty_ns(self) -> int:
        """Claim (and clear) the pending slowdown surplus.

        The consumer calls this after a successful bulk and burns the
        returned virtual nanoseconds, so slowdowns stretch shipping
        latency without breaking the store's synchronous API.
        """
        penalty, self._pending_penalty_ns = self._pending_penalty_ns, 0
        return penalty

    @property
    def faults_injected(self) -> int:
        """Total injected faults across kinds."""
        return sum(self.injected.values())

    def fault_active(self) -> bool:
        """Whether a fault window covers the current instant."""
        return self.plan.fault_at(self.clock()) is not None

    # ------------------------------------------------------------------
    # Intercepted write APIs

    def bulk(self, index: str, sources, nominal_ns: int = 0) -> int:
        """Bulk-index through the plan; fails before the inner store."""
        if "bulk" in self.protected:
            self._check(nominal_ns)
        return self.inner.bulk(index, sources)

    def bulk_columnar(self, index: str, batch, nominal_ns: int = 0) -> int:
        """Vectorized bulk through the plan (same gate as ``bulk``).

        Explicitly intercepted: ``__getattr__`` delegation would let
        RecordBatch bulks bypass the fault windows entirely, making
        the vectorized path untestable under faults.
        """
        if "bulk" in self.protected:
            self._check(nominal_ns)
        return self.inner.bulk_columnar(index, batch)

    def index_doc(self, index: str, source: dict,
                  doc_id: Optional[str] = None) -> str:
        """Single-document put through the plan."""
        if "index_doc" in self.protected:
            self._check()
        return self.inner.index_doc(index, source, doc_id)

    def update_docs(self, index: str, doc_ids, fields: dict) -> int:
        """Targeted update through the plan."""
        if "update_docs" in self.protected:
            self._check()
        return self.inner.update_docs(index, doc_ids, fields)

    # ------------------------------------------------------------------
    # Telemetry

    def bind_telemetry(self, registry, clock=None) -> None:
        """Expose fault counters, then bind the inner store."""
        injected = registry.counter(
            "dio_faults_injected_total",
            "Backend faults injected by the active FaultPlan.",
            labelnames=("kind",))
        for kind in FAULT_KINDS:
            injected.labels(kind=kind).set_function(
                lambda kind=kind: self.injected[kind])
        registry.counter(
            "dio_faults_penalty_ns_total",
            "Virtual nanoseconds of slowdown surplus injected.",
        ).set_function(lambda: self.penalty_ns_total)
        registry.gauge(
            "dio_faults_window_active",
            "1 while the current instant falls inside a fault window.",
        ).set_function(lambda: int(self.fault_active()))
        self.inner.bind_telemetry(registry, clock=clock)

    def __getattr__(self, name: str):
        return getattr(self.inner, name)

    def __repr__(self) -> str:
        return (f"<FaultyStore plan={self.plan!r} "
                f"injected={self.faults_injected}>")
