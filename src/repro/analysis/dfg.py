"""Directly-Follows-Graph mining over syscall streams.

Sankaran et al. 2024 (PAPERS.md) show that a Directly-Follows-Graph —
nodes are operation types, edges count how often one directly follows
another in the same stream — is a cheap, robust fingerprint of an
application's I/O behaviour: phases (load, compact, flush, idle) show
up as distinct edge distributions, and regressions show up as drift
between the graphs of two runs.

This module mines DFGs from the events DIO stored at the backend:

- :func:`mine_dfgs` — one graph per process or per thread, with nodes
  either plain syscall names or ``syscall×file-class`` pairs and edges
  carrying transition counts plus inter-arrival latency statistics;
- :func:`segment_phases` — split one stream into behaviour phases by
  DFG drift between consecutive event windows;
- :func:`compare_session_dfgs` — drift score and top diverging edges
  between two sessions (``compare.session_fingerprint`` is the
  count-level oracle: a DFG's node totals must agree with it).

Everything is deterministic: graphs iterate in sorted order and
``as_dict`` output is stable, so DFG output can sit inside the DST
byte-identical digest.
"""

from __future__ import annotations

from typing import Iterable, NamedTuple, Optional

from repro.backend.store import DocumentStore

#: Start-of-stream pseudo-node (the classic DFG source marker).
START = "^"

#: File-class buckets for ``node_mode="syscall_fileclass"`` nodes.
_FILE_CLASSES = (
    (".log", "log"), (".wal", "wal"), (".sst", "sst"), (".ldb", "sst"),
    (".db", "db"), (".jsonl", "log"), (".tmp", "tmp"),
)


def file_class(path: Optional[str]) -> str:
    """Coarse file-purpose class from a path (``other`` when unknown)."""
    if not path:
        return "none"
    lowered = path.lower()
    for suffix, cls in _FILE_CLASSES:
        if lowered.endswith(suffix):
            return cls
    if "wal" in lowered:
        return "wal"
    return "other"


class EdgeStats:
    """One DFG edge: transition count + inter-arrival latency stats."""

    __slots__ = ("count", "gap_total_ns", "gap_min_ns", "gap_max_ns")

    def __init__(self) -> None:
        self.count = 0
        self.gap_total_ns = 0
        self.gap_min_ns: Optional[int] = None
        self.gap_max_ns = 0

    def observe(self, gap_ns: int) -> None:
        self.count += 1
        if gap_ns < 0:
            gap_ns = 0
        self.gap_total_ns += gap_ns
        if self.gap_min_ns is None or gap_ns < self.gap_min_ns:
            self.gap_min_ns = gap_ns
        if gap_ns > self.gap_max_ns:
            self.gap_max_ns = gap_ns

    @property
    def gap_mean_ns(self) -> float:
        return self.gap_total_ns / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "gap_mean_ns": round(self.gap_mean_ns, 1),
            "gap_min_ns": self.gap_min_ns or 0,
            "gap_max_ns": self.gap_max_ns,
        }


class DirectlyFollowsGraph:
    """A DFG over one stream of syscall events.

    Nodes are strings (syscall names, or ``syscall/file-class``); edges
    map ``(from, to)`` to :class:`EdgeStats`.  The graph is an *online*
    structure: feed events in stream order via :meth:`observe`, read it
    at any point.  Memory is bounded by the node vocabulary squared,
    which for syscalls is small by construction.
    """

    __slots__ = ("name", "node_mode", "edges", "node_counts", "events",
                 "first_ns", "last_ns", "_prev_node", "_prev_ns")

    def __init__(self, name: str = "",
                 node_mode: str = "syscall") -> None:
        if node_mode not in ("syscall", "syscall_fileclass"):
            raise ValueError(f"unknown node mode {node_mode!r}")
        self.name = name
        self.node_mode = node_mode
        self.edges: dict[tuple[str, str], EdgeStats] = {}
        self.node_counts: dict[str, int] = {}
        self.events = 0
        self.first_ns: Optional[int] = None
        self.last_ns = 0
        self._prev_node: Optional[str] = None
        self._prev_ns = 0

    # ------------------------------------------------------------------
    # Building

    def node_for(self, source: dict) -> str:
        syscall = source["syscall"]
        if self.node_mode == "syscall":
            return syscall
        cls = file_class(source.get("file_path")
                         or (source.get("args") or {}).get("path"))
        return f"{syscall}/{cls}"

    def observe(self, source: dict) -> str:
        """Feed one event (a backend document); returns its node."""
        node = self.node_for(source)
        time_ns = source.get("time", 0)
        self.events += 1
        self.node_counts[node] = self.node_counts.get(node, 0) + 1
        if self.first_ns is None:
            self.first_ns = time_ns
        self.last_ns = max(self.last_ns, time_ns)
        prev = self._prev_node if self._prev_node is not None else START
        key = (prev, node)
        stats = self.edges.get(key)
        if stats is None:
            stats = self.edges[key] = EdgeStats()
        stats.observe(time_ns - self._prev_ns if prev != START else 0)
        self._prev_node = node
        self._prev_ns = time_ns
        return node

    # ------------------------------------------------------------------
    # Reading

    @property
    def transitions(self) -> int:
        """Total observed transitions (including the start edge)."""
        return sum(stats.count for stats in self.edges.values())

    def edge_frequencies(self) -> dict[tuple[str, str], float]:
        """Edges as a probability distribution (sums to 1)."""
        total = self.transitions
        if not total:
            return {}
        return {edge: stats.count / total
                for edge, stats in self.edges.items()}

    def distance(self, other: "DirectlyFollowsGraph") -> float:
        """Total-variation distance between edge distributions, in [0, 1].

        0 means identical transition structure; 1 means disjoint.  This
        is the drift metric phase segmentation and cross-session
        comparison rank by.
        """
        mine, theirs = self.edge_frequencies(), other.edge_frequencies()
        keys = set(mine) | set(theirs)
        return sum(abs(mine.get(k, 0.0) - theirs.get(k, 0.0))
                   for k in keys) / 2.0

    def top_edges(self, n: int = 8) -> list[tuple[str, str, EdgeStats]]:
        """The ``n`` heaviest edges (by count, then lexicographic)."""
        ranked = sorted(self.edges.items(),
                        key=lambda item: (-item[1].count, item[0]))
        return [(src, dst, stats) for (src, dst), stats in ranked[:n]]

    def fingerprint(self) -> dict:
        """Stable summary used to compare runs (and hash reports)."""
        return {
            "name": self.name,
            "node_mode": self.node_mode,
            "events": self.events,
            "nodes": dict(sorted(self.node_counts.items())),
            "edges": {f"{src}->{dst}": stats.count
                      for (src, dst), stats in sorted(self.edges.items())},
        }

    def as_dict(self) -> dict:
        """Full serialization, deterministic key order."""
        out = self.fingerprint()
        out["edge_stats"] = {
            f"{src}->{dst}": stats.as_dict()
            for (src, dst), stats in sorted(self.edges.items())}
        out["window"] = {"start_ns": self.first_ns or 0,
                         "end_ns": self.last_ns}
        return out


# ----------------------------------------------------------------------
# Mining from the backend

def _session_events(store: DocumentStore, index: str,
                    session: Optional[str]) -> list[tuple[str, dict]]:
    query: dict = ({"term": {"session": session}} if session
                   else {"match_all": {}})
    response = store.search(index, query=query, sort=["time"], size=None)
    return [(hit["_id"], hit["_source"])
            for hit in response["hits"]["hits"]]


def mine_dfgs(store: DocumentStore, index: str = "dio_trace",
              session: Optional[str] = None,
              per_thread: bool = False,
              node_mode: str = "syscall") -> dict[str, DirectlyFollowsGraph]:
    """Mine one DFG per process (or per thread) from stored events.

    Keys are ``proc_name`` (or ``proc_name/tid``), sorted on return, so
    downstream rendering is deterministic.
    """
    graphs: dict[str, DirectlyFollowsGraph] = {}
    for _, source in _session_events(store, index, session):
        key = source["proc_name"]
        if per_thread:
            key = f"{key}/{source['tid']}"
        graph = graphs.get(key)
        if graph is None:
            graph = graphs[key] = DirectlyFollowsGraph(key, node_mode)
        graph.observe(source)
    return dict(sorted(graphs.items()))


# ----------------------------------------------------------------------
# Phase segmentation by DFG drift

class Phase(NamedTuple):
    """One behaviour phase of a stream."""

    start_ns: int
    end_ns: int
    events: int
    dfg: DirectlyFollowsGraph
    #: Drift (TV distance) from the previous phase; 0 for the first.
    drift: float

    def as_dict(self) -> dict:
        return {
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "events": self.events,
            "drift": round(self.drift, 4),
            "top_edges": [f"{src}->{dst}:{stats.count}"
                          for src, dst, stats in self.dfg.top_edges(5)],
        }


def segment_phases(events: Iterable[dict],
                   window_events: int = 64,
                   drift_threshold: float = 0.4,
                   node_mode: str = "syscall",
                   name: str = "") -> list[Phase]:
    """Split a time-ordered event stream into behaviour phases.

    The stream is chopped into fixed-size windows; a new phase starts
    whenever the TV distance between the running phase's DFG and the
    next window's DFG exceeds ``drift_threshold``.  A final partial
    window is folded into the current phase.
    """
    if window_events <= 1:
        raise ValueError(f"window_events must be > 1: {window_events}")
    phases: list[Phase] = []
    current: Optional[DirectlyFollowsGraph] = None
    prev_drift = 0.0
    window: list[dict] = []

    def close_current() -> None:
        nonlocal current
        if current is not None and current.events:
            phases.append(Phase(current.first_ns or 0, current.last_ns,
                                current.events, current, prev_drift))
        current = None

    def window_graph(batch: list[dict]) -> DirectlyFollowsGraph:
        graph = DirectlyFollowsGraph(name, node_mode)
        for source in batch:
            graph.observe(source)
        return graph

    for source in events:
        window.append(source)
        if len(window) < window_events:
            continue
        incoming = window_graph(window)
        if current is None:
            current = incoming
        else:
            drift = current.distance(incoming)
            if drift > drift_threshold:
                close_current()
                current = incoming
                prev_drift = drift
            else:
                for source_again in window:
                    current.observe(source_again)
        window = []
    if window:
        if current is None:
            current = window_graph(window)
        else:
            incoming = window_graph(window)
            drift = current.distance(incoming)
            if len(window) >= window_events // 2 and drift > drift_threshold:
                close_current()
                current = incoming
                prev_drift = drift
            else:
                for source_again in window:
                    current.observe(source_again)
    close_current()
    return phases


def mine_phases(store: DocumentStore, index: str = "dio_trace",
                session: Optional[str] = None,
                proc_name: Optional[str] = None,
                window_events: int = 64,
                drift_threshold: float = 0.4,
                node_mode: str = "syscall") -> list[Phase]:
    """Phase-segment one session's (optionally one process's) stream."""
    stream = [source for _, source in _session_events(store, index, session)
              if proc_name is None or source["proc_name"] == proc_name]
    return segment_phases(stream, window_events, drift_threshold,
                          node_mode, name=proc_name or session or index)


# ----------------------------------------------------------------------
# Cross-session comparison

class DFGComparison(NamedTuple):
    """Outcome of comparing two sessions' merged DFGs."""

    session_a: str
    session_b: str
    distance: float
    #: Edges whose frequency moved the most, heaviest shift first.
    diverging_edges: list[tuple[str, float]]

    def as_dict(self) -> dict:
        return {
            "session_a": self.session_a,
            "session_b": self.session_b,
            "distance": round(self.distance, 4),
            "diverging_edges": [[edge, round(delta, 4)]
                                for edge, delta in self.diverging_edges],
        }


def merged_dfg(store: DocumentStore, index: str, session: Optional[str],
               node_mode: str = "syscall") -> DirectlyFollowsGraph:
    """One whole-session DFG (streams interleaved by time, per thread).

    Transitions are tracked per thread — interleaving two threads'
    events into one chain would invent edges neither thread executed —
    then merged edge-by-edge into a single session graph.
    """
    merged = DirectlyFollowsGraph(session or index, node_mode)
    per_thread: dict[int, DirectlyFollowsGraph] = {}
    for _, source in _session_events(store, index, session):
        tid = source["tid"]
        graph = per_thread.get(tid)
        if graph is None:
            graph = per_thread[tid] = DirectlyFollowsGraph(
                str(tid), node_mode)
        graph.observe(source)
    for graph in per_thread.values():
        merged.events += graph.events
        if graph.first_ns is not None:
            if merged.first_ns is None or graph.first_ns < merged.first_ns:
                merged.first_ns = graph.first_ns
        merged.last_ns = max(merged.last_ns, graph.last_ns)
        for node, count in graph.node_counts.items():
            merged.node_counts[node] = (
                merged.node_counts.get(node, 0) + count)
        for edge, stats in graph.edges.items():
            into = merged.edges.get(edge)
            if into is None:
                into = merged.edges[edge] = EdgeStats()
            into.count += stats.count
            into.gap_total_ns += stats.gap_total_ns
            if stats.gap_min_ns is not None and (
                    into.gap_min_ns is None
                    or stats.gap_min_ns < into.gap_min_ns):
                into.gap_min_ns = stats.gap_min_ns
            into.gap_max_ns = max(into.gap_max_ns, stats.gap_max_ns)
    return merged


def compare_session_dfgs(store: DocumentStore, session_a: str,
                         session_b: str, index: str = "dio_trace",
                         node_mode: str = "syscall",
                         top: int = 8) -> DFGComparison:
    """Drift between two sessions' DFGs with the top diverging edges."""
    graph_a = merged_dfg(store, index, session_a, node_mode)
    graph_b = merged_dfg(store, index, session_b, node_mode)
    freq_a, freq_b = graph_a.edge_frequencies(), graph_b.edge_frequencies()
    deltas = []
    for edge in set(freq_a) | set(freq_b):
        delta = freq_b.get(edge, 0.0) - freq_a.get(edge, 0.0)
        if delta:
            deltas.append((f"{edge[0]}->{edge[1]}", delta))
    deltas.sort(key=lambda item: (-abs(item[1]), item[0]))
    return DFGComparison(session_a, session_b,
                         graph_a.distance(graph_b), deltas[:top])
