"""I/O access-pattern classifiers over traced events.

Implements the automated correlation algorithms the paper's Future
Directions section calls for: detectors that flag the inefficient or
erroneous behaviors DIO exposes, directly over backend documents.
"""

from __future__ import annotations

from typing import NamedTuple, Optional

from repro.backend.store import DocumentStore

#: Syscalls that read file data.
_READS = ("read", "pread64", "readv")
#: Syscalls that write file data.
_WRITES = ("write", "pwrite64", "writev")


class AccessPattern(NamedTuple):
    """Per-file access characterization."""

    file_tag: str
    file_path: Optional[str]
    reads: int
    writes: int
    sequential_fraction: float
    mean_request_bytes: float
    #: Mean over read requests only; a single large write must not
    #: mask a small-read pattern.
    mean_read_bytes: float


def _data_events(store: DocumentStore, index: str,
                 session: Optional[str] = None) -> list[dict]:
    query: dict = {"bool": {"must": [
        {"terms": {"syscall": list(_READS + _WRITES)}},
        {"exists": {"field": "file_tag"}},
    ]}}
    if session:
        query["bool"]["must"].append({"term": {"session": session}})
    response = store.search(index, query=query, sort=["time"], size=None)
    return [hit["_source"] for hit in response["hits"]["hits"]]


def classify_file_accesses(store: DocumentStore, index: str,
                           session: Optional[str] = None) -> list[AccessPattern]:
    """Characterize each file's access pattern from its data syscalls.

    An access is *sequential* when it starts exactly where the previous
    access on the same file ended.
    """
    per_file: dict[str, list[dict]] = {}
    for event in _data_events(store, index, session):
        per_file.setdefault(event["file_tag"], []).append(event)

    patterns = []
    for tag, events in sorted(per_file.items()):
        reads = sum(1 for e in events if e["syscall"] in _READS)
        writes = len(events) - reads
        sizes = [max(e["ret"], 0) for e in events]
        read_sizes = [max(e["ret"], 0) for e in events
                      if e["syscall"] in _READS]
        sequential = 0
        considered = 0
        expected: Optional[int] = None
        for event in events:
            offset = event.get("offset")
            if offset is None:
                continue
            if expected is not None:
                considered += 1
                if offset == expected:
                    sequential += 1
            expected = offset + max(event["ret"], 0)
        patterns.append(AccessPattern(
            file_tag=tag,
            file_path=events[0].get("file_path"),
            reads=reads,
            writes=writes,
            sequential_fraction=(sequential / considered) if considered else 1.0,
            mean_request_bytes=(sum(sizes) / len(sizes)) if sizes else 0.0,
            mean_read_bytes=(sum(read_sizes) / len(read_sizes)
                             if read_sizes else 0.0),
        ))
    return patterns


def small_io_files(store: DocumentStore, index: str,
                   threshold_bytes: int = 4096,
                   min_requests: int = 8,
                   session: Optional[str] = None) -> list[AccessPattern]:
    """Files accessed with many small requests — a costly pattern (§I).

    Flagged when either the overall or the read-only mean request size
    falls under ``threshold_bytes``.
    """
    return [pattern
            for pattern in classify_file_accesses(store, index, session)
            if (pattern.reads + pattern.writes) >= min_requests
            and (pattern.mean_request_bytes < threshold_bytes
                 or (pattern.reads >= min_requests
                     and pattern.mean_read_bytes < threshold_bytes))]


class StaleOffsetResume(NamedTuple):
    """A read resumed at a stale offset on a fresh file (data loss!)."""

    file_tag: str
    file_path: Optional[str]
    proc_name: str
    offset: int
    time: int


def find_stale_offset_resumes(store: DocumentStore, index: str,
                              session: Optional[str] = None
                              ) -> list[StaleOffsetResume]:
    """Detect the Fluent Bit signature (§III-B, Fig. 2a step 5).

    For some file tag, the *first* read ever issued against the file
    starts at an offset > 0 and returns 0 bytes: the reader resumed
    from a position that belongs to a previous file that had the same
    name and inode.  Every later read of that tag returning data would
    clear the suspicion; a tag whose reads never returned data past
    that offset is flagged.
    """
    per_file: dict[str, list[dict]] = {}
    for event in _data_events(store, index, session):
        per_file.setdefault(event["file_tag"], []).append(event)

    findings = []
    for tag, events in sorted(per_file.items()):
        reads = [e for e in events if e["syscall"] in _READS]
        if not reads:
            continue
        first = reads[0]
        offset = first.get("offset")
        if offset is None or offset == 0 or first["ret"] != 0:
            continue
        if any(r["ret"] > 0 for r in reads):
            continue
        findings.append(StaleOffsetResume(
            file_tag=tag,
            file_path=first.get("file_path"),
            proc_name=first["proc_name"],
            offset=offset,
            time=first["time"],
        ))
    return findings
