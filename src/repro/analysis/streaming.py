"""Online, bounded-memory diagnosis detectors (the streaming half).

The batch detectors (:mod:`repro.analysis.detectors`) run post-mortem
queries against the backend.  These are their *streaming* variants:
they attach as a :class:`DiagnosisTap` on the tracer's consumer path
(or are replayed over a stored session) and observe each parsed event
exactly once, in bounded memory, emitting incremental
:class:`~repro.analysis.detectors.Finding` objects with evidence links
(event ids when available, time windows always) as the signatures
develop:

- :class:`StreamingStaleOffsetDetector` — the Fluent Bit §III-B
  offset-gap-after-inode-reuse signature;
- :class:`StreamingContentionDetector` — windows where many concurrent
  background threads depress the client syscall rate (§III-C);
- :class:`StreamingSpikeAttributor` — latency spikes attributed to the
  concurrent compaction/flush I/O in the same window (the streaming
  cousin of :mod:`repro.analysis.blame`, after ReLayTracer);
- :class:`StreamingFdLeakDetector` — per-process open-minus-close
  watermark;
- :class:`StreamingWriteAmplificationDetector` — background bytes
  written per client byte written;
- :class:`StreamingUringLagDetector` — submission-to-completion lag of
  io_uring per-op events (only visible under the tracer's ring-aware
  mode; classic traces never feed it).

Every per-key table is capped (``MAX_*`` constants); overflowing keys
are dropped deterministically (oldest first), never resized unbounded.
The tap also runs an online DFG miner (:class:`StreamingDFGMiner`) so
``dio_dfg_*`` telemetry is live during ingest.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Iterable, Optional, Sequence

from repro.analysis.detectors import Finding, make_evidence
from repro.analysis.dfg import DirectlyFollowsGraph, EdgeStats

_READS = ("read", "pread64", "readv")
_WRITES = ("write", "pwrite64", "writev")
_OPENS = ("open", "openat", "creat")
#: Frozen sets for the per-batch fast paths (set membership beats
#: tuple scans in the loops that see every ingested event).
_READS_SET = frozenset(_READS)
_WRITES_SET = frozenset(_WRITES)
_RW_SET = frozenset(_READS + _WRITES)
_FD_SET = frozenset(_OPENS) | {"close"}

#: Bounded-memory caps (per detector instance).
MAX_TRACKED_TAGS = 4096
MAX_TRACKED_PIDS = 1024
MAX_TRACKED_PROCS = 64
MAX_EVIDENCE_IDS = 8
MAX_BASELINE_WINDOWS = 256
MAX_SPIKE_FINDINGS = 5
MAX_WINDOW_SAMPLES = 512


def _capped_insert(table: OrderedDict, key, factory, cap: int):
    """``table[key]`` (creating via ``factory``), evicting oldest at cap."""
    state = table.get(key)
    if state is None:
        if len(table) >= cap:
            table.popitem(last=False)
        state = table[key] = factory()
    return state


class StreamingDetector:
    """Base class: one pass over the stream, incremental findings."""

    name = "streaming-detector"
    description = ""

    def __init__(self) -> None:
        #: ``(emit_ns, Finding)`` in emission order.
        self.emitted: list[tuple[int, Finding]] = []
        self._drained = 0
        self._finalized = False

    # -- feed ----------------------------------------------------------
    def observe(self, source: dict,
                event_id: Optional[str] = None) -> None:
        raise NotImplementedError

    def observe_batch(self, docs: list[dict]) -> None:
        """Ingest-path fast feed: one call per consumer batch.

        Semantically ``observe`` per doc (no event ids — stored ids do
        not exist yet on the consumer path); subclasses override with
        tight loops so the per-event cost stays within the <10% ingest
        overhead gate (``benchmarks/test_diagnosis.py``).
        """
        observe = self.observe
        for source in docs:
            observe(source)

    def observe_latency(self, start_ns: int, latency_ns: int) -> None:
        """Optional second feed (benchmark/telemetry latency records)."""

    def finalize(self, now_ns: int = 0) -> None:
        """End of stream: emit whatever is still pending."""
        self._finalized = True

    # -- results -------------------------------------------------------
    def _emit(self, emit_ns: int, finding: Finding) -> None:
        self.emitted.append((emit_ns, finding))

    def drain_new(self) -> list[tuple[int, Finding]]:
        """Findings emitted since the last drain (for ``--follow``)."""
        fresh = self.emitted[self._drained:]
        self._drained = len(self.emitted)
        return fresh


class StreamingStaleOffsetDetector(StreamingDetector):
    """§III-B offset gap after inode reuse, online.

    A tag whose *first* read starts past offset 0 and returns no data
    is suspicious; the suspicion is confirmed — and the finding emitted
    — after ``confirm_after`` further empty reads of the same tag (the
    reader is polling a file it will never get data from), or at
    :meth:`finalize`.  A read that does return data clears it.
    """

    name = "stale-offset-resume"
    description = ("first read of a fresh file starts past offset 0 and "
                   "returns no data (possible data loss)")

    def __init__(self, confirm_after: int = 3) -> None:
        super().__init__()
        self.confirm_after = confirm_after
        #: tag -> suspicion state (bounded).
        self._tags: OrderedDict[str, dict] = OrderedDict()

    def observe_batch(self, docs):
        observe = self.observe
        reads = _READS_SET
        for source in docs:
            if source["syscall"] in reads:
                observe(source)

    def observe(self, source, event_id=None):
        if source["syscall"] not in _READS_SET:
            return
        tag = source.get("file_tag")
        if tag is None:
            return
        state = _capped_insert(self._tags, tag, dict, MAX_TRACKED_TAGS)
        if not state:                      # first read of this tag
            offset = source.get("offset")
            suspicious = (offset is not None and offset > 0
                          and source["ret"] == 0)
            state.update(suspicious=suspicious, confirmed=False,
                         empty_reads=0, offset=offset,
                         proc_name=source["proc_name"],
                         file_path=source.get("file_path"),
                         first_ns=source.get("time", 0),
                         last_ns=source.get("time", 0), ids=[])
            if suspicious and event_id is not None:
                state["ids"].append(event_id)
            return
        if not state.get("suspicious") or state.get("confirmed"):
            return
        state["last_ns"] = source.get("time", 0)
        if source["ret"] > 0:              # data arrived: all clear
            state["suspicious"] = False
            return
        state["empty_reads"] += 1
        if event_id is not None and len(state["ids"]) < MAX_EVIDENCE_IDS:
            state["ids"].append(event_id)
        if state["empty_reads"] >= self.confirm_after:
            self._confirm(source.get("file_tag"), state)

    def _confirm(self, tag: str, state: dict) -> None:
        state["confirmed"] = True
        self._emit(state["last_ns"], Finding(
            detector=self.name,
            severity="critical",
            title=(f"{state['proc_name']} resumed "
                   f"{state['file_path'] or tag} at stale offset "
                   f"{state['offset']}; content before EOF was never "
                   "read (possible data loss)"),
            details={"file_tag": tag, "file_path": state["file_path"],
                     "offset": state["offset"],
                     "empty_reads": state["empty_reads"]},
            evidence=make_evidence(state["ids"], state["first_ns"],
                                   state["last_ns"]),
        ))

    def finalize(self, now_ns=0):
        for tag, state in self._tags.items():
            if state.get("suspicious") and not state.get("confirmed"):
                self._confirm(tag, state)
        super().finalize(now_ns)


class StreamingFdLeakDetector(StreamingDetector):
    """Per-process descriptor watermark: opens minus closes, online."""

    name = "fd-leak"
    description = ("a process's open-descriptor watermark exceeded the "
                   "leak threshold")

    def __init__(self, min_unclosed: int = 4) -> None:
        super().__init__()
        self.min_unclosed = min_unclosed
        self._pids: OrderedDict[int, dict] = OrderedDict()

    def observe_batch(self, docs):
        observe = self.observe
        relevant = _FD_SET
        pids = self._pids
        for source in docs:
            syscall = source["syscall"]
            if syscall not in relevant:
                continue
            if syscall == "close":       # hot half: two counter bumps
                if source["ret"] < 0:
                    continue
                state = pids.get(source["pid"])
                if state is None:
                    observe(source)
                    continue
                state["last_ns"] = source.get("time", 0)
                state["closes"] += 1
                if state["open"] > 0:
                    state["open"] -= 1
                continue
            observe(source)

    def observe(self, source, event_id=None):
        syscall = source["syscall"]
        if syscall not in _FD_SET:
            return
        if source["ret"] < 0:
            return
        state = _capped_insert(
            self._pids, source["pid"],
            lambda: {"open": 0, "watermark": 0, "opens": 0, "closes": 0,
                     "flagged": False, "ids": [],
                     "first_ns": source.get("time", 0), "last_ns": 0},
            MAX_TRACKED_PIDS)
        state["last_ns"] = source.get("time", 0)
        if syscall == "close":
            state["closes"] += 1
            state["open"] = max(0, state["open"] - 1)
            return
        state["opens"] += 1
        state["open"] += 1
        if event_id is not None and len(state["ids"]) < MAX_EVIDENCE_IDS:
            state["ids"].append(event_id)
        if state["open"] > state["watermark"]:
            state["watermark"] = state["open"]
            if state["watermark"] >= self.min_unclosed \
                    and not state["flagged"]:
                state["flagged"] = True
                self._emit(state["last_ns"], Finding(
                    detector=self.name,
                    severity="warning",
                    title=(f"pid {source['pid']}: descriptor watermark "
                           f"reached {state['watermark']} "
                           f"({state['opens']} opens vs "
                           f"{state['closes']} closes so far)"),
                    details={"pid": source["pid"],
                             "watermark": state["watermark"],
                             "opens": state["opens"],
                             "closes": state["closes"]},
                    evidence=make_evidence(state["ids"],
                                           state["first_ns"],
                                           state["last_ns"]),
                ))


#: The per-op event names the ring-aware tracer emits (one per SQE).
_URING_SET = frozenset({"uring_read", "uring_write", "uring_fsync"})


class StreamingUringLagDetector(StreamingDetector):
    """Submission-to-completion lag of io_uring ops, online.

    Classic syscalls are synchronous: their duration IS the I/O cost
    and the existing spike attribution covers them.  A ring op's
    ``duration_ns`` is the *completion lag* — submit-to-CQE time —
    which silently stretches when the device queue backs up behind
    linked chains or competing I/O, without any syscall getting
    slower.  This detector keeps a per-process running mean of the
    lag and flags the first completion that exceeds both an absolute
    floor and a multiple of that baseline.  It only ever fires on
    ``uring_*`` events, so a classic-mode trace (the blind spot)
    cannot produce this finding — which is itself diagnostic.
    """

    name = "uring-completion-lag"
    description = ("an io_uring completion lagged far behind its "
                   "process's baseline submit-to-CQE latency")

    def __init__(self, min_lag_ns: int = 5_000_000,
                 baseline_factor: float = 8.0,
                 min_samples: int = 16) -> None:
        super().__init__()
        self.min_lag_ns = min_lag_ns
        self.baseline_factor = baseline_factor
        self.min_samples = min_samples
        self._pids: OrderedDict[int, dict] = OrderedDict()

    def observe_batch(self, docs):
        observe = self.observe
        relevant = _URING_SET
        for source in docs:
            if source["syscall"] in relevant:
                observe(source)

    def observe(self, source, event_id=None):
        if source["syscall"] not in _URING_SET:
            return
        lag = source.get("duration_ns")
        if lag is None:
            return
        state = _capped_insert(
            self._pids, source["pid"],
            lambda: {"count": 0, "total_lag": 0, "max_lag": 0,
                     "flagged": False, "ids": [],
                     "first_ns": source.get("time", 0)},
            MAX_TRACKED_PIDS)
        now_ns = source.get("time", 0)
        if event_id is not None and len(state["ids"]) < MAX_EVIDENCE_IDS:
            state["ids"].append(event_id)
        if state["count"] >= self.min_samples and not state["flagged"]:
            mean = state["total_lag"] / state["count"]
            if lag >= self.min_lag_ns and lag >= mean * self.baseline_factor:
                state["flagged"] = True
                self._emit(now_ns, Finding(
                    detector=self.name,
                    severity="warning",
                    title=(f"pid {source['pid']}: io_uring completion "
                           f"lag {lag / 1e6:.2f} ms is "
                           f"{lag / mean:.0f}x the baseline "
                           f"{mean / 1e6:.3f} ms over "
                           f"{state['count']} completions"),
                    details={"pid": source["pid"],
                             "lag_ns": int(lag),
                             "baseline_ns": int(mean),
                             "completions": state["count"],
                             "op": source["syscall"]},
                    evidence=make_evidence(state["ids"],
                                           state["first_ns"], now_ns),
                ))
        state["count"] += 1
        state["total_lag"] += lag
        if lag > state["max_lag"]:
            state["max_lag"] = lag


class StreamingWriteAmplificationDetector(StreamingDetector):
    """Background bytes written per client byte written, online."""

    name = "write-amplification"
    description = ("background threads wrote far more bytes than the "
                   "client itself")

    def __init__(self, client_comm: str = "db_bench",
                 ratio_threshold: float = 2.0,
                 min_client_bytes: int = 64 * 1024) -> None:
        super().__init__()
        self.client_comm = client_comm
        self.ratio_threshold = ratio_threshold
        self.min_client_bytes = min_client_bytes
        self.client_bytes = 0
        self.total_bytes = 0
        self._per_proc: OrderedDict[str, int] = OrderedDict()
        self._first_ns: Optional[int] = None
        self._last_ns = 0

    def observe_batch(self, docs):
        writes = _WRITES_SET
        client = self.client_comm
        per_proc = self._per_proc
        for source in docs:
            if source["syscall"] not in writes:
                continue
            size = source["ret"]
            if size <= 0:
                continue
            time_ns = source.get("time", 0)
            if self._first_ns is None:
                self._first_ns = time_ns
            if time_ns > self._last_ns:
                self._last_ns = time_ns
            self.total_bytes += size
            proc = source["proc_name"]
            if proc == client:
                self.client_bytes += size
            elif proc in per_proc:
                per_proc[proc] += size
            elif len(per_proc) < MAX_TRACKED_PROCS:
                per_proc[proc] = size

    def observe(self, source, event_id=None):
        if source["syscall"] not in _WRITES_SET or source["ret"] <= 0:
            return
        time_ns = source.get("time", 0)
        if self._first_ns is None:
            self._first_ns = time_ns
        self._last_ns = max(self._last_ns, time_ns)
        size = source["ret"]
        self.total_bytes += size
        proc = source["proc_name"]
        if proc == self.client_comm:
            self.client_bytes += size
            return
        if proc in self._per_proc:
            self._per_proc[proc] += size
        elif len(self._per_proc) < MAX_TRACKED_PROCS:
            self._per_proc[proc] = size

    @property
    def amplification(self) -> float:
        if not self.client_bytes:
            return 0.0
        return self.total_bytes / self.client_bytes

    def finalize(self, now_ns=0):
        if (not self._finalized
                and self.client_bytes >= self.min_client_bytes
                and self.amplification >= self.ratio_threshold):
            writers = sorted(self._per_proc.items(),
                             key=lambda item: (-item[1], item[0]))[:5]
            self._emit(self._last_ns, Finding(
                detector=self.name,
                severity="warning",
                title=(f"{self.total_bytes:,} B written for "
                       f"{self.client_bytes:,} client bytes "
                       f"({self.amplification:.1f}x write "
                       "amplification)"),
                details={"total_bytes": self.total_bytes,
                         "client_bytes": self.client_bytes,
                         "amplification": round(self.amplification, 2),
                         "top_writers": [[name, size]
                                         for name, size in writers]},
                evidence=make_evidence(start_ns=self._first_ns,
                                       end_ns=self._last_ns),
            ))
        super().finalize(now_ns)


class _WindowState:
    """Per-window scratch shared by the windowed detectors."""

    __slots__ = ("client_count", "bg_tids", "bg_activity", "ids")

    def __init__(self) -> None:
        self.client_count = 0
        self.bg_tids: set[int] = set()
        #: proc_name -> [syscalls, bytes]; insertion-capped.
        self.bg_activity: dict[str, list] = {}
        self.ids: list[str] = []


def _scan_windows(docs, window_ns: int, client: str,
                  prefix: str) -> tuple[list, int]:
    """One pass over a batch: fresh per-window aggregates + max time.

    The hot loop of the windowed detectors, factored out so detectors
    sharing a :attr:`_WindowedDetector.window_key` pay for it once per
    batch (each then merges via ``absorb_windows``).
    """
    rw = _RW_SET
    states: dict[int, _WindowState] = {}
    max_ns = 0
    cur_start = -1
    state = None
    for source in docs:
        time_ns = source.get("time", 0)
        if time_ns > max_ns:
            max_ns = time_ns
        start = time_ns - time_ns % window_ns
        if start != cur_start:
            cur_start = start
            state = states.get(start)
            if state is None:
                state = states[start] = _WindowState()
        proc = source["proc_name"]
        if proc == client:
            state.client_count += 1
        elif proc.startswith(prefix):
            state.bg_tids.add(source["tid"])
            activity = state.bg_activity.get(proc)
            if activity is None:
                if len(state.bg_activity) < MAX_TRACKED_PROCS:
                    activity = state.bg_activity[proc] = [0, 0]
            if activity is not None:
                activity[0] += 1
                ret = source["ret"]
                if ret > 0 and source["syscall"] in rw:
                    activity[1] += ret
    return list(states.items()), max_ns


class _WindowedDetector(StreamingDetector):
    """Shared window bookkeeping: assign, watermark-close, finalize."""

    def __init__(self, window_ns: int, client_comm: str,
                 background_prefix: str) -> None:
        super().__init__()
        if window_ns <= 0:
            raise ValueError(f"window_ns must be positive: {window_ns}")
        self.window_ns = window_ns
        self.client_comm = client_comm
        self.background_prefix = background_prefix
        self._windows: dict[int, _WindowState] = {}
        self._max_ns = 0

    def _window_state(self, time_ns: int) -> Optional[_WindowState]:
        start = (time_ns // self.window_ns) * self.window_ns
        state = self._windows.get(start)
        if state is None:
            state = self._windows[start] = _WindowState()
        return state

    @property
    def window_key(self) -> tuple:
        """Detectors with equal keys can share one batch window scan."""
        return (self.window_ns, self.client_comm, self.background_prefix)

    def observe_batch(self, docs):
        # Ingest fast path: one scan of the batch into per-window
        # aggregates, then one watermark close (emit timestamps are
        # event-time, so batch granularity only defers emission within
        # the batch).
        updates, max_ns = _scan_windows(docs, self.window_ns,
                                        self.client_comm,
                                        self.background_prefix)
        self.absorb_windows(updates, max_ns)

    def absorb_windows(self, updates: list, max_ns: int) -> None:
        """Merge a shared batch scan's per-window aggregates."""
        windows = self._windows
        for start, new in updates:
            state = windows.get(start)
            if state is None:
                state = windows[start] = _WindowState()
            state.client_count += new.client_count
            if new.bg_tids:
                state.bg_tids |= new.bg_tids
                activities = state.bg_activity
                for proc, pair in new.bg_activity.items():
                    activity = activities.get(proc)
                    if activity is None:
                        if len(activities) < MAX_TRACKED_PROCS:
                            activities[proc] = [pair[0], pair[1]]
                    else:
                        activity[0] += pair[0]
                        activity[1] += pair[1]
        if max_ns > self._max_ns:
            self._max_ns = max_ns
        self._close_ready()

    def observe(self, source, event_id=None):
        time_ns = source.get("time", 0)
        self._max_ns = max(self._max_ns, time_ns)
        state = self._window_state(time_ns)
        proc = source["proc_name"]
        if proc == self.client_comm:
            state.client_count += 1
        elif proc.startswith(self.background_prefix):
            state.bg_tids.add(source["tid"])
            activity = state.bg_activity.get(proc)
            if activity is None:
                if len(state.bg_activity) < MAX_TRACKED_PROCS:
                    activity = state.bg_activity[proc] = [0, 0]
            if activity is not None:
                activity[0] += 1
                if source["ret"] > 0 and source["syscall"] in (
                        _READS + _WRITES):
                    activity[1] += source["ret"]
            if event_id is not None and len(state.ids) < MAX_EVIDENCE_IDS:
                state.ids.append(event_id)
        self._close_ready()

    def _close_ready(self) -> None:
        """Close windows at least one full window behind the watermark."""
        horizon = self._max_ns - 2 * self.window_ns
        if horizon <= 0:
            return
        for start in sorted(self._windows):
            if start + self.window_ns > horizon:
                break
            self._close_window(start, self._windows.pop(start))

    def _close_window(self, start: int, state: _WindowState) -> None:
        raise NotImplementedError

    def finalize(self, now_ns=0):
        for start in sorted(self._windows):
            self._close_window(start, self._windows.pop(start))
        super().finalize(now_ns)


class StreamingContentionDetector(_WindowedDetector):
    """§III-C, online: background bursts depress the client rate.

    Windows close one full window behind the event-time watermark.
    Each closed window is classified calm/contended by the number of
    distinct background TIDs; the first few contended windows emit
    incremental info findings naming the heaviest background thread,
    and once both regimes have enough windows and the slowdown ratio
    clears the threshold, one summary warning is emitted.
    """

    name = "io-contention"
    description = ("windows with many concurrent background threads "
                   "coincide with depressed client syscall rates")

    def __init__(self, window_ns: int = 100_000_000,
                 min_threads: int = 5, min_slowdown: float = 1.1,
                 min_windows: int = 2,
                 client_comm: str = "db_bench",
                 background_prefix: str = "rocksdb:low",
                 max_window_findings: int = 3) -> None:
        super().__init__(window_ns, client_comm, background_prefix)
        self.min_threads = min_threads
        self.min_slowdown = min_slowdown
        self.min_windows = min_windows
        self.max_window_findings = max_window_findings
        self.calm_windows = 0
        self.contended_windows = 0
        self._calm_client_total = 0
        self._contended_client_total = 0
        self._window_findings = 0
        self._summary_emitted = False
        self._first_contended_ns: Optional[int] = None
        self._last_contended_ns = 0

    @property
    def client_rate_calm(self) -> float:
        return (self._calm_client_total / self.calm_windows
                if self.calm_windows else 0.0)

    @property
    def client_rate_contended(self) -> float:
        return (self._contended_client_total / self.contended_windows
                if self.contended_windows else 0.0)

    @property
    def client_slowdown(self) -> float:
        contended = self.client_rate_contended
        if contended <= 0:
            return float("inf") if self.client_rate_calm > 0 else 1.0
        return self.client_rate_calm / contended

    def _close_window(self, start, state):
        if len(state.bg_tids) >= self.min_threads:
            self.contended_windows += 1
            self._contended_client_total += state.client_count
            if self._first_contended_ns is None:
                self._first_contended_ns = start
            self._last_contended_ns = start + self.window_ns
            if self._window_findings < self.max_window_findings:
                self._window_findings += 1
                top = sorted(state.bg_activity.items(),
                             key=lambda item: (-item[1][1], -item[1][0],
                                               item[0]))
                culprit = top[0][0] if top else "?"
                self._emit(start + self.window_ns, Finding(
                    detector=self.name,
                    severity="info",
                    title=(f"contended window @ {start / 1e6:.0f} ms: "
                           f"{len(state.bg_tids)} background threads "
                           f"active (busiest: {culprit}), client issued "
                           f"{state.client_count} syscalls"),
                    details={"window_start_ns": start,
                             "background_threads": len(state.bg_tids),
                             "client_syscalls": state.client_count,
                             "busiest_background": culprit},
                    evidence=make_evidence(state.ids, start,
                                           start + self.window_ns),
                ))
        else:
            self.calm_windows += 1
            self._calm_client_total += state.client_count
        self._maybe_emit_summary()

    def _maybe_emit_summary(self) -> None:
        if self._summary_emitted:
            return
        if (self.contended_windows >= self.min_windows
                and self.calm_windows >= self.min_windows
                and self.client_slowdown >= self.min_slowdown):
            self._summary_emitted = True
            self._emit(self._last_contended_ns, Finding(
                detector=self.name,
                severity="warning",
                title=(f"{self.contended_windows} windows with >= "
                       f"{self.min_threads} {self.background_prefix}* "
                       f"threads; client syscall rate drops "
                       f"{self.client_slowdown:.2f}x there"),
                details={"contended_windows": self.contended_windows,
                         "calm_windows": self.calm_windows,
                         "client_rate_calm":
                             round(self.client_rate_calm, 2),
                         "client_rate_contended":
                             round(self.client_rate_contended, 2),
                         "client_slowdown":
                             round(self.client_slowdown, 2)},
                evidence=make_evidence(
                    start_ns=self._first_contended_ns or 0,
                    end_ns=self._last_contended_ns),
            ))


class StreamingSpikeAttributor(_WindowedDetector):
    """Latency spikes attributed to concurrent background I/O, online.

    Consumes two feeds: syscall events (:meth:`observe`) for per-window
    background activity, and operation latency records
    (:meth:`observe_latency`) from the benchmark/telemetry feed.  A
    window whose p99 exceeds ``spike_factor`` times the running
    baseline (25th percentile of closed-window p99s) emits a finding
    naming the heaviest concurrent background threads — the streaming
    version of :func:`repro.analysis.blame.blame_spikes`.
    """

    name = "latency-spike-blame"
    description = ("client latency spikes attributed to concurrent "
                   "background compaction/flush I/O")

    def __init__(self, window_ns: int = 100_000_000,
                 spike_factor: float = 2.5,
                 client_comm: str = "db_bench",
                 background_prefix: str = "rocksdb:low") -> None:
        super().__init__(window_ns, client_comm, background_prefix)
        self.spike_factor = spike_factor
        self._latencies: dict[int, list[int]] = {}
        self._baseline: deque[float] = deque(maxlen=MAX_BASELINE_WINDOWS)
        self.spikes_found = 0
        self._culprits: OrderedDict[str, int] = OrderedDict()

    def observe_latency(self, start_ns, latency_ns):
        self._max_ns = max(self._max_ns, start_ns)
        start = (start_ns // self.window_ns) * self.window_ns
        samples = self._latencies.setdefault(start, [])
        if len(samples) < MAX_WINDOW_SAMPLES:
            samples.append(latency_ns)
        self._close_ready()

    def _close_ready(self):
        horizon = self._max_ns - 2 * self.window_ns
        if horizon <= 0:
            return
        ready = sorted(set(self._windows) | set(self._latencies))
        for start in ready:
            if start + self.window_ns > horizon:
                break
            self._close_window(start,
                               self._windows.pop(start, _WindowState()))

    def _close_window(self, start, state):
        samples = self._latencies.pop(start, None)
        if not samples:
            return
        ordered = sorted(samples)
        p99 = float(ordered[min(len(ordered) - 1,
                                int(round(0.99 * (len(ordered) - 1))))])
        baseline = None
        if len(self._baseline) >= 4:
            ranked = sorted(self._baseline)
            baseline = ranked[len(ranked) // 4]
        self._baseline.append(p99)
        if baseline is None or p99 <= self.spike_factor * baseline:
            return
        if not state.bg_tids:
            # A spike with no concurrent background I/O in the window
            # has nothing to attribute — that is a latency problem, not
            # a contention problem; stay silent rather than blame air.
            return
        self.spikes_found += 1
        top = sorted(state.bg_activity.items(),
                     key=lambda item: (-item[1][1], -item[1][0], item[0]))
        for name, (_, size) in top[:3]:
            if name in self._culprits:
                self._culprits[name] += size
            elif len(self._culprits) < MAX_TRACKED_PROCS:
                self._culprits[name] = size
        if self.spikes_found > MAX_SPIKE_FINDINGS:
            return
        culprits = [name for name, _ in top[:3]]
        self._emit(start + self.window_ns, Finding(
            detector=self.name,
            severity="warning",
            title=(f"p99 spike @ {start / 1e6:.0f} ms "
                   f"({p99 / 1e6:.2f} ms vs baseline "
                   f"{baseline / 1e6:.2f} ms) with "
                   f"{len(state.bg_tids)} background threads active"
                   + (f"; busiest: {', '.join(culprits)}"
                      if culprits else "")),
            details={"window_start_ns": start, "p99_ns": p99,
                     "baseline_ns": baseline,
                     "background_threads": len(state.bg_tids),
                     "culprits": culprits},
            evidence=make_evidence(state.ids, start,
                                   start + self.window_ns),
        ))

    def finalize(self, now_ns=0):
        remaining = sorted(set(self._windows) | set(self._latencies))
        for start in remaining:
            self._close_window(start,
                               self._windows.pop(start, _WindowState()))
        super().finalize(now_ns)


class StreamingDFGMiner:
    """Online per-thread DFG with drift-based phase counting.

    Keeps one merged session DFG (per-thread transition chains, merged
    edges — interleavings never invent edges) plus a drift detector
    over fixed-size event windows; powers the ``dio_dfg_*`` telemetry
    and the DFG section of diagnosis reports.
    """

    def __init__(self, node_mode: str = "syscall",
                 window_events: int = 64,
                 drift_threshold: float = 0.4,
                 max_threads: int = 4096) -> None:
        self.graph = DirectlyFollowsGraph("stream", node_mode)
        self.window_events = window_events
        self.drift_threshold = drift_threshold
        self.max_threads = max_threads
        self.phases = 1
        self._prev_by_tid: OrderedDict[int, tuple[str, int]] = OrderedDict()
        # Drift window: edge counts accumulated incrementally (one
        # global chain restarting at "^" per window) — equivalent to
        # feeding the window through a fresh graph, without buffering
        # and re-observing it.
        self._window_edges: dict[tuple[str, str], int] = {}
        self._window_count = 0
        self._window_prev = "^"
        self._prev_freq: Optional[dict] = None

    def observe(self, source: dict) -> None:
        self.observe_batch((source,))

    def observe_batch(self, docs: Sequence[dict]) -> None:
        graph = self.graph
        plain_nodes = graph.node_mode == "syscall"
        node_for = graph.node_for
        node_counts = graph.node_counts
        edges = graph.edges
        prev_by_tid = self._prev_by_tid
        max_threads = self.max_threads
        window_events = self.window_events
        wedges = self._window_edges
        wcount = self._window_count
        wprev = self._window_prev
        last_ns = graph.last_ns
        if graph.first_ns is None and docs:
            graph.first_ns = docs[0].get("time", 0)
        graph.events += len(docs)
        for source in docs:
            node = source["syscall"] if plain_nodes else node_for(source)
            time_ns = source.get("time", 0)
            try:                     # node vocabulary is tiny: ~always hits
                node_counts[node] += 1
            except KeyError:
                node_counts[node] = 1
            if time_ns > last_ns:
                last_ns = time_ns
            tid = source["tid"]
            prev = prev_by_tid.get(tid)
            if prev is None:
                if len(prev_by_tid) >= max_threads:
                    prev_by_tid.popitem(last=False)
                prev_by_tid[tid] = [node, time_ns]
                edge = ("^", node)
                gap = 0
            else:
                edge = (prev[0], node)
                gap = time_ns - prev[1]
                if gap < 0:
                    gap = 0
                prev[0] = node
                prev[1] = time_ns
            stats = edges.get(edge)
            if stats is None:
                stats = edges[edge] = EdgeStats()
            stats.count += 1
            stats.gap_total_ns += gap
            if stats.gap_min_ns is None or gap < stats.gap_min_ns:
                stats.gap_min_ns = gap
            if gap > stats.gap_max_ns:
                stats.gap_max_ns = gap

            # Phase drift over fixed windows of the merged stream.
            wedge = (wprev, node)
            try:
                wedges[wedge] += 1
            except KeyError:
                wedges[wedge] = 1
            wprev = node
            wcount += 1
            if wcount >= window_events:
                freq = {e: c / wcount for e, c in wedges.items()}
                prev_freq = self._prev_freq
                if prev_freq is not None:
                    drift = 0.5 * sum(
                        abs(freq.get(key, 0.0) - prev_freq.get(key, 0.0))
                        for key in freq.keys() | prev_freq.keys())
                    if drift > self.drift_threshold:
                        self.phases += 1
                self._prev_freq = freq
                wedges = self._window_edges = {}
                wcount = 0
                wprev = "^"
        graph.last_ns = last_ns
        self._window_count = wcount
        self._window_prev = wprev

    @property
    def nodes(self) -> int:
        return len(self.graph.node_counts)

    @property
    def edges(self) -> int:
        return len(self.graph.edges)

    @property
    def transitions(self) -> int:
        return self.graph.transitions


def default_streaming_detectors(client_comm: str = "db_bench",
                                background_prefix: str = "rocksdb:low",
                                window_ns: int = 100_000_000
                                ) -> list[StreamingDetector]:
    """The standard streaming battery, in reporting order."""
    return [
        StreamingStaleOffsetDetector(),
        StreamingFdLeakDetector(),
        StreamingContentionDetector(window_ns=window_ns,
                                    client_comm=client_comm,
                                    background_prefix=background_prefix),
        StreamingSpikeAttributor(window_ns=window_ns,
                                 client_comm=client_comm,
                                 background_prefix=background_prefix),
        StreamingWriteAmplificationDetector(client_comm=client_comm),
        StreamingUringLagDetector(),
    ]


class DiagnosisTap:
    """The streaming battery + DFG miner as one consumer-path tap.

    The tracer calls :meth:`observe_batch` for every parsed batch on
    the ingest path; post-mortem callers replay stored ``(id, source)``
    pairs through :meth:`observe`.  All per-event work is plain dict
    reads and counter bumps — the ingest-overhead benchmark
    (``benchmarks/test_diagnosis.py``) holds the tap to <10% of the
    indexing cost.
    """

    def __init__(self,
                 detectors: Optional[Sequence[StreamingDetector]] = None,
                 dfg: bool = True,
                 client_comm: str = "db_bench",
                 background_prefix: str = "rocksdb:low") -> None:
        self.detectors: list[StreamingDetector] = (
            list(detectors) if detectors is not None
            else default_streaming_detectors(client_comm,
                                             background_prefix))
        self.dfg: Optional[StreamingDFGMiner] = (
            StreamingDFGMiner() if dfg else None)
        self.events_observed = 0
        self.latencies_observed = 0
        self.finalized = False
        # Batch-path plan: windowed detectors with equal window keys
        # share one scan per batch; everything else feeds directly.
        # (Computed once — the detector list is fixed at construction.)
        groups: dict[tuple, list] = {}
        self._direct: list[StreamingDetector] = []
        for detector in self.detectors:
            if isinstance(detector, _WindowedDetector):
                groups.setdefault(detector.window_key, []).append(detector)
            else:
                self._direct.append(detector)
        self._window_groups = [(key, group)
                               for key, group in groups.items()]

    # -- feed ----------------------------------------------------------

    def observe(self, source: dict,
                event_id: Optional[str] = None) -> None:
        self.events_observed += 1
        for detector in self.detectors:
            detector.observe(source, event_id)
        if self.dfg is not None:
            self.dfg.observe(source)

    def observe_batch(self, docs: Iterable[dict]) -> None:
        if not isinstance(docs, (list, tuple)):
            # A columnar RecordBatch hands over its (memoised) doc
            # list; any other iterable is materialised the hard way.
            to_docs = getattr(docs, "to_docs", None)
            docs = to_docs() if to_docs is not None else list(docs)
        self.events_observed += len(docs)
        for detector in self._direct:
            detector.observe_batch(docs)
        for (window_ns, client, prefix), group in self._window_groups:
            updates, max_ns = _scan_windows(docs, window_ns, client,
                                            prefix)
            for detector in group:
                detector.absorb_windows(updates, max_ns)
        if self.dfg is not None:
            self.dfg.observe_batch(docs)

    def observe_latency(self, start_ns: int, latency_ns: int) -> None:
        self.latencies_observed += 1
        for detector in self.detectors:
            detector.observe_latency(start_ns, latency_ns)

    def finalize(self, now_ns: int = 0) -> None:
        """Flush pending state; safe to call again after more feed.

        The tracer finalizes the tap at shutdown, but latency records
        (e.g. ``bench.records()``) often only exist *after* the run —
        a second finalize closes the windows they opened.  Detectors
        guard their own one-shot emissions.
        """
        self.finalized = True
        for detector in self.detectors:
            detector.finalize(now_ns)

    # -- results -------------------------------------------------------

    @property
    def findings_emitted(self) -> int:
        return sum(len(d.emitted) for d in self.detectors)

    def findings(self) -> list[tuple[int, Finding]]:
        """All findings so far, ordered by emit time (stable)."""
        merged = [item for detector in self.detectors
                  for item in detector.emitted]
        merged.sort(key=lambda item: (item[0], item[1].detector,
                                      item[1].title))
        return merged

    def drain_new(self) -> list[tuple[int, Finding]]:
        """Findings emitted since the last drain, across detectors."""
        fresh = [item for detector in self.detectors
                 for item in detector.drain_new()]
        fresh.sort(key=lambda item: (item[0], item[1].detector,
                                     item[1].title))
        return fresh

    # -- telemetry -----------------------------------------------------

    def bind_telemetry(self, registry) -> None:
        """Register the ``dio_diagnosis_*`` / ``dio_dfg_*`` families."""
        registry.counter(
            "dio_diagnosis_events_observed_total",
            "Parsed events observed by the streaming diagnosis tap on "
            "the consumer path.",
        ).set_function(lambda: self.events_observed)
        registry.counter(
            "dio_diagnosis_latency_records_total",
            "Benchmark/telemetry latency records fed to the streaming "
            "spike attributor.",
        ).set_function(lambda: self.latencies_observed)
        registry.counter(
            "dio_diagnosis_findings_total",
            "Incremental findings emitted by the streaming detectors.",
        ).set_function(lambda: self.findings_emitted)
        registry.gauge(
            "dio_diagnosis_detectors",
            "Streaming detectors attached to the diagnosis tap.",
        ).set_function(lambda: len(self.detectors))
        if self.dfg is not None:
            registry.gauge(
                "dio_dfg_nodes",
                "Distinct nodes in the online Directly-Follows-Graph "
                "(syscall types, or syscall x file-class).",
            ).set_function(lambda: self.dfg.nodes)
            registry.gauge(
                "dio_dfg_edges",
                "Distinct directly-follows edges in the online DFG.",
            ).set_function(lambda: self.dfg.edges)
            registry.counter(
                "dio_dfg_transitions_total",
                "Syscall-to-syscall transitions observed by the online "
                "DFG miner.",
            ).set_function(lambda: self.dfg.transitions)
            registry.counter(
                "dio_dfg_phases_total",
                "Behaviour phases detected by DFG drift over the "
                "event stream.",
            ).set_function(lambda: self.dfg.phases)
