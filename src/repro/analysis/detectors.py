"""A library of automated I/O-misbehaviour detectors (paper §V).

The paper's future-work section proposes building *"a collection of
correlation algorithms that can quickly identify the inefficient
behaviors observed in the aforementioned applications"*.  This module
is that collection: each detector runs a correlation over the traced
events of one session and reports :class:`Finding` objects.

Detectors cover the three problem classes of the paper's introduction:
costly access patterns (small/random I/O, short-lived file churn),
I/O contention, and erroneous usage (stale offsets, failed syscalls,
descriptor leaks).
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Sequence

from repro.analysis.contention import detect_contention
from repro.analysis.patterns import (classify_file_accesses,
                                     find_stale_offset_resumes)
from repro.backend.store import DocumentStore
from repro.kernel.errno import Errno


class Finding(NamedTuple):
    """One detected issue.

    ``evidence`` links the finding back to the raw events that support
    it: ``{"event_ids": [...], "window": {"start_ns", "end_ns"}}``.
    Batch detectors fill it from backend hits; streaming detectors fill
    what they can afford in bounded memory (ids are capped).  It is a
    trailing field with a default, so positional construction — and
    ``__str__`` — are unchanged.
    """

    detector: str
    severity: str  # "info" | "warning" | "critical"
    title: str
    details: dict
    evidence: Optional[dict] = None

    def __str__(self) -> str:
        return f"[{self.severity}] {self.detector}: {self.title}"

    def as_dict(self) -> dict:
        """JSON-ready representation (reports, ``--json`` outputs)."""
        return {
            "detector": self.detector,
            "severity": self.severity,
            "title": self.title,
            "details": dict(self.details),
            "evidence": dict(self.evidence) if self.evidence else None,
        }


#: Cap on event ids carried inside one finding's evidence.
EVIDENCE_ID_CAP = 20


def make_evidence(event_ids: Sequence[str] = (),
                  start_ns: Optional[int] = None,
                  end_ns: Optional[int] = None) -> dict:
    """Build the canonical evidence dict (ids capped, window optional)."""
    evidence: dict = {"event_ids": [str(i) for i in
                                    list(event_ids)[:EVIDENCE_ID_CAP]]}
    if start_ns is not None or end_ns is not None:
        evidence["window"] = {"start_ns": int(start_ns or 0),
                              "end_ns": int(end_ns if end_ns is not None
                                            else start_ns or 0)}
    return evidence


class Detector:
    """Base class: a named correlation over one session's events."""

    #: Unique detector name (kebab-case).
    name = "detector"
    #: One-line description shown in reports.
    description = ""

    def run(self, store: DocumentStore, index: str,
            session: Optional[str] = None) -> list[Finding]:
        """Return findings for ``session`` (or the whole index)."""
        raise NotImplementedError

    def _session_query(self, session: Optional[str],
                       extra: Optional[list] = None) -> dict:
        must: list = list(extra or [])
        if session:
            must.append({"term": {"session": session}})
        return {"bool": {"must": must}} if must else {"match_all": {}}

    def _collect_evidence(self, store: DocumentStore, index: str,
                          session: Optional[str],
                          extra: list) -> dict:
        """Evidence (event ids + time window) for the matching events."""
        response = store.search(
            index, query=self._session_query(session, extra),
            sort=["time"], size=None)
        hits = response["hits"]["hits"]
        times = [hit["_source"].get("time", 0) for hit in hits]
        return make_evidence([hit["_id"] for hit in hits],
                             min(times) if times else None,
                             max(times) if times else None)


class StaleOffsetDetector(Detector):
    """The §III-B data-loss signature: resume at a stale offset."""

    name = "stale-offset-resume"
    description = ("first read of a fresh file starts past offset 0 and "
                   "returns no data: a stale position was applied")

    def run(self, store, index, session=None):
        findings = []
        for resume in find_stale_offset_resumes(store, index, session):
            findings.append(Finding(
                detector=self.name,
                severity="critical",
                title=(f"{resume.proc_name} resumed "
                       f"{resume.file_path or resume.file_tag} at stale "
                       f"offset {resume.offset}; content before EOF was "
                       "never read (possible data loss)"),
                details={"file_tag": resume.file_tag,
                         "file_path": resume.file_path,
                         "offset": resume.offset,
                         "time": resume.time},
                evidence=self._collect_evidence(
                    store, index, session,
                    [{"term": {"file_tag": resume.file_tag}}]),
            ))
        return findings


class SmallIODetector(Detector):
    """Costly access pattern: many small requests (paper §I)."""

    name = "small-io"
    description = "files accessed with many requests far below block size"

    def __init__(self, threshold_bytes: int = 4096, min_requests: int = 16):
        self.threshold_bytes = threshold_bytes
        self.min_requests = min_requests

    def run(self, store, index, session=None):
        findings = []
        for pattern in classify_file_accesses(store, index, session):
            requests = pattern.reads + pattern.writes
            if requests < self.min_requests:
                continue
            relevant = (pattern.mean_read_bytes if pattern.reads >= pattern.writes
                        else pattern.mean_request_bytes)
            if 0 < relevant < self.threshold_bytes / 4:
                findings.append(Finding(
                    detector=self.name,
                    severity="warning",
                    title=(f"{pattern.file_path or pattern.file_tag}: "
                           f"{requests} requests averaging "
                           f"{relevant:.0f} B — consider batching"),
                    details={"file_tag": pattern.file_tag,
                             "requests": requests,
                             "mean_bytes": relevant},
                    evidence=self._collect_evidence(
                        store, index, session,
                        [{"term": {"file_tag": pattern.file_tag}}]),
                ))
        return findings


class RandomAccessDetector(Detector):
    """Costly access pattern: random file access (paper §I)."""

    name = "random-access"
    description = "read-heavy files accessed at scattered offsets"

    def __init__(self, max_sequential_fraction: float = 0.25,
                 min_reads: int = 16):
        self.max_sequential_fraction = max_sequential_fraction
        self.min_reads = min_reads

    def run(self, store, index, session=None):
        findings = []
        for pattern in classify_file_accesses(store, index, session):
            if (pattern.reads >= self.min_reads
                    and pattern.sequential_fraction
                    <= self.max_sequential_fraction):
                findings.append(Finding(
                    detector=self.name,
                    severity="info",
                    title=(f"{pattern.file_path or pattern.file_tag}: "
                           f"{pattern.reads} reads, only "
                           f"{pattern.sequential_fraction * 100:.0f}% "
                           "sequential"),
                    details={"file_tag": pattern.file_tag,
                             "reads": pattern.reads,
                             "sequential_fraction":
                                 pattern.sequential_fraction},
                    evidence=self._collect_evidence(
                        store, index, session,
                        [{"term": {"file_tag": pattern.file_tag}}]),
                ))
        return findings


class FailedSyscallDetector(Detector):
    """Erroneous usage: clusters of failing syscalls."""

    name = "failed-syscalls"
    description = "repeated syscall failures grouped by (syscall, errno)"

    def __init__(self, min_failures: int = 3):
        self.min_failures = min_failures

    def run(self, store, index, session=None):
        query = self._session_query(session,
                                    [{"range": {"ret": {"lt": 0}}}])
        response = store.search(index, query=query, sort=["time"],
                                size=None)
        clusters: dict[tuple[str, int], list] = {}
        for hit in response["hits"]["hits"]:
            source = hit["_source"]
            key = (source["syscall"], -source["ret"])
            clusters.setdefault(key, []).append(hit)
        findings = []
        for (syscall, errno_value), hits in sorted(clusters.items()):
            if len(hits) < self.min_failures:
                continue
            try:
                errno_name = Errno(errno_value).name
            except ValueError:
                errno_name = str(errno_value)
            times = [hit["_source"].get("time", 0) for hit in hits]
            findings.append(Finding(
                detector=self.name,
                severity="warning",
                title=(f"{syscall} failed with {errno_name} "
                       f"{len(hits)} times"),
                details={"syscall": syscall, "errno": errno_name,
                         "count": len(hits)},
                evidence=make_evidence([hit["_id"] for hit in hits],
                                       min(times), max(times)),
            ))
        return findings


class FdLeakDetector(Detector):
    """Erroneous usage: opened descriptors never closed."""

    name = "fd-leak"
    description = "processes whose open count far exceeds their closes"

    def __init__(self, min_unclosed: int = 4):
        self.min_unclosed = min_unclosed

    def run(self, store, index, session=None):
        response = store.search(
            index,
            query=self._session_query(
                session,
                [{"terms": {"syscall": ["open", "openat", "creat", "close"]}},
                 {"range": {"ret": {"gte": 0}}}]),
            size=0,
            aggs={"by_pid": {
                "terms": {"field": "pid", "size": 500},
                "aggs": {"by_syscall": {"terms": {"field": "syscall",
                                                  "size": 10}}},
            }})
        findings = []
        for bucket in response["aggregations"]["by_pid"]["buckets"]:
            counts = {b["key"]: b["doc_count"]
                      for b in bucket["by_syscall"]["buckets"]}
            opens = sum(counts.get(s, 0)
                        for s in ("open", "openat", "creat"))
            closes = counts.get("close", 0)
            if opens - closes >= self.min_unclosed:
                findings.append(Finding(
                    detector=self.name,
                    severity="warning",
                    title=(f"pid {bucket['key']}: {opens} opens vs "
                           f"{closes} closes "
                           f"({opens - closes} descriptors left open)"),
                    details={"pid": bucket["key"], "opens": opens,
                             "closes": closes},
                    evidence=self._collect_evidence(
                        store, index, session,
                        [{"term": {"pid": bucket["key"]}},
                         {"terms": {"syscall": ["open", "openat", "creat",
                                                "close"]}},
                         {"range": {"ret": {"gte": 0}}}]),
                ))
        return findings


class ShortLivedFileDetector(Detector):
    """Costly pattern: files written then deleted within the session."""

    name = "short-lived-files"
    description = "significant bytes written into files deleted in-session"

    def __init__(self, min_bytes: int = 64 * 1024, min_files: int = 3):
        self.min_bytes = min_bytes
        self.min_files = min_files

    def run(self, store, index, session=None):
        unlinked = store.search(
            index,
            query=self._session_query(
                session, [{"terms": {"syscall": ["unlink", "unlinkat"]}},
                          {"term": {"ret": 0}}]),
            size=None)
        deleted_paths = {hit["_source"].get("args", {}).get("path")
                         for hit in unlinked["hits"]["hits"]}
        deleted_paths.discard(None)
        if not deleted_paths:
            return []

        writes = store.search(
            index,
            query=self._session_query(
                session,
                [{"terms": {"syscall": ["write", "pwrite64", "writev"]}},
                 {"exists": {"field": "file_path"}},
                 {"range": {"ret": {"gt": 0}}}]),
            size=None)
        churn: dict[str, int] = {}
        churn_hits: dict[str, list] = {}
        for hit in writes["hits"]["hits"]:
            source = hit["_source"]
            path = source["file_path"]
            if path in deleted_paths:
                churn[path] = churn.get(path, 0) + source["ret"]
                churn_hits.setdefault(path, []).append(hit)
        heavy = {path: total for path, total in churn.items()
                 if total >= self.min_bytes}
        if len(heavy) < self.min_files:
            return []
        total = sum(heavy.values())
        evidence_hits = [hit for path in sorted(heavy)
                         for hit in churn_hits[path]]
        evidence_hits += list(unlinked["hits"]["hits"])
        times = [hit["_source"].get("time", 0) for hit in evidence_hits]
        return [Finding(
            detector=self.name,
            severity="info",
            title=(f"{len(heavy)} files totalling {total:,} written bytes "
                   "were deleted within the session (write churn)"),
            details={"files": len(heavy), "bytes": total},
            evidence=make_evidence([hit["_id"] for hit in evidence_hits],
                                   min(times) if times else None,
                                   max(times) if times else None),
        )]


class ContentionDetector(Detector):
    """The §III-C phenomenon: background I/O starving clients."""

    name = "io-contention"
    description = ("windows with many concurrent background I/O threads "
                   "coincide with depressed client syscall rates")

    def __init__(self, window_ns: int = 100_000_000,
                 min_threads: int = 5, min_slowdown: float = 1.1,
                 client_comm: str = "db_bench",
                 background_prefix: str = "rocksdb:low"):
        self.window_ns = window_ns
        self.min_threads = min_threads
        self.min_slowdown = min_slowdown
        self.client_comm = client_comm
        self.background_prefix = background_prefix

    def run(self, store, index, session=None):
        report = detect_contention(store, index, self.window_ns,
                                   min_compaction_threads=self.min_threads,
                                   client_comm=self.client_comm,
                                   session=session)
        if not report.contended_windows or not report.calm_windows:
            return []
        if report.client_slowdown < self.min_slowdown:
            return []
        return [Finding(
            detector=self.name,
            severity="warning",
            title=(f"{len(report.contended_windows)} windows with >= "
                   f"{self.min_threads} {self.background_prefix}* threads; "
                   f"client syscall rate drops "
                   f"{report.client_slowdown:.2f}x there"),
            details={"contended_windows": len(report.contended_windows),
                     "calm_windows": len(report.calm_windows),
                     "client_slowdown": report.client_slowdown},
            evidence=make_evidence(
                start_ns=min(report.contended_windows),
                end_ns=max(report.contended_windows) + self.window_ns),
        )]


#: The default detector battery, in reporting order.
DEFAULT_DETECTORS: tuple[Detector, ...] = (
    StaleOffsetDetector(),
    FailedSyscallDetector(),
    FdLeakDetector(),
    SmallIODetector(),
    RandomAccessDetector(),
    ShortLivedFileDetector(),
    ContentionDetector(),
)

_SEVERITY_ORDER = {"critical": 0, "warning": 1, "info": 2}


def run_detectors(store: DocumentStore, index: str = "dio_trace",
                  session: Optional[str] = None,
                  detectors: Sequence[Detector] = DEFAULT_DETECTORS
                  ) -> list[Finding]:
    """Run a battery of detectors; findings sorted by severity."""
    findings: list[Finding] = []
    for detector in detectors:
        findings.extend(detector.run(store, index, session))
    findings.sort(key=lambda f: (_SEVERITY_ORDER.get(f.severity, 9),
                                 f.detector, f.title))
    return findings
