"""Windowed latency percentiles (the paper's Fig. 3).

The paper plots the 99th-percentile latency experienced by db_bench
clients over time, sampled in windows; spikes of 1.5–3.5 ms appear
whenever background compactions contend for the disk.
"""

from __future__ import annotations

from typing import Iterable, NamedTuple, Optional

import numpy as np


class LatencyPoint(NamedTuple):
    """One window of the percentile series."""

    window_start_ns: int
    value_ns: float
    op_count: int


def percentile_series(operations: Iterable[tuple[int, int, str, int]],
                      window_ns: int,
                      percent: float = 99.0,
                      op: Optional[str] = None) -> list[LatencyPoint]:
    """Per-window latency percentile over db_bench records.

    ``operations`` are ``(start_ns, latency_ns, op, tid)`` tuples as
    produced by :class:`~repro.apps.rocksdb.db_bench.BenchResult`.
    Windows with no operations are omitted.
    """
    if window_ns <= 0:
        raise ValueError(f"window must be positive, got {window_ns}")
    if not 0 < percent <= 100:
        raise ValueError(f"percent out of range: {percent}")
    filtered = [(start, latency) for start, latency, kind, _ in operations
                if op is None or kind == op]
    if not filtered:
        return []
    starts = np.asarray([s for s, _ in filtered], dtype=np.int64)
    latencies = np.asarray([l for _, l in filtered], dtype=np.int64)
    windows = (starts // window_ns) * window_ns
    series = []
    for window in np.unique(windows):
        mask = windows == window
        series.append(LatencyPoint(
            window_start_ns=int(window),
            value_ns=float(np.percentile(latencies[mask], percent)),
            op_count=int(mask.sum()),
        ))
    return series


def spikes(series: Iterable[LatencyPoint],
           threshold_ns: float) -> list[LatencyPoint]:
    """Windows whose percentile exceeds ``threshold_ns``."""
    return [point for point in series if point.value_ns > threshold_ns]


def latency_summary(operations: Iterable[tuple[int, int, str, int]],
                    op: Optional[str] = None) -> dict:
    """Distribution summary of operation latencies.

    Returns count, mean, and the p50/p90/p99/p999/max percentiles in
    nanoseconds — the numbers a db_bench report prints.
    """
    values = np.asarray([latency for _, latency, kind, _ in operations
                         if op is None or kind == op], dtype=np.int64)
    if values.size == 0:
        return {"count": 0}
    return {
        "count": int(values.size),
        "mean_ns": float(values.mean()),
        "p50_ns": float(np.percentile(values, 50)),
        "p90_ns": float(np.percentile(values, 90)),
        "p99_ns": float(np.percentile(values, 99)),
        "p999_ns": float(np.percentile(values, 99.9)),
        "max_ns": float(values.max()),
    }


def throughput_series(operations: Iterable[tuple[int, int, str, int]],
                      window_ns: int) -> list[tuple[int, float]]:
    """Operations/second per window."""
    if window_ns <= 0:
        raise ValueError(f"window must be positive, got {window_ns}")
    counts: dict[int, int] = {}
    for start, _, _, _ in operations:
        window = (start // window_ns) * window_ns
        counts[window] = counts.get(window, 0) + 1
    scale = 1e9 / window_ns
    return [(window, count * scale)
            for window, count in sorted(counts.items())]
