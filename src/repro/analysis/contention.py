"""Multi-threaded I/O contention detection (the paper's Fig. 4 insight).

The paper's reading of Fig. 4: *"when multiple compaction threads
submit I/O requests, the number of syscalls of db_bench threads
decreases, causing an immediate tail-latency spike"* — intervals with
≥ 5 active compaction threads coincide with latency spikes, intervals
with 1–2 active compaction threads with good client performance.

These functions compute that correlation from the events DIO stored at
the backend.
"""

from __future__ import annotations

from typing import NamedTuple, Optional

import numpy as np

from repro.backend.store import DocumentStore


def syscall_counts_by_thread(store: DocumentStore, index: str,
                             window_ns: int,
                             session: Optional[str] = None) -> dict:
    """``window -> {thread_name: syscall_count}`` from traced events.

    This is the data behind Fig. 4 (syscalls over time aggregated by
    thread name), produced with a date_histogram + terms aggregation.
    """
    query: dict = {"match_all": {}}
    if session:
        query = {"term": {"session": session}}
    response = store.search(index, query=query, size=0, aggs={
        "over_time": {
            "date_histogram": {"field": "time", "fixed_interval": window_ns},
            "aggs": {"by_thread": {"terms": {"field": "proc_name",
                                             "size": 50}}},
        },
    })
    out: dict[int, dict[str, int]] = {}
    for bucket in response["aggregations"]["over_time"]["buckets"]:
        out[bucket["key"]] = {
            sub["key"]: sub["doc_count"]
            for sub in bucket["by_thread"]["buckets"]
        }
    return out


def active_compaction_threads(store: DocumentStore, index: str,
                              window_ns: int,
                              prefix: str = "rocksdb:low",
                              session: Optional[str] = None) -> dict[int, int]:
    """``window -> number of distinct compaction TIDs issuing syscalls``."""
    query: dict = {"bool": {"must": [
        {"wildcard": {"proc_name": prefix + "*"}},
    ]}}
    if session:
        query["bool"]["must"].append({"term": {"session": session}})
    response = store.search(index, query=query, size=0, aggs={
        "over_time": {
            "date_histogram": {"field": "time", "fixed_interval": window_ns},
            "aggs": {"tids": {"cardinality": {"field": "tid"}}},
        },
    })
    return {bucket["key"]: bucket["tids"]["value"]
            for bucket in response["aggregations"]["over_time"]["buckets"]}


class ContentionReport(NamedTuple):
    """Outcome of the contention analysis."""

    #: Windows classified as contended (>= threshold compaction threads).
    contended_windows: list[int]
    #: Windows with background I/O below the threshold.
    calm_windows: list[int]
    #: Mean client (db_bench) syscalls per window in each regime.
    client_rate_contended: float
    client_rate_calm: float
    #: Threshold used (paper: 5 concurrent compaction threads).
    threshold: int

    @property
    def client_slowdown(self) -> float:
        """How much client syscall activity drops under contention."""
        if self.client_rate_contended <= 0:
            return float("inf") if self.client_rate_calm > 0 else 1.0
        return self.client_rate_calm / self.client_rate_contended


def detect_contention(store: DocumentStore, index: str, window_ns: int,
                      min_compaction_threads: int = 5,
                      client_comm: str = "db_bench",
                      session: Optional[str] = None) -> ContentionReport:
    """Classify windows by compaction concurrency; compare client rates."""
    by_thread = syscall_counts_by_thread(store, index, window_ns, session)
    active = active_compaction_threads(store, index, window_ns,
                                       session=session)
    contended, calm = [], []
    contended_rates, calm_rates = [], []
    for window, threads in sorted(by_thread.items()):
        client_count = threads.get(client_comm, 0)
        if active.get(window, 0) >= min_compaction_threads:
            contended.append(window)
            contended_rates.append(client_count)
        else:
            calm.append(window)
            calm_rates.append(client_count)
    return ContentionReport(
        contended_windows=contended,
        calm_windows=calm,
        client_rate_contended=float(np.mean(contended_rates)) if contended_rates else 0.0,
        client_rate_calm=float(np.mean(calm_rates)) if calm_rates else 0.0,
        threshold=min_compaction_threads,
    )
