"""The unified diagnosis surface: one evidence-backed report.

This is the layer ROADMAP item 4 asked for: the paper's two headline
case studies (Fluent Bit data loss §III-B, RocksDB contention §III-C)
diagnosed *automatically* instead of by a human reading dashboards.

:func:`diagnose_session` merges two sources of findings —

- the **batch** detector battery (:mod:`repro.analysis.detectors`),
  which runs backend queries post-mortem, and
- the **streaming** battery (:mod:`repro.analysis.streaming`), either
  a live :class:`~repro.analysis.streaming.DiagnosisTap` that rode the
  tracer's consumer path, or a replay of the stored events through a
  fresh tap —

ranks them by severity and confidence (a finding corroborated by both
sources outranks one seen by a single source), attaches the mined DFG
fingerprint and behaviour phases, and renders a deterministic report:
same events in, byte-identical report out (pinned by the DST digest).
"""

from __future__ import annotations

import json
from typing import Optional, Sequence

from repro.analysis.detectors import (DEFAULT_DETECTORS, Detector, Finding,
                                      run_detectors)
from repro.analysis.dfg import (DirectlyFollowsGraph, Phase, merged_dfg,
                                segment_phases)
from repro.analysis.streaming import DiagnosisTap
from repro.backend.store import DocumentStore

_SEVERITY_ORDER = {"critical": 0, "warning": 1, "info": 2}

#: Confidence assigned by provenance: corroborated findings (same
#: detector surfaced by both the batch and the streaming battery)
#: outrank single-source ones; batch outranks streaming (it saw the
#: complete stream with the backend's indexes, not a bounded tap).
CONFIDENCE = {"both": 0.95, "batch": 0.8, "streaming": 0.6}


class RankedFinding:
    """One finding with its provenance and confidence."""

    __slots__ = ("finding", "source", "confidence", "emit_ns")

    def __init__(self, finding: Finding, source: str,
                 emit_ns: Optional[int] = None) -> None:
        self.finding = finding
        self.source = source            # "batch" | "streaming" | "both"
        self.confidence = CONFIDENCE[source]
        self.emit_ns = emit_ns

    @property
    def sort_key(self) -> tuple:
        return (_SEVERITY_ORDER.get(self.finding.severity, 9),
                -self.confidence, self.finding.detector,
                self.finding.title)

    def as_dict(self) -> dict:
        out = self.finding.as_dict()
        out["source"] = self.source
        out["confidence"] = self.confidence
        if self.emit_ns is not None:
            out["emit_ns"] = self.emit_ns
        return out


class DiagnosisReport:
    """The merged, ranked, evidence-backed diagnosis of one session."""

    def __init__(self, session: Optional[str],
                 findings: list[RankedFinding],
                 dfg: DirectlyFollowsGraph,
                 phases: list[Phase],
                 events: int) -> None:
        self.session = session
        self.findings = findings
        self.dfg = dfg
        self.phases = phases
        self.events = events

    # -- summaries -----------------------------------------------------

    @property
    def severities(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for ranked in self.findings:
            severity = ranked.finding.severity
            counts[severity] = counts.get(severity, 0) + 1
        return dict(sorted(counts.items()))

    @property
    def detectors_fired(self) -> list[str]:
        return sorted({ranked.finding.detector
                       for ranked in self.findings})

    @property
    def has_critical(self) -> bool:
        return any(ranked.finding.severity == "critical"
                   for ranked in self.findings)

    def as_dict(self) -> dict:
        """JSON-ready, deterministic (stable ordering throughout)."""
        return {
            "session": self.session,
            "events": self.events,
            "severities": self.severities,
            "detectors_fired": self.detectors_fired,
            "findings": [ranked.as_dict() for ranked in self.findings],
            "dfg": self.dfg.fingerprint(),
            "phases": [phase.as_dict() for phase in self.phases],
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    # -- rendering -----------------------------------------------------

    def render(self) -> str:
        """Human-readable report (deterministic)."""
        lines = [f"=== diagnosis for session {self.session!r} ===",
                 f"{self.events} events analyzed; "
                 + (", ".join(f"{count} {severity}" for severity, count
                              in self.severities.items())
                    if self.findings else "no issues detected")]
        for ranked in self.findings:
            finding = ranked.finding
            lines.append(f"  {finding}")
            lines.append(f"      source: {ranked.source}  "
                         f"confidence: {ranked.confidence:.2f}")
            evidence = finding.evidence or {}
            ids = evidence.get("event_ids") or []
            window = evidence.get("window")
            parts = []
            if ids:
                shown = ", ".join(ids[:4])
                more = f" (+{len(ids) - 4} more)" if len(ids) > 4 else ""
                parts.append(f"events [{shown}{more}]")
            if window:
                parts.append(f"window {window['start_ns'] / 1e6:.1f}"
                             f"-{window['end_ns'] / 1e6:.1f} ms")
            if parts:
                lines.append(f"      evidence: {'; '.join(parts)}")
        lines.append("")
        lines.append(f"behaviour: {len(self.phases)} phase(s), "
                     f"{len(self.dfg.node_counts)} DFG nodes, "
                     f"{len(self.dfg.edges)} edges")
        for index, phase in enumerate(self.phases, 1):
            top = ", ".join(f"{src}->{dst}" for src, dst, _
                            in phase.dfg.top_edges(3))
            drift = (f" (drift {phase.drift:.2f})"
                     if phase.drift else "")
            lines.append(
                f"  phase {index}: {phase.start_ns / 1e6:.1f}-"
                f"{phase.end_ns / 1e6:.1f} ms, {phase.events} events"
                f"{drift}; dominant: {top}")
        return "\n".join(lines)


def _merge(batch: Sequence[Finding],
           streaming: Sequence[tuple[int, Finding]]) -> list[RankedFinding]:
    """Merge the two batteries, corroborating same-detector findings.

    A detector that fired in both sources yields the batch finding
    (complete-stream evidence) at "both" confidence; streaming-only
    findings keep their incremental emit timestamps.
    """
    batch_detectors = {finding.detector for finding in batch}
    stream_detectors = {finding.detector for _, finding in streaming}
    ranked = [RankedFinding(finding,
                            "both" if finding.detector in stream_detectors
                            else "batch")
              for finding in batch]
    for emit_ns, finding in streaming:
        if finding.detector in batch_detectors:
            continue                     # corroboration, not duplication
        ranked.append(RankedFinding(finding, "streaming", emit_ns))
    ranked.sort(key=lambda item: item.sort_key)
    return ranked


def _merged_feed(events: Sequence[tuple[str, dict]],
                 latency_records: Optional[Sequence]) -> list[tuple]:
    """Interleave events and latency records by time (stable).

    Feeding them merged — the way a live deployment would see them —
    keeps the windowed detectors' background-activity state alive when
    a latency record closes its window, so spikes attribute correctly.
    """
    feed = [(source.get("time", 0), 0, index, ("event", event_id, source))
            for index, (event_id, source) in enumerate(events)]
    feed += [(record[0], 1, index, ("latency", record[0], record[1]))
             for index, record in enumerate(latency_records or ())]
    feed.sort(key=lambda item: item[:3])
    return [item[3] for item in feed]


def replay_through_tap(store: DocumentStore, index: str,
                       session: Optional[str],
                       tap: Optional[DiagnosisTap] = None,
                       latency_records: Optional[Sequence] = None
                       ) -> DiagnosisTap:
    """Feed a stored session through a (fresh) streaming tap.

    Post-mortem equivalent of riding the consumer path live — with the
    bonus that stored events carry backend ids, so the streaming
    findings get real evidence links.
    """
    from repro.analysis.dfg import _session_events

    if tap is None:
        tap = DiagnosisTap()
    for item in _merged_feed(_session_events(store, index, session),
                             latency_records):
        if item[0] == "event":
            tap.observe(item[2], item[1])
        else:
            tap.observe_latency(item[1], item[2])
    tap.finalize()
    return tap


def follow_session(store: DocumentStore, index: str,
                   session: Optional[str],
                   tap: Optional[DiagnosisTap] = None,
                   latency_records: Optional[Sequence] = None,
                   emit=None) -> DiagnosisTap:
    """Replay a stored session, surfacing findings *as they emerge*.

    The ``--follow`` mode of ``dio diagnose``: ``emit(emit_ns,
    finding)`` is called for every incremental finding in stream order,
    including those flushed by the final watermark close.
    """
    from repro.analysis.dfg import _session_events

    if tap is None:
        tap = DiagnosisTap()

    def drain() -> None:
        if emit is None:
            tap.drain_new()
            return
        for emit_ns, finding in tap.drain_new():
            emit(emit_ns, finding)

    for item in _merged_feed(_session_events(store, index, session),
                             latency_records):
        if item[0] == "event":
            tap.observe(item[2], item[1])
        else:
            tap.observe_latency(item[1], item[2])
        drain()
    tap.finalize()
    drain()
    return tap


def diagnose_session(store: DocumentStore, session: Optional[str] = None,
                     index: str = "dio_trace",
                     tap: Optional[DiagnosisTap] = None,
                     detectors: Sequence[Detector] = DEFAULT_DETECTORS,
                     latency_records: Optional[Sequence] = None,
                     node_mode: str = "syscall",
                     window_events: int = 64,
                     drift_threshold: float = 0.4) -> DiagnosisReport:
    """Diagnose one session: batch + streaming findings, DFG, phases.

    ``tap`` is an already-fed live tap (from the tracer's consumer
    path); when omitted, the stored events are replayed through a fresh
    one.  ``latency_records`` (``(start_ns, latency_ns, ...)`` tuples,
    e.g. ``bench.records()``) additionally feed the spike attributor.
    """
    batch = run_detectors(store, index, session, detectors)
    if tap is None:
        tap = replay_through_tap(store, index, session,
                                 latency_records=latency_records)
    else:
        if latency_records:
            # A live tap saw the syscalls during the run; the latency
            # records only exist afterwards.  Feed them time-sorted and
            # re-finalize to close the windows they opened.
            for record in sorted(latency_records, key=lambda r: r[0]):
                tap.observe_latency(record[0], record[1])
        tap.finalize()
    graph = merged_dfg(store, index, session, node_mode)
    from repro.analysis.dfg import _session_events

    stream = [source for _, source in _session_events(store, index, session)]
    phases = segment_phases(stream, window_events, drift_threshold,
                            node_mode, name=session or index)
    return DiagnosisReport(
        session=session,
        findings=_merge(batch, tap.findings()),
        dfg=graph,
        phases=phases,
        events=len(stream),
    )


def diagnose_store(store: DocumentStore, sessions: Sequence[str],
                   index: str = "dio_trace",
                   **kwargs) -> list[DiagnosisReport]:
    """One report per session (for multi-session trace files)."""
    return [diagnose_session(store, session, index, **kwargs)
            for session in sessions]
