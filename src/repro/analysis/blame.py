"""Spike blame analysis: who was doing I/O when latency spiked?

Automates the red boxes of the paper's Fig. 4: given latency spike
windows (from benchmark records or percentile series) and the DIO
trace, report — per spike — which threads issued syscalls and how many
bytes they moved, ranked so the culprit background activity tops the
list.
"""

from __future__ import annotations

from typing import Iterable, NamedTuple, Optional

from repro.analysis.latency import LatencyPoint, percentile_series, spikes
from repro.backend.store import DocumentStore


class ThreadActivity(NamedTuple):
    """One thread's contribution inside a window."""

    proc_name: str
    tid: int
    syscalls: int
    bytes_moved: int


class SpikeBlame(NamedTuple):
    """The blame report for one spike window."""

    window_start_ns: int
    p99_ns: float
    #: Background thread activity, heaviest movers first.
    background: list[ThreadActivity]
    #: The client threads' own activity in the same window.
    client_syscalls: int

    def top_culprits(self, n: int = 3) -> list[str]:
        """Names of the busiest background threads in this window."""
        return [activity.proc_name for activity in self.background[:n]]


def _window_activity(store: DocumentStore, index: str, start_ns: int,
                     window_ns: int,
                     session: Optional[str]) -> list[dict]:
    must: list = [{"range": {"time": {"gte": start_ns,
                                      "lt": start_ns + window_ns}}}]
    if session:
        must.append({"term": {"session": session}})
    response = store.search(
        index, query={"bool": {"must": must}}, size=0,
        aggs={"threads": {
            "terms": {"field": "tid", "size": 100},
            "aggs": {
                "name": {"terms": {"field": "proc_name", "size": 1}},
                "bytes": {"sum": {"field": "ret"}},
            },
        }})
    out = []
    for bucket in response["aggregations"]["threads"]["buckets"]:
        names = bucket["name"]["buckets"]
        out.append({
            "tid": bucket["key"],
            "proc_name": names[0]["key"] if names else "?",
            "syscalls": bucket["doc_count"],
            "bytes": max(int(bucket["bytes"]["value"] or 0), 0),
        })
    return out


def blame_spikes(store: DocumentStore,
                 operations: Iterable[tuple[int, int, str, int]],
                 window_ns: int,
                 index: str = "dio_trace",
                 session: Optional[str] = None,
                 client_comm: str = "db_bench",
                 spike_factor: float = 2.5,
                 percent: float = 99.0) -> list[SpikeBlame]:
    """Identify latency spikes and attribute each to thread activity.

    ``operations`` are the benchmark's latency records; the trace in
    ``store`` supplies the per-thread activity.  A window counts as a
    spike when its p99 exceeds ``spike_factor`` times the calm baseline
    (the 25th percentile of window p99s).
    """
    series = percentile_series(operations, window_ns, percent)
    if not series:
        return []
    values = sorted(point.value_ns for point in series)
    baseline = values[len(values) // 4]
    spiky = spikes(series, threshold_ns=spike_factor * baseline)

    reports = []
    for point in spiky:
        activity = _window_activity(store, index, point.window_start_ns,
                                    window_ns, session)
        background = sorted(
            (ThreadActivity(a["proc_name"], a["tid"], a["syscalls"],
                            a["bytes"])
             for a in activity if a["proc_name"] != client_comm),
            key=lambda t: (-t.bytes_moved, -t.syscalls, t.tid))
        client = sum(a["syscalls"] for a in activity
                     if a["proc_name"] == client_comm)
        reports.append(SpikeBlame(point.window_start_ns, point.value_ns,
                                  background, client))
    return reports


def render_blame(reports: list[SpikeBlame]) -> str:
    """Human-readable blame summary."""
    if not reports:
        return "no latency spikes detected"
    lines = []
    for report in reports:
        t_ms = report.window_start_ns / 1e6
        lines.append(f"spike @ {t_ms:.0f} ms (p99 "
                     f"{report.p99_ns / 1e6:.2f} ms): "
                     f"{len(report.background)} background threads active, "
                     f"client issued {report.client_syscalls} syscalls")
        for activity in report.background[:5]:
            lines.append(f"    {activity.proc_name} (tid {activity.tid}): "
                         f"{activity.syscalls} syscalls, "
                         f"{activity.bytes_moved:,} B")
    return "\n".join(lines)
