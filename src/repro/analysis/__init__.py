"""Analysis algorithms over benchmark results and traced events.

- :mod:`repro.analysis.latency` — windowed percentile series over
  db_bench operation records (the paper's Fig. 3).
- :mod:`repro.analysis.contention` — correlating per-thread syscall
  activity from DIO's backend with client performance to locate
  multi-threaded I/O contention (the paper's Fig. 4 finding).
- :mod:`repro.analysis.patterns` — I/O access-pattern classifiers over
  traced events (sequential vs. random, small requests, and the
  stale-offset-resume signature behind the Fluent Bit data loss).
"""

from repro.analysis.latency import LatencyPoint, percentile_series, spikes
from repro.analysis.contention import (ContentionReport, detect_contention,
                                       syscall_counts_by_thread)
from repro.analysis.patterns import (AccessPattern, classify_file_accesses,
                                     find_stale_offset_resumes,
                                     small_io_files)
from repro.analysis.detectors import (DEFAULT_DETECTORS, Detector, Finding,
                                      run_detectors)
from repro.analysis.compare import (Divergence, SessionComparison,
                                    compare_sessions, session_fingerprint)
from repro.analysis.blame import (SpikeBlame, ThreadActivity, blame_spikes,
                                  render_blame)
from repro.analysis.dfg import (DFGComparison, DirectlyFollowsGraph, Phase,
                                compare_session_dfgs, merged_dfg, mine_dfgs,
                                mine_phases, segment_phases)
from repro.analysis.streaming import (DiagnosisTap, StreamingDetector,
                                      default_streaming_detectors)
from repro.analysis.diagnose import (DiagnosisReport, RankedFinding,
                                     diagnose_session, diagnose_store,
                                     follow_session)

__all__ = [
    "LatencyPoint",
    "percentile_series",
    "spikes",
    "ContentionReport",
    "detect_contention",
    "syscall_counts_by_thread",
    "AccessPattern",
    "classify_file_accesses",
    "find_stale_offset_resumes",
    "small_io_files",
    "DEFAULT_DETECTORS",
    "Detector",
    "Finding",
    "run_detectors",
    "Divergence",
    "SessionComparison",
    "compare_sessions",
    "session_fingerprint",
    "SpikeBlame",
    "ThreadActivity",
    "blame_spikes",
    "render_blame",
    "DFGComparison",
    "DirectlyFollowsGraph",
    "Phase",
    "compare_session_dfgs",
    "merged_dfg",
    "mine_dfgs",
    "mine_phases",
    "segment_phases",
    "DiagnosisTap",
    "StreamingDetector",
    "default_streaming_detectors",
    "DiagnosisReport",
    "RankedFinding",
    "diagnose_session",
    "diagnose_store",
    "follow_session",
]
