"""Comparing tracing sessions (paper §II: post-mortem analysis).

The paper validates Fluent Bit's fix by tracing both versions and
comparing the two executions (Fig. 2a vs 2b).  This module automates
that comparison:

- :func:`session_fingerprint` — aggregate view of one session;
- :func:`compare_sessions` — count deltas between two sessions plus the
  *first behavioural divergence*: the earliest point where the two
  normalized event sequences differ (for the Fluent Bit case, exactly
  the stale ``lseek``).
"""

from __future__ import annotations

from typing import NamedTuple, Optional

from repro.backend.store import DocumentStore


def session_fingerprint(store: DocumentStore, session: str,
                        index: str = "dio_trace") -> dict:
    """Aggregate statistics of one session."""
    response = store.search(
        index, query={"term": {"session": session}}, size=0,
        aggs={
            "by_syscall": {"terms": {"field": "syscall", "size": 50}},
            "by_proc": {"terms": {"field": "proc_name", "size": 50}},
            "errors": {"value_count": {"field": "ret"}},
            "bytes": {"sum": {"field": "ret"}},
        })
    aggs = response["aggregations"]
    failed = store.count(index, {"bool": {"must": [
        {"term": {"session": session}},
        {"range": {"ret": {"lt": 0}}},
    ]}})
    return {
        "session": session,
        "events": response["hits"]["total"]["value"],
        "by_syscall": {b["key"]: b["doc_count"]
                       for b in aggs["by_syscall"]["buckets"]},
        "by_proc": {b["key"]: b["doc_count"]
                    for b in aggs["by_proc"]["buckets"]},
        "failed_syscalls": failed,
    }


class Divergence(NamedTuple):
    """The first point where two sessions behave differently."""

    position: int
    event_a: Optional[dict]
    event_b: Optional[dict]

    def describe(self) -> str:
        """Human-readable one-liner."""

        def fmt(event):
            if event is None:
                return "(sequence ended)"
            offset = event.get("offset")
            suffix = f" @ {offset}" if offset is not None else ""
            return f"{event['proc_name']}: {event['syscall']} = {event['ret']}{suffix}"

        return (f"step {self.position}: {fmt(self.event_a)}  vs  "
                f"{fmt(self.event_b)}")


class SessionComparison(NamedTuple):
    """Outcome of comparing two sessions."""

    session_a: str
    session_b: str
    syscall_deltas: dict[str, int]
    common_prefix: int
    divergence: Optional[Divergence]

    @property
    def behaviorally_identical(self) -> bool:
        """True when the normalized event sequences match exactly."""
        return self.divergence is None


def _sequence(store: DocumentStore, session: str, index: str,
              procs: Optional[list[str]]) -> list[dict]:
    query: dict = {"bool": {"must": [{"term": {"session": session}}]}}
    if procs:
        query["bool"]["must"].append({"terms": {"proc_name": procs}})
    response = store.search(index, query=query, sort=["time"], size=None)
    return [hit["_source"] for hit in response["hits"]["hits"]]


def _normalize(events: list[dict]) -> list[tuple]:
    """Project events onto behaviour: thread order, syscall, ret, offset.

    Process names are replaced by order of first appearance, so renamed
    threads (``fluent-bit`` vs ``flb-pipeline``) still align.
    """
    alias: dict[str, str] = {}
    normalized = []
    for event in events:
        name = event["proc_name"]
        if name not in alias:
            alias[name] = f"P{len(alias)}"
        normalized.append((alias[name], event["syscall"], event["ret"],
                           event.get("offset")))
    return normalized


def compare_sessions(store: DocumentStore, session_a: str, session_b: str,
                     index: str = "dio_trace",
                     procs: Optional[list[str]] = None) -> SessionComparison:
    """Compare two sessions' behaviour.

    ``procs`` optionally restricts the sequence comparison to a set of
    process names (after which normalization still applies).
    """
    fp_a = session_fingerprint(store, session_a, index)
    fp_b = session_fingerprint(store, session_b, index)
    syscalls = set(fp_a["by_syscall"]) | set(fp_b["by_syscall"])
    deltas = {
        name: fp_b["by_syscall"].get(name, 0) - fp_a["by_syscall"].get(name, 0)
        for name in sorted(syscalls)
        if fp_b["by_syscall"].get(name, 0) != fp_a["by_syscall"].get(name, 0)
    }

    events_a = _sequence(store, session_a, index, procs)
    events_b = _sequence(store, session_b, index, procs)
    norm_a = _normalize(events_a)
    norm_b = _normalize(events_b)

    prefix = 0
    for left, right in zip(norm_a, norm_b):
        if left != right:
            break
        prefix += 1

    divergence: Optional[Divergence] = None
    if prefix < max(len(norm_a), len(norm_b)):
        divergence = Divergence(
            position=prefix,
            event_a=events_a[prefix] if prefix < len(events_a) else None,
            event_b=events_b[prefix] if prefix < len(events_b) else None,
        )
    return SessionComparison(session_a, session_b, deltas, prefix, divergence)
