"""DIO's self-telemetry: the pipeline observing itself.

A dependency-free instrumentation subsystem (paper §IV motivation: the
evaluation hinges on the tracer accounting for its own discards,
batching, and retries):

- :class:`~repro.telemetry.registry.MetricsRegistry` — labeled
  counters, gauges, and fixed-bucket histograms with p50/p95/p99
  quantile estimates;
- :class:`~repro.telemetry.spans.SpanTracer` /
  :meth:`~repro.telemetry.telemetry.Telemetry.span` — span-based
  tracing of pipeline stages in *simulated* nanoseconds, so traces are
  deterministic;
- :class:`~repro.telemetry.health.PipelineHealth` — per-stage health
  snapshots with derived drop-ratio / consumer-lag / retry-rate gauges;
- :mod:`~repro.telemetry.export` — Prometheus text and JSON exporters
  over the same registry state.

Components join in through ``bind_telemetry(registry)`` hooks (see
``Environment``, ``PerCPURingBuffer``, ``KernelFilter``,
``DocumentStore``, ``FilePathCorrelator``); ``DIOTracer`` wires the
whole pipeline and keeps ``TracerStats`` as a compatibility facade.
"""

from repro.telemetry.registry import (Counter, DEFAULT_BUCKETS, Gauge,
                                      Histogram, MetricFamily,
                                      MetricsRegistry, REPORT_QUANTILES,
                                      TelemetryError)
from repro.telemetry.spans import (MAX_FINISHED_SPANS, SPAN_HISTOGRAM, Span,
                                   SpanTracer)
from repro.telemetry.health import (HealthReport, PipelineHealth,
                                    STAGE_COUNTERS, STAGE_SPANS, STAGES,
                                    StageHealth)
from repro.telemetry.export import (parse_prometheus, registry_as_dict,
                                    to_json, to_prometheus)
from repro.telemetry.telemetry import Telemetry

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "HealthReport",
    "MAX_FINISHED_SPANS",
    "MetricFamily",
    "MetricsRegistry",
    "PipelineHealth",
    "REPORT_QUANTILES",
    "SPAN_HISTOGRAM",
    "STAGES",
    "STAGE_COUNTERS",
    "STAGE_SPANS",
    "Span",
    "SpanTracer",
    "StageHealth",
    "Telemetry",
    "TelemetryError",
    "parse_prometheus",
    "registry_as_dict",
    "to_json",
    "to_prometheus",
]
