"""Exporters: Prometheus text exposition and JSON.

Both render the *same* registry state — the JSON document and the
Prometheus text are two serializations of one snapshot, and
:func:`parse_prometheus` exists so tests (and scrapers without a real
Prometheus) can verify the round-trip.  Families render sorted by
name and children sorted by label values, so output is byte-identical
across runs of a deterministic pipeline.
"""

from __future__ import annotations

import json
import math
from typing import Any

from repro.telemetry.registry import Histogram, MetricsRegistry


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus does."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value.is_integer():
            return str(int(value))
        return repr(value)
    return str(value)


def _escape_label(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _label_block(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{name}="{_escape_label(value)}"'
                     for name, value in labels.items())
    return "{" + inner + "}"


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in Prometheus text exposition format."""
    lines: list[str] = []
    for family in registry.collect():
        if family.help:
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labels, child in family.samples():
            if isinstance(child, Histogram):
                cumulative = child.cumulative_counts()
                bounds = [*child.buckets, math.inf]
                for bound, count in zip(bounds, cumulative):
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _format_value(float(bound))
                    lines.append(f"{family.name}_bucket"
                                 f"{_label_block(bucket_labels)} {count}")
                lines.append(f"{family.name}_sum{_label_block(labels)} "
                             f"{_format_value(child.sum)}")
                lines.append(f"{family.name}_count{_label_block(labels)} "
                             f"{child.count}")
            else:
                lines.append(f"{family.name}{_label_block(labels)} "
                             f"{_format_value(child.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def registry_as_dict(registry: MetricsRegistry) -> dict:
    """The registry snapshot as plain data (the JSON exporter's body)."""
    metrics = []
    for family in registry.collect():
        samples: list[dict[str, Any]] = []
        for labels, child in family.samples():
            if isinstance(child, Histogram):
                samples.append({
                    "labels": labels,
                    "buckets": [
                        {"le": ("+Inf" if math.isinf(bound) else bound),
                         "count": count}
                        for bound, count in zip([*child.buckets, math.inf],
                                                child.cumulative_counts())
                    ],
                    "sum": child.sum,
                    "count": child.count,
                })
            else:
                samples.append({"labels": labels, "value": child.value})
        metrics.append({
            "name": family.name,
            "type": family.kind,
            "help": family.help,
            "samples": samples,
        })
    return {"metrics": metrics}


def to_json(registry: MetricsRegistry, indent: int = 2) -> str:
    """Render the registry snapshot as a JSON document."""
    return json.dumps(registry_as_dict(registry), indent=indent,
                      sort_keys=False)


def parse_prometheus(text: str) -> dict[str, dict[tuple, float]]:
    """Parse exposition text back into ``{name: {label items: value}}``.

    Only the subset :func:`to_prometheus` emits is supported; useful
    for round-trip tests against the JSON exporter.
    """
    out: dict[str, dict[tuple, float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        labels: dict[str, str] = {}
        name = name_part
        if "{" in name_part:
            name, _, label_part = name_part.partition("{")
            body = label_part.rstrip("}")
            for item in _split_labels(body):
                key, _, raw = item.partition("=")
                value = (raw[1:-1].replace(r'\"', '"')
                         .replace(r"\n", "\n").replace(r"\\", "\\"))
                labels[key] = value
        if value_part == "+Inf":
            value = math.inf
        elif value_part == "-Inf":
            value = -math.inf
        else:
            value = float(value_part)
        out.setdefault(name, {})[tuple(sorted(labels.items()))] = value
    return out


def _split_labels(body: str) -> list[str]:
    """Split ``k="v",k2="v2"`` respecting escaped quotes."""
    items, current, in_quotes, escaped = [], [], False, False
    for char in body:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
            current.append(char)
            continue
        if char == "," and not in_quotes:
            items.append("".join(current))
            current = []
            continue
        current.append(char)
    if current:
        items.append("".join(current))
    return items
