"""Span-based tracing of the pipeline's own stages.

A *span* is a named interval on the simulation's virtual clock::

    with telemetry.span("shipper.bulk"):
        ...        # simulated time may pass here (timeouts, retries)

Because the clock is the deterministic :class:`~repro.sim.Environment`
clock, span durations are exact virtual nanoseconds and identical
across runs — the observability pipeline observes itself without
perturbing what it measures (the property uringscope argues for).

Spans nest: entering a span while another is open records the parent
name and depth, so a trace reads like a call tree.  Durations also
feed the ``dio_span_duration_ns`` histogram family (one child per span
name), which is where health reports get their per-stage p50/p95/p99.

Inside generator-based simulation processes the ``with`` block may
suspend on ``yield``; the span simply spans the virtual time that
passed, which is exactly the stage latency we want.  The span stack is
per :class:`SpanTracer`, so give concurrent processes their own tracer
if parentage must stay exact.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.telemetry.registry import MetricsRegistry

#: Completed spans kept for inspection; older spans beyond this are
#: dropped (and counted) so unbounded runs cannot hoard memory.
MAX_FINISHED_SPANS = 10_000

#: Histogram family span durations are recorded into.
SPAN_HISTOGRAM = "dio_span_duration_ns"


class Span:
    """One finished named interval."""

    __slots__ = ("name", "start_ns", "end_ns", "depth", "parent")

    def __init__(self, name: str, start_ns: int, end_ns: int,
                 depth: int, parent: Optional[str]):
        self.name = name
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.depth = depth
        self.parent = parent

    @property
    def duration_ns(self) -> int:
        """Virtual nanoseconds the span covered."""
        return self.end_ns - self.start_ns

    def as_dict(self) -> dict:
        """Span fields as a plain dict."""
        return {
            "name": self.name,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "duration_ns": self.duration_ns,
            "depth": self.depth,
            "parent": self.parent,
        }

    def __repr__(self) -> str:
        return (f"<Span {self.name!r} [{self.start_ns}..{self.end_ns}] "
                f"depth={self.depth}>")


class _ActiveSpan:
    """Context manager for one span activation."""

    __slots__ = ("_tracer", "_name", "_start", "_parent", "_depth")

    def __init__(self, tracer: "SpanTracer", name: str):
        self._tracer = tracer
        self._name = name

    def __enter__(self) -> "_ActiveSpan":
        stack = self._tracer._stack
        self._start = self._tracer._clock()
        self._parent = stack[-1] if stack else None
        self._depth = len(stack)
        stack.append(self._name)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._stack.pop()
        self._tracer._finish(Span(self._name, self._start,
                                  self._tracer._clock(),
                                  self._depth, self._parent))


class _NullSpan:
    """Shared no-op context manager for disabled telemetry."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class SpanTracer:
    """Records spans against a clock into a registry histogram."""

    def __init__(self, clock: Callable[[], int],
                 registry: Optional[MetricsRegistry] = None,
                 enabled: bool = True,
                 max_finished: int = MAX_FINISHED_SPANS):
        self._clock = clock
        self.enabled = enabled
        self._stack: list[str] = []
        self.finished: list[Span] = []
        self.dropped = 0
        self._max_finished = max_finished
        self._histogram = (registry.histogram(
            SPAN_HISTOGRAM, "Duration of pipeline stage spans "
            "(virtual nanoseconds).", labelnames=("span",))
            if registry is not None else None)

    def span(self, name: str):
        """Context manager recording one ``name`` span."""
        if not self.enabled:
            return _NULL_SPAN
        return _ActiveSpan(self, name)

    def _finish(self, span: Span) -> None:
        if len(self.finished) < self._max_finished:
            self.finished.append(span)
        else:
            self.dropped += 1
        if self._histogram is not None:
            self._histogram.labels(span=span.name).observe(span.duration_ns)

    # ------------------------------------------------------------------
    # Read side

    def spans_named(self, name: str) -> list[Span]:
        """All finished spans called ``name``, in completion order."""
        return [span for span in self.finished if span.name == name]

    def quantile(self, name: str, q: float) -> Optional[float]:
        """Histogram-estimated duration quantile for one span name."""
        if self._histogram is None:
            return None
        child = self._histogram._children.get((name,))
        return child.quantile(q) if child is not None else None

    def __repr__(self) -> str:
        return (f"<SpanTracer finished={len(self.finished)} "
                f"open={len(self._stack)} enabled={self.enabled}>")
