"""Generated metrics reference: the registry is the documentation.

``docs/METRICS.md`` is not hand-maintained — it is rendered from the
help text every component supplies when it registers its metric
families.  :func:`build_reference_registry` runs a tiny deterministic
pipeline that touches every subsystem (kernel filter, ring buffers,
hardened consumer, spill WAL, circuit breaker, fault injection, store,
correlator, spans, derived health gauges), so every ``dio_*`` family
ends up registered; :func:`metrics_reference_markdown` renders them.

Regenerate the document after adding or changing a metric::

    PYTHONPATH=src python -m repro.telemetry.reference

``tests/test_docs_metrics.py`` fails when the committed file drifts
from the registry, so a new metric without documentation (or stale
documentation for a removed one) cannot land silently.
"""

from __future__ import annotations

from repro.telemetry.registry import MetricsRegistry

#: Section ordering: (metric-name prefix, section heading, blurb).
_SECTIONS = (
    ("dio_filter_", "Kernel filter",
     "In-kernel scope filtering (paper §III-A): what the eBPF programs "
     "accept or reject before any record is materialised."),
    ("dio_ring_", "Per-CPU ring buffers",
     "The kernel→user-space handoff (§III-D): fixed-capacity per-CPU "
     "buffers whose discards the paper measures at 3.5% under load."),
    ("dio_uring_", "io_uring visibility",
     "The ring-aware tracer mode: SQE/CQE lifecycle counters from the "
     "kernel's io_uring model, plus the per-op completion events the "
     "classic (enter-only) mode cannot see.  The gap between "
     "``dio_uring_cqes_posted_total`` and "
     "``dio_uring_events_observed_total`` is the blind spot, in "
     "metric form."),
    ("dio_consumer_", "Consumer",
     "The single user-space consumer process: batching, parsing, "
     "staging, backpressure, and backoff."),
    ("dio_shipper_", "Shipper",
     "Bulk requests from the consumer to the backend."),
    ("dio_ingest_", "Vectorized ingest",
     "The columnar bulk-ingest path: ring batches decoded straight "
     "into RecordBatch lanes and appended via ``bulk_columnar`` with "
     "lazily materialised ``_source`` dicts.  ``ingest_mode=legacy`` "
     "routes through the per-event path instead (the differential "
     "oracle)."),
    ("dio_breaker_", "Circuit breaker",
     "Protects a degraded backend from retry storms; state 0=closed, "
     "1=half-open, 2=open."),
    ("dio_spill_", "Spill WAL",
     "The dead-letter write-ahead log: batches that exhausted their "
     "retries, kept for replay on recovery."),
    ("dio_segment_", "Segment storage engine",
     "Local durable storage (``storage_dir``): acknowledged batches "
     "land in a write-ahead log and are sealed into immutable "
     "columnar segment files with zone maps and checksummed footers "
     "(byte layout in docs/STORAGE.md).  See ``dio segments``."),
    ("dio_faults_", "Fault injection",
     "Only present when the backend is wrapped in a "
     "``repro.faults.FaultyStore`` (tests, ``dio resilience``)."),
    ("dio_store_", "Document store",
     "The simulated Elasticsearch-like backend."),
    ("dio_shard_", "Scatter-gather shard router",
     "The sharded backend (``repro.backend.router``): deterministic "
     "key-based routing over N document-store shards, parallel "
     "scatter-gather reads, and partial-merge aggregation.  Present "
     "when the ``TracerConfig [sharding]`` section asks for "
     "``shard_count > 1``."),
    ("dio_tenant_", "Tenancy",
     "Per-tenant isolation on top of the shard router "
     "(``repro.backend.tenancy``): disjoint shard sets, admission-"
     "controlled document quotas, and the per-tenant health rollup "
     "``dio fleet`` renders."),
    ("dio_correlator_", "Correlator",
     "Shutdown-time file-path correlation (§III-B): joining "
     "file-descriptor tags back to paths."),
    ("dio_sim_", "Simulation substrate",
     "The discrete-event engine underneath everything."),
    ("dio_span_", "Spans",
     "Pipeline span durations, labeled by span name (e.g. "
     "``consumer.batch``, ``shipper.bulk``, ``shipper.replay``)."),
    ("dio_health_", "Derived health gauges",
     "Computed from the families above by "
     ":class:`repro.telemetry.health.PipelineHealth`; these are what "
     "``dio health`` renders."),
    ("dio_diagnosis_", "Streaming diagnosis",
     "The streaming-diagnosis tap (``repro.analysis.streaming``) "
     "riding the consumer path: bounded-memory detectors emitting "
     "incremental findings while events are ingested.  See "
     "``dio diagnose``."),
    ("dio_dfg_", "Directly-Follows-Graph mining",
     "The online DFG miner inside the diagnosis tap: syscall "
     "transition structure and behaviour-phase drift, mined live "
     "(batch mining lives in ``repro.analysis.dfg``)."),
    ("dst_", "Deterministic simulation testing",
     "Campaign counters from the DST harness (``dio dst run``): "
     "seeded whole-pipeline scenarios with fault, crash, and "
     "torn-WAL injection.  See docs/TESTING.md."),
)

_HEADER = """# DIO metrics reference

Every metric the pipeline registers, with the help text it was
registered with.  **Generated — do not edit by hand.**  Regenerate
with::

    PYTHONPATH=src python -m repro.telemetry.reference

`tests/test_docs_metrics.py` checks this file against the registry, so
it cannot drift.  See `docs/RELIABILITY.md` for how the resilience
metrics fit together and `ARCHITECTURE.md` for the pipeline they
instrument.
"""


def build_reference_registry() -> MetricsRegistry:
    """A registry with every ``dio_*`` family registered.

    Runs the smallest pipeline that instantiates every subsystem: a
    handful of writes traced through a fault-wrapped store, shut down
    cleanly so the correlator and derived health gauges bind too.
    Deterministic by construction (virtual clock, fixed seeds).
    """
    import tempfile

    from repro.backend import DocumentStore
    from repro.faults import FaultPlan, FaultyStore
    from repro.kernel import O_CREAT, O_WRONLY, Kernel
    from repro.sim import Environment
    from repro.tracer import DIOTracer, TracerConfig

    from repro.analysis.streaming import DiagnosisTap

    env = Environment()
    kernel = Kernel(env, ncpus=1)
    faulty = FaultyStore(DocumentStore(), FaultPlan(),
                         clock=lambda: env.now)
    with tempfile.TemporaryDirectory() as storage_dir:
        tracer = DIOTracer(env, kernel, faulty,
                           TracerConfig(session_name="reference",
                                        storage_dir=storage_dir,
                                        storage_mode="segments"),
                           tap=DiagnosisTap())
        task = kernel.spawn_process("ref").threads[0]
        tracer.attach()

        def main():
            fd = yield from kernel.syscall(task, "open", path="/ref",
                                           flags=O_CREAT | O_WRONLY)
            yield from kernel.syscall(task, "write", fd=fd, data=b"x")
            yield from kernel.syscall(task, "close", fd=fd)
            yield from tracer.shutdown()

        env.run(until=env.process(main()))

    from repro.dst.campaign import CampaignStats
    CampaignStats().bind_telemetry(tracer.telemetry.registry)

    # The sharded router and the tenancy layer bind their families on
    # top (registration is idempotent, so the shared dio_store_*
    # names are simply reused).
    from repro.backend import ShardedDocumentStore, TenantBackend
    registry = tracer.telemetry.registry
    router = ShardedDocumentStore(shard_count=2)
    router.ensure_index("dio_trace")
    router.bind_telemetry(registry, clock=lambda: env.now)
    fleet = TenantBackend(shards_per_tenant=2)
    fleet.register("reference")
    fleet.bind_telemetry(registry)
    return registry


def metrics_reference_markdown(registry: MetricsRegistry) -> str:
    """Render the registry as the ``docs/METRICS.md`` document."""
    families = registry.collect()
    lines = [_HEADER]
    seen = set()
    for prefix, heading, blurb in _SECTIONS:
        group = [f for f in families if f.name.startswith(prefix)]
        if not group:
            continue
        seen.update(f.name for f in group)
        lines.append(f"\n## {heading}\n")
        lines.append(blurb + "\n")
        lines.append("| metric | type | labels | description |")
        lines.append("|---|---|---|---|")
        for family in group:
            labels = ", ".join(f"`{l}`" for l in family.labelnames) or "—"
            help_text = " ".join(family.help.split()) or "—"
            lines.append(f"| `{family.name}` | {family.kind} "
                         f"| {labels} | {help_text} |")
    leftover = [f for f in families if f.name not in seen]
    if leftover:
        lines.append("\n## Other\n")
        lines.append("| metric | type | labels | description |")
        lines.append("|---|---|---|---|")
        for family in leftover:
            labels = ", ".join(f"`{l}`" for l in family.labelnames) or "—"
            help_text = " ".join(family.help.split()) or "—"
            lines.append(f"| `{family.name}` | {family.kind} "
                         f"| {labels} | {help_text} |")
    return "\n".join(lines) + "\n"


def main() -> int:
    """Regenerate ``docs/METRICS.md`` next to the package source."""
    import pathlib

    docs = pathlib.Path(__file__).resolve().parents[3] / "docs"
    docs.mkdir(exist_ok=True)
    target = docs / "METRICS.md"
    target.write_text(
        metrics_reference_markdown(build_reference_registry()),
        encoding="utf-8")
    print(f"wrote {target}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
