"""The metrics registry: labeled counters, gauges, and histograms.

This is the heart of DIO's self-telemetry (the paper's own evaluation
depends on the tracer being able to account for itself: ring-buffer
discards, batching latency, shipping retries — §III-D, Table II).  The
model follows the Prometheus client data model closely enough that the
text exposition in :mod:`repro.telemetry.export` is valid Prometheus
format, but it is dependency-free and fully deterministic:

- metric *families* are registered once by name and may declare label
  names; ``family.labels(stage="shipper")`` returns (creating on first
  use) the child time series for that label combination;
- counters only go up; gauges move freely; both may instead be backed
  by a *callback* (``set_function``) so existing ad-hoc counters — e.g.
  :class:`repro.ebpf.ringbuf.RingBufferStats` — can be exposed with
  zero hot-path cost;
- histograms use fixed, cumulative ("le") bucket bounds and support
  p50/p95/p99 quantile *estimates* by linear interpolation inside the
  owning bucket, like a PromQL ``histogram_quantile``.

Registration is idempotent: asking for an already-registered family
with an identical signature returns the existing one, so several
components can share one registry without coordination.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Any, Callable, Iterable, Optional, Sequence


class TelemetryError(Exception):
    """Misuse of the telemetry subsystem."""


_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram bucket upper bounds, in nanoseconds.  The leading
#: 0 bucket makes zero-duration observations (synchronous work on the
#: virtual clock) quantile-exact instead of smearing into the first
#: positive bucket.
DEFAULT_BUCKETS = (0, 1_000, 10_000, 100_000, 1_000_000, 10_000_000,
                   100_000_000, 1_000_000_000, 10_000_000_000)

#: The quantiles health reports care about.
REPORT_QUANTILES = (0.50, 0.95, 0.99)


class Counter:
    """A monotonically increasing value (optionally callback-backed)."""

    kind = "counter"
    __slots__ = ("_value", "_fn")

    def __init__(self) -> None:
        self._value = 0
        self._fn: Optional[Callable[[], float]] = None

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (>= 0) to the counter."""
        if amount < 0:
            raise TelemetryError(f"counters only go up; got {amount!r}")
        if self._fn is not None:
            raise TelemetryError("cannot inc a callback-backed counter")
        self._value += amount

    def set_function(self, fn: Callable[[], float]) -> None:
        """Read the value through ``fn`` at collect time instead."""
        self._fn = fn

    @property
    def value(self) -> float:
        """Current value (live for callback-backed counters)."""
        return self._fn() if self._fn is not None else self._value


class Gauge:
    """A value that can go up and down (optionally callback-backed)."""

    kind = "gauge"
    __slots__ = ("_value", "_fn")

    def __init__(self) -> None:
        self._value = 0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        if self._fn is not None:
            raise TelemetryError("cannot set a callback-backed gauge")
        self._value = value

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` to the gauge."""
        if self._fn is not None:
            raise TelemetryError("cannot inc a callback-backed gauge")
        self._value += amount

    def dec(self, amount: float = 1) -> None:
        """Subtract ``amount`` from the gauge."""
        self.inc(-amount)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Read the value through ``fn`` at collect time instead."""
        self._fn = fn

    @property
    def value(self) -> float:
        """Current value (live for callback-backed gauges)."""
        return self._fn() if self._fn is not None else self._value


class Histogram:
    """Fixed-bucket distribution with quantile estimates."""

    kind = "histogram"
    __slots__ = ("buckets", "_counts", "_sum", "_count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS):
        bounds = tuple(buckets)
        if not bounds:
            raise TelemetryError("histogram needs at least one bucket")
        if list(bounds) != sorted(set(bounds)):
            raise TelemetryError(f"bucket bounds must strictly increase: {bounds}")
        self.buckets = bounds
        #: Per-bucket (non-cumulative) counts; last slot is +Inf overflow.
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        if value < 0:
            raise TelemetryError(f"negative observation {value!r}")
        self._counts[bisect_left(self.buckets, value)] += 1
        self._sum += value
        self._count += 1

    @property
    def count(self) -> int:
        """Total number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    def bucket_counts(self) -> list[int]:
        """Per-bucket (non-cumulative) counts, ending with +Inf."""
        return list(self._counts)

    def cumulative_counts(self) -> list[int]:
        """Cumulative counts per bucket bound, ending with +Inf."""
        out, running = [], 0
        for count in self._counts:
            running += count
            out.append(running)
        return out

    def quantile(self, q: float) -> Optional[float]:
        """Estimated ``q``-quantile (``None`` with no observations).

        Linear interpolation between the owning bucket's bounds, the
        way ``histogram_quantile`` estimates; values landing in the
        +Inf bucket clamp to the largest finite bound.
        """
        if not 0.0 <= q <= 1.0:
            raise TelemetryError(f"quantile must be in [0, 1]; got {q}")
        if self._count == 0:
            return None
        rank = q * self._count
        cumulative = 0
        for index, count in enumerate(self._counts):
            cumulative += count
            if cumulative >= rank and count:
                if index >= len(self.buckets):       # +Inf bucket
                    return float(self.buckets[-1])
                upper = self.buckets[index]
                lower = self.buckets[index - 1] if index else 0.0
                fraction = (rank - (cumulative - count)) / count
                return lower + (upper - lower) * fraction
        return float(self.buckets[-1])


class MetricFamily:
    """A named metric with a fixed label schema and many children."""

    def __init__(self, name: str, help: str, labelnames: Sequence[str],
                 child_factory: Callable[[], Any], kind: str):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self.kind = kind
        self._child_factory = child_factory
        self._children: dict[tuple[str, ...], Any] = {}

    def labels(self, *values, **kwargs):
        """The child time series for one label-value combination.

        Accepts positional values in ``labelnames`` order or keyword
        values; children are created on first use and cached.
        """
        if values and kwargs:
            raise TelemetryError("pass label values positionally or by "
                                 "keyword, not both")
        if kwargs:
            if set(kwargs) != set(self.labelnames):
                raise TelemetryError(
                    f"{self.name}: expected labels {self.labelnames}, "
                    f"got {tuple(sorted(kwargs))}")
            values = tuple(kwargs[name] for name in self.labelnames)
        if len(values) != len(self.labelnames):
            raise TelemetryError(
                f"{self.name}: expected {len(self.labelnames)} label "
                f"value(s), got {len(values)}")
        key = tuple(str(value) for value in values)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._child_factory()
        return child

    def samples(self) -> list[tuple[dict[str, str], Any]]:
        """``(labels, child)`` pairs in deterministic (sorted) order."""
        return [(dict(zip(self.labelnames, key)), self._children[key])
                for key in sorted(self._children)]

    # ------------------------------------------------------------------
    # Unlabeled convenience: a family with no label names behaves like
    # its single child.

    def _solo(self):
        if self.labelnames:
            raise TelemetryError(
                f"{self.name} is labeled {self.labelnames}; use .labels()")
        return self.labels()

    def inc(self, amount: int | float = 1) -> None:
        """Increment the unlabeled child."""
        self._solo().inc(amount)

    def set(self, value: float) -> None:
        """Set the unlabeled gauge child."""
        self._solo().set(value)

    def dec(self, amount: float = 1) -> None:
        """Decrement the unlabeled gauge child."""
        self._solo().dec(amount)

    def observe(self, value: float) -> None:
        """Observe into the unlabeled histogram child."""
        self._solo().observe(value)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Back the unlabeled child with a callback."""
        self._solo().set_function(fn)

    @property
    def value(self) -> float:
        """Value of the unlabeled child."""
        return self._solo().value

    def quantile(self, q: float) -> Optional[float]:
        """Quantile of the unlabeled histogram child."""
        return self._solo().quantile(q)

    def __repr__(self) -> str:
        return (f"<MetricFamily {self.kind} {self.name!r} "
                f"children={len(self._children)}>")


class MetricsRegistry:
    """All metric families of one pipeline, registered by name."""

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}

    # ------------------------------------------------------------------
    # Registration

    def _register(self, name: str, help: str, labelnames: Sequence[str],
                  child_factory: Callable[[], Any], kind: str,
                  signature: tuple) -> MetricFamily:
        if not _NAME_RE.match(name):
            raise TelemetryError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise TelemetryError(f"invalid label name {label!r}")
        existing = self._families.get(name)
        if existing is not None:
            if (existing.kind, existing.labelnames) != (kind, tuple(labelnames)):
                raise TelemetryError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}{existing.labelnames}")
            if getattr(existing, "_signature", None) != signature:
                raise TelemetryError(
                    f"metric {name!r} re-registered with a different "
                    "configuration")
            return existing
        family = MetricFamily(name, help, labelnames, child_factory, kind)
        family._signature = signature
        self._families[name] = family
        return family

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> MetricFamily:
        """Register (or fetch) a counter family."""
        return self._register(name, help, labelnames, Counter, "counter",
                              ("counter", tuple(labelnames)))

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> MetricFamily:
        """Register (or fetch) a gauge family."""
        return self._register(name, help, labelnames, Gauge, "gauge",
                              ("gauge", tuple(labelnames)))

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> MetricFamily:
        """Register (or fetch) a histogram family with fixed buckets."""
        bounds = tuple(buckets)
        return self._register(name, help, labelnames,
                              lambda: Histogram(bounds), "histogram",
                              ("histogram", tuple(labelnames), bounds))

    # ------------------------------------------------------------------
    # Read side

    def get(self, name: str) -> Optional[MetricFamily]:
        """The family registered under ``name``, if any."""
        return self._families.get(name)

    def collect(self) -> list[MetricFamily]:
        """All families, sorted by name (deterministic exposition)."""
        return [self._families[name] for name in sorted(self._families)]

    def value(self, name: str, labels: Optional[dict[str, str]] = None,
              default: float = 0) -> float:
        """Convenience scalar read for health/derived-gauge math.

        Returns ``default`` when the family or the label combination
        does not exist yet — a stage that never ran reads as zero.
        """
        family = self._families.get(name)
        if family is None:
            return default
        key = (tuple(str(labels[label]) for label in family.labelnames)
               if labels else ())
        child = family._children.get(key)
        if child is None:
            return default
        return child.value

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def __len__(self) -> int:
        return len(self._families)

    def __repr__(self) -> str:
        return f"<MetricsRegistry families={len(self._families)}>"
