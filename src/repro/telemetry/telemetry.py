"""The per-pipeline telemetry bundle.

One :class:`Telemetry` object travels with one pipeline (typically one
:class:`~repro.tracer.tracer.DIOTracer`): it owns the metrics
registry, a span tracer bound to the pipeline's virtual clock, and the
health composer.  Components receive the registry through their
``bind_telemetry`` hooks; user-facing layers read back through
:meth:`health_report`, :meth:`to_prometheus`, and :meth:`to_json`.

``enabled=False`` turns span recording into a no-op (counters stay
live — they are what :class:`~repro.tracer.tracer.TracerStats` reads),
which is the switch the telemetry-overhead benchmark flips.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.telemetry.export import to_json, to_prometheus
from repro.telemetry.health import HealthReport, PipelineHealth
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.spans import SpanTracer


class Telemetry:
    """Registry + spans + health for one pipeline."""

    def __init__(self, clock: Optional[Callable[[], int]] = None,
                 enabled: bool = True,
                 registry: Optional[MetricsRegistry] = None):
        self.clock = clock if clock is not None else (lambda: 0)
        self.enabled = enabled
        self.registry = registry if registry is not None else MetricsRegistry()
        self.spans = SpanTracer(self.clock,
                                self.registry if enabled else None,
                                enabled=enabled)
        self.health = PipelineHealth(self.registry)
        if enabled:
            self.health.bind_derived_gauges()

    @classmethod
    def for_environment(cls, env, enabled: bool = True) -> "Telemetry":
        """Telemetry on ``env``'s virtual clock, with the engine bound."""
        telemetry = cls(clock=lambda: env.now, enabled=enabled)
        if enabled:
            env.bind_telemetry(telemetry.registry)
        return telemetry

    def span(self, name: str):
        """Context manager recording a named span (no-op when disabled)."""
        return self.spans.span(name)

    def health_report(self) -> HealthReport:
        """Current :class:`~repro.telemetry.health.HealthReport`."""
        return self.health.snapshot()

    def to_prometheus(self) -> str:
        """Prometheus text exposition of the registry."""
        return to_prometheus(self.registry)

    def to_json(self, indent: int = 2) -> str:
        """JSON exposition of the registry."""
        return to_json(self.registry, indent=indent)

    def __repr__(self) -> str:
        return (f"<Telemetry enabled={self.enabled} "
                f"metrics={len(self.registry)}>")
