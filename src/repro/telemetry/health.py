"""Pipeline health: one snapshot over every instrumented stage.

The paper monitors its Elasticsearch backend with a Kibana dashboard;
this module is the equivalent for our whole pipeline.  It composes the
per-stage metric families (kernel filter → ring buffer → consumer →
bulk shipper → store → correlator, plus the simulation substrate) into
a single :class:`HealthReport`:

- per-stage counters, read live from the registry;
- per-stage latency quantiles (p50/p95/p99) from the span histogram;
- *derived gauges* — drop ratio, consumer lag, retry rate, unresolved
  ratio — computed from the underlying counters and also registered as
  callback gauges (``dio_health_*``) so exporters expose them.

Everything reads through the registry by metric name, so the health
layer needs no references into the components themselves.
"""

from __future__ import annotations

from typing import NamedTuple, Optional

from repro.telemetry.registry import (MetricsRegistry, REPORT_QUANTILES,
                                      TelemetryError)
from repro.telemetry.spans import SPAN_HISTOGRAM

#: Pipeline stages in data-flow order.
STAGES = ("kernel_filter", "ring_buffer", "consumer", "shipper", "store",
          "correlator", "sim")

#: stage -> ((short counter label, metric name), ...).  Short labels
#: keep rendered reports readable; metric names are the registry truth.
STAGE_COUNTERS: dict[str, tuple[tuple[str, str], ...]] = {
    "kernel_filter": (
        ("accepted", "dio_filter_accepted_total"),
        ("rejected", "dio_filter_rejected_total"),
    ),
    "ring_buffer": (
        ("produced", "dio_ring_produced_total"),
        ("dropped", "dio_ring_dropped_total"),
        ("consumed", "dio_ring_consumed_total"),
        ("bytes", "dio_ring_bytes_produced_total"),
    ),
    "consumer": (
        ("batches", "dio_consumer_batches_total"),
        ("parsed", "dio_consumer_events_parsed_total"),
    ),
    "shipper": (
        ("shipped", "dio_shipper_events_total"),
        ("retries", "dio_shipper_retries_total"),
        ("attempts", "dio_consumer_bulk_attempts_total"),
        ("spilled", "dio_spill_records_total"),
        ("replayed", "dio_spill_replayed_records_total"),
    ),
    "store": (
        ("bulk_requests", "dio_store_bulk_requests_total"),
        ("docs_indexed", "dio_store_documents_indexed_total"),
        ("queries", "dio_store_queries_total"),
        ("agg_pushdown", "dio_store_agg_pushdown_total"),
        ("agg_fallback", "dio_store_agg_fallback_total"),
        ("agg_cache_hits", "dio_store_agg_cache_hits_total"),
    ),
    "correlator": (
        ("tags_resolved", "dio_correlator_tags_resolved_total"),
        ("docs_updated", "dio_correlator_documents_updated_total"),
        ("unresolved", "dio_correlator_documents_unresolved_total"),
    ),
    "sim": (
        ("events", "dio_sim_events_processed_total"),
        ("queue_depth", "dio_sim_queue_depth"),
    ),
}

#: stage -> span name whose duration histogram gives stage latency.
STAGE_SPANS: dict[str, str] = {
    "consumer": "consumer.parse",
    "shipper": "shipper.bulk",
    "store": "store.bulk",
    "correlator": "correlator.correlate",
}


class StageHealth(NamedTuple):
    """Health of one pipeline stage."""

    name: str
    counters: dict[str, float]
    #: p50/p95/p99 of the stage's span duration (ns), or ``None`` when
    #: the stage has no recorded spans.
    latency_ns: Optional[dict[str, float]]

    def as_dict(self) -> dict:
        """Stage health as plain data."""
        return {"name": self.name, "counters": dict(self.counters),
                "latency_ns": dict(self.latency_ns) if self.latency_ns else None}


class HealthReport(NamedTuple):
    """One point-in-time health snapshot of the whole pipeline."""

    stages: tuple[StageHealth, ...]
    derived: dict[str, float]

    def stage(self, name: str) -> StageHealth:
        """Look one stage up by name."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise TelemetryError(f"unknown stage {name!r}")

    def as_dict(self) -> dict:
        """Report as plain data (what ``dio health --format json`` prints)."""
        return {"stages": [stage.as_dict() for stage in self.stages],
                "derived": dict(self.derived)}


def _ratio(numerator: float, denominator: float) -> float:
    return numerator / denominator if denominator else 0.0


class PipelineHealth:
    """Computes health snapshots and registers derived gauges."""

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        self._derived_bound = False

    # ------------------------------------------------------------------
    # Derived gauges

    def drop_ratio(self) -> float:
        """Ring-buffer discards / offered records (§III-D's 3.5%)."""
        dropped = self.registry.value("dio_ring_dropped_total")
        produced = self.registry.value("dio_ring_produced_total")
        return _ratio(dropped, produced + dropped)

    def consumer_lag(self) -> float:
        """Records sitting in the ring buffers, not yet consumed."""
        return self.registry.value("dio_ring_pending_records")

    def retry_rate(self) -> float:
        """Failed bulk requests per *attempted* bulk request.

        The denominator is attempts, not successful batches: under
        adaptive batch shrinking the two diverge, and dividing by
        batches understated retry pressure.
        """
        return _ratio(self.registry.value("dio_shipper_retries_total"),
                      self.registry.value("dio_consumer_bulk_attempts_total"))

    def spill_backlog(self) -> float:
        """Records in the dead-letter WAL awaiting replay."""
        return self.registry.value("dio_spill_pending_records")

    def breaker_state(self) -> float:
        """Shipping circuit breaker: 0=closed, 1=half-open, 2=open."""
        return self.registry.value("dio_breaker_state")

    def unresolved_ratio(self) -> float:
        """Correlator's fraction of tagged events without a path."""
        return _ratio(
            self.registry.value("dio_correlator_documents_unresolved_total"),
            self.registry.value("dio_correlator_documents_tagged_total"))

    def agg_cache_hit_rate(self) -> float:
        """Aggregation cache hits per lookup (dashboard refresh reuse)."""
        hits = self.registry.value("dio_store_agg_cache_hits_total")
        misses = self.registry.value("dio_store_agg_cache_misses_total")
        return _ratio(hits, hits + misses)

    def agg_pushdown_ratio(self) -> float:
        """Aggregation requests served by the columnar kernels."""
        pushed = self.registry.value("dio_store_agg_pushdown_total")
        fallback = self.registry.value("dio_store_agg_fallback_total")
        return _ratio(pushed, pushed + fallback)

    #: derived gauge name -> bound method name.
    DERIVED = {
        "dio_health_drop_ratio": "drop_ratio",
        "dio_health_consumer_lag_records": "consumer_lag",
        "dio_health_retry_rate": "retry_rate",
        "dio_health_unresolved_ratio": "unresolved_ratio",
        "dio_health_spill_backlog_records": "spill_backlog",
        "dio_health_breaker_state": "breaker_state",
        "dio_health_agg_cache_hit_rate": "agg_cache_hit_rate",
        "dio_health_agg_pushdown_ratio": "agg_pushdown_ratio",
    }

    def bind_derived_gauges(self) -> None:
        """Expose the derived gauges as ``dio_health_*`` callbacks."""
        if self._derived_bound:
            return
        for name, method in self.DERIVED.items():
            self.registry.gauge(
                name, f"Derived pipeline health gauge ({method}).",
            ).set_function(getattr(self, method))
        self._derived_bound = True

    # ------------------------------------------------------------------
    # Snapshot

    def _stage_latency(self, stage: str) -> Optional[dict[str, float]]:
        span_name = STAGE_SPANS.get(stage)
        if span_name is None:
            return None
        family = self.registry.get(SPAN_HISTOGRAM)
        if family is None:
            return None
        child = family._children.get((span_name,))
        if child is None or child.count == 0:
            return None
        return {f"p{int(q * 100)}": child.quantile(q)
                for q in REPORT_QUANTILES}

    def snapshot(self) -> HealthReport:
        """Compose the current registry state into a health report."""
        stages = tuple(
            StageHealth(
                name=stage,
                counters={label: self.registry.value(metric)
                          for label, metric in STAGE_COUNTERS[stage]},
                latency_ns=self._stage_latency(stage),
            )
            for stage in STAGES)
        derived = {method: getattr(self, method)()
                   for method in self.DERIVED.values()}
        return HealthReport(stages=stages, derived=derived)
