"""Reusable synthetic I/O workload generators.

Each generator is a process-generator factory over a
:class:`~repro.kernel.Kernel` and a :class:`~repro.kernel.process.Task`,
producing the access patterns the paper's introduction enumerates
(sequential/random, small/large requests, metadata storms, bursts) so
that tests, ablations, and users can compose reproducible traffic
without hand-writing syscall loops.
"""

from repro.workloads.generators import (bursty_writer, metadata_storm,
                                        mixed_rw, random_reader,
                                        sequential_reader,
                                        sequential_writer, small_appender)

__all__ = [
    "sequential_writer",
    "sequential_reader",
    "random_reader",
    "small_appender",
    "metadata_storm",
    "bursty_writer",
    "mixed_rw",
]
