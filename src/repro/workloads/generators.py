"""The workload generator implementations.

Every function returns a *process generator*: drive it with
``env.process(...)`` or ``yield from`` it inside another process.
All randomness comes from caller-provided ``numpy`` generators, so
workloads stay deterministic under seeding.
"""

from __future__ import annotations

from typing import Optional

from repro.kernel import (Kernel, O_APPEND, O_CREAT, O_RDONLY, O_RDWR,
                          O_WRONLY, SEEK_SET)
from repro.kernel.process import Task


def sequential_writer(kernel: Kernel, task: Task, path: str,
                      total_bytes: int, chunk_bytes: int = 64 * 1024,
                      fsync_every: Optional[int] = None):
    """Write ``total_bytes`` sequentially in ``chunk_bytes`` requests.

    ``fsync_every`` issues an fsync after every N chunks (``None`` =
    only at the end).
    """
    if total_bytes < 0 or chunk_bytes <= 0:
        raise ValueError("sizes must be positive")
    fd = yield from kernel.syscall(task, "open", path=path,
                                   flags=O_CREAT | O_WRONLY)
    if fd < 0:
        raise RuntimeError(f"cannot create {path}: {fd}")
    written = 0
    chunks = 0
    while written < total_bytes:
        chunk = min(chunk_bytes, total_bytes - written)
        yield from kernel.syscall(task, "write", fd=fd, data=b"\x00" * chunk)
        written += chunk
        chunks += 1
        if fsync_every and chunks % fsync_every == 0:
            yield from kernel.syscall(task, "fsync", fd=fd)
    yield from kernel.syscall(task, "fsync", fd=fd)
    yield from kernel.syscall(task, "close", fd=fd)
    return written


def sequential_reader(kernel: Kernel, task: Task, path: str,
                      chunk_bytes: int = 64 * 1024):
    """Stream a file start-to-end; returns total bytes read."""
    fd = yield from kernel.syscall(task, "open", path=path, flags=O_RDONLY)
    if fd < 0:
        raise RuntimeError(f"cannot open {path}: {fd}")
    total = 0
    while True:
        buf = bytearray(chunk_bytes)
        n = yield from kernel.syscall(task, "read", fd=fd, buf=buf)
        if n <= 0:
            break
        total += n
    yield from kernel.syscall(task, "close", fd=fd)
    return total


def random_reader(kernel: Kernel, task: Task, path: str, rng,
                  requests: int, request_bytes: int = 4096):
    """Issue ``requests`` preads at uniformly random offsets."""
    fd = yield from kernel.syscall(task, "open", path=path, flags=O_RDONLY)
    if fd < 0:
        raise RuntimeError(f"cannot open {path}: {fd}")
    statbuf: dict = {}
    yield from kernel.syscall(task, "fstat", fd=fd, statbuf=statbuf)
    span = max(statbuf["st_size"] - request_bytes, 1)
    total = 0
    for _ in range(requests):
        offset = int(rng.integers(0, span))
        buf = bytearray(request_bytes)
        n = yield from kernel.syscall(task, "pread64", fd=fd, buf=buf,
                                      offset=offset)
        total += max(n, 0)
    yield from kernel.syscall(task, "close", fd=fd)
    return total


def small_appender(kernel: Kernel, task: Task, path: str,
                   appends: int, record_bytes: int = 80,
                   fsync_each: bool = False):
    """The costly pattern: many tiny appends (a log writer)."""
    fd = yield from kernel.syscall(task, "open", path=path,
                                   flags=O_CREAT | O_WRONLY | O_APPEND)
    if fd < 0:
        raise RuntimeError(f"cannot open {path}: {fd}")
    for _ in range(appends):
        yield from kernel.syscall(task, "write", fd=fd,
                                  data=b"\x2e" * record_bytes)
        if fsync_each:
            yield from kernel.syscall(task, "fsync", fd=fd)
    yield from kernel.syscall(task, "close", fd=fd)
    return appends * record_bytes


def metadata_storm(kernel: Kernel, task: Task, directory: str,
                   files: int, stats_per_file: int = 4):
    """Create/stat/rename/unlink churn with no data I/O."""
    yield from kernel.syscall(task, "mkdir", path=directory)
    for index in range(files):
        path = f"{directory}/f{index:05d}"
        yield from kernel.syscall(task, "creat", path=path)
        statbuf: dict = {}
        for _ in range(stats_per_file):
            yield from kernel.syscall(task, "stat", path=path,
                                      statbuf=statbuf)
        yield from kernel.syscall(task, "rename", oldpath=path,
                                  newpath=path + ".done")
        yield from kernel.syscall(task, "unlink", path=path + ".done")
    return files


def bursty_writer(kernel: Kernel, task: Task, path: str,
                  bursts: int, writes_per_burst: int,
                  write_bytes: int = 512, gap_ns: int = 10_000_000):
    """Writes arriving in bursts separated by idle gaps.

    The canonical producer for ring-buffer overflow studies: during a
    burst the tracer's consumer falls behind; during the gap it drains.
    """
    fd = yield from kernel.syscall(task, "open", path=path,
                                   flags=O_CREAT | O_WRONLY)
    if fd < 0:
        raise RuntimeError(f"cannot open {path}: {fd}")
    for burst in range(bursts):
        for _ in range(writes_per_burst):
            yield from kernel.syscall(task, "write", fd=fd,
                                      data=b"\x00" * write_bytes)
        if burst != bursts - 1:
            yield kernel.env.timeout(gap_ns)
    yield from kernel.syscall(task, "close", fd=fd)
    return bursts * writes_per_burst


def mixed_rw(kernel: Kernel, task: Task, path: str, rng,
             operations: int, read_fraction: float = 0.5,
             request_bytes: int = 4096, file_bytes: int = 1024 * 1024):
    """A read/update mix over one file (a miniature YCSB-A)."""
    if not 0 <= read_fraction <= 1:
        raise ValueError(f"read_fraction out of range: {read_fraction}")
    fd = yield from kernel.syscall(task, "open", path=path,
                                   flags=O_CREAT | O_RDWR)
    if fd < 0:
        raise RuntimeError(f"cannot open {path}: {fd}")
    yield from kernel.syscall(task, "pwrite64", fd=fd,
                              data=b"\x00" * request_bytes,
                              offset=file_bytes - request_bytes)
    span = max(file_bytes - request_bytes, 1)
    reads = writes = 0
    for _ in range(operations):
        offset = int(rng.integers(0, span))
        if rng.random() < read_fraction:
            buf = bytearray(request_bytes)
            yield from kernel.syscall(task, "pread64", fd=fd, buf=buf,
                                      offset=offset)
            reads += 1
        else:
            yield from kernel.syscall(task, "pwrite64", fd=fd,
                                      data=b"\x01" * request_bytes,
                                      offset=offset)
            writes += 1
    yield from kernel.syscall(task, "close", fd=fd)
    return reads, writes
