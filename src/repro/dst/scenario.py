"""Seeded end-to-end scenarios for deterministic simulation testing.

A :class:`Scenario` is the *complete* description of one whole-pipeline
run: the simulated applications (per-process syscall programs drawn
from the 42 traced syscalls, plus io_uring submitters on the ring
axis), the tracer configuration (ring policy,
batch size, backpressure), the backend fault plan, and the crash
schedule (consumer kills, store crashes with torn-WAL recovery).
Everything downstream — the kernel, the tracer, the store, the
correlator, the dashboards — is already deterministic on the virtual
clock, so a scenario plus the runner is a pure function: same seed,
byte-identical outcome.

Scenarios are plain JSON data on purpose.  That makes them:

- **replayable** — ``dio dst repro <seed>`` regenerates the scenario,
  ``dio dst repro <file.json>`` replays a saved one;
- **shrinkable** — the shrinker edits the op lists and schedules
  directly (see :mod:`repro.dst.shrink`);
- **archivable** — minimised failures live in ``tests/corpus/*.json``
  and run as ordinary regression tests forever after.

Op encoding (compact on purpose; the runner resolves it):

``{"sc": <syscall>, "d": <delay_ns>, ...}`` where the extra keys are
``p``/``p2`` (path-pool indexes), ``f`` (an index into the process's
currently-open fds, modulo how many are open), ``n`` (byte count or
length), ``o`` (offset), ``w`` (lseek whence), ``k`` (iovec segment
count), ``x`` (xattr-name pool index), ``fl`` (open flags).
"""

from __future__ import annotations

import dataclasses
import json
import random
from pathlib import Path
from typing import Optional

from repro.ebpf.ringbuf import POLICIES
from repro.faults import FAULT_KINDS
from repro.kernel.syscalls import (O_APPEND, O_CREAT, O_RDONLY, O_RDWR,
                                   O_TRUNC, O_WRONLY, SYSCALLS)

#: Current scenario schema version (bump on incompatible change).
SCENARIO_FORMAT = "dio-dst-scenario-v1"

#: Shared path pool every scenario draws from.  Index 3 is non-ASCII on
#: purpose: unicode paths must survive the ring buffer, the JSON wire
#: format, the WAL, and the correlator byte-identically.
PATH_POOL = (
    "/data/f0",
    "/data/f1",
    "/data/f2",
    "/data/журнал-日誌.log",
    "/logs/app.log",
    "/logs/audit",
    "/scratch/tmp0",
    "/scratch/tmp1",
)

#: Directories referenced by mkdir/rmdir ops (distinct from PATH_POOL
#: so removing a directory never orphans a data file mid-scenario).
DIR_POOL = ("/data/sub0", "/data/sub1", "/scratch/d0", "/scratch/d1")

#: xattr names (one non-ASCII, same reasoning as PATH_POOL).
XATTR_POOL = ("user.tag", "user.owner", "user.métadonnée")

_OPEN_FLAG_CHOICES = (
    O_CREAT | O_WRONLY,
    O_CREAT | O_RDWR,
    O_RDONLY,
    O_CREAT | O_WRONLY | O_APPEND,
    O_CREAT | O_WRONLY | O_TRUNC,
    O_RDWR,
)


@dataclasses.dataclass
class Scenario:
    """One generated end-to-end test case (JSON round-trippable)."""

    seed: int
    ncpus: int = 2
    ring_policy: str = "drop-new"
    ring_capacity_bytes_per_cpu: int = 64 * 1024
    batch_size: int = 32
    backpressure_policy: str = "block"
    max_inflight_events: int = 256
    poll_interval_ns: int = 200_000
    ship_max_retries: int = 3
    #: Consumer ingest path: "vectorized" (lane decode + bulk_columnar,
    #: the production default) or "legacy" (per-event Event/dict, the
    #: differential oracle).  Corpus files predating this axis default
    #: to the production path.
    ingest_mode: str = "vectorized"
    #: On-disk format exercised by the post-run storage checks:
    #: "segments" (WAL + columnar segment files, docs/STORAGE.md) or
    #: "jsonl" (the oracle export).  Corpus files predating this axis
    #: default to the original JSON-lines checks.
    storage_mode: str = "jsonl"
    #: Backend shards the fast run serves from (the oracle twin always
    #: forces 1).  ``> 1`` also arms the post-run shard-kill/rebalance
    #: stage.  Corpus files predating this axis default to the single
    #: store.
    shard_count: int = 1
    #: Tracer ring mode: "classic" (io_uring ops invisible beyond the
    #: ``io_uring_enter`` doorbell) or "ring-aware" (per-SQE/CQE
    #: ``uring_*`` events).  "ring-aware" also arms the classic-twin
    #: oracle stage.  Corpus files predating this axis default to the
    #: classic tracer.
    ring_mode: str = "classic"
    #: FaultWindow dicts (``start_ns``/``end_ns``/``kind``/...).
    fault_windows: list = dataclasses.field(default_factory=list)
    #: Virtual times at which the consumer process is killed.
    consumer_crashes: list = dataclasses.field(default_factory=list)
    consumer_restart_delay_ns: int = 1_500_000
    #: ``{"after_bulks": k, "torn_frac": f}`` store-crash points: the
    #: k-th bulk reaching the store crashes it, tearing the store WAL
    #: at fraction ``f`` of the in-flight record.
    store_crashes: list = dataclasses.field(default_factory=list)
    #: ``{"name": str, "traced": bool, "ops": [op, ...]}`` programs.
    processes: list = dataclasses.field(default_factory=list)

    # ------------------------------------------------------------------
    # Serialization

    def to_dict(self) -> dict:
        """The scenario as plain JSON data (with a format marker)."""
        data = dataclasses.asdict(self)
        data["format"] = SCENARIO_FORMAT
        return data

    def to_json(self) -> str:
        """Stable, human-diffable JSON."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=1,
                          ensure_ascii=False) + "\n"

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        """Rebuild a scenario from :meth:`to_dict` output."""
        fmt = data.get("format", SCENARIO_FORMAT)
        if fmt != SCENARIO_FORMAT:
            raise ValueError(f"unsupported scenario format {fmt!r}")
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in fields})

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "Scenario":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    # ------------------------------------------------------------------
    # Introspection

    @property
    def total_ops(self) -> int:
        """Syscall ops across all processes."""
        return sum(len(p["ops"]) for p in self.processes)

    @property
    def has_untraced(self) -> bool:
        """Whether an untraced process exercises the PID filter."""
        return any(not p.get("traced", True) for p in self.processes)

    def describe(self) -> str:
        """One line for progress output."""
        return (f"seed={self.seed} procs={len(self.processes)} "
                f"ops={self.total_ops} ncpus={self.ncpus} "
                f"ring={self.ring_policy} faults={len(self.fault_windows)} "
                f"ckills={len(self.consumer_crashes)} "
                f"scrashes={len(self.store_crashes)} "
                f"ingest={self.ingest_mode} "
                f"storage={self.storage_mode} "
                f"shards={self.shard_count} "
                f"uring={self.ring_mode}")


# ----------------------------------------------------------------------
# Generation

#: App models the generator mixes; each returns a list of ops.
APP_MODELS = ("sequential_writer", "appender", "reader", "random_rw",
              "metadata_storm", "xattr_worker", "mixed")

#: Syscalls the "mixed" model may draw beyond the model-specific ones.
_MIXED_SYSCALLS = tuple(sorted(SYSCALLS))


def _delay(rng: random.Random) -> int:
    """Inter-op virtual delay; spread so fault windows interleave."""
    return rng.randrange(0, 400_000)


def _ops_sequential_writer(rng: random.Random, n: int) -> list:
    path = rng.randrange(len(PATH_POOL))
    ops = [{"sc": "open", "p": path, "fl": O_CREAT | O_WRONLY,
            "d": _delay(rng)}]
    for _ in range(n):
        ops.append({"sc": "write", "f": 0, "n": rng.choice((64, 512, 4096)),
                    "d": _delay(rng)})
        if rng.random() < 0.15:
            ops.append({"sc": rng.choice(("fsync", "fdatasync")), "f": 0,
                        "d": _delay(rng)})
    ops.append({"sc": "close", "f": 0, "d": _delay(rng)})
    return ops


def _ops_appender(rng: random.Random, n: int) -> list:
    path = rng.randrange(len(PATH_POOL))
    ops = [{"sc": "open", "p": path, "fl": O_CREAT | O_WRONLY | O_APPEND,
            "d": _delay(rng)}]
    for _ in range(n):
        ops.append({"sc": "write", "f": 0, "n": rng.choice((80, 200)),
                    "d": _delay(rng)})
    ops.append({"sc": "fstat", "f": 0, "d": _delay(rng)})
    ops.append({"sc": "close", "f": 0, "d": _delay(rng)})
    return ops


def _ops_reader(rng: random.Random, n: int) -> list:
    path = rng.randrange(len(PATH_POOL))
    ops = [{"sc": "openat", "p": path, "fl": O_RDONLY, "d": _delay(rng)}]
    for _ in range(n):
        ops.append({"sc": rng.choice(("read", "read", "readv")), "f": 0,
                    "n": rng.choice((128, 1024)), "k": rng.randrange(1, 4),
                    "d": _delay(rng)})
    ops.append({"sc": "close", "f": 0, "d": _delay(rng)})
    return ops


def _ops_random_rw(rng: random.Random, n: int) -> list:
    path = rng.randrange(len(PATH_POOL))
    ops = [{"sc": "open", "p": path, "fl": O_CREAT | O_RDWR,
            "d": _delay(rng)}]
    for _ in range(n):
        op = rng.choice(("pwrite64", "pread64", "writev", "lseek"))
        entry = {"sc": op, "f": 0, "d": _delay(rng)}
        if op in ("pwrite64", "pread64"):
            entry["n"] = rng.choice((64, 256, 1024))
            entry["o"] = rng.randrange(0, 1 << 16)
        elif op == "writev":
            entry["n"] = 128
            entry["k"] = rng.randrange(1, 4)
        else:
            entry["o"] = rng.randrange(0, 1 << 14)
            entry["w"] = rng.choice((0, 1, 2))
        ops.append(entry)
    if rng.random() < 0.5:
        ops.append({"sc": "ftruncate", "f": 0,
                    "n": rng.randrange(0, 4096), "d": _delay(rng)})
    ops.append({"sc": "close", "f": 0, "d": _delay(rng)})
    return ops


def _ops_metadata_storm(rng: random.Random, n: int) -> list:
    ops = []
    for _ in range(n):
        op = rng.choice(("stat", "lstat", "fstatat", "mkdir", "mkdirat",
                         "rmdir", "mknod", "mknodat", "rename", "renameat",
                         "renameat2", "unlink", "unlinkat", "truncate",
                         "creat", "close"))
        entry = {"sc": op, "d": _delay(rng)}
        if op in ("mkdir", "mkdirat", "rmdir"):
            entry["p"] = rng.randrange(len(DIR_POOL))
        elif op in ("rename", "renameat", "renameat2"):
            entry["p"] = rng.randrange(len(PATH_POOL))
            entry["p2"] = rng.randrange(len(PATH_POOL))
        elif op == "close":
            entry["f"] = 0
        else:
            entry["p"] = rng.randrange(len(PATH_POOL))
            if op == "truncate":
                entry["n"] = rng.randrange(0, 2048)
        ops.append(entry)
    return ops


def _ops_xattr_worker(rng: random.Random, n: int) -> list:
    path = rng.randrange(len(PATH_POOL))
    ops = [{"sc": "open", "p": path, "fl": O_CREAT | O_RDWR,
            "d": _delay(rng)}]
    for _ in range(n):
        op = rng.choice(("setxattr", "lsetxattr", "fsetxattr",
                         "getxattr", "lgetxattr", "fgetxattr",
                         "listxattr", "llistxattr", "flistxattr",
                         "removexattr", "lremovexattr", "fremovexattr"))
        entry = {"sc": op, "d": _delay(rng),
                 "x": rng.randrange(len(XATTR_POOL))}
        if op.startswith("f"):
            entry["f"] = 0
        else:
            entry["p"] = path
        if "set" in op:
            entry["n"] = rng.randrange(1, 64)
        ops.append(entry)
    ops.append({"sc": "close", "f": 0, "d": _delay(rng)})
    return ops


def _ops_mixed(rng: random.Random, n: int) -> list:
    """Uniform draw over the full 42-syscall surface."""
    ops = [{"sc": "open", "p": rng.randrange(len(PATH_POOL)),
            "fl": rng.choice(_OPEN_FLAG_CHOICES), "d": _delay(rng)}]
    for _ in range(n):
        name = rng.choice(_MIXED_SYSCALLS)
        entry = {"sc": name, "d": _delay(rng)}
        if name in ("open", "openat", "creat"):
            entry["p"] = rng.randrange(len(PATH_POOL))
            entry["fl"] = rng.choice(_OPEN_FLAG_CHOICES)
        elif name in ("mkdir", "mkdirat", "rmdir"):
            entry["p"] = rng.randrange(len(DIR_POOL))
        elif name in ("rename", "renameat", "renameat2"):
            entry["p"] = rng.randrange(len(PATH_POOL))
            entry["p2"] = rng.randrange(len(PATH_POOL))
        elif name in ("mknod", "mknodat", "unlink", "unlinkat",
                      "stat", "lstat", "fstatat", "truncate",
                      "getxattr", "lgetxattr", "setxattr", "lsetxattr",
                      "listxattr", "llistxattr", "removexattr",
                      "lremovexattr"):
            entry["p"] = rng.randrange(len(PATH_POOL))
            entry["x"] = rng.randrange(len(XATTR_POOL))
            entry["n"] = rng.randrange(0, 512)
        else:
            # fd-based: read/write family, lseek, ftruncate, fsync,
            # fdatasync, fstat, fstatfs, close, f*xattr.
            entry["f"] = rng.randrange(0, 4)
            entry["n"] = rng.choice((32, 256, 2048))
            entry["o"] = rng.randrange(0, 1 << 14)
            entry["w"] = rng.choice((0, 1, 2))
            entry["k"] = rng.randrange(1, 4)
            entry["x"] = rng.randrange(len(XATTR_POOL))
        ops.append(entry)
    ops.append({"sc": "close", "f": 0, "d": _delay(rng)})
    return ops


def _ops_uring_worker(rng: random.Random, n: int) -> list:
    """Batched io_uring submitter: prep SQEs app-side, ring a doorbell.

    Op codes beyond the classic set (the runner interprets them):
    ``io_uring_setup`` (``e`` = SQ entries), ``uring_prep`` (``u`` =
    SQE opcode, ``ln`` = link-to-next flag; no syscall), and
    ``io_uring_enter``/``io_uring_register`` (``ro`` = register
    opcode).  Ops on a ring-less process are deterministic skips, so
    the shrinker can delete the setup op without breaking replay.
    """
    path = rng.randrange(len(PATH_POOL))
    ops = [{"sc": "open", "p": path, "fl": O_CREAT | O_RDWR,
            "d": _delay(rng)},
           {"sc": "io_uring_setup", "e": rng.choice((8, 16, 32)),
            "d": _delay(rng)}]
    if rng.random() < 0.4:
        ops.append({"sc": "io_uring_register", "ro": 0,
                    "n": rng.randrange(1, 5), "d": _delay(rng)})
    for _ in range(n):
        batch = rng.randrange(1, 5)
        for i in range(batch):
            u = rng.choice(("write", "write", "read", "fsync"))
            ops.append({"sc": "uring_prep", "u": u, "f": 0,
                        "n": rng.choice((64, 512, 2048)),
                        "o": rng.randrange(0, 1 << 14),
                        "ln": 1 if (i < batch - 1
                                    and rng.random() < 0.25) else 0,
                        "d": _delay(rng)})
        ops.append({"sc": "io_uring_enter", "d": _delay(rng)})
    ops.append({"sc": "close", "f": 0, "d": _delay(rng)})
    return ops


_MODEL_BUILDERS = {
    "sequential_writer": _ops_sequential_writer,
    "appender": _ops_appender,
    "reader": _ops_reader,
    "random_rw": _ops_random_rw,
    "metadata_storm": _ops_metadata_storm,
    "xattr_worker": _ops_xattr_worker,
    "mixed": _ops_mixed,
}


def generate(seed: int, scale: float = 1.0) -> Scenario:
    """Generate the scenario for ``seed`` (pure function of the seed).

    ``scale`` multiplies op counts — the nightly campaign can run the
    same seeds bigger without a schema change.
    """
    rng = random.Random(f"dio-dst-{seed}")
    nprocs = rng.randrange(1, 4)
    processes = []
    for index in range(nprocs):
        model = rng.choice(APP_MODELS)
        n = max(3, int(rng.randrange(8, 30) * scale))
        processes.append({
            "name": f"{model}-{index}",
            "traced": True,
            "ops": _MODEL_BUILDERS[model](rng, n),
        })
    # One in three scenarios adds an untraced bystander process whose
    # events must never reach the store (PID-filter isolation).
    if rng.random() < 1 / 3:
        processes.append({
            "name": "bystander",
            "traced": False,
            "ops": _ops_sequential_writer(rng, max(3, int(6 * scale))),
        })

    # Rough virtual horizon: ops * (mean delay + syscall cost), so the
    # fault windows and crash points land while the apps are running.
    horizon = max(2_000_000, Scenario(0, processes=processes).total_ops
                  * 240_000 // max(1, nprocs))

    fault_windows = []
    if rng.random() < 0.6:
        plan_seed = rng.randrange(1 << 30)
        from repro.faults import FaultPlan
        plan = FaultPlan.seeded(plan_seed, horizon_ns=horizon,
                                outages=rng.randrange(1, 4),
                                mean_outage_ns=max(200_000, horizon // 10),
                                kinds=FAULT_KINDS)
        fault_windows = [w.as_dict() for w in plan.windows]

    consumer_crashes = []
    if rng.random() < 0.35:
        for _ in range(rng.randrange(1, 3)):
            consumer_crashes.append(rng.randrange(horizon // 10, horizon))
        consumer_crashes.sort()

    store_crashes = []
    if rng.random() < 0.35:
        for ordinal in sorted(rng.sample(range(1, 9),
                                         rng.randrange(1, 3))):
            store_crashes.append({
                "after_bulks": ordinal,
                "torn_frac": round(rng.uniform(0.05, 0.95), 3),
            })

    # Drawn from a separate derived rng so adding this axis kept every
    # existing seed's other draws (and thus every corpus scenario)
    # byte-identical.  Weighted toward the production path; the legacy
    # twin still runs as the oracle either way.
    ingest_rng = random.Random(f"dio-dst-ingest-{seed}")
    storage_rng = random.Random(f"dio-dst-storage-mode-{seed}")
    shard_rng = random.Random(f"dio-dst-shards-{seed}")

    # The io_uring axis draws from its own derived stream too.  Half
    # the seeds gain a ring-submitting worker; those run ring-aware
    # twice as often as classic (classic-with-a-ring pins the blind
    # spot, ring-aware arms the classic-twin oracle stage).
    uring_rng = random.Random(f"dio-dst-uring-{seed}")
    ring_mode = "classic"
    if uring_rng.random() < 0.5:
        ring_mode = uring_rng.choice(("classic", "ring-aware",
                                      "ring-aware"))
        processes.append({
            "name": "uring_worker",
            "traced": True,
            "ops": _ops_uring_worker(uring_rng,
                                     max(2, int(uring_rng.randrange(3, 9)
                                                * scale))),
        })

    return Scenario(
        seed=seed,
        ncpus=rng.randrange(1, 4),
        ring_policy=rng.choice(POLICIES),
        ring_capacity_bytes_per_cpu=rng.choice((16 * 1024, 64 * 1024,
                                                256 * 1024)),
        batch_size=rng.choice((8, 32, 128)),
        backpressure_policy=rng.choice(("block", "block", "drop")),
        max_inflight_events=rng.choice((64, 256, 1024)),
        poll_interval_ns=rng.choice((100_000, 200_000, 500_000)),
        ship_max_retries=rng.choice((2, 3, 5)),
        fault_windows=fault_windows,
        consumer_crashes=consumer_crashes,
        consumer_restart_delay_ns=rng.choice((500_000, 1_500_000,
                                              4_000_000)),
        store_crashes=store_crashes,
        ingest_mode=ingest_rng.choice(("vectorized", "vectorized",
                                       "legacy")),
        storage_mode=storage_rng.choice(("segments", "segments", "jsonl")),
        shard_count=shard_rng.choice((1, 1, 2, 3)),
        ring_mode=ring_mode,
        processes=processes,
    )
