"""Seed campaigns: run N seeds, count outcomes, export ``dst_*`` metrics.

A *campaign* is the unit the CLI and CI run: generate scenarios for a
seed range, run each through the full harness, optionally shrink the
failures, and report.  :class:`CampaignStats` is the telemetry face —
bound into a registry it exports the ``dst_*`` metric family, so the
self-monitoring dashboard (and ``docs/METRICS.md``) cover the test
harness the same way they cover the pipeline under test.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, Optional

from repro.dst.runner import RunResult, run_scenario
from repro.dst.scenario import Scenario, generate
from repro.dst.shrink import shrink


class CampaignStats:
    """Lifetime counters for DST campaigns; registry-bindable."""

    def __init__(self) -> None:
        self.seeds_run = 0
        self.seeds_failed = 0
        self.invariant_failures = 0
        self.scenario_events_produced = 0
        self.scenario_events_stored = 0
        self.consumer_crashes_injected = 0
        self.store_crashes_injected = 0
        self.faults_injected = 0
        self.shrink_runs = 0

    def record(self, result: RunResult) -> None:
        self.seeds_run += 1
        if not result.ok:
            self.seeds_failed += 1
            self.invariant_failures += len(result.failures)
        self.scenario_events_produced += result.events_produced
        self.scenario_events_stored += result.events_stored
        self.consumer_crashes_injected += result.consumer_crashes
        self.store_crashes_injected += result.store_crashes
        self.faults_injected += result.faults_injected

    def bind_telemetry(self, registry) -> None:
        """Register the ``dst_*`` counters against this stats object."""
        for name, help_text, reader in (
            ("dst_seeds_run_total",
             "DST scenarios executed by campaigns in this process.",
             lambda: self.seeds_run),
            ("dst_seeds_failed_total",
             "DST scenarios that violated an invariant, diverged from "
             "an oracle, or failed recovery.",
             lambda: self.seeds_failed),
            ("dst_invariant_failures_total",
             "Individual failure messages across all failed seeds.",
             lambda: self.invariant_failures),
            ("dst_scenario_events_produced_total",
             "Ring-buffer events produced across all DST scenarios.",
             lambda: self.scenario_events_produced),
            ("dst_scenario_events_stored_total",
             "Documents landed in the backend across all DST "
             "scenarios.",
             lambda: self.scenario_events_stored),
            ("dst_consumer_crashes_injected_total",
             "Consumer kill/restart cycles injected by crash "
             "schedules.",
             lambda: self.consumer_crashes_injected),
            ("dst_store_crashes_injected_total",
             "Store crashes (torn-WAL recoveries) injected at bulk "
             "boundaries.",
             lambda: self.store_crashes_injected),
            ("dst_faults_injected_total",
             "Backend faults (outages, timeouts, slowdowns) injected "
             "by scenario fault plans.",
             lambda: self.faults_injected),
            ("dst_shrink_runs_total",
             "Harness executions spent minimising failing scenarios.",
             lambda: self.shrink_runs),
        ):
            registry.counter(name, help_text).set_function(reader)


@dataclasses.dataclass
class CampaignResult:
    """Outcome of one campaign."""

    results: list
    stats: CampaignStats
    shrunk: dict

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def failed_seeds(self) -> list[int]:
        return [result.seed for result in self.results if not result.ok]

    def summary(self) -> dict:
        return {
            "seeds_run": self.stats.seeds_run,
            "seeds_failed": self.stats.seeds_failed,
            "failed_seeds": self.failed_seeds,
            "events_produced": self.stats.scenario_events_produced,
            "events_stored": self.stats.scenario_events_stored,
            "consumer_crashes": self.stats.consumer_crashes_injected,
            "store_crashes": self.stats.store_crashes_injected,
            "faults_injected": self.stats.faults_injected,
        }


def run_seeds(seeds: Iterable[int], *, shrink_failures: bool = False,
              shrink_budget: int = 48,
              stats: Optional[CampaignStats] = None,
              progress: Optional[Callable[[RunResult], None]] = None,
              stop_after: Optional[int] = None) -> CampaignResult:
    """Run a campaign over ``seeds``.

    ``shrink_failures`` minimises each failing scenario (bounded by
    ``shrink_budget`` extra harness runs per failure); ``stop_after``
    aborts the campaign once that many seeds have failed.
    """
    stats = stats or CampaignStats()
    results: list[RunResult] = []
    shrunk: dict[int, Scenario] = {}
    failed = 0
    for seed in seeds:
        result = run_scenario(generate(seed))
        stats.record(result)
        results.append(result)
        if progress is not None:
            progress(result)
        if not result.ok:
            failed += 1
            if shrink_failures:
                outcome = shrink(result.scenario, max_runs=shrink_budget)
                stats.shrink_runs += outcome.runs_used
                if outcome.still_failing:
                    shrunk[seed] = outcome.scenario
            if stop_after is not None and failed >= stop_after:
                break
    return CampaignResult(results=results, stats=stats, shrunk=shrunk)
