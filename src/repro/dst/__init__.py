"""Deterministic simulation testing (DST) for the whole pipeline.

The tracer already runs on a simulated kernel and virtual clock; this
package weaponises that determinism the way FoundationDB's simulator
does.  One integer seed expands into a complete end-to-end scenario —
a workload mix over all 42 traced syscalls, the tracer configuration,
a backend fault plan, consumer kill/restart times, and store crash
points — and the harness runs the scenario through the *real*
pipeline, then judges the outcome against invariants and oracles:

- :mod:`repro.dst.scenario` — seed → scenario expansion and the
  scenario JSON format (``dio dst repro`` input);
- :mod:`repro.dst.runner` — executes a scenario: fast run, invariant
  checks, differential battery, legacy-oracle twin run, same-seed
  determinism digest, torn-file storage recovery;
- :mod:`repro.dst.invariants` — conservation, exactly-once, monotone
  offsets, correlation consistency, telemetry cross-checks;
- :mod:`repro.dst.differential` — fast-vs-naive query battery and
  twin-run comparison;
- :mod:`repro.dst.crash` — the crashing store wrapper (torn-WAL
  recovery at bulk boundaries);
- :mod:`repro.dst.shrink` — ddmin minimisation of failing scenarios;
- :mod:`repro.dst.campaign` — seed campaigns and ``dst_*`` telemetry;
- :mod:`repro.dst.corpus` — the checked-in regression corpus.

See docs/TESTING.md for the operator's view.
"""

from repro.dst.campaign import CampaignResult, CampaignStats, run_seeds
from repro.dst.corpus import load_corpus, run_corpus, save_entry
from repro.dst.runner import RunResult, run_scenario, run_seed
from repro.dst.scenario import APP_MODELS, Scenario, generate
from repro.dst.shrink import ShrinkResult, shrink

__all__ = [
    "APP_MODELS",
    "CampaignResult",
    "CampaignStats",
    "RunResult",
    "Scenario",
    "ShrinkResult",
    "generate",
    "load_corpus",
    "run_corpus",
    "run_seed",
    "run_scenario",
    "run_seeds",
    "save_entry",
    "shrink",
]
