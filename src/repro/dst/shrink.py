"""Greedy scenario minimisation for failing DST seeds.

When a seed fails, replaying the raw generated scenario is exact but
noisy — hundreds of ops across several processes, fault windows, and
crash schedules, most of them irrelevant to the bug.  ``shrink`` takes
a failing scenario and drives it to a local minimum while preserving
the failure, ddmin-style:

* drop whole processes;
* halve each process's op list (binary chunks, then single ops);
* drop fault windows, consumer crashes, and store crash points;
* collapse to one CPU and the simplest ring policy.

Every candidate is re-run through the *same* full harness
(:func:`repro.dst.runner.run_scenario`), so a shrunk scenario fails
for the same observable reason class, and the output of ``dio dst
repro`` on the saved JSON is the minimal reproducer.  The search is
deterministic (fixed pass order, no randomness) and bounded by
``max_runs`` — shrinking is best-effort, never the long pole.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

from repro.dst.runner import run_scenario
from repro.dst.scenario import Scenario


@dataclasses.dataclass
class ShrinkResult:
    """Outcome of one shrink campaign."""

    scenario: Scenario
    original_ops: int
    final_ops: int
    runs_used: int
    still_failing: bool

    def summary(self) -> dict:
        return {
            "original_ops": self.original_ops,
            "final_ops": self.final_ops,
            "runs_used": self.runs_used,
            "still_failing": self.still_failing,
        }


def _default_fails(scenario: Scenario) -> bool:
    return not run_scenario(scenario, check_determinism=False).ok


class _Budget:
    __slots__ = ("remaining",)

    def __init__(self, max_runs: int) -> None:
        self.remaining = max_runs

    def spend(self) -> bool:
        if self.remaining <= 0:
            return False
        self.remaining -= 1
        return True


def _try(candidate: Scenario, fails: Callable[[Scenario], bool],
         budget: _Budget) -> bool:
    if not budget.spend():
        return False
    try:
        return fails(candidate)
    except Exception:
        # A candidate that crashes the harness still reproduces a bug,
        # but not necessarily *the* bug; treat it as not preserving
        # the failure so shrinking stays on the original trail.
        return False


def _with(scenario: Scenario, **overrides) -> Scenario:
    return dataclasses.replace(scenario, **overrides)


def _shrink_list(scenario: Scenario, field: str,
                 fails: Callable[[Scenario], bool],
                 budget: _Budget) -> Scenario:
    """ddmin over one list-valued scenario field."""
    items = list(getattr(scenario, field))
    chunk = max(1, len(items) // 2)
    while chunk >= 1 and items:
        i = 0
        while i < len(items):
            candidate_items = items[:i] + items[i + chunk:]
            candidate = _with(scenario, **{field: candidate_items})
            if _try(candidate, fails, budget):
                items = candidate_items
                scenario = candidate
            else:
                i += chunk
        if chunk == 1:
            break
        chunk = max(1, chunk // 2)
    return scenario


def _shrink_ops(scenario: Scenario, fails: Callable[[Scenario], bool],
                budget: _Budget) -> Scenario:
    """ddmin each process's op list independently."""
    for pi in range(len(scenario.processes)):
        ops = list(scenario.processes[pi]["ops"])
        chunk = max(1, len(ops) // 2)
        while chunk >= 1 and ops:
            i = 0
            while i < len(ops):
                candidate_ops = ops[:i] + ops[i + chunk:]
                processes = [dict(p) for p in scenario.processes]
                processes[pi] = dict(processes[pi], ops=candidate_ops)
                candidate = _with(scenario, processes=processes)
                if _try(candidate, fails, budget):
                    ops = candidate_ops
                    scenario = candidate
                else:
                    i += chunk
            if chunk == 1:
                break
            chunk = max(1, chunk // 2)
    return scenario


def shrink(scenario: Scenario,
           fails: Optional[Callable[[Scenario], bool]] = None,
           max_runs: int = 64) -> ShrinkResult:
    """Minimise ``scenario`` while ``fails`` stays true.

    ``fails`` defaults to "the full harness reports any failure".
    The returned scenario is verified failing one final time unless
    the budget ran out mid-pass.
    """
    fails = fails or _default_fails
    budget = _Budget(max_runs)
    original_ops = scenario.total_ops

    if not _try(scenario, fails, budget):
        return ShrinkResult(scenario=scenario, original_ops=original_ops,
                            final_ops=original_ops,
                            runs_used=max_runs - budget.remaining,
                            still_failing=False)

    # Fixpoint: repeat the pass list until nothing shrinks further.
    while True:
        before = (scenario.total_ops, len(scenario.processes),
                  len(scenario.fault_windows),
                  len(scenario.consumer_crashes),
                  len(scenario.store_crashes), scenario.ncpus)
        scenario = _shrink_list(scenario, "processes", fails, budget)
        scenario = _shrink_ops(scenario, fails, budget)
        scenario = _shrink_list(scenario, "fault_windows", fails, budget)
        scenario = _shrink_list(scenario, "consumer_crashes", fails,
                                budget)
        scenario = _shrink_list(scenario, "store_crashes", fails, budget)
        if scenario.ncpus > 1:
            candidate = _with(scenario, ncpus=1)
            if _try(candidate, fails, budget):
                scenario = candidate
        if scenario.ring_policy != "drop-new":
            candidate = _with(scenario, ring_policy="drop-new")
            if _try(candidate, fails, budget):
                scenario = candidate
        after = (scenario.total_ops, len(scenario.processes),
                 len(scenario.fault_windows),
                 len(scenario.consumer_crashes),
                 len(scenario.store_crashes), scenario.ncpus)
        if after == before or budget.remaining <= 0:
            break

    # Every kept candidate was verified failing when accepted, so the
    # result still reproduces by construction.
    return ShrinkResult(scenario=scenario, original_ops=original_ops,
                        final_ops=scenario.total_ops,
                        runs_used=max_runs - budget.remaining,
                        still_failing=True)
