"""Seed corpus: minimised scenarios checked in as regression tests.

Every interesting failure the DST harness has ever caught gets its
shrunk scenario saved under ``tests/corpus/*.json`` and replayed on
every tier-1 CI run — the corpus is the harness's long-term memory.
Corpus files are ordinary :meth:`repro.dst.scenario.Scenario.save`
JSON with two extra bookkeeping keys (ignored by the loader via
``from_dict``'s unknown-key filtering):

* ``corpus_note`` — one line on what the scenario exercises;
* ``corpus_added`` — ISO date the entry landed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

from repro.dst.runner import RunResult, run_scenario
from repro.dst.scenario import Scenario

#: Default corpus location, relative to the repository root.
CORPUS_DIR = Path("tests") / "corpus"


def load_corpus(directory=CORPUS_DIR) -> list[tuple[Path, Scenario]]:
    """All corpus scenarios, sorted by filename for determinism."""
    directory = Path(directory)
    entries = []
    for path in sorted(directory.glob("*.json")):
        entries.append((path, Scenario.load(path)))
    return entries


def save_entry(scenario: Scenario, directory=CORPUS_DIR,
               note: str = "", name: Optional[str] = None,
               added: str = "") -> Path:
    """Write one scenario into the corpus; returns its path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    filename = name or f"seed-{scenario.seed}.json"
    path = directory / filename
    payload = scenario.to_dict()
    if note:
        payload["corpus_note"] = note
    if added:
        payload["corpus_added"] = added
    path.write_text(json.dumps(payload, sort_keys=True, indent=1,
                               ensure_ascii=False) + "\n",
                    encoding="utf-8")
    return path


def run_corpus(directory=CORPUS_DIR) -> list[tuple[Path, RunResult]]:
    """Replay every corpus scenario through the full harness."""
    outcomes = []
    for path, scenario in load_corpus(directory):
        outcomes.append((path, run_scenario(scenario)))
    return outcomes
