"""Store-crash simulation with torn-WAL recovery.

:class:`CrashingStore` models the backend's durability contract the
way Elasticsearch's translog does: every *accepted* bulk request is
journaled (fsync-per-request) to an append-only WAL before it is
acknowledged, so a crash can lose at most the one record being written
at the instant of the crash — the in-flight bulk that was never acked.

At a scenario-chosen crash point (the k-th bulk reaching the store,
torn at an arbitrary byte fraction of the in-flight journal record)
the wrapper:

1. serializes the journal with the in-flight record torn mid-line;
2. rebuilds the inner store *from the torn journal alone* — dropping
   every index and replaying the parseable prefix — exactly what a
   restarted backend would do;
3. cross-checks the rebuilt state against the pre-crash state (the
   accepted bulks) and records the verdict;
4. raises a :class:`~repro.faults.InjectedFault` so the consumer's
   retry machinery re-ships the torn batch — which is what makes the
   pipeline exactly-once across store crashes.

The torn fraction is clamped so the in-flight line can never survive
complete: an fsync barrier sits between writing the record and acking
the request, so "fully written but unacked" (the duplicate-on-retry
case) is not in this failure model — see docs/RELIABILITY.md.
"""

from __future__ import annotations

import json
from typing import Callable, Optional

from repro.faults import InjectedFault

#: Journal header line (same JSON-lines discipline as the session
#: format and the spill WAL).
JOURNAL_FORMAT = "dio-store-wal-v1"


def _canonical_state(store) -> str:
    """A store's full content as one canonical JSON string."""
    state = {}
    for name in sorted(store.index_names()):
        docs = sorted(
            (doc_id, source)
            for doc_id, source in store.scan(name, {"match_all": {}}))
        state[name] = docs
    return json.dumps(state, sort_keys=True, separators=(",", ":"))


class CrashingStore:
    """Wraps a store; crashes it at scheduled bulk ordinals.

    ``crash_points`` is a list of ``{"after_bulks": k, "torn_frac": f}``
    dicts: the k-th bulk call reaching this wrapper (1-based, counted
    across the store's lifetime) crashes the store with its journal
    record torn at fraction ``f``.  Everything not intercepted
    delegates to the inner store untouched.
    """

    def __init__(self, inner, crash_points: list,
                 clock: Optional[Callable[[], int]] = None,
                 recovery_cost_ns: int = 5_000_000):
        self.inner = inner
        self.clock = clock or (lambda: 0)
        self.recovery_cost_ns = recovery_cost_ns
        self._crash_at = sorted(
            (int(point["after_bulks"]), float(point["torn_frac"]))
            for point in crash_points)
        self._bulk_calls = 0
        #: Journal of accepted bulks: compact JSON lines.
        self._journal: list[str] = []
        #: ``ensure_index`` calls to replay before a journal rebuild
        #: (index settings live outside the data WAL, like an ES
        #: cluster-state snapshot).
        self._index_settings: dict[str, tuple] = {}
        #: Lifetime counters / verdicts for the invariant checker.
        self.crashes_total = 0
        self.journal_records_total = 0
        self.recovery_reports: list[dict] = []

    # ------------------------------------------------------------------
    # Intercepted APIs

    def ensure_index(self, name: str, indexed_fields=None):
        if indexed_fields:
            self._index_settings[name] = tuple(indexed_fields)
        return self.inner.ensure_index(name, indexed_fields=indexed_fields)

    def bulk(self, index: str, sources, nominal_ns: int = 0) -> int:
        self._bulk_calls += 1
        self._accept_bulk(json.dumps({"index": index, "docs": list(sources)},
                                     separators=(",", ":"), sort_keys=True))
        return self.inner.bulk(index, sources)

    def bulk_columnar(self, index: str, batch, nominal_ns: int = 0) -> int:
        """Vectorized bulk: journaled (and crashed) like any other.

        Shares the bulk ordinal counter with :meth:`bulk`, so a crash
        scheduled "after k bulks" fires at the same point whichever
        ingest mode the consumer runs — what lets the legacy twin act
        as the oracle for crash scenarios.  The journal line needs
        JSON-able docs, so the batch materialises here; that is the
        durability contract's price, not the ingest path's.
        """
        self._bulk_calls += 1
        self._accept_bulk(json.dumps(
            {"index": index, "docs": batch.to_docs()},
            separators=(",", ":"), sort_keys=True))
        return self.inner.bulk_columnar(index, batch)

    def _accept_bulk(self, line: str) -> None:
        """Crash if this bulk is the scheduled one; journal it otherwise."""
        if self._crash_at and self._bulk_calls == self._crash_at[0][0]:
            _, torn_frac = self._crash_at.pop(0)
            self._crash(line, torn_frac)
            raise InjectedFault("store-crash", self.clock(),
                                cost_ns=self.recovery_cost_ns)
        self._journal.append(line)
        self.journal_records_total += 1

    # ------------------------------------------------------------------
    # Crash + recovery

    def journal_bytes(self, torn_line: Optional[str] = None,
                      torn_frac: float = 0.0) -> bytes:
        """The journal as an on-disk WAL image (optionally torn)."""
        lines = [json.dumps({"format": JOURNAL_FORMAT,
                             "records": len(self._journal)},
                            sort_keys=True)]
        lines.extend(self._journal)
        blob = "\n".join(lines) + "\n"
        if torn_line is not None:
            # Clamp so the torn record can never parse as complete.
            cut = min(int(len(torn_line) * torn_frac), len(torn_line) - 2)
            blob += torn_line[:max(0, cut)]
        return blob.encode("utf-8")

    def _crash(self, inflight_line: str, torn_frac: float) -> None:
        self.crashes_total += 1
        before = _canonical_state(self.inner)
        wal = self.journal_bytes(torn_line=inflight_line,
                                 torn_frac=torn_frac)
        report = self._rebuild_from_wal(wal)
        after = _canonical_state(self.inner)
        report["at_ns"] = self.clock()
        report["torn_frac"] = torn_frac
        report["consistent"] = (before == after)
        self.recovery_reports.append(report)

    def _rebuild_from_wal(self, wal: bytes) -> dict:
        """Drop all state and replay the parseable journal prefix."""
        report = {"replayed_bulks": 0, "replayed_docs": 0,
                  "torn_lines": 0}
        entries = []
        lines = wal.decode("utf-8", errors="replace").split("\n")
        for line in lines[1:]:
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
                entries.append((str(entry["index"]), entry["docs"]))
            except (ValueError, KeyError, TypeError):
                report["torn_lines"] += 1
        for name in list(self.inner.index_names()):
            self.inner.delete_index(name)
        for name, fields in self._index_settings.items():
            self.inner.ensure_index(name, indexed_fields=fields)
        for name, docs in entries:
            self.inner.bulk(name, docs)
            report["replayed_bulks"] += 1
            report["replayed_docs"] += len(docs)
        return report

    # ------------------------------------------------------------------
    # Introspection / delegation

    @property
    def rebuilds_consistent(self) -> bool:
        """All post-crash rebuilds matched the pre-crash state."""
        return all(r["consistent"] for r in self.recovery_reports)

    def bind_telemetry(self, registry, clock=None) -> None:
        self.inner.bind_telemetry(registry, clock=clock)

    def __getattr__(self, name: str):
        return getattr(self.inner, name)

    def __repr__(self) -> str:
        return (f"<CrashingStore crashes={self.crashes_total} "
                f"pending={len(self._crash_at)}>")
