"""Global pipeline invariants checked after every DST scenario.

Each check is a pure function over a :class:`RunContext` returning a
list of human-readable violation strings (empty = holds).  The library
encodes what must be true of *any* run of the pipeline, whatever the
workload, config, fault plan, or crash schedule:

- **event conservation** — every record the ring buffers accepted is
  accounted for: indexed, still staged/spilled, shed by backpressure,
  or lost to a counted consumer crash — and the ``dio_*`` telemetry
  counters agree with the raw stats objects they mirror;
- **exactly-once** — no event document is duplicated (``(tid, time,
  syscall)`` is unique per capture) and the store holds exactly the
  shipped count;
- **per-file monotone offsets** — sequential read/write offsets never
  go backwards for a (thread, file-tag) pair that saw no seek,
  truncate, positioned I/O, or re-open (checked only on lossless runs:
  a dropped seek event would falsify the check, not the pipeline);
- **correlation consistency** — every resolved path really was opened
  under that tag, tags resolve to one path, unresolved events truly
  lack a captured open, and the report's tallies add up;
- **isolation** — an untraced process's events never reach the store;
- **store-crash recovery** — every torn-WAL rebuild reproduced the
  pre-crash state exactly.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.backend.correlation import PATH_BEARING_SYSCALLS
from repro.kernel.syscalls import O_TRUNC


@dataclasses.dataclass
class RunContext:
    """Everything one pipeline execution exposes to the checks."""

    scenario: object
    tracer: object
    store: object          # outermost wrapper the tracer wrote through
    inner_store: object    # the bare DocumentStore
    crashing: Optional[object]  # CrashingStore layer, if scheduled
    faulty: Optional[object]    # FaultyStore layer, if faulted
    index: str
    session: str
    traced_pids: set
    docs: list             # (doc_id, source) snapshot, post-correlation


def check_all(ctx: RunContext) -> list[str]:
    """Run the whole library; returns all violations found."""
    failures: list[str] = []
    failures += check_conservation(ctx)
    failures += check_telemetry_consistency(ctx)
    failures += check_exactly_once(ctx)
    failures += check_monotone_offsets(ctx)
    failures += check_correlation(ctx)
    failures += check_isolation(ctx)
    failures += check_store_recovery(ctx)
    return failures


# ----------------------------------------------------------------------
# Conservation

def check_conservation(ctx: RunContext) -> list[str]:
    """produced == stored + discarded + spilled, at every hop."""
    failures = []
    tracer = ctx.tracer
    ring = tracer.ring.stats
    stats = tracer.stats
    pending = tracer.ring.pending_records()

    # Kernel hop.  Under overwrite-oldest the dropped counter holds
    # records that *were* produced and then evicted; under drop-new and
    # sample a dropped record never counted as produced.
    if ctx.scenario.ring_policy == "overwrite-oldest":
        expect = ring.consumed + pending + ring.dropped
    else:
        expect = ring.consumed + pending
    if ring.produced != expect:
        failures.append(
            f"ring conservation: produced={ring.produced} != "
            f"consumed={ring.consumed} + pending={pending}"
            + (f" + dropped={ring.dropped}"
               if ctx.scenario.ring_policy == "overwrite-oldest" else ""))

    # Consumer hop: consumed records are parsed or shed.
    parsed = int(tracer.telemetry.registry.value(
        "dio_consumer_events_parsed_total"))
    shed = int(tracer.telemetry.registry.value("dio_consumer_shed_total"))
    if ring.consumed != parsed + shed:
        failures.append(
            f"consumer conservation: consumed={ring.consumed} != "
            f"parsed={parsed} + shed={shed}")

    # Shipping hop: parsed events are indexed, staged, spilled, or lost
    # to a counted consumer crash.
    accounted = (stats.shipped + stats.staged_records
                 + stats.spill_pending + stats.crash_lost)
    if parsed != accounted:
        failures.append(
            f"shipping conservation: parsed={parsed} != "
            f"shipped={stats.shipped} + staged={stats.staged_records} + "
            f"spill_pending={stats.spill_pending} + "
            f"crash_lost={stats.crash_lost}")

    # Crash losses only when a crash was scheduled.
    if not ctx.scenario.consumer_crashes and stats.crash_lost:
        failures.append(
            f"crash_lost={stats.crash_lost} without a scheduled "
            f"consumer crash")

    # Storage hop: the store holds exactly the shipped events.
    if len(ctx.docs) != stats.shipped:
        failures.append(
            f"storage conservation: store holds {len(ctx.docs)} docs "
            f"but shipped={stats.shipped}")
    return failures


def check_telemetry_consistency(ctx: RunContext) -> list[str]:
    """The dio_* registry mirrors the raw counters exactly."""
    failures = []
    tracer = ctx.tracer
    registry = tracer.telemetry.registry
    stats = tracer.stats
    spill = tracer._spill
    pairs = (
        ("dio_ring_produced_total", tracer.ring.stats.produced),
        ("dio_ring_dropped_total", tracer.ring.stats.dropped),
        ("dio_ring_consumed_total", tracer.ring.stats.consumed),
        ("dio_shipper_events_total", stats.shipped),
        ("dio_consumer_batches_total", stats.batches),
        ("dio_consumer_bulk_attempts_total", stats.bulk_attempts),
        ("dio_shipper_retries_total", stats.ship_retries),
        ("dio_consumer_crash_lost_total", stats.crash_lost),
        ("dio_spill_records_total", spill.spilled_records_total),
        ("dio_spill_replayed_records_total", spill.replayed_records_total),
        ("dio_spill_pending_records", spill.pending_records),
        ("dio_consumer_staged_records", stats.staged_records),
    )
    for name, raw in pairs:
        try:
            reported = registry.value(name)
        except Exception as exc:
            failures.append(f"telemetry: cannot read {name}: {exc!r}")
            continue
        if int(reported) != int(raw):
            failures.append(
                f"telemetry drift: {name}={reported} but raw "
                f"counter says {raw}")
    return failures


# ----------------------------------------------------------------------
# Exactly-once

def event_key(source: dict) -> tuple:
    """Identity of one traced event within a capture."""
    return (source.get("tid"), source.get("time"), source.get("syscall"))


def check_exactly_once(ctx: RunContext) -> list[str]:
    """No duplicate events survive retries, spills, or crashes."""
    seen: dict[tuple, str] = {}
    failures = []
    for doc_id, source in ctx.docs:
        key = event_key(source)
        if key in seen:
            failures.append(
                f"duplicate event {key} (docs {seen[key]} and {doc_id})")
        else:
            seen[key] = doc_id
    return failures


# ----------------------------------------------------------------------
# Monotone offsets

#: Sequential syscalls whose recorded offset must never regress.
_SEQUENTIAL = frozenset({"read", "write", "readv", "writev"})
#: Events that legitimately move an fd's position or the file's size.
_POSITIONERS = frozenset({"lseek", "pread64", "pwrite64"})
_TRUNCATERS = frozenset({"truncate", "ftruncate"})


def check_monotone_offsets(ctx: RunContext) -> list[str]:
    """Sequential I/O offsets are non-decreasing per (tid, file tag).

    Only meaningful when the observation itself is complete: a dropped
    lseek would make a perfectly healthy app look like it seeked
    backwards, so the check is skipped on lossy runs.
    """
    stats = ctx.tracer.stats
    if (ctx.tracer.ring.stats.dropped or stats.crash_lost
            or int(ctx.tracer.telemetry.registry.value(
                "dio_consumer_shed_total"))):
        return []

    ordered = sorted((source for _, source in ctx.docs),
                     key=lambda s: (s.get("time", 0), s.get("tid", 0)))
    skip_tags: set = set()          # truncated files: size can shrink
    skip_paths: set = set()         # truncated paths (tagless events)
    skip_pairs: set = set()         # (tid, tag) with seeks/re-opens
    opens_seen: dict[tuple, int] = {}
    tags_by_path: dict[str, set] = {}
    for source in ordered:
        name = source.get("syscall")
        tag = source.get("file_tag")
        path = source.get("args", {}).get("path")
        truncating = (name in _TRUNCATERS or name == "creat"
                      or (name in PATH_BEARING_SYSCALLS
                          and source.get("args", {}).get("flags", 0)
                          & O_TRUNC))
        # creat(2) implies O_TRUNC but its traced args carry no flags
        # field, so it is a truncater by name; a path-based truncate
        # carries no file_tag at all, so truncated paths are tracked
        # separately and joined to tags through the captured opens.
        if truncating:
            if tag is not None:
                skip_tags.add(tag)
            if path is not None:
                skip_paths.add(path)
        if tag is None:
            continue
        tid = source.get("tid")
        if name in _POSITIONERS:
            skip_pairs.add((tid, tag))
        if name in PATH_BEARING_SYSCALLS and source.get("ret", -1) >= 0:
            if path is not None:
                tags_by_path.setdefault(path, set()).add(tag)
            opens_seen[(tid, tag)] = opens_seen.get((tid, tag), 0) + 1
            if opens_seen[(tid, tag)] > 1:
                skip_pairs.add((tid, tag))
    for path in skip_paths:
        skip_tags.update(tags_by_path.get(path, ()))

    failures = []
    last: dict[tuple, int] = {}
    for source in ordered:
        tag = source.get("file_tag")
        name = source.get("syscall")
        offset = source.get("offset")
        if (tag is None or offset is None or name not in _SEQUENTIAL
                or tag in skip_tags):
            continue
        pair = (source.get("tid"), tag)
        if pair in skip_pairs:
            continue
        if source.get("ret", -1) < 0:
            continue
        prev = last.get(pair)
        if prev is not None and offset < prev:
            failures.append(
                f"offset regression for tid={pair[0]} tag={tag}: "
                f"{name} at t={source.get('time')} has offset={offset} "
                f"after {prev}")
        last[pair] = max(offset, prev or 0)
    return failures


# ----------------------------------------------------------------------
# Correlation

def check_correlation(ctx: RunContext) -> list[str]:
    """file_tag/file_path consistency plus report arithmetic."""
    failures = []
    report = ctx.tracer.correlation_report
    opens_by_tag: dict[str, set] = {}
    for _, source in ctx.docs:
        tag = source.get("file_tag")
        path = source.get("args", {}).get("path")
        if (tag and path
                and source.get("syscall") in PATH_BEARING_SYSCALLS):
            opens_by_tag.setdefault(tag, set()).add(path)

    path_by_tag: dict[str, str] = {}
    tagged = unresolved = 0
    for doc_id, source in ctx.docs:
        tag = source.get("file_tag")
        if tag is None:
            continue
        tagged += 1
        path = source.get("file_path")
        if path is None:
            unresolved += 1
            if tag in opens_by_tag:
                failures.append(
                    f"doc {doc_id}: tag {tag} unresolved although an "
                    f"open for it was captured")
            continue
        if tag in path_by_tag and path_by_tag[tag] != path:
            failures.append(
                f"tag {tag} resolved to both {path_by_tag[tag]!r} "
                f"and {path!r}")
        path_by_tag.setdefault(tag, path)
        if path not in opens_by_tag.get(tag, set()):
            failures.append(
                f"doc {doc_id}: tag {tag} resolved to {path!r} which "
                f"no captured open produced")

    if report is not None:
        if report.documents_tagged != tagged:
            failures.append(
                f"correlation report counts {report.documents_tagged} "
                f"tagged docs, store holds {tagged}")
        if report.documents_unresolved != unresolved:
            failures.append(
                f"correlation report counts {report.documents_unresolved} "
                f"unresolved docs, store holds {unresolved}")
        if report.documents_tagged != (report.documents_updated
                                       + report.documents_unresolved):
            failures.append(
                f"correlation report does not add up: tagged="
                f"{report.documents_tagged} != updated="
                f"{report.documents_updated} + unresolved="
                f"{report.documents_unresolved}")
        if report.tags_resolved != len(path_by_tag):
            failures.append(
                f"correlation report counts {report.tags_resolved} "
                f"resolved tags, store shows {len(path_by_tag)}")
    return failures


# ----------------------------------------------------------------------
# Isolation & crash recovery

def check_isolation(ctx: RunContext) -> list[str]:
    """Untraced processes leave no trace in the store."""
    failures = []
    for doc_id, source in ctx.docs:
        if source.get("pid") not in ctx.traced_pids:
            failures.append(
                f"doc {doc_id}: event from untraced pid "
                f"{source.get('pid')} ({source.get('proc_name')!r}) "
                f"reached the store")
    return failures


def check_store_recovery(ctx: RunContext) -> list[str]:
    """Every torn-WAL rebuild reproduced the pre-crash store."""
    failures = []
    crashing = ctx.crashing
    if crashing is None:
        return failures
    for i, report in enumerate(crashing.recovery_reports):
        if not report["consistent"]:
            failures.append(
                f"store crash #{i + 1} at t={report['at_ns']}: WAL "
                f"rebuild diverged from pre-crash state "
                f"(replayed {report['replayed_docs']} docs, "
                f"{report['torn_lines']} torn lines)")
        if report["torn_lines"] != 1:
            failures.append(
                f"store crash #{i + 1}: expected exactly 1 torn WAL "
                f"line, found {report['torn_lines']}")
    return failures
