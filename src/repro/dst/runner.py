"""Execute one DST scenario end-to-end and judge it.

``run_scenario`` is the whole harness for one seed:

1. **fast run** — the full pipeline (apps → kernel → tracer →
   consumer/spill → store → correlation) on the production paths
   (``plan_mode="planner"``, ``agg_mode="columnar"``, grouped-pass
   correlator), with the scenario's fault plan, consumer kills, and
   store crashes applied on the virtual clock;
2. **invariants** — the :mod:`repro.dst.invariants` library over the
   run's final state and telemetry;
3. **differential battery** — planner/columnar answers vs. the naive
   oracles on the fast store, plus dashboard renders;
4. **oracle twin run** — the same scenario again on
   ``plan_mode="legacy"``/``agg_mode="legacy"`` with
   :func:`~repro.backend.naive.legacy_correlate`; final stores and
   correlation reports must match exactly.  Ring-aware scenarios add a
   **classic twin** (:func:`ring_twin_checks`): the same apps under a
   ``ring_mode="classic"`` tracer must leave identical kernel-level
   outcomes, and the ring-aware capture minus ``uring_*`` events must
   equal the classic capture when neither run lost events;
5. **determinism** — a byte-identical digest check against a third,
   fresh execution of the fast run;
6. **storage recovery** — the session export is torn at a seed-chosen
   byte and recovered; the spill WAL image likewise.  Data loss beyond
   the torn tail, duplicates after replay, or a crash fail the seed.
   Scenarios on the ``storage_mode="segments"`` axis additionally run
   :func:`segment_storage_checks`: the segment store is diffed against
   the JSON-lines oracle, a segment file and the storage WAL are torn
   at arbitrary bytes, and a crash is injected mid-compaction.

Every stage is deterministic, so a failing seed reproduces with
``dio dst repro <seed>`` forever (or from its saved scenario JSON).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import random
from typing import Optional

from repro.backend.naive import legacy_correlate
from repro.backend.persistence import (export_session, import_session,
                                       recover_session)
from repro.backend.router import create_store
from repro.backend.store import DocumentStore
from repro.dst import differential, invariants
from repro.dst.crash import CrashingStore
from repro.dst.scenario import (DIR_POOL, PATH_POOL, XATTR_POOL, Scenario,
                                generate)
from repro.faults import FaultPlan, FaultWindow, FaultyStore
from repro.kernel.inode import FileType
from repro.kernel.syscalls import AT_FDCWD, O_RDONLY, Kernel
from repro.sim import Environment
from repro.tracer import DIOTracer, TracerConfig
from repro.visualizer.render import render_histogram, render_table

#: Index and session naming for DST runs.
DST_INDEX = "dio_trace"


@dataclasses.dataclass
class RunResult:
    """Verdict for one scenario."""

    seed: int
    failures: list
    digest: str
    events_produced: int
    events_stored: int
    consumer_crashes: int
    store_crashes: int
    faults_injected: int
    spilled: int
    scenario: Scenario

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> dict:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "failures": list(self.failures),
            "digest": self.digest,
            "events_produced": self.events_produced,
            "events_stored": self.events_stored,
            "consumer_crashes": self.consumer_crashes,
            "store_crashes": self.store_crashes,
            "faults_injected": self.faults_injected,
            "spilled": self.spilled,
        }


# ----------------------------------------------------------------------
# Op interpretation

class _ProcState:
    """Mutable per-process interpreter state (the open-fd registers)."""

    __slots__ = ("fds", "ring_fd")

    def __init__(self) -> None:
        self.fds: list[int] = []
        #: The process's io_uring fd, once ``io_uring_setup`` ran.
        self.ring_fd: Optional[int] = None

    def pick(self, slot: int) -> Optional[int]:
        if not self.fds:
            return None
        return self.fds[slot % len(self.fds)]


def _resolve_op(op: dict, state: _ProcState):
    """Translate one compact op into ``(syscall, kwargs)``.

    Returns ``(None, None)`` when the op cannot apply (fd-based op with
    no fd open) — a deterministic skip, not an error.
    """
    name = op["sc"]
    path = PATH_POOL[op.get("p", 0) % len(PATH_POOL)]
    path2 = PATH_POOL[op.get("p2", 0) % len(PATH_POOL)]
    dirpath = DIR_POOL[op.get("p", 0) % len(DIR_POOL)]
    xname = XATTR_POOL[op.get("x", 0) % len(XATTR_POOL)]
    n = max(1, op.get("n", 64))
    offset = op.get("o", 0)

    if name in ("open", "openat"):
        kwargs = {"path": path, "flags": op.get("fl", O_RDONLY)}
        if name == "openat":
            kwargs["dirfd"] = AT_FDCWD
        return name, kwargs
    if name == "creat":
        return name, {"path": path}
    if name in ("stat", "lstat"):
        return name, {"path": path, "statbuf": {}}
    if name == "fstatat":
        return name, {"dirfd": AT_FDCWD, "path": path, "statbuf": {}}
    if name == "truncate":
        return name, {"path": path, "length": op.get("n", 0)}
    if name in ("rename", "renameat", "renameat2"):
        if path == path2:
            return None, None
        if name == "rename":
            return name, {"oldpath": path, "newpath": path2}
        return name, {"olddirfd": AT_FDCWD, "oldpath": path,
                      "newdirfd": AT_FDCWD, "newpath": path2}
    if name == "unlink":
        return name, {"path": path}
    if name == "unlinkat":
        return name, {"dirfd": AT_FDCWD, "path": path, "flags": 0}
    if name in ("mkdir", "rmdir"):
        return name, {"path": dirpath}
    if name == "mkdirat":
        return name, {"dirfd": AT_FDCWD, "path": dirpath}
    if name == "mknod":
        return name, {"path": path}
    if name == "mknodat":
        return name, {"dirfd": AT_FDCWD, "path": path}
    if name in ("getxattr", "lgetxattr"):
        return name, {"path": path, "name": xname, "buf": bytearray(256)}
    if name in ("setxattr", "lsetxattr"):
        return name, {"path": path, "name": xname, "value": b"v" * n}
    if name in ("listxattr", "llistxattr"):
        return name, {"path": path, "buf": bytearray(1024)}
    if name in ("removexattr", "lremovexattr"):
        return name, {"path": path, "name": xname}

    # Everything else needs an open fd.
    fd = state.pick(op.get("f", 0))
    if fd is None:
        return None, None
    if name == "close":
        return name, {"fd": fd}
    if name == "read":
        return name, {"fd": fd, "buf": bytearray(n)}
    if name == "pread64":
        return name, {"fd": fd, "buf": bytearray(n), "offset": offset}
    if name == "readv":
        k = max(1, op.get("k", 2))
        return name, {"fd": fd, "bufs": [bytearray(n) for _ in range(k)]}
    if name == "write":
        return name, {"fd": fd, "data": b"w" * n}
    if name == "pwrite64":
        return name, {"fd": fd, "data": b"w" * n, "offset": offset}
    if name == "writev":
        k = max(1, op.get("k", 2))
        return name, {"fd": fd, "datas": [b"w" * n for _ in range(k)]}
    if name == "lseek":
        return name, {"fd": fd, "offset": offset, "whence": op.get("w", 0)}
    if name == "ftruncate":
        return name, {"fd": fd, "length": op.get("n", 0)}
    if name in ("fsync", "fdatasync"):
        return name, {"fd": fd}
    if name in ("fstat", "fstatfs"):
        return name, {"fd": fd, "statbuf": {}}
    if name == "fgetxattr":
        return name, {"fd": fd, "name": xname, "buf": bytearray(256)}
    if name == "fsetxattr":
        return name, {"fd": fd, "name": xname, "value": b"v" * n}
    if name == "flistxattr":
        return name, {"fd": fd, "buf": bytearray(1024)}
    if name == "fremovexattr":
        return name, {"fd": fd, "name": xname}
    raise ValueError(f"op interpreter cannot resolve syscall {name!r}")


#: Ops the io_uring interpreter handles (outside ``_resolve_op``:
#: ``uring_prep`` is app-side ring memory, not a syscall, and the
#: others need the process's ring handle).
_URING_OPS = frozenset({"io_uring_setup", "io_uring_register",
                        "io_uring_enter", "uring_prep"})


def _run_uring_op(kernel, task, state: _ProcState, op: dict):
    """Process generator: interpret one io_uring scenario op.

    Ops that cannot apply (no ring yet, no data fd, full SQ) are
    deterministic skips, mirroring ``_resolve_op``'s contract so the
    shrinker can delete any prefix of a ring program.
    """
    from repro.kernel.uring import SQE, IOSQE_IO_LINK
    from repro.kernel.syscalls import IORING_ENTER_GETEVENTS

    name = op["sc"]
    if name == "io_uring_setup":
        if state.ring_fd is None:
            ret = yield from kernel.syscall(task, "io_uring_setup",
                                           entries=op.get("e", 16))
            if ret >= 0:
                state.ring_fd = ret
        return
    if state.ring_fd is None:
        return
    ring = kernel.uring_for_fd(task, state.ring_fd)
    if ring is None:
        state.ring_fd = None
        return
    if name == "io_uring_register":
        # ro 0 registers fixed buffers, anything else the open fds as
        # a fixed-file table; either may fail (EBUSY) — that is data.
        if op.get("ro", 0) == 0:
            yield from kernel.syscall(
                task, "io_uring_register", fd=state.ring_fd, opcode=0,
                arg=[4096] * max(1, op.get("n", 1)),
                nr_args=max(1, op.get("n", 1)))
        else:
            yield from kernel.syscall(
                task, "io_uring_register", fd=state.ring_fd, opcode=2,
                arg=list(state.fds) or [0], nr_args=len(state.fds) or 1)
        return
    if name == "uring_prep":
        fd = state.pick(op.get("f", 0))
        if fd is None:
            return
        n = max(1, op.get("n", 64))
        offset = op.get("o", 0)
        flags = IOSQE_IO_LINK if op.get("ln") else 0
        kind = op.get("u", "write")
        if kind == "read":
            sqe = SQE.read(fd, n, offset, flags=flags)
        elif kind == "fsync":
            sqe = SQE.fsync(fd, flags=flags)
        else:
            sqe = SQE.write(fd, b"u" * n, offset, flags=flags)
        ring.prepare(sqe)   # full SQ -> deterministic drop
        return
    if name == "io_uring_enter":
        to_submit = len(ring.sq)
        yield from kernel.syscall(
            task, "io_uring_enter", fd=state.ring_fd,
            to_submit=to_submit, min_complete=to_submit,
            flags=IORING_ENTER_GETEVENTS)
        ring.reap()
        return
    raise ValueError(f"unknown io_uring op {name!r}")


# ----------------------------------------------------------------------
# Pipeline execution

class PipelineRun:
    """Final state of one pipeline execution."""

    __slots__ = ("tracer", "store", "inner_store", "crashing", "faulty",
                 "session", "traced_pids", "docs", "report", "kernel")

    def snapshot_docs(self) -> list:
        """Deterministic (id, source) snapshot of the trace index."""
        if DST_INDEX not in self.inner_store.index_names():
            return []
        return sorted(self.inner_store.scan(DST_INDEX, {"match_all": {}}),
                      key=lambda pair: int(pair[0]))


def execute_pipeline(scenario: Scenario, *, plan_mode: str = "planner",
                     agg_mode: str = "columnar",
                     fast_correlator: bool = True,
                     ingest_mode: Optional[str] = None,
                     shard_count: Optional[int] = None,
                     ring_mode: Optional[str] = None) -> PipelineRun:
    """Run the whole pipeline once for ``scenario``.

    ``ingest_mode`` and ``shard_count`` override the scenario's axes —
    the oracle twin forces ``"legacy"``/``1`` so vectorized ingest and
    the scatter-gather router are differentially checked against the
    per-event single-store path on every seed.  ``ring_mode`` likewise
    overrides the tracer's ring mode — the classic-twin stage forces
    ``"classic"`` on ring-aware scenarios to pin the blind spot.
    """
    env = Environment()
    kernel = Kernel(env, ncpus=scenario.ncpus)
    session = f"dst-{scenario.seed}"

    # Pre-create the namespace the op programs reference, and seed the
    # read targets with content (untraced setup, before attach).
    for base in ("/data", "/logs", "/scratch"):
        if kernel.vfs.lookup(base) is None:
            kernel.vfs.mkdir(base)
    for path in PATH_POOL:
        inode = kernel.vfs.create(path, FileType.REGULAR)
        inode.write_bytes(0, b"s" * 8192, 0)

    # Spawn all processes first so PID filtering is known before the
    # tracer is configured.
    procs = []
    traced_pids = set()
    for spec in scenario.processes:
        kproc = kernel.spawn_process(spec["name"])
        procs.append((kproc, spec))
        if spec.get("traced", True):
            traced_pids.add(kproc.pid)

    shards = scenario.shard_count if shard_count is None else shard_count
    inner = create_store(shard_count=shards, shard_key="pid",
                         plan_mode=plan_mode, agg_mode=agg_mode)
    layer = inner
    crashing = None
    if scenario.store_crashes:
        crashing = CrashingStore(inner, scenario.store_crashes,
                                 clock=lambda: env.now)
        layer = crashing
    plan = FaultPlan(FaultWindow(**w) for w in scenario.fault_windows)
    faulty = FaultyStore(layer, plan, clock=lambda: env.now)

    config = TracerConfig(
        session_name=session,
        index=DST_INDEX,
        pids=tuple(sorted(traced_pids)) if scenario.has_untraced else None,
        ring_capacity_bytes_per_cpu=scenario.ring_capacity_bytes_per_cpu,
        ring_policy=scenario.ring_policy,
        batch_size=scenario.batch_size,
        poll_interval_ns=scenario.poll_interval_ns,
        ship_max_retries=scenario.ship_max_retries,
        max_inflight_events=scenario.max_inflight_events,
        backpressure_policy=scenario.backpressure_policy,
        resilience_seed=scenario.seed,
        correlate_on_stop=fast_correlator,
        ingest_mode=ingest_mode or scenario.ingest_mode,
        ring_mode=ring_mode or scenario.ring_mode,
    )
    tracer = DIOTracer(env, kernel, faulty, config)
    tracer.attach()

    def app(kproc, spec):
        task = kproc.threads[0]
        state = _ProcState()
        for op in spec["ops"]:
            delay = op.get("d", 0)
            if delay:
                yield env.timeout(delay)
            name = op["sc"]
            if name in _URING_OPS:
                yield from _run_uring_op(kernel, task, state, op)
                continue
            name, kwargs = _resolve_op(op, state)
            if name is None:
                continue
            ret = yield from kernel.syscall(task, name, **kwargs)
            if name in ("open", "openat", "creat") and ret >= 0:
                state.fds.append(ret)
            elif name == "close" and ret == 0:
                state.fds.remove(kwargs["fd"])
        # A torn-down process must not leave its ring behind: close it
        # like a real runtime's exit path would.
        if state.ring_fd is not None:
            yield from kernel.syscall(task, "close", fd=state.ring_fd)

    def crash_schedule():
        for at_ns in sorted(scenario.consumer_crashes):
            if at_ns > env.now:
                yield env.timeout(at_ns - env.now)
            tracer.kill_consumer()
            yield env.timeout(scenario.consumer_restart_delay_ns)
            tracer.restart_consumer()

    def main():
        apps = [env.process(app(kproc, spec)) for kproc, spec in procs]
        crasher = env.process(crash_schedule())
        yield env.all_of(apps)
        # All kills/restarts must land before shutdown so the drain
        # below waits on the final consumer incarnation.
        yield crasher
        yield from tracer.shutdown()

    env.run(until=env.process(main()))

    run = PipelineRun()
    run.tracer = tracer
    run.kernel = kernel
    run.store = faulty
    run.inner_store = inner
    run.crashing = crashing
    run.faulty = faulty
    run.session = session
    run.traced_pids = traced_pids
    run.report = tracer.correlation_report
    if not fast_correlator:
        run.report = legacy_correlate(inner, DST_INDEX, session=session)
    run.docs = run.snapshot_docs()
    return run


# ----------------------------------------------------------------------
# Digest (same-seed reruns must be byte-identical)

def run_digest(run: PipelineRun, battery_results: list,
               dashboards: list[str]) -> str:
    """sha256 over everything an operator could observe from the run.

    Includes the full diagnosis report (batch + streaming findings,
    DFG fingerprint, phases), so the determinism stage pins same-seed
    byte-identical diagnosis output too.
    """
    from repro.analysis.diagnose import diagnose_session

    diagnosis = (diagnose_session(run.inner_store, run.session,
                                  index=DST_INDEX).as_dict()
                 if run.docs else None)
    payload = {
        "docs": run.docs,
        "stats": run.tracer.stats.as_dict(),
        "report": run.report.as_dict() if run.report else None,
        "battery": battery_results,
        "dashboards": dashboards,
        "diagnosis": diagnosis,
        "syscall_counts": dict(sorted(
            run.tracer.kernel.syscall_counts.items())),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=False)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def render_dashboards(run: PipelineRun) -> list[str]:
    """The dashboard stage: render what ``dio dashboard`` would show."""
    if not run.docs:
        return ["(no data)"]
    store = run.inner_store
    response = store.search(DST_INDEX, size=0, aggs={
        "by_syscall": {"terms": {"field": "syscall", "size": 50}}})
    buckets = [(b["key"], b["doc_count"])
               for b in response["aggregations"]["by_syscall"]["buckets"]]
    histogram = render_histogram(buckets)
    table = render_table(
        ("metric", "value"),
        sorted(run.tracer.stats.as_dict().items()))
    return [histogram, table]


# ----------------------------------------------------------------------
# Post-run storage recovery checks

def storage_recovery_checks(run: PipelineRun, scenario: Scenario,
                            tmp_dir) -> list[str]:
    """Torn-file recovery of the session export and the spill WAL."""
    import pathlib

    failures: list[str] = []
    rng = random.Random(f"dio-dst-storage-{scenario.seed}")
    if not run.docs:
        return failures
    tmp_dir = pathlib.Path(tmp_dir)
    export_path = tmp_dir / f"session-{scenario.seed}.jsonl"
    exported = export_session(run.inner_store, run.session, export_path,
                              index=DST_INDEX)

    # Round trip: a clean import must reproduce every event.
    clean = DocumentStore()
    import_session(clean, export_path, index=DST_INDEX,
                   rename_to="roundtrip")
    if clean.count(DST_INDEX) != exported:
        failures.append(
            f"session round-trip lost events: exported {exported}, "
            f"imported {clean.count(DST_INDEX)}")

    # Torn tail: cut the file at an arbitrary byte; recovery must keep
    # exactly the complete lines of the prefix.
    blob = export_path.read_bytes()
    cut = rng.randrange(1, len(blob))
    torn_path = tmp_dir / f"session-{scenario.seed}-torn.jsonl"
    torn_path.write_bytes(blob[:cut])
    prefix = blob[:cut]
    newline_positions = [i for i, b in enumerate(prefix) if b == 0x0A]
    complete_data_lines = max(0, len(newline_positions) - 1)
    header_survived = bool(newline_positions)
    # A cut landing exactly on a newline leaves the preceding record
    # complete but unterminated; recovery rightly keeps it.
    if newline_positions:
        tail = prefix[newline_positions[-1] + 1:]
        try:
            if isinstance(json.loads(tail.decode("utf-8")), dict):
                complete_data_lines += 1
        except (ValueError, UnicodeDecodeError):
            pass
    recovered = DocumentStore()
    report = recover_session(recovered, torn_path, index=DST_INDEX,
                             rename_to="torn")
    if not header_survived:
        # The prefix is (at most) the header line; a cut exactly at
        # its end leaves it parseable, but no data can have survived.
        if report["imported"]:
            failures.append(
                "torn session: recovered events from a file with a "
                "torn header")
    else:
        if report["imported"] != complete_data_lines:
            failures.append(
                f"torn session: {complete_data_lines} complete lines "
                f"survived the tear but {report['imported']} were "
                f"recovered")
        if report["imported"] and report["dropped_corrupt"] > 1:
            failures.append(
                f"torn session: {report['dropped_corrupt']} corrupt "
                f"lines dropped; a single tear can only corrupt one")
        # Recovered events must be a faithful prefix (no mutation).
        original_keys = {invariants.event_key(s) for _, s in run.docs}
        if report["imported"]:
            for _, source in recovered.scan(DST_INDEX, {"match_all": {}}):
                if invariants.event_key(source) not in original_keys:
                    failures.append(
                        "torn session: recovery invented an event not "
                        "present in the original capture")
                    break

    # Duplicate replay: importing the same WAL twice applies once.
    dedup = DocumentStore()
    first = recover_session(dedup, export_path, index=DST_INDEX,
                            rename_to="dup")
    second = recover_session(dedup, export_path, index=DST_INDEX,
                             rename_to="dup")
    if second["imported"] != 0 or second["dropped_duplicates"] == 0:
        # recover_session dedups within one file; cross-call replay
        # protection is the caller's job via the store itself.
        pass
    if first["imported"] != exported:
        failures.append(
            f"duplicate-replay baseline import lost events: "
            f"{first['imported']} != {exported}")

    # Spill WAL image: serialize, tear, recover; the complete segments
    # of the prefix must survive byte-identically.
    from repro.tracer.spill import SpillWAL
    wal = SpillWAL()
    batch = [source for _, source in run.docs[:8]] or [{"x": 1}]
    wal.append(batch, now_ns=1)
    wal.append(batch[:3] or [{"y": 2}], now_ns=2, reason="dst")
    image = wal.to_bytes()
    cut = rng.randrange(1, len(image))
    recovered_wal, wal_report = SpillWAL.recover(image[:cut])
    full_wal, full_report = SpillWAL.recover(image)
    if full_report["segments_recovered"] != 2:
        failures.append(
            f"spill WAL round-trip lost segments: "
            f"{full_report['segments_recovered']} != 2")
    elif [s.docs for s in full_wal._segments] != [s.docs for s
                                                  in wal._segments]:
        failures.append("spill WAL round-trip mutated segment payloads")
    if wal_report["segments_recovered"] > 2:
        failures.append("torn spill WAL recovered phantom segments")

    if scenario.storage_mode == "segments":
        failures += segment_storage_checks(run, scenario, tmp_dir)
    return failures


def segment_storage_checks(run: PipelineRun, scenario: Scenario,
                           tmp_dir) -> list[str]:
    """Segment-engine recovery checks (``storage_mode="segments"``).

    Five stages, all seeded from the scenario: the segment store must
    load identically to the JSON-lines oracle; a segment file torn at
    an arbitrary byte must be rejected whole without touching its
    neighbours; a torn storage WAL must recover exactly the complete
    frames of the prefix; a crash injected mid-compaction must leave a
    store that reopens clean and compacts successfully; and a crash
    between a flush's manifest publish and its WAL reset must not
    replay the sealed records as duplicates.
    """
    import pathlib
    import shutil

    from repro.backend.persistence import load_session, save_session
    from repro.backend.segments import WAL_NAME, SegmentStorage

    failures: list[str] = []
    if not run.docs:
        return failures
    rng = random.Random(f"dio-dst-segments-{scenario.seed}")
    tmp_dir = pathlib.Path(tmp_dir)
    docs = [source for _, source in run.docs]
    # Small segments on purpose: several files per store, so tearing
    # one and compacting the rest both have something to chew on.
    flush = max(4, len(docs) // 5)

    # Differential oracle: the same session saved both ways must load
    # back with identical contents.
    seg_root = tmp_dir / "segstore"
    save_session(run.inner_store, run.session, seg_root, index=DST_INDEX,
                 storage_mode="segments", flush_events=flush)
    via_segments = DocumentStore()
    load_session(via_segments, seg_root, index=DST_INDEX,
                 rename_to="segcheck")
    oracle_path = tmp_dir / f"segcheck-{scenario.seed}.jsonl"
    export_session(run.inner_store, run.session, oracle_path,
                   index=DST_INDEX)
    via_jsonl = DocumentStore()
    import_session(via_jsonl, oracle_path, index=DST_INDEX,
                   rename_to="segcheck")
    seg_docs = [s for _, s in via_segments.scan(DST_INDEX,
                                                {"match_all": {}})]
    ora_docs = [s for _, s in via_jsonl.scan(DST_INDEX, {"match_all": {}})]
    if (json.dumps(seg_docs, sort_keys=True)
            != json.dumps(ora_docs, sort_keys=True)):
        failures.append(
            f"segment store: loaded session differs from the jsonl "
            f"oracle ({len(seg_docs)} vs {len(ora_docs)} docs)")

    engine = SegmentStorage(seg_root, flush_events=flush, create=False)
    if not engine.verify()["ok"]:
        failures.append("segment store: checksum verify failed after save")

    # Zone-pruned scan vs. the unpruned predicate over every document.
    times = sorted(d.get("time", 0) for d in docs)
    lo = times[len(times) // 3]
    hi = times[2 * len(times) // 3]
    window = {"range": {"time": {"gte": lo, "lte": hi}}}
    from repro.backend.query import compile_query
    predicate = compile_query(window)
    pruned = sorted(json.dumps(d, sort_keys=True)
                    for d in engine.scan(window))
    full = sorted(json.dumps(d, sort_keys=True)
                  for d in engine.all_docs() if predicate(d))
    if pruned != full:
        failures.append(
            f"segment store: zone-pruned scan returned {len(pruned)} "
            f"docs, unpruned predicate {len(full)}")

    # Torn segment: truncate one file at an arbitrary byte; reopening
    # must drop exactly that segment and keep every neighbour intact.
    torn_root = tmp_dir / "segstore-torn"
    shutil.copytree(seg_root, torn_root)
    victims = sorted(torn_root.glob("*.dseg"))
    victim = victims[rng.randrange(len(victims))]
    blob = victim.read_bytes()
    victim.write_bytes(blob[:rng.randrange(0, len(blob))])
    victim_rows = next(s.rows for s in engine._segments
                       if s.path.name == victim.name)
    torn_engine = SegmentStorage(torn_root, flush_events=flush,
                                 create=False)
    if torn_engine.open_report["segments_dropped"] != 1:
        failures.append(
            f"torn segment: expected 1 dropped segment, reopen dropped "
            f"{torn_engine.open_report['segments_dropped']}")
    elif torn_engine.count() != engine.count() - victim_rows:
        failures.append(
            f"torn segment: survivors hold {torn_engine.count()} rows, "
            f"expected {engine.count() - victim_rows}")
    elif not torn_engine.verify()["ok"]:
        failures.append("torn segment: surviving store fails verify")
    torn_engine.close()

    # Torn storage WAL: unflushed appends, then a cut at an arbitrary
    # byte; recovery must yield a whole-frame prefix, nothing invented.
    wal_root = tmp_dir / "segstore-wal"
    head = docs[:min(len(docs), 12)]
    writer = SegmentStorage(wal_root, flush_events=len(head) + 1)
    for start in range(0, len(head), 4):
        writer.append(head[start:start + 4], session="segcheck")
    writer.close()
    wal_path = wal_root / WAL_NAME
    image = wal_path.read_bytes()
    wal_path.write_bytes(image[:rng.randrange(1, len(image))])
    reader = SegmentStorage(wal_root, flush_events=len(head) + 1,
                            create=False)
    recovered = reader._buffer
    boundaries = set(range(0, len(head) + 1, 4)) | {len(head)}
    if len(recovered) not in boundaries:
        failures.append(
            f"torn storage WAL: {len(recovered)} docs recovered, not a "
            f"whole-frame prefix of {len(head)}")
    elif recovered != head[:len(recovered)]:
        failures.append(
            "torn storage WAL: recovered docs are not a faithful "
            "prefix of the appended documents")
    reader.close()

    # Mid-compaction crash: the merged file is written but the
    # manifest swap never happens.  Reopening must see the
    # pre-compaction store (orphan removed) and a retry must succeed.
    crash_root = tmp_dir / "segstore-crash"
    crash_engine = SegmentStorage(crash_root, flush_events=4)
    loaded = crash_engine.import_docs(docs[:min(len(docs), 24)],
                                      session="segcheck")

    def _crash(stage: str) -> None:
        if stage == "compact":
            raise RuntimeError("dst: injected mid-compaction crash")

    crash_engine._crash_hook = _crash
    crashed = False
    try:
        crash_engine.compact(small_rows=64)
    except RuntimeError:
        crashed = True
    crash_engine.close()
    survivor = SegmentStorage(crash_root, flush_events=4, create=False)
    if survivor.count() != loaded:
        failures.append(
            f"compaction crash: store holds {survivor.count()} rows "
            f"after reopen, expected {loaded}")
    if not survivor.verify()["ok"]:
        failures.append("compaction crash: reopened store fails verify")
    if crashed and not survivor.open_report["orphans_removed"]:
        failures.append(
            "compaction crash: the half-written merged segment was "
            "not cleaned up on reopen")
    survivor.compact(small_rows=64)
    if survivor.count() != loaded:
        failures.append(
            f"compaction retry: row count drifted to {survivor.count()}, "
            f"expected {loaded}")
    if not survivor.verify()["ok"]:
        failures.append("compaction retry: compacted store fails verify")
    survivor.close()
    engine.close()

    # Crash between the flush publishing its segment in the manifest
    # and the WAL reset: the sealed rows are still framed in the WAL,
    # and replay must skip them (the manifest's wal_sealed watermark
    # covers their record ids), not duplicate every row.
    pub_root = tmp_dir / "segstore-pub"
    pub_engine = SegmentStorage(pub_root, flush_events=len(head) + 1)
    for start in range(0, len(head), 4):
        pub_engine.append(head[start:start + 4], session="segcheck")

    def _crash_published(stage: str) -> None:
        if stage == "flush-published":
            raise RuntimeError("dst: injected crash before WAL reset")

    pub_engine._crash_hook = _crash_published
    try:
        pub_engine.flush()
        failures.append("flush-publish crash: hook never fired")
    except RuntimeError:
        pass
    pub_engine.close()
    pub_survivor = SegmentStorage(pub_root, flush_events=len(head) + 1,
                                  create=False)
    if pub_survivor.count() != len(head):
        failures.append(
            f"flush-publish crash: store holds {pub_survivor.count()} "
            f"rows after reopen, expected {len(head)} (sealed WAL "
            "records replayed as duplicates?)")
    if pub_survivor.open_report["wal_docs_skipped_sealed"] != len(head):
        failures.append(
            "flush-publish crash: reopen did not skip the sealed WAL "
            f"records ({pub_survivor.open_report} )")
    if not pub_survivor.verify()["ok"]:
        failures.append("flush-publish crash: reopened store fails verify")
    pub_survivor.close()
    return failures


def ring_twin_checks(fast: PipelineRun, scenario: Scenario) -> list[str]:
    """Classic-twin oracle for ring-aware scenarios.

    Re-runs the scenario with the tracer forced to ``ring_mode =
    "classic"`` — the applications are untouched and the ring-aware
    observer charges no virtual time, so the kernel-level outcome must
    be identical: same file bytes for every pool path, same syscall
    counts, same io_uring ring statistics.  When neither capture lost
    events, the ring-aware document set minus the ``uring_*`` per-op
    events must equal the classic capture exactly (the blind spot is
    *additive* visibility, never divergence).
    """
    failures: list[str] = []
    if scenario.ring_mode != "ring-aware":
        return failures
    twin = execute_pipeline(scenario, ring_mode="classic")

    for path in PATH_POOL:
        fast_inode = fast.kernel.vfs.lookup(path)
        twin_inode = twin.kernel.vfs.lookup(path)
        fast_data = None if fast_inode is None else bytes(fast_inode.data)
        twin_data = None if twin_inode is None else bytes(twin_inode.data)
        if fast_data != twin_data:
            failures.append(
                f"ring twin: {path} diverged (ring-aware "
                f"{len(fast_data or b'')} B vs classic "
                f"{len(twin_data or b'')} B)")
    if (dict(fast.kernel.syscall_counts)
            != dict(twin.kernel.syscall_counts)):
        failures.append(
            f"ring twin: syscall counts diverged "
            f"{dict(fast.kernel.syscall_counts)} vs "
            f"{dict(twin.kernel.syscall_counts)}")
    if fast.kernel.uring_stats != twin.kernel.uring_stats:
        failures.append(
            f"ring twin: io_uring stats diverged "
            f"{fast.kernel.uring_stats} vs {twin.kernel.uring_stats}")

    # Document-set comparison only when nothing could legitimately
    # lose events: ring-aware produces more volume, so faults, crash
    # points, and drop backpressure can swallow *different* events in
    # the two captures without either being wrong.
    def lossless(run: PipelineRun) -> bool:
        stats = run.tracer.stats
        return (run.tracer.ring.stats.dropped == 0
                and stats.spilled_records == 0)

    fault_free = (not scenario.fault_windows
                  and not scenario.consumer_crashes
                  and not scenario.store_crashes
                  and scenario.backpressure_policy != "drop")
    if fault_free and lossless(fast) and lossless(twin):
        from repro.kernel.uring import URING_EVENT_NAMES
        fast_keys = {invariants.event_key(s) for _, s in fast.docs
                     if s.get("syscall") not in URING_EVENT_NAMES}
        twin_keys = {invariants.event_key(s) for _, s in twin.docs}
        if fast_keys != twin_keys:
            missing = len(twin_keys - fast_keys)
            extra = len(fast_keys - twin_keys)
            failures.append(
                f"ring twin: classic-visible events diverged "
                f"({missing} missing, {extra} extra in the ring-aware "
                f"capture after removing uring_* events)")
    return failures


def shard_lifecycle_checks(run: PipelineRun, scenario: Scenario,
                           tmp_dir) -> list[str]:
    """Shard-kill/restore and mid-life rebalance (``shard_count > 1``).

    Runs last — it mutates the fast store, after every digest and
    oracle comparison has been taken.  A seed-chosen shard is killed
    and restored from a saved shard image, then the store is
    rebalanced to a different shard count; documents, global order,
    and the dashboard aggregation must come through both transitions
    byte-identically.
    """
    import pathlib

    failures: list[str] = []
    store = run.inner_store
    if getattr(store, "shard_count", 1) < 2 or not run.docs:
        return failures
    rng = random.Random(f"dio-dst-shard-life-{scenario.seed}")
    root = pathlib.Path(tmp_dir) / "shards"
    dashboard_aggs = {"by_syscall": {"terms": {"field": "syscall",
                                               "size": 50}}}
    before_scan = store.scan(DST_INDEX, {"match_all": {}})
    before_aggs = store.search(DST_INDEX, size=0, aggs=dashboard_aggs)

    store.save_shards(root)
    victim = rng.randrange(store.shard_count)
    store.kill_shard(victim)
    after_kill = {doc_id for doc_id, _ in store.scan(DST_INDEX,
                                                     {"match_all": {}})}
    survivors = {doc_id for doc_id, _ in before_scan} - after_kill
    if after_kill - {doc_id for doc_id, _ in before_scan}:
        failures.append("shard kill: surviving shards invented documents")
    store.restore_shard(victim, root)
    if store.scan(DST_INDEX, {"match_all": {}}) != before_scan:
        failures.append(
            f"shard restore: store differs from the pre-kill snapshot "
            f"(killed shard {victim}, {len(survivors)} docs were down)")

    choices = [n for n in (1, 2, 3, 4) if n != store.shard_count]
    store.rebalance(shard_count=rng.choice(choices))
    if store.scan(DST_INDEX, {"match_all": {}}) != before_scan:
        failures.append("rebalance: documents changed while moving shards")
    elif store.search(DST_INDEX, size=0,
                      aggs=dashboard_aggs) != before_aggs:
        failures.append("rebalance: dashboard aggregation diverged")
    return failures


# ----------------------------------------------------------------------
# The full per-seed harness

def run_scenario(scenario: Scenario, *, check_determinism: bool = True,
                 check_oracle: bool = True,
                 tmp_dir=None) -> RunResult:
    """Run every stage for one scenario; see the module docstring."""
    import tempfile

    failures: list[str] = []

    fast = execute_pipeline(scenario)
    ctx = invariants.RunContext(
        scenario=scenario, tracer=fast.tracer, store=fast.store,
        inner_store=fast.inner_store, crashing=fast.crashing,
        faulty=fast.faulty, index=DST_INDEX, session=fast.session,
        traced_pids=fast.traced_pids, docs=fast.docs)
    failures += invariants.check_all(ctx)

    times = [source.get("time", 0) for _, source in fast.docs]
    time_lo, time_hi = (min(times), max(times)) if times else (0, 1)
    battery_failures, battery_results = differential.run_battery(
        fast.inner_store, DST_INDEX, scenario.seed, time_lo, time_hi)
    failures += battery_failures
    dashboards = render_dashboards(fast)
    digest = run_digest(fast, battery_results, dashboards)

    if check_oracle:
        oracle = execute_pipeline(scenario, plan_mode="legacy",
                                  agg_mode="legacy",
                                  fast_correlator=False,
                                  ingest_mode="legacy",
                                  shard_count=1)
        failures += differential.compare_twin_runs(
            fast.docs, oracle.docs, fast.report, oracle.report)
        failures += ring_twin_checks(fast, scenario)

    if check_determinism:
        rerun = execute_pipeline(scenario)
        _, rerun_battery = differential.run_battery(
            rerun.inner_store, DST_INDEX, scenario.seed, time_lo, time_hi)
        rerun_digest = run_digest(rerun, rerun_battery,
                                  render_dashboards(rerun))
        if rerun_digest != digest:
            failures.append(
                f"non-deterministic: same-seed rerun digest "
                f"{rerun_digest[:16]} != {digest[:16]}")

    if tmp_dir is None:
        with tempfile.TemporaryDirectory(prefix="dio-dst-") as tmp:
            failures += storage_recovery_checks(fast, scenario, tmp)
            failures += shard_lifecycle_checks(fast, scenario, tmp)
    else:
        failures += storage_recovery_checks(fast, scenario, tmp_dir)
        failures += shard_lifecycle_checks(fast, scenario, tmp_dir)

    return RunResult(
        seed=scenario.seed,
        failures=failures,
        digest=digest,
        events_produced=fast.tracer.ring.stats.produced,
        events_stored=len(fast.docs),
        consumer_crashes=len(scenario.consumer_crashes),
        store_crashes=(fast.crashing.crashes_total
                       if fast.crashing else 0),
        faults_injected=fast.faulty.faults_injected,
        spilled=fast.tracer.stats.spilled_records,
        scenario=scenario,
    )


def run_seed(seed: int, **kwargs) -> RunResult:
    """Generate and run the scenario for ``seed``."""
    return run_scenario(generate(seed), **kwargs)
