"""Differential checks: fast paths vs. legacy/naive oracles.

Two layers of comparison, both running on every scenario:

1. **In-store battery** — a seeded battery of queries and aggregations
   is answered twice on the *same* store: once through the production
   path (planner + columnar kernels + agg cache) and once through the
   pre-optimisation oracles (:func:`repro.backend.naive.naive_scan`,
   :func:`~repro.backend.naive.naive_aggregate`).  Any divergence is a
   query-engine bug.

2. **Twin-run comparison** — the runner executes the whole pipeline a
   second time on a ``plan_mode="legacy"``/``agg_mode="legacy"`` store
   with :func:`~repro.backend.naive.legacy_correlate` instead of the
   grouped-pass correlator.  The stores' final contents (documents,
   ids, resolved paths) and the correlation reports must be identical:
   the optimised pipeline may be faster, never different.
"""

from __future__ import annotations

import json
import random

from repro.backend.naive import naive_aggregate, naive_scan


def battery_specs(seed: int, time_lo: int, time_hi: int) -> list[dict]:
    """The seeded query/agg battery for one scenario.

    A fixed dashboard core (the shapes ``dio analyze``/``dio dashboard``
    issue) plus seeded variations, so every seed probes a different
    corner of the query surface.
    """
    rng = random.Random(f"dio-dst-battery-{seed}")
    span = max(1, time_hi - time_lo)
    specs = [
        # The paper's Fig. 4 shape: syscall mix with latency stats.
        {"query": None,
         "aggs": {"by_syscall": {
             "terms": {"field": "syscall", "size": 50},
             "aggs": {"lat": {"stats": {"field": "duration_ns"}}}}}},
        # Per-file activity after correlation.
        {"query": {"exists": {"field": "file_path"}},
         "aggs": {"by_path": {
             "terms": {"field": "file_path", "size": 50},
             "aggs": {"bytes": {"sum": {"field": "ret"}}}}}},
        # Timeline histogram feeding the dashboard sparklines.
        {"query": None,
         "aggs": {"timeline": {
             "date_histogram": {"field": "time",
                                "interval": max(1, span // 8)},
             "aggs": {"procs": {"terms": {"field": "proc_name",
                                          "size": 20}}}}}},
        # Latency distribution.
        {"query": {"term": {"syscall": rng.choice(
            ("read", "write", "open", "close", "fsync"))}},
         "aggs": {"pct": {"percentiles": {
             "field": "duration_ns",
             "percents": [50, 90, 99]}}}},
    ]
    for _ in range(3):
        lo = time_lo + rng.randrange(span)
        hi = lo + rng.randrange(1, span + 1)
        spec = {"query": {"bool": {"must": [
            {"range": {"time": {"gte": lo, "lt": hi}}},
        ]}}}
        if rng.random() < 0.5:
            spec["query"]["bool"]["must"].append(
                {"exists": {"field": "file_tag"}})
        if rng.random() < 0.5:
            spec["query"]["bool"]["must"].append(
                {"range": {"ret": {"gte": 0}}})
        if rng.random() < 0.5:
            spec["aggs"] = {"off": {"histogram": {
                "field": "offset", "interval": rng.choice((512, 4096))}}}
        specs.append(spec)
    return specs


def _canonical(value) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def run_battery(store, index: str, seed: int,
                time_lo: int, time_hi: int) -> tuple[list[str], list]:
    """Fast-vs-oracle battery on one store.

    Returns ``(failures, fast_results)`` — the fast results also feed
    the determinism digest.
    """
    failures: list[str] = []
    results: list = []
    # A sharded store has no single Index; its oracle_index() view
    # re-materialises one in global rank order for the naive oracles.
    target = (store.oracle_index(index) if hasattr(store, "oracle_index")
              else store.ensure_index(index))
    for i, spec in enumerate(battery_specs(seed, time_lo, time_hi)):
        query = spec.get("query")
        aggs = spec.get("aggs")

        fast_hits = store.scan(index, query)
        oracle_hits = naive_scan(target, query)
        fast_ids = sorted(doc_id for doc_id, _ in fast_hits)
        oracle_ids = sorted(doc_id for doc_id, _ in oracle_hits)
        if fast_ids != oracle_ids:
            failures.append(
                f"battery[{i}]: planner returned {len(fast_ids)} docs, "
                f"naive scan {len(oracle_ids)} "
                f"(query={_canonical(query)})")
        results.append({"query": i, "hits": fast_ids})

        if aggs:
            response = store.search(index, query=query, aggs=aggs, size=0)
            fast_aggs = response["aggregations"]
            oracle_aggs = naive_aggregate(target, query, aggs)
            if _canonical(fast_aggs) != _canonical(oracle_aggs):
                failures.append(
                    f"battery[{i}]: aggregation divergence "
                    f"(aggs={_canonical(aggs)})")
            results.append({"query": i, "aggs": fast_aggs})
    return failures, results


def compare_twin_runs(fast_docs: list, oracle_docs: list,
                      fast_report, oracle_report) -> list[str]:
    """Fast pipeline vs. legacy-oracle pipeline, same scenario."""
    failures: list[str] = []
    if _canonical(fast_docs) != _canonical(oracle_docs):
        fast_by_id = dict(fast_docs)
        oracle_by_id = dict(oracle_docs)
        only_fast = sorted(set(fast_by_id) - set(oracle_by_id))
        only_oracle = sorted(set(oracle_by_id) - set(fast_by_id))
        if only_fast or only_oracle:
            failures.append(
                f"twin-run doc-id mismatch: {len(only_fast)} only in "
                f"fast run, {len(only_oracle)} only in oracle run")
        else:
            diverging = [doc_id for doc_id in fast_by_id
                         if _canonical(fast_by_id[doc_id])
                         != _canonical(oracle_by_id[doc_id])][:5]
            failures.append(
                f"twin-run content mismatch in docs {diverging}")
    fast_dict = fast_report.as_dict() if fast_report else None
    oracle_dict = oracle_report.as_dict() if oracle_report else None
    if fast_dict != oracle_dict:
        failures.append(
            f"twin-run correlation reports differ: fast={fast_dict} "
            f"oracle={oracle_dict}")
    return failures
